// End-to-end prediction-service demo: train an RTTF model offline on a
// simulated TPC-W campaign, save it as an archive, serve it with the
// multi-session f2pm_serve PredictionService, stream fresh monitored runs
// through FMC sessions that receive live predictions, and hot-swap the
// model mid-stream without dropping a session.
//
// Usage: prediction_service [--runs=N] [--seed=S] [--clients=C]
//                           [--shards=S]         (0 = one per core)
//                           [--metrics-port=P]   (-1 = off, 0 = ephemeral)
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/aggregation.hpp"
#include "data/dataset.hpp"
#include "ml/linear_regression.hpp"
#include "ml/model.hpp"
#include "ml/reptree.hpp"
#include "net/fmc.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"
#include "sim/campaign.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace f2pm;

  util::Config args;
  args.apply_args(argc, argv);
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2015));
  const auto clients = static_cast<std::size_t>(args.get_int("clients", 4));
  const int metrics_port = static_cast<int>(args.get_int("metrics-port", 0));
  const auto shards = static_cast<std::size_t>(args.get_int("shards", 1));

  // ---- offline: monitoring campaign -> aggregated dataset -> model ------
  sim::CampaignConfig campaign;
  campaign.num_runs = runs;
  campaign.seed = seed;
  campaign.workload.num_browsers = 60;
  const data::DataHistory history = sim::run_campaign(campaign);

  data::AggregationOptions aggregation;  // 30 s windows (paper default)
  const data::Dataset dataset =
      data::build_dataset(data::aggregate(history, aggregation));
  auto linear = std::make_shared<ml::LinearRegression>();
  linear->fit(dataset.x, dataset.y);
  std::printf("trained linear RTTF model on %zu aggregated windows from "
              "%zu runs\n",
              dataset.num_rows(), history.num_runs());

  // Models deploy as archives: save, then serve from the file.
  const std::string model_path = "prediction_service_model.bin";
  {
    std::ofstream out(model_path, std::ios::binary);
    ml::save_model(*linear, out);
  }

  // ---- online: the prediction service ----------------------------------
  auto store = std::make_shared<serve::ModelStore>();
  store->load_file(model_path);
  serve::ServiceOptions options;
  options.aggregation = aggregation;
  options.metrics_port = metrics_port;
  options.shards = shards;  // 0 = one reactor shard per hardware thread
  serve::PredictionService service(options, store);
  std::printf(
      "prediction service on 127.0.0.1:%u (model v%u, %s backend, "
      "%zu shard%s)\n",
      service.port(), store->version(),
      options.backend == net::Poller::Backend::kEpoll ? "epoll" : "poll",
      service.shards(), service.shards() == 1 ? "" : "s");
  if (service.metrics_port() != 0) {
    std::printf("metrics: curl http://127.0.0.1:%u/metrics\n",
                service.metrics_port());
  }

  // Fresh monitored systems (new seeds), one FMC session each.
  std::vector<std::thread> monitored;
  monitored.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    monitored.emplace_back([&, c] {
      sim::CampaignConfig fresh = campaign;
      fresh.num_runs = 1;
      fresh.seed = seed + 100 + c;
      const data::DataHistory live = sim::run_campaign(fresh);

      net::FeatureMonitorClient client("127.0.0.1", service.port());
      client.hello("vm-" + std::to_string(c));
      std::size_t alarms = 0;
      double first_alarm = 0.0;
      for (const data::Run& run : live.runs()) {
        for (const data::RawDatapoint& sample : run.samples) {
          client.send(sample);
          while (auto prediction = client.poll_prediction()) {
            if (prediction->alarm && ++alarms == 1) {
              first_alarm = prediction->window_end;
            }
          }
        }
      }
      if (c == 0) {
        // In-band scrape: same text the HTTP endpoint serves.
        if (auto stats_text = client.fetch_stats()) {
          const std::size_t lines =
              static_cast<std::size_t>(std::count(
                  stats_text->begin(), stats_text->end(), '\n'));
          std::printf("  vm-0 fetched server stats: %zu exposition lines\n",
                      lines);
        }
      }
      client.finish();
      while (auto prediction = client.poll_prediction()) {
      }
      std::optional<net::Prediction> last;
      while (auto prediction = client.wait_prediction()) {
        if (prediction->alarm && ++alarms == 1) {
          first_alarm = prediction->window_end;
        }
        last = prediction;
      }
      std::printf("  vm-%zu: %zu datapoints -> %zu predictions", c,
                  client.datapoints_sent(), client.predictions_received());
      if (last.has_value()) {
        std::printf(", last rttf %.0fs at t=%.0fs (model v%u)",
                    last->rttf, last->window_end, last->model_version);
      }
      if (alarms > 0) {
        std::printf(", rejuvenation alarm at t=%.0fs", first_alarm);
      }
      std::printf("\n");
    });
  }

  // Hot-swap while the sessions stream: retrain with a different learner
  // and atomically replace the archive; the watched... here we use the
  // explicit API. No session is dropped, no half-loaded model is visible.
  auto tree = std::make_shared<ml::RepTree>();
  tree->fit(dataset.x, dataset.y);
  const std::uint32_t v2 = store->swap(tree, {}, "retrained-reptree");
  std::printf("hot-swapped model to v%u while sessions stream\n", v2);

  for (std::thread& thread : monitored) thread.join();
  service.stop();

  const serve::ServiceStats stats = service.stats();
  std::printf(
      "\nservice totals: %llu sessions, %llu datapoints in, %llu "
      "predictions out, %llu evicted, %llu protocol errors, model v%u\n",
      static_cast<unsigned long long>(stats.sessions_accepted),
      static_cast<unsigned long long>(stats.datapoints_received),
      static_cast<unsigned long long>(stats.predictions_sent),
      static_cast<unsigned long long>(stats.sessions_evicted),
      static_cast<unsigned long long>(stats.protocol_errors),
      stats.model_version);
  std::remove(model_path.c_str());
  return 0;
}
