// Proactive software rejuvenation driven by an F2PM model — the use case
// the paper's introduction motivates. The study:
//
//   1. Train on a monitoring campaign and pick the best model by S-MAE.
//   2. Replay fresh (unseen-seed) runs, feeding the live datapoint stream
//      through the core::OnlinePredictor exactly as a deployed agent
//      would. When the RejuvenationAdvisor sees the predicted RTTF below
//      the action lead time for two consecutive windows, the VM is
//      restarted cleanly ("proactive"); requests in flight survive.
//   3. Compare against the reactive baseline (run to the crash), counting
//      unplanned crashes avoided and the usable uptime fraction.
//
// Usage: proactive_rejuvenation [--train_runs=N] [--test_runs=N]
//                               [--lead=SECONDS] [--seed=S]
#include <cstdio>
#include <memory>

#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "ml/registry.hpp"
#include "sim/campaign.hpp"
#include "util/config.hpp"

namespace {

using namespace f2pm;

/// Outcome of replaying one run with a proactive policy.
struct ReplayOutcome {
  bool rejuvenated = false;   ///< Model fired before the crash.
  double action_time = 0.0;   ///< When rejuvenation triggered (or crash).
  double actual_ttf = 0.0;    ///< The run's real failure time.
};

/// Streams a recorded run through the online predictor and applies the
/// debounced rejuvenation policy.
ReplayOutcome replay_run(const data::Run& run,
                         std::shared_ptr<const ml::Regressor> model,
                         const data::AggregationOptions& aggregation,
                         double lead_seconds) {
  ReplayOutcome outcome;
  outcome.actual_ttf = run.fail_time;
  outcome.action_time = run.fail_time;

  core::OnlinePredictor predictor(std::move(model), aggregation);
  core::RejuvenationAdvisor advisor(core::AdvisorOptions{
      .lead_seconds = lead_seconds, .consecutive_windows = 2});
  for (const auto& sample : run.samples) {
    const auto prediction = predictor.observe(sample);
    if (prediction && advisor.update(*prediction)) {
      outcome.rejuvenated = true;
      outcome.action_time = advisor.trigger_time();
      break;
    }
  }
  if (!outcome.rejuvenated) {
    // The run's trailing samples sit in a window the crash never closed;
    // flushing gives the policy one final chance, exactly like the serve
    // drain path does for live sessions.
    const auto prediction = predictor.flush();
    if (prediction && advisor.update(*prediction)) {
      outcome.rejuvenated = true;
      outcome.action_time = advisor.trigger_time();
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::Config args;
  args.apply_args(argc, argv);
  const auto train_runs =
      static_cast<std::size_t>(args.get_int("train_runs", 20));
  const auto test_runs =
      static_cast<std::size_t>(args.get_int("test_runs", 12));
  const double lead = args.get_double("lead", 180.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 99));

  // --- 1. Train ------------------------------------------------------------
  sim::CampaignConfig campaign;
  campaign.num_runs = train_runs;
  campaign.seed = seed;
  campaign.workload.num_browsers = 60;
  std::printf("training campaign: %zu runs...\n", train_runs);
  const data::DataHistory history = sim::run_campaign(campaign);

  core::PipelineOptions options;
  options.models = {"linear", "m5p", "reptree"};
  options.run_feature_selection = false;
  const core::PipelineResult result = core::run_pipeline(history, options);

  const core::ModelOutcome* best = nullptr;
  for (const auto& outcome : result.using_all_features) {
    if (best == nullptr || outcome.report.soft_mae < best->report.soft_mae) {
      best = &outcome;
    }
  }
  std::printf("selected model: %s (S-MAE %.2fs, MAE %.2fs)\n\n",
              core::display_model_name(best->display_name).c_str(),
              best->report.soft_mae, best->report.mae);
  const std::shared_ptr<ml::Regressor> model =
      ml::make_model(best->display_name);
  model->fit(result.train.x, result.train.y);

  // --- 2/3. Replay unseen runs under both policies -------------------------
  sim::CampaignConfig test_campaign = campaign;
  test_campaign.num_runs = test_runs;
  test_campaign.seed = seed + 1;  // unseen trajectories

  std::size_t crashes_avoided = 0;
  std::size_t premature = 0;  // fired earlier than necessary (lost uptime)
  double uptime_proactive = 0.0;
  double uptime_reactive = 0.0;
  double total_time = 0.0;
  const double restart_cost = 60.0;  // VM reboot/warmup, either policy

  util::Rng seed_rng(test_campaign.seed);
  std::printf("replaying %zu unseen runs (lead time %.0fs):\n", test_runs,
              lead);
  for (std::size_t r = 0; r < test_runs; ++r) {
    const sim::RunResult test = sim::execute_run(test_campaign, seed_rng());
    const ReplayOutcome replay =
        replay_run(test.run, model, options.aggregation, lead);
    total_time += replay.actual_ttf + restart_cost;
    // Reactive: the whole run is uptime, but it ends in an unplanned crash
    // (in-flight work lost; model this as one restart cost of chaos).
    uptime_reactive += replay.actual_ttf;
    // Proactive: uptime until the (clean) rejuvenation point.
    uptime_proactive += replay.action_time;
    if (replay.rejuvenated) {
      ++crashes_avoided;
      if (replay.actual_ttf - replay.action_time > 2.0 * lead) ++premature;
    }
    std::printf("  run %2zu: actual ttf %7.1fs, action at %7.1fs (%s)\n", r,
                replay.actual_ttf, replay.action_time,
                replay.rejuvenated ? "rejuvenated" : "CRASHED");
  }

  std::printf("\ncrashes avoided: %zu / %zu (premature by >2x lead: %zu)\n",
              crashes_avoided, test_runs, premature);
  std::printf("uptime fraction: proactive %.3f vs reactive %.3f\n",
              uptime_proactive / total_time, uptime_reactive / total_time);
  std::printf(
      "(reactive runs end in unplanned crashes: every one of the %zu runs "
      "lost its in-flight sessions)\n",
      test_runs);
  return 0;
}
