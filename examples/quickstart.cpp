// Quickstart: the smallest end-to-end F2PM session.
//
// 1. Collect a monitoring history from the simulated TPC-W testbed using
//    the synthetic anomaly injectors (fast data collection, paper §III-E).
// 2. Run the F2PM pipeline: aggregation + added metrics, Lasso feature
//    selection, model generation & validation.
// 3. Print the comparison tables so you can pick a model.
//
// Usage: quickstart [--runs=N] [--window=SECONDS] [--seed=S]
#include <cstdio>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "sim/campaign.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace f2pm;

  util::Config args;
  args.apply_args(argc, argv);

  // --- 1. Monitoring campaign on the simulated testbed -------------------
  sim::CampaignConfig campaign;
  campaign.num_runs =
      static_cast<std::size_t>(args.get_int("runs", 12));
  campaign.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  campaign.workload.num_browsers = 40;
  // Synthetic injectors on top of the load-coupled servlet anomalies make
  // runs crash faster -> quicker knowledge-base construction.
  campaign.use_synthetic_injectors = true;
  campaign.synthetic_leak.size_min_kb = 256.0;
  campaign.synthetic_leak.size_max_kb = 1536.0;

  std::printf("collecting %zu runs-to-failure...\n", campaign.num_runs);
  const data::DataHistory history = sim::run_campaign(
      campaign, [](std::size_t run, const sim::RunResult& result) {
        std::printf("  run %2zu: time-to-failure %7.1fs, %4zu datapoints, "
                    "%5zu leaks, %3zu stray threads\n",
                    run, result.run.fail_time, result.run.samples.size(),
                    result.leaks_injected, result.threads_injected);
      });
  std::printf("history: %zu runs, %zu raw datapoints, mean TTF %.1fs\n\n",
              history.num_runs(), history.num_samples(),
              history.mean_time_to_failure());

  // --- 2. The F2PM pipeline ----------------------------------------------
  core::PipelineOptions options;
  options.aggregation.window_seconds = args.get_double("window", 30.0);
  options.models = {"linear", "m5p", "reptree", "lasso"};
  options.lasso_predictor_lambdas = {1e0, 1e4, 1e9};
  const core::PipelineResult result = core::run_pipeline(history, options);

  // --- 3. Reports ---------------------------------------------------------
  std::cout << '\n'
            << core::render_selection_curve(*result.selection) << '\n'
            << core::render_selected_weights(*result.selection, 1e9) << '\n'
            << core::render_smae_table(result) << '\n'
            << core::render_training_time_table(result) << '\n'
            << core::render_full_scorecard(result.using_all_features,
                                           "Full scorecard (all parameters)")
            << '\n';

  // Pick the winner by S-MAE, as the paper's user would.
  const core::ModelOutcome* best = nullptr;
  for (const auto& outcome : result.using_all_features) {
    if (best == nullptr || outcome.report.soft_mae < best->report.soft_mae) {
      best = &outcome;
    }
  }
  std::printf("best model by S-MAE: %s (%.2fs)\n",
              core::display_model_name(best->display_name).c_str(),
              best->report.soft_mae);
  return 0;
}
