// FMC/FMS deployment demo (paper §III-E): the Feature Monitor Server runs
// where the training happens; the thin Feature Monitor Client runs on the
// monitored machine and streams datapoints over a real TCP connection
// (loopback here — the code path is identical across machines).
//
// Phase 1 — collection: a simulated TPC-W campaign streams every monitor
// datapoint through the FMC (opening with a Hello handshake; hello-less
// legacy clients still work), the FMS reassembles the DataHistory, and
// the pipeline trains on it — byte-identical to training on the local
// history.
//
// Phase 2 — deployment: the trained model is published to the f2pm_serve
// PredictionService and a fresh monitored run streams through it, printing
// the RTTF predictions the server sends back.
//
// Usage: remote_monitoring [--runs=N] [--seed=S]
#include <cstdio>
#include <memory>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "ml/linear_regression.hpp"
#include "net/fmc.hpp"
#include "net/fms.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"
#include "sim/campaign.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace f2pm;

  util::Config args;
  args.apply_args(argc, argv);
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  // The FMS side: binds an ephemeral loopback port, collects on a
  // background thread.
  net::FeatureMonitorServer fms;
  std::printf("FMS listening on 127.0.0.1:%u\n", fms.port());

  // The FMC side: simulate runs-to-failure and stream every datapoint.
  sim::CampaignConfig campaign;
  campaign.num_runs = runs;
  campaign.seed = seed;
  campaign.workload.num_browsers = 40;
  campaign.use_synthetic_injectors = true;

  net::FeatureMonitorClient fmc("127.0.0.1", fms.port());
  fmc.hello("training-vm");  // optional: legacy clients skip this
  util::Rng seed_rng(campaign.seed);
  for (std::size_t r = 0; r < runs; ++r) {
    const sim::RunResult result = sim::execute_run(campaign, seed_rng());
    for (const auto& sample : result.run.samples) fmc.send(sample);
    if (result.run.failed) fmc.report_failure(result.run.fail_time);
    std::printf("  streamed run %zu: %zu datapoints, ttf %.1fs\n", r,
                result.run.samples.size(), result.run.fail_time);
  }
  fmc.finish();
  std::printf("FMC sent %zu datapoints total\n\n", fmc.datapoints_sent());

  // Train on what arrived over the wire.
  const data::DataHistory history = fms.wait_and_take_history();
  std::printf("FMS reassembled %zu runs / %zu datapoints from '%s'\n",
              history.num_runs(), history.num_samples(),
              fms.client_id().c_str());

  core::PipelineOptions options;
  options.models = {"linear", "reptree", "m5p"};
  options.run_feature_selection = false;
  const core::PipelineResult result = core::run_pipeline(history, options);
  std::printf("%s\n",
              core::render_full_scorecard(result.using_all_features,
                                          "Models trained on streamed data")
                  .c_str());

  // Phase 2: serve the model and stream a fresh run against it live.
  auto model = std::make_shared<ml::LinearRegression>();
  model->fit(result.train.x, result.train.y);
  auto store = std::make_shared<serve::ModelStore>();
  store->swap(model);
  serve::ServiceOptions serve_options;
  serve_options.aggregation = options.aggregation;
  serve::PredictionService service(serve_options, store);
  std::printf("prediction service on 127.0.0.1:%u, streaming a fresh run\n",
              service.port());

  const sim::RunResult fresh = sim::execute_run(campaign, seed_rng());
  net::FeatureMonitorClient live("127.0.0.1", service.port());
  live.hello("deployed-vm");
  std::size_t printed = 0;
  for (const auto& sample : fresh.run.samples) {
    live.send(sample);
    while (auto prediction = live.poll_prediction()) {
      if (++printed <= 8) {
        std::printf("  t=%7.1fs  predicted rttf %8.1fs  actual %8.1fs%s\n",
                    prediction->window_end, prediction->rttf,
                    fresh.run.fail_time - prediction->window_end,
                    prediction->alarm ? "  [rejuvenate]" : "");
      }
    }
  }
  live.finish();
  while (auto prediction = live.wait_prediction()) ++printed;
  std::printf("received %zu live predictions for %zu datapoints\n", printed,
              live.datapoints_sent());
  service.stop();
  return 0;
}
