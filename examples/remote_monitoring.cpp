// FMC/FMS deployment demo (paper §III-E): the Feature Monitor Server runs
// where the training happens; the thin Feature Monitor Client runs on the
// monitored machine and streams datapoints over a real TCP connection
// (loopback here — the code path is identical across machines).
//
// The monitored "machine" is a simulated TPC-W run; every datapoint the
// in-sim monitor produces is forwarded through the FMC, and the crash is
// reported as a fail event. The FMS reassembles the DataHistory and the
// pipeline trains on it — byte-identical to training on the local history.
//
// Usage: remote_monitoring [--runs=N] [--seed=S]
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "net/fmc.hpp"
#include "net/fms.hpp"
#include "sim/campaign.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace f2pm;

  util::Config args;
  args.apply_args(argc, argv);
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  // The FMS side: binds an ephemeral loopback port, collects on a
  // background thread.
  net::FeatureMonitorServer fms;
  std::printf("FMS listening on 127.0.0.1:%u\n", fms.port());

  // The FMC side: simulate runs-to-failure and stream every datapoint.
  sim::CampaignConfig campaign;
  campaign.num_runs = runs;
  campaign.seed = seed;
  campaign.workload.num_browsers = 40;
  campaign.use_synthetic_injectors = true;

  net::FeatureMonitorClient fmc("127.0.0.1", fms.port());
  util::Rng seed_rng(campaign.seed);
  for (std::size_t r = 0; r < runs; ++r) {
    const sim::RunResult result = sim::execute_run(campaign, seed_rng());
    for (const auto& sample : result.run.samples) fmc.send(sample);
    if (result.run.failed) fmc.report_failure(result.run.fail_time);
    std::printf("  streamed run %zu: %zu datapoints, ttf %.1fs\n", r,
                result.run.samples.size(), result.run.fail_time);
  }
  fmc.finish();
  std::printf("FMC sent %zu datapoints total\n\n", fmc.datapoints_sent());

  // Train on what arrived over the wire.
  const data::DataHistory history = fms.wait_and_take_history();
  std::printf("FMS reassembled %zu runs / %zu datapoints\n",
              history.num_runs(), history.num_samples());

  core::PipelineOptions options;
  options.models = {"linear", "reptree", "m5p"};
  options.run_feature_selection = false;
  const core::PipelineResult result = core::run_pipeline(history, options);
  std::printf("%s\n",
              core::render_full_scorecard(result.using_all_features,
                                          "Models trained on streamed data")
                  .c_str());
  return 0;
}
