// The paper's §IV study, end to end: a multi-run TPC-W monitoring campaign
// on the simulated testbed (load-coupled memory leaks + unterminated
// threads injected by the Home interaction), followed by the full F2PM
// pipeline with all six ML methods and both feature sets, printing every
// table of the evaluation section.
//
// Usage: tpcw_campaign [--runs=N] [--browsers=N] [--window=S] [--seed=S]
//                      [--svm=0|1]  (SVM/LS-SVM dominate the runtime)
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "sim/campaign.hpp"
#include "util/config.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace f2pm;

  util::Config args;
  args.apply_args(argc, argv);

  sim::CampaignConfig campaign;
  campaign.num_runs = static_cast<std::size_t>(args.get_int("runs", 30));
  campaign.seed = static_cast<std::uint64_t>(args.get_int("seed", 2015));
  campaign.workload.num_browsers =
      static_cast<std::size_t>(args.get_int("browsers", 80));

  util::WallTimer campaign_timer;
  std::printf("running %zu TPC-W runs-to-failure (%zu emulated browsers)\n",
              campaign.num_runs, campaign.workload.num_browsers);
  const data::DataHistory history = sim::run_campaign(
      campaign, [](std::size_t run, const sim::RunResult& result) {
        std::printf(
            "  run %2zu: ttf %7.1fs  %4zu datapoints  intensity %.2f  "
            "%5zu leaks  %3zu threads  %6zu requests\n",
            run, result.run.fail_time, result.run.samples.size(),
            result.intensity, result.leaks_injected, result.threads_injected,
            result.requests_completed);
      });
  std::printf(
      "campaign done in %.1fs wall: %zu runs, %zu datapoints, mean TTF "
      "%.1fs\n\n",
      campaign_timer.elapsed_seconds(), history.num_runs(),
      history.num_samples(), history.mean_time_to_failure());

  core::PipelineOptions options;
  options.aggregation.window_seconds = args.get_double("window", 30.0);
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 2015));
  if (!args.get_bool("svm", true)) {
    options.models = {"linear", "m5p", "reptree", "lasso"};
  }

  util::WallTimer pipeline_timer;
  const core::PipelineResult result = core::run_pipeline(history, options);
  std::printf("pipeline done in %.1fs wall (train %zu / validation %zu)\n\n",
              pipeline_timer.elapsed_seconds(), result.train.num_rows(),
              result.validation.num_rows());

  std::cout << core::render_selection_curve(*result.selection) << '\n'
            << core::render_selected_weights(*result.selection, 1e9) << '\n'
            << core::render_smae_table(result) << '\n'
            << core::render_training_time_table(result) << '\n'
            << core::render_validation_time_table(result) << '\n'
            << core::render_full_scorecard(result.using_all_features,
                                           "Full scorecard (all parameters)")
            << '\n'
            << core::render_full_scorecard(
                   result.using_selected_features,
                   "Full scorecard (Lasso-selected parameters)");

  // Dump predicted-vs-real series (the paper's Fig. 5 scatter data).
  const std::string fig5_path = args.get_string("fig5", "");
  if (!fig5_path.empty()) {
    std::ofstream out(fig5_path);
    out << "model,real_rttf,predicted_rttf\n";
    for (const auto& outcome : result.using_all_features) {
      for (std::size_t i = 0; i < outcome.predicted.size(); ++i) {
        out << outcome.display_name << ',' << result.validation.y[i] << ','
            << outcome.predicted[i] << '\n';
      }
    }
    std::printf("\nwrote Fig. 5 scatter data to %s\n", fig5_path.c_str());
  }
  return 0;
}
