// The full continuous-learning loop, end to end: a simulated TPC-W
// monitoring campaign streams crash-labeled runs through an FMC session
// into the f2pm_serve prediction service, whose run_sink feeds the
// ContinuousTrainer (src/learn). The service starts with NO model; the
// trainer bootstraps one from the first exported runs and hot-swaps it in.
// Mid-campaign the anomaly parameters shift (sim::CampaignShift: leaks get
// 4x larger), the live model's rolling Soft-MAE degrades, the drift
// verdict fires, and the trainer retrains on the sliding corpus and
// publishes a new archive — adopted by the service without a restart.
//
// Usage: continuous_learning [--runs=N] [--shift-after=K] [--seed=S]
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "learn/trainer.hpp"
#include "net/fmc.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"
#include "sim/campaign.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace f2pm;

  util::Config args;
  args.apply_args(argc, argv);
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 24));
  const auto shift_after =
      static_cast<std::size_t>(args.get_int("shift-after", 12));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2015));

  // ---- the drifting workload ---------------------------------------------
  sim::CampaignConfig campaign;
  campaign.num_runs = 1;  // runs are executed one at a time below
  campaign.seed = seed;
  campaign.workload.num_browsers = 60;
  // The mid-campaign regime change: leaks get an order of magnitude
  // bigger and hotter, collapsing time-to-failure far below anything the
  // pre-shift model saw — it over-predicts RTTF until the retrain lands.
  sim::CampaignShift shift;
  shift.after_run = shift_after;
  shift.home_anomalies = campaign.home_anomalies;
  shift.home_anomalies.leak_min_kb *= 10.0;
  shift.home_anomalies.leak_max_kb *= 10.0;
  shift.home_anomalies.thread_probability = 0.3;
  shift.intensity_min = 2.0;
  shift.intensity_max = 4.0;
  campaign.shift = shift;

  // ---- serve + learn, wired through run_sink ------------------------------
  const std::string archive = "continuous_learning_model.bin";
  std::remove(archive.c_str());
  auto store = std::make_shared<serve::ModelStore>();
  store->watch_file(archive);

  learn::TrainerOptions trainer_options;
  trainer_options.model_name = "reptree";
  trainer_options.archive_path = archive;
  trainer_options.min_corpus_runs = 4;
  trainer_options.candidate_min_windows = 12;
  // 10 s windows (vs the paper's 30 s offline default): post-shift runs
  // die in ~a minute, and drift can only be seen through the windows the
  // shifted runs contribute to the rolling horizon.
  trainer_options.aggregation.window_seconds = 10.0;
  trainer_options.drift.horizon = 40;
  // Verdicts are deliberately cheap to fire: a spurious one only costs a
  // retrain, because a candidate still has to beat the live model in
  // shadow scoring before it can publish. So a modest absolute floor +
  // short debounce reacts fast, and the publish margin does the guarding.
  trainer_options.drift.degrade_ratio = 1.5;
  trainer_options.drift.min_smae_seconds = 60.0;
  trainer_options.drift.consecutive = 2;
  trainer_options.corpus.max_runs = 32;
  learn::ContinuousTrainer trainer(*store, trainer_options);

  serve::ServiceOptions service_options;
  service_options.model_poll_seconds = 0.01;
  service_options.run_sink = trainer.sink();
  service_options.aggregation = trainer_options.aggregation;  // must match
  serve::PredictionService service(service_options, store);
  std::printf("prediction service on port %u, model-less; trainer watches "
              "the run stream (drift: S-MAE > %.1fx baseline for %zu runs)\n",
              service.port(), trainer_options.drift.degrade_ratio,
              trainer_options.drift.consecutive);

  net::FeatureMonitorClient client("127.0.0.1", service.port());
  client.hello("continuous-learning");

  // ---- the campaign: simulate, stream, learn ------------------------------
  util::Rng seeder(seed);
  std::size_t predictions = 0;
  for (std::size_t r = 0; r < runs; ++r) {
    const sim::RunResult result =
        sim::execute_run(sim::effective_config(campaign, r), seeder());
    for (const data::RawDatapoint& sample : result.run.samples) {
      client.send(sample);
      while (client.poll_prediction().has_value()) ++predictions;
    }
    client.report_failure(result.run.fail_time);

    // Run export is asynchronous: wait for the ingest, then let the
    // trainer finish shadow scoring / any retrain it scheduled.
    const std::size_t expected = r + 1;
    while (true) {
      const learn::TrainerStats s = trainer.stats();
      if (s.runs_ingested + s.runs_rejected >= expected) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    trainer.drain();

    const learn::TrainerStats stats = trainer.stats();
    std::printf(
        "run %2zu%s: fail at %7.0fs | corpus %2zu runs | live S-MAE %7.2fs "
        "(baseline %6.2fs) | %s | v%u%s\n",
        r + 1, r >= shift_after ? " [shifted]" : "          ",
        result.run.fail_time, stats.corpus.runs, stats.live_smae,
        stats.baseline_smae,
        stats.drift_active ? "DRIFT"
                           : (stats.live_window_count > 0 ? "ok   " : "--   "),
        service.stats().model_version,
        stats.publish_pending ? " (swap pending)" : "");
  }

  // Let a trailing publish land before reading the final state.
  for (int i = 0; i < 100 && trainer.stats().publish_pending; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const learn::TrainerStats final_stats = trainer.stats();
  std::printf(
      "\ncampaign done: %zu runs (%zu predictions served live)\n"
      "  bootstrap + drift publishes: %llu (last trigger: %s)\n"
      "  drift verdicts: %llu | retrains: %llu completed, %llu failed\n"
      "  served model version: %u (hot-swapped, zero restarts)\n",
      runs, predictions,
      static_cast<unsigned long long>(final_stats.publishes),
      final_stats.last_publish_trigger.empty()
          ? "none"
          : final_stats.last_publish_trigger.c_str(),
      static_cast<unsigned long long>(final_stats.drift_verdicts),
      static_cast<unsigned long long>(final_stats.retrains_completed),
      static_cast<unsigned long long>(final_stats.retrains_failed),
      service.stats().model_version);

  client.finish();
  service.stop();
  trainer.stop();
  std::remove(archive.c_str());
  return 0;
}
