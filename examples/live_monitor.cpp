// Live host monitoring: the fully application-agnostic deployment the
// paper claims ("F2PM can be used out of the box, without any need for
// manual modification/intervention in the applications").
//
// The ProcFeatureSource samples THIS machine's /proc files at the FMC's
// ~1.5 s cadence and streams the datapoints through the real TCP FMC/FMS
// pair; the received history is then pushed through the aggregation
// front-end to show the derived metrics a model would consume. No process
// on the host is instrumented or even aware of being watched.
//
// With --model=path/to/archive (written by ml::save_model) the stream is
// served by the f2pm_serve PredictionService instead of the plain FMS,
// and each closed aggregation window prints the RTTF the server predicts
// for this host.
//
// Usage: live_monitor [--seconds=N] [--interval=S] [--model=PATH]
//                      [--metrics-port=P]   (-1 = off; only with --model)
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "data/aggregation.hpp"
#include "net/fmc.hpp"
#include "net/fms.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"
#include "sysmon/proc_source.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace f2pm;

  util::Config args;
  args.apply_args(argc, argv);
  const double seconds = args.get_double("seconds", 6.0);
  const double interval = args.get_double("interval", 1.5);
  const std::string model_path = args.get_string("model", "");
  const int metrics_port = static_cast<int>(args.get_int("metrics-port", -1));

  sysmon::ProcFeatureSource source;
  if (!source.available()) {
    std::printf("/proc is not readable on this host; nothing to monitor\n");
    return 0;
  }

  // With a model the serving side is the multi-session PredictionService;
  // without one it is the legacy collection-only FMS.
  std::optional<net::FeatureMonitorServer> fms;
  std::unique_ptr<serve::PredictionService> service;
  std::uint16_t port = 0;
  if (!model_path.empty()) {
    auto store = std::make_shared<serve::ModelStore>();
    try {
      store->load_file(model_path);
    } catch (const std::exception& error) {
      std::printf("cannot serve --model=%s: %s\n", model_path.c_str(),
                  error.what());
      return 1;
    }
    serve::ServiceOptions options;
    options.aggregation.window_seconds = interval * 2.0;
    options.metrics_port = metrics_port;
    service = std::make_unique<serve::PredictionService>(options, store);
    port = service->port();
    std::printf("serving %s (model v%u)\n", model_path.c_str(),
                store->version());
    if (service->metrics_port() != 0) {
      std::printf("metrics: curl http://127.0.0.1:%u/metrics\n",
                  service->metrics_port());
    }
  } else {
    fms.emplace();
    port = fms->port();
  }

  net::FeatureMonitorClient fmc("127.0.0.1", port);
  fmc.hello("live-monitor-host");
  std::printf("monitoring this host for %.0fs (FMC -> 127.0.0.1:%u)\n\n",
              seconds, port);
  std::printf("%-8s%-12s%-12s%-12s%-10s%-10s%-10s%-10s\n", "t_s",
              "mem_used", "mem_free", "mem_cached", "threads", "cpu_us",
              "cpu_sys", "cpu_idle");

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  std::size_t predictions = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const data::RawDatapoint sample = source.sample();
    fmc.send(sample);
    std::printf("%-8.1f%-12.0f%-12.0f%-12.0f%-10.0f%-10.1f%-10.1f%-10.1f\n",
                sample.tgen, sample[data::FeatureId::kMemUsed],
                sample[data::FeatureId::kMemFree],
                sample[data::FeatureId::kMemCached],
                sample[data::FeatureId::kNumThreads],
                sample[data::FeatureId::kCpuUser],
                sample[data::FeatureId::kCpuSystem],
                sample[data::FeatureId::kCpuIdle]);
    while (auto prediction = fmc.poll_prediction()) {
      ++predictions;
      std::printf("        >> server predicts rttf %.0fs for window ending "
                  "t=%.1fs%s\n",
                  prediction->rttf, prediction->window_end,
                  prediction->alarm ? "  [rejuvenate]" : "");
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
  fmc.finish();

  if (service) {
    while (auto prediction = fmc.wait_prediction()) ++predictions;
    service->stop();
    std::printf("\nprediction service returned %zu predictions over TCP\n",
                predictions);
    return 0;
  }

  const data::DataHistory history = fms->wait_and_take_history();
  std::printf("\nFMS received %zu datapoints over TCP\n",
              history.num_samples());

  // Push the stream through the aggregation front-end. The healthy host
  // never "fails", so the run is included explicitly — its windows come
  // back flagged censored (rttf is only "time until monitoring stopped"),
  // which keeps them out of any training label while the display-side
  // feature statistics below stay available.
  data::AggregationOptions aggregation;
  aggregation.window_seconds = interval * 2.0;
  aggregation.include_unfailed_runs = true;
  const auto points = data::aggregate(history, aggregation);
  std::size_t censored = 0;
  for (const auto& point : points) censored += point.censored ? 1 : 0;
  std::printf("aggregated into %zu windows (%zu censored, excluded from "
              "training labels); derived metrics of the last:\n",
              points.size(), censored);
  if (!points.empty()) {
    const auto& last = points.back();
    std::printf("  window [%.1f, %.1f)s: mem_used slope %.1f KiB/sample, "
                "intergen %.2fs\n",
                last.window_start, last.window_end,
                last.slopes[static_cast<std::size_t>(
                    data::FeatureId::kMemUsed)],
                last.intergen_mean);
  }
  return 0;
}
