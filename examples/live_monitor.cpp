// Live host monitoring: the fully application-agnostic deployment the
// paper claims ("F2PM can be used out of the box, without any need for
// manual modification/intervention in the applications").
//
// The ProcFeatureSource samples THIS machine's /proc files at the FMC's
// ~1.5 s cadence and streams the datapoints through the real TCP FMC/FMS
// pair; the received history is then pushed through the aggregation
// front-end to show the derived metrics a model would consume. No process
// on the host is instrumented or even aware of being watched.
//
// Usage: live_monitor [--seconds=N] [--interval=S]
#include <chrono>
#include <cstdio>
#include <thread>

#include "data/aggregation.hpp"
#include "net/fmc.hpp"
#include "net/fms.hpp"
#include "sysmon/proc_source.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace f2pm;

  util::Config args;
  args.apply_args(argc, argv);
  const double seconds = args.get_double("seconds", 6.0);
  const double interval = args.get_double("interval", 1.5);

  sysmon::ProcFeatureSource source;
  if (!source.available()) {
    std::printf("/proc is not readable on this host; nothing to monitor\n");
    return 0;
  }

  net::FeatureMonitorServer fms;
  net::FeatureMonitorClient fmc("127.0.0.1", fms.port());
  std::printf("monitoring this host for %.0fs (FMC -> 127.0.0.1:%u)\n\n",
              seconds, fms.port());
  std::printf("%-8s%-12s%-12s%-12s%-10s%-10s%-10s%-10s\n", "t_s",
              "mem_used", "mem_free", "mem_cached", "threads", "cpu_us",
              "cpu_sys", "cpu_idle");

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    const data::RawDatapoint sample = source.sample();
    fmc.send(sample);
    std::printf("%-8.1f%-12.0f%-12.0f%-12.0f%-10.0f%-10.1f%-10.1f%-10.1f\n",
                sample.tgen, sample[data::FeatureId::kMemUsed],
                sample[data::FeatureId::kMemFree],
                sample[data::FeatureId::kMemCached],
                sample[data::FeatureId::kNumThreads],
                sample[data::FeatureId::kCpuUser],
                sample[data::FeatureId::kCpuSystem],
                sample[data::FeatureId::kCpuIdle]);
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
  fmc.finish();

  const data::DataHistory history = fms.wait_and_take_history();
  std::printf("\nFMS received %zu datapoints over TCP\n",
              history.num_samples());

  // Push the stream through the aggregation front-end (the healthy host
  // never "fails", so the run is included explicitly).
  data::AggregationOptions aggregation;
  aggregation.window_seconds = interval * 2.0;
  aggregation.include_unfailed_runs = true;
  const auto points = data::aggregate(history, aggregation);
  std::printf("aggregated into %zu windows; derived metrics of the last:\n",
              points.size());
  if (!points.empty()) {
    const auto& last = points.back();
    std::printf("  window [%.1f, %.1f)s: mem_used slope %.1f KiB/sample, "
                "intergen %.2fs\n",
                last.window_start, last.window_end,
                last.slopes[static_cast<std::size_t>(
                    data::FeatureId::kMemUsed)],
                last.intergen_mean);
  }
  return 0;
}
