// f2pm_cli — command-line driver covering the full framework lifecycle
// with persisted artifacts, so each phase can run on a different machine
// (collect on the testbed, train where the GPUs^W cores are, predict at
// the edge):
//
//   f2pm_cli campaign --runs=N --out=history.bin [--seed=S] [--csv=1]
//       run the simulated TPC-W campaign and save the monitoring history
//   f2pm_cli train --history=history.bin --model=reptree --out=model.bin
//       aggregate, split, train one model, print its scorecard, save it
//   f2pm_cli evaluate --history=history.bin
//       the full pipeline: all six methods, both feature sets, all tables
//   f2pm_cli predict --model=model.bin --history=history.bin [--run=K]
//       stream run K through the OnlinePredictor and print RTTF
//       predictions next to the truth
//   f2pm_cli export --history=history.bin --out=dataset.arff
//       aggregate and export the labeled training set as WEKA ARFF, to
//       cross-check results against the paper's original toolchain
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "data/arff.hpp"
#include "core/report.hpp"
#include "ml/metrics.hpp"
#include "ml/registry.hpp"
#include "sim/campaign.hpp"
#include "util/config.hpp"

namespace {

using namespace f2pm;

data::DataHistory load_history(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open history file: " + path);
  return data::DataHistory::load_binary(in);
}

int cmd_campaign(const util::Config& args) {
  const std::string out = args.get_string("out", "history.bin");
  sim::CampaignConfig config;
  config.num_runs = static_cast<std::size_t>(args.get_int("runs", 30));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2015));
  config.workload.num_browsers =
      static_cast<std::size_t>(args.get_int("browsers", 60));
  const data::DataHistory history = sim::run_campaign(
      config, [](std::size_t run, const sim::RunResult& result) {
        std::printf("  run %2zu: ttf %8.1fs, %5zu datapoints\n", run,
                    result.run.fail_time, result.run.samples.size());
      });
  if (args.get_bool("csv", false)) {
    std::ofstream file(out);
    history.save_csv(file);
  } else {
    std::ofstream file(out, std::ios::binary);
    history.save_binary(file);
  }
  std::printf("saved %zu runs / %zu datapoints to %s\n", history.num_runs(),
              history.num_samples(), out.c_str());
  return 0;
}

int cmd_train(const util::Config& args) {
  const data::DataHistory history =
      load_history(args.get_string("history", "history.bin"));
  const std::string name = args.get_string("model", "reptree");
  const std::string out = args.get_string("out", "model.bin");

  core::PipelineOptions options;
  options.aggregation.window_seconds = args.get_double("window", 30.0);
  options.train_fraction = args.get_double("train_fraction", 0.7);
  options.models = {name};
  options.run_feature_selection = false;
  options.model_params = args;  // forwards e.g. --svm.c=10
  const core::PipelineResult result = core::run_pipeline(history, options);
  std::cout << core::render_full_scorecard(result.using_all_features,
                                           "Trained model");

  auto model = ml::make_model(name, args);
  model->fit(result.train.x, result.train.y);
  std::ofstream file(out, std::ios::binary);
  ml::save_model(*model, file);
  std::printf("saved fitted %s (%zu inputs) to %s\n", name.c_str(),
              model->num_inputs(), out.c_str());
  return 0;
}

int cmd_evaluate(const util::Config& args) {
  const data::DataHistory history =
      load_history(args.get_string("history", "history.bin"));
  core::PipelineOptions options;
  options.aggregation.window_seconds = args.get_double("window", 30.0);
  if (!args.get_bool("svm", true)) {
    options.models = {"linear", "m5p", "reptree", "lasso"};
  }
  const core::PipelineResult result = core::run_pipeline(history, options);
  std::cout << core::render_selection_curve(*result.selection) << '\n'
            << core::render_smae_table(result) << '\n'
            << core::render_training_time_table(result) << '\n'
            << core::render_validation_time_table(result);
  return 0;
}

int cmd_predict(const util::Config& args) {
  std::ifstream model_file(args.get_string("model", "model.bin"),
                           std::ios::binary);
  if (!model_file) throw std::runtime_error("cannot open model file");
  const std::shared_ptr<ml::Regressor> model = ml::load_model(model_file);
  const data::DataHistory history =
      load_history(args.get_string("history", "history.bin"));
  const auto run_index =
      static_cast<std::size_t>(args.get_int("run", 0));
  if (run_index >= history.num_runs()) {
    throw std::runtime_error("run index out of range");
  }
  const data::Run& run = history.runs()[run_index];

  data::AggregationOptions aggregation;
  aggregation.window_seconds = args.get_double("window", 30.0);
  core::OnlinePredictor predictor(model, aggregation);
  std::printf("%-12s%-16s%-16s%-12s\n", "t_s", "predicted_rttf",
              "actual_rttf", "error_s");
  double mae = 0.0;
  std::size_t count = 0;
  const auto report = [&](const core::OnlinePrediction& prediction) {
    const double actual =
        run.failed ? run.fail_time - prediction.window_end : -1.0;
    const double error = actual >= 0.0 ? prediction.rttf - actual : 0.0;
    mae += std::abs(error);
    ++count;
    std::printf("%-12.1f%-16.1f%-16.1f%-12.1f\n", prediction.window_end,
                prediction.rttf, actual, error);
  };
  for (const auto& sample : run.samples) {
    if (const auto prediction = predictor.observe(sample)) {
      report(*prediction);
    }
  }
  // The stream ends mid-window more often than not; flush the open window
  // so the trailing samples still produce a final prediction.
  if (const auto prediction = predictor.flush()) report(*prediction);
  if (count > 0) {
    std::printf("\nMAE over %zu windows: %.1fs (model: %s)\n", count,
                mae / static_cast<double>(count), model->name().c_str());
  }
  return 0;
}

int cmd_export(const util::Config& args) {
  const data::DataHistory history =
      load_history(args.get_string("history", "history.bin"));
  data::AggregationOptions aggregation;
  aggregation.window_seconds = args.get_double("window", 30.0);
  const data::Dataset dataset =
      data::build_dataset(data::aggregate(history, aggregation));
  const std::string out = args.get_string("out", "dataset.arff");
  data::write_arff_file(out, dataset,
                        args.get_string("relation", "f2pm"));
  std::printf("exported %zu rows x %zu features (+rttf) to %s\n",
              dataset.num_rows(), dataset.num_features(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: f2pm_cli <campaign|train|evaluate|predict|export> "
                 "[--key=value ...]\n");
    return 2;
  }
  const std::string command = argv[1];
  f2pm::util::Config args;
  args.apply_args(argc, argv);
  try {
    if (command == "campaign") return cmd_campaign(args);
    if (command == "train") return cmd_train(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "predict") return cmd_predict(args);
    if (command == "export") return cmd_export(args);
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
