#include "ml/kernels.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include <sstream>

#include "linalg/cholesky.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

TEST(Kernels, LinearKernelIsDotProduct) {
  KernelParams params{.type = KernelType::kLinear};
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{3.0, -1.0};
  EXPECT_DOUBLE_EQ(kernel_value(params, a, b), 1.0);
}

TEST(Kernels, RbfKernelProperties) {
  KernelParams params{.type = KernelType::kRbf, .gamma = 0.5};
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{2.0, 0.0};
  // k(x, x) = 1; k decreases with distance; symmetric.
  EXPECT_DOUBLE_EQ(kernel_value(params, a, a), 1.0);
  EXPECT_DOUBLE_EQ(kernel_value(params, a, b), kernel_value(params, b, a));
  EXPECT_NEAR(kernel_value(params, a, b), std::exp(-0.5 * 5.0), 1e-12);
}

TEST(Kernels, PolynomialKernel) {
  KernelParams params{
      .type = KernelType::kPolynomial, .gamma = 1.0, .coef0 = 1.0,
      .degree = 2};
  const std::vector<double> a{1.0};
  const std::vector<double> b{2.0};
  EXPECT_DOUBLE_EQ(kernel_value(params, a, b), 9.0);  // (2 + 1)^2
}

TEST(Kernels, SizeMismatchThrows) {
  KernelParams params;
  params.gamma = 1.0;
  EXPECT_THROW(kernel_value(params, std::vector<double>{1.0},
                            std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Kernels, GammaAutoResolution) {
  KernelParams params;  // gamma = 0 -> auto
  EXPECT_DOUBLE_EQ(resolve_gamma(params, 25), 0.04);
  params.gamma = 2.0;
  EXPECT_DOUBLE_EQ(resolve_gamma(params, 25), 2.0);
}

TEST(Kernels, KernelMatrixSymmetricWithUnitDiagonal) {
  util::Rng rng(1);
  linalg::Matrix x(20, 3);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 3; ++c) x(r, c) = rng.uniform(-1.0, 1.0);
  }
  KernelParams params{.type = KernelType::kRbf, .gamma = 1.0};
  const linalg::Matrix k = kernel_matrix(params, x);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(k(i, i), 1.0);
    for (std::size_t j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(k(i, j), k(j, i));
    }
  }
}

TEST(Kernels, RbfKernelMatrixIsPositiveDefiniteOnDistinctPoints) {
  util::Rng rng(2);
  linalg::Matrix x(15, 2);
  for (std::size_t r = 0; r < 15; ++r) {
    x(r, 0) = rng.uniform(-3.0, 3.0);
    x(r, 1) = rng.uniform(-3.0, 3.0);
  }
  KernelParams params{.type = KernelType::kRbf, .gamma = 0.7};
  linalg::Matrix k = kernel_matrix(params, x);
  for (std::size_t i = 0; i < 15; ++i) k(i, i) += 1e-10;  // numeric slack
  EXPECT_TRUE(linalg::cholesky(k).has_value());
}

TEST(Kernels, CrossKernelMatchesElementwise) {
  util::Rng rng(3);
  linalg::Matrix a(5, 2);
  linalg::Matrix b(7, 2);
  for (std::size_t r = 0; r < 5; ++r) {
    a(r, 0) = rng.uniform(-1.0, 1.0);
    a(r, 1) = rng.uniform(-1.0, 1.0);
  }
  for (std::size_t r = 0; r < 7; ++r) {
    b(r, 0) = rng.uniform(-1.0, 1.0);
    b(r, 1) = rng.uniform(-1.0, 1.0);
  }
  KernelParams params{.type = KernelType::kRbf, .gamma = 0.3};
  const linalg::Matrix k = kernel_matrix(params, a, b);
  EXPECT_EQ(k.rows(), 5u);
  EXPECT_EQ(k.cols(), 7u);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_DOUBLE_EQ(k(i, j), kernel_value(params, a.row(i), b.row(j)));
    }
  }
}

TEST(Kernels, ParamsSerializationRoundTrip) {
  KernelParams params{
      .type = KernelType::kPolynomial, .gamma = 0.25, .coef0 = 2.0,
      .degree = 4};
  std::stringstream buffer;
  {
    util::BinaryWriter writer(buffer);
    params.save(writer);
  }
  util::BinaryReader reader(buffer);
  const KernelParams loaded = KernelParams::load(reader);
  EXPECT_EQ(loaded.type, params.type);
  EXPECT_DOUBLE_EQ(loaded.gamma, params.gamma);
  EXPECT_DOUBLE_EQ(loaded.coef0, params.coef0);
  EXPECT_EQ(loaded.degree, params.degree);
}

TEST(Kernels, ToStringNamesKernels) {
  EXPECT_EQ(KernelParams{.type = KernelType::kLinear}.to_string(), "linear");
  EXPECT_NE(KernelParams{}.to_string().find("rbf"), std::string::npos);
}

}  // namespace
}  // namespace f2pm::ml
