// CascadeRegressor: promotion-policy boundaries, screen-column fallbacks,
// bit-identical promoted predictions, archive roundtrip, registry wiring
// and the OnlinePredictor cascade path.
#include "ml/cascade.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>
#include <vector>

#include "core/online.hpp"
#include "data/aggregation.hpp"
#include "ml/gbdt.hpp"
#include "ml/linear_regression.hpp"
#include "ml/registry.hpp"
#include "ml/reptree.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

constexpr std::size_t kCols = 6;

/// Random design plus targets y ≈ 10·x0 spanning [0, 1000): plenty of rows
/// on both sides of any mid-range horizon.
struct Problem {
  linalg::Matrix x;
  std::vector<double> y;
};

Problem make_problem(std::size_t rows, std::uint64_t seed) {
  util::Rng rng(seed);
  Problem problem;
  problem.x = linalg::Matrix(rows, kCols);
  problem.y.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    problem.x(r, 0) = rng.uniform(0.0, 100.0);
    for (std::size_t c = 1; c < kCols; ++c) {
      problem.x(r, c) = rng.uniform(-5.0, 5.0);
    }
    problem.y[r] = 10.0 * problem.x(r, 0) + rng.normal(0.0, 3.0);
  }
  return problem;
}

std::unique_ptr<CascadeRegressor> fitted_cascade(const Problem& problem,
                                                 CascadeOptions options) {
  RepTreeOptions tree;
  tree.seed = 7;
  auto cascade = std::make_unique<CascadeRegressor>(
      std::make_unique<LinearRegression>(), std::make_unique<RepTree>(tree),
      options);
  cascade->fit(problem.x, problem.y);
  return cascade;
}

/// The full stage alone: a RepTree with the identical options and seed fit
/// on the same data is bit-identical to the cascade's internal full model.
std::unique_ptr<RepTree> reference_full(const Problem& problem) {
  RepTreeOptions tree;
  tree.seed = 7;
  auto model = std::make_unique<RepTree>(tree);
  model->fit(problem.x, problem.y);
  return model;
}

/// A fitted constant stage, for exact promotion-boundary arithmetic.
class ConstantStage final : public Regressor {
 public:
  explicit ConstantStage(double value) : value_(value) {}
  void fit(const linalg::Matrix&, std::span<const double>) override {}
  [[nodiscard]] double predict_row(std::span<const double>) const override {
    return value_;
  }
  [[nodiscard]] std::string name() const override { return "constant"; }
  [[nodiscard]] bool is_fitted() const override { return true; }
  [[nodiscard]] std::size_t num_inputs() const override { return kCols; }
  void save(util::BinaryWriter&) const override {}

 private:
  double value_;
};

TEST(Cascade, ScreenExactlyAtHorizonIsNotPromoted) {
  // Constant stages make the boundary exact: screen == full == 50, so the
  // calibrated margin is 0 and promotion hinges on the strict comparison
  // "screened RTTF below the horizon".
  const Problem problem = make_problem(40, 3);
  CascadeOptions at_horizon;
  at_horizon.horizon_seconds = 50.0;
  CascadeRegressor cascade(std::make_unique<ConstantStage>(50.0),
                           std::make_unique<ConstantStage>(50.0), at_horizon);
  cascade.fit(problem.x, problem.y);
  EXPECT_DOUBLE_EQ(cascade.margin(), 0.0);
  const auto traced = cascade.predict_row_traced(problem.x.row(0));
  EXPECT_DOUBLE_EQ(traced.screen_rttf, 50.0);
  EXPECT_FALSE(traced.promoted);
  EXPECT_DOUBLE_EQ(traced.rttf, 50.0);

  CascadeOptions above_horizon = at_horizon;
  above_horizon.horizon_seconds = 50.5;
  CascadeRegressor promoting(std::make_unique<ConstantStage>(50.0),
                             std::make_unique<ConstantStage>(50.0),
                             above_horizon);
  promoting.fit(problem.x, problem.y);
  EXPECT_TRUE(promoting.predict_row_traced(problem.x.row(0)).promoted);
}

TEST(Cascade, PromotedPredictionsAreBitIdenticalToFullModel) {
  const Problem problem = make_problem(300, 11);
  CascadeOptions options;
  options.horizon_seconds = 400.0;
  const auto cascade = fitted_cascade(problem, options);
  const auto reference = reference_full(problem);

  const Problem probes = make_problem(128, 12);
  std::vector<std::uint8_t> promoted;
  const std::vector<double> predicted =
      cascade->predict_traced(probes.x, &promoted);
  const std::vector<double> full_only = reference->predict(probes.x);
  ASSERT_EQ(promoted.size(), probes.x.rows());

  std::size_t promoted_count = 0;
  for (std::size_t r = 0; r < probes.x.rows(); ++r) {
    if (promoted[r] != 0) {
      ++promoted_count;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(predicted[r]),
                std::bit_cast<std::uint64_t>(full_only[r]))
          << "promoted row " << r;
    }
    // Batched partitioned predict must equal the row-by-row path bitwise.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(predicted[r]),
              std::bit_cast<std::uint64_t>(
                  cascade->predict_row(probes.x.row(r))))
        << "row " << r;
  }
  // The sweep spans RTTF 0..1000 with a 400 s horizon: both routes happen.
  EXPECT_GT(promoted_count, 0u);
  EXPECT_LT(promoted_count, probes.x.rows());
}

TEST(Cascade, NearFailureRowsAreAlwaysPromotedOnTrainingData) {
  // band_quantile = 1 calibrates the margin over the whole observed
  // screen-vs-full band: every training row the full model places below
  // the horizon must take the full-model route.
  const Problem problem = make_problem(300, 21);
  CascadeOptions options;
  options.horizon_seconds = 350.0;
  options.band_quantile = 1.0;
  const auto cascade = fitted_cascade(problem, options);
  const auto reference = reference_full(problem);

  std::vector<std::uint8_t> promoted;
  (void)cascade->predict_traced(problem.x, &promoted);
  const std::vector<double> full_only = reference->predict(problem.x);
  for (std::size_t r = 0; r < problem.x.rows(); ++r) {
    if (full_only[r] < options.horizon_seconds) {
      EXPECT_NE(promoted[r], 0) << "near-failure row " << r << " screened out";
    }
  }
}

TEST(Cascade, EmptyLassoSelectionFallsBackToFullRowScreen) {
  const Problem problem = make_problem(200, 31);
  CascadeOptions options;
  options.horizon_seconds = 300.0;
  options.screen_lasso_lambda = 1e18;  // zeroes every coefficient
  const auto cascade = fitted_cascade(problem, options);
  EXPECT_TRUE(cascade->screen_columns().empty());
  EXPECT_EQ(cascade->screen().num_inputs(), kCols);
  // Still a working cascade.
  (void)cascade->predict(problem.x);
}

TEST(Cascade, LassoSelectionShrinksTheScreen) {
  const Problem problem = make_problem(200, 41);
  CascadeOptions options;
  options.horizon_seconds = 300.0;
  // y depends on x0 with slope 10 over [0,100]: a mid-strength λ keeps x0
  // and drops the noise columns.
  options.screen_lasso_lambda = 1e5;
  const auto cascade = fitted_cascade(problem, options);
  ASSERT_FALSE(cascade->screen_columns().empty());
  EXPECT_LT(cascade->screen_columns().size(), kCols);
  EXPECT_EQ(cascade->screen().num_inputs(), cascade->screen_columns().size());
  EXPECT_EQ(cascade->screen_columns().front(), 0u);
}

TEST(Cascade, ScreenEqualsFullModelPromotionIsValueNeutral) {
  // Both stages the same model type and hyperparameters: whatever the
  // router decides, every prediction equals the full model bit for bit.
  const Problem problem = make_problem(250, 51);
  RepTreeOptions tree;
  tree.seed = 7;
  CascadeOptions options;
  options.horizon_seconds = 400.0;
  CascadeRegressor cascade(std::make_unique<RepTree>(tree),
                           std::make_unique<RepTree>(tree), options);
  cascade.fit(problem.x, problem.y);
  const auto reference = reference_full(problem);

  const Problem probes = make_problem(64, 52);
  const std::vector<double> predicted = cascade.predict(probes.x);
  const std::vector<double> expected = reference->predict(probes.x);
  for (std::size_t r = 0; r < probes.x.rows(); ++r) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(predicted[r]),
              std::bit_cast<std::uint64_t>(expected[r]));
  }
}

TEST(Cascade, SaveLoadRoundTripIsBitIdentical) {
  const Problem problem = make_problem(300, 61);
  CascadeOptions options;
  options.horizon_seconds = 420.0;
  options.screen_lasso_lambda = 1e5;
  const auto cascade = fitted_cascade(problem, options);

  std::stringstream buffer;
  save_model(*cascade, buffer);
  const auto loaded_base = load_model(buffer);
  ASSERT_NE(loaded_base, nullptr);
  EXPECT_EQ(loaded_base->name(), "cascade");
  const auto* loaded =
      dynamic_cast<const CascadeRegressor*>(loaded_base.get());
  ASSERT_NE(loaded, nullptr);
  EXPECT_DOUBLE_EQ(loaded->margin(), cascade->margin());
  EXPECT_EQ(loaded->screen_columns(), cascade->screen_columns());
  EXPECT_DOUBLE_EQ(loaded->options().horizon_seconds, 420.0);

  const Problem probes = make_problem(96, 62);
  std::vector<std::uint8_t> want_mask;
  std::vector<std::uint8_t> got_mask;
  const std::vector<double> want =
      cascade->predict_traced(probes.x, &want_mask);
  const std::vector<double> got = loaded->predict_traced(probes.x, &got_mask);
  EXPECT_EQ(want_mask, got_mask);
  for (std::size_t r = 0; r < probes.x.rows(); ++r) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(want[r]),
              std::bit_cast<std::uint64_t>(got[r]));
  }
}

TEST(Cascade, RegistryBuildsConfiguredStages) {
  util::Config params;
  params.set("cascade.horizon_seconds", "120");
  params.set("cascade.screen", "reptree");
  params.set("cascade.screen.reptree.max_depth", "2");
  params.set("cascade.full", "reptree");
  const auto model = make_model("cascade", params);
  auto* cascade = dynamic_cast<CascadeRegressor*>(model.get());
  ASSERT_NE(cascade, nullptr);
  EXPECT_EQ(cascade->name(), "cascade");
  EXPECT_DOUBLE_EQ(cascade->options().horizon_seconds, 120.0);
  EXPECT_EQ(cascade->screen().name(), "reptree");
  EXPECT_EQ(cascade->full().name(), "reptree");
  EXPECT_FALSE(cascade->is_fitted());

  const Problem problem = make_problem(120, 71);
  model->fit(problem.x, problem.y);
  EXPECT_TRUE(model->is_fitted());
  EXPECT_EQ(model->num_inputs(), kCols);
}

TEST(Cascade, GbdtFullStageBehindLinearScreenIsBitIdenticalWhenPromoted) {
  // A boosted full stage behind the cheap linear screen: promoted rows
  // must carry the exact GBDT prediction a full-only deployment of the
  // same hyperparameters would produce.
  const Problem problem = make_problem(300, 21);
  util::Config params;
  params.set("cascade.horizon_seconds", "400");
  params.set("cascade.screen", "linear");
  params.set("cascade.full", "gbdt");
  params.set("cascade.full.gbdt.n_rounds", "8");
  params.set("cascade.full.gbdt.learning_rate", "0.3");
  params.set("cascade.full.gbdt.max_leaves", "8");
  params.set("cascade.full.gbdt.min_instances", "2");
  params.set("cascade.full.gbdt.seed", "5");
  const auto model = make_model("cascade", params);
  auto* cascade = dynamic_cast<CascadeRegressor*>(model.get());
  ASSERT_NE(cascade, nullptr);
  EXPECT_EQ(cascade->full().name(), "gbdt");
  model->fit(problem.x, problem.y);

  GbdtOptions reference_options;
  reference_options.n_rounds = 8;
  reference_options.learning_rate = 0.3;
  reference_options.max_leaves = 8;
  reference_options.min_instances_per_leaf = 2;
  reference_options.seed = 5;
  GbdtRegressor reference(reference_options);
  reference.fit(problem.x, problem.y);

  const Problem probes = make_problem(128, 22);
  std::vector<std::uint8_t> promoted;
  const std::vector<double> predicted =
      cascade->predict_traced(probes.x, &promoted);
  const std::vector<double> full_only = reference.predict(probes.x);
  std::size_t promoted_count = 0;
  for (std::size_t r = 0; r < probes.x.rows(); ++r) {
    if (promoted[r] == 0) continue;
    ++promoted_count;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(predicted[r]),
              std::bit_cast<std::uint64_t>(full_only[r]))
        << "promoted row " << r;
  }
  EXPECT_GT(promoted_count, 0u);
  EXPECT_LT(promoted_count, probes.x.rows());
}

TEST(Cascade, RejectsBadOptions) {
  const auto make = [](CascadeOptions options) {
    return CascadeRegressor(std::make_unique<LinearRegression>(),
                            std::make_unique<LinearRegression>(), options);
  };
  CascadeOptions bad_quantile;
  bad_quantile.band_quantile = 1.5;
  EXPECT_THROW(make(bad_quantile), std::invalid_argument);
  CascadeOptions bad_horizon;
  bad_horizon.horizon_seconds = -1.0;
  EXPECT_THROW(make(bad_horizon), std::invalid_argument);
  EXPECT_THROW(CascadeRegressor(nullptr, std::make_unique<LinearRegression>(),
                                CascadeOptions{}),
               std::invalid_argument);

  CascadeOptions bad_column;
  bad_column.screen_columns = {kCols + 3};
  auto cascade = make(bad_column);
  const Problem problem = make_problem(50, 81);
  EXPECT_THROW(cascade.fit(problem.x, problem.y), std::invalid_argument);
}

TEST(Cascade, OnlinePredictorSurfacesPromotion) {
  // A steep leak: RTTF falls from ~1000 to ~0 across the run, so the
  // stream starts unpromoted and ends promoted.
  const Problem problem = make_problem(300, 91);
  linalg::Matrix x(problem.x.rows(), data::kInputCount);
  std::vector<double> y(problem.x.rows());
  util::Rng rng(92);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < data::kInputCount; ++c) {
      x(r, c) = rng.uniform(0.0, 1.0);
    }
    const std::size_t mem =
        static_cast<std::size_t>(data::FeatureId::kMemUsed);
    x(r, mem) = rng.uniform(0.0, 1000.0);
    y[r] = 1000.0 - x(r, mem);  // rttf falls as mem_used grows
  }
  CascadeOptions options;
  options.horizon_seconds = 300.0;
  auto cascade = std::make_shared<CascadeRegressor>(
      std::make_unique<LinearRegression>(),
      std::make_unique<LinearRegression>(), options);
  cascade->fit(x, y);

  data::AggregationOptions aggregation;
  aggregation.window_seconds = 10.0;
  core::OnlinePredictor predictor(cascade, aggregation);
  bool saw_unpromoted = false;
  bool saw_promoted = false;
  for (double t = 0.0; t < 1000.0; t += 2.0) {
    data::RawDatapoint sample;
    sample.tgen = t;
    sample[data::FeatureId::kMemUsed] = t;  // leak toward rttf 0
    if (const auto prediction = predictor.observe(sample)) {
      if (prediction->promoted) {
        saw_promoted = true;
        EXPECT_LT(prediction->rttf, 2.0 * options.horizon_seconds);
      } else {
        saw_unpromoted = true;
      }
    }
  }
  EXPECT_TRUE(saw_unpromoted);
  EXPECT_TRUE(saw_promoted);
}

}  // namespace
}  // namespace f2pm::ml
