#include <gtest/gtest.h>

#include <cmath>
#include <cmath>
#include <sstream>

#include "ml/lssvm.hpp"
#include "ml/metrics.hpp"
#include "ml/svr.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

/// Smooth non-linear target: y = sin(2x) + 0.5x over [-2, 2].
void make_sine_data(std::size_t n, double noise, util::Rng& rng,
                    linalg::Matrix& x, std::vector<double>& y) {
  x = linalg::Matrix(n, 1);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    y[i] = std::sin(2.0 * x(i, 0)) + 0.5 * x(i, 0) + rng.normal(0.0, noise);
  }
}

SvrOptions strong_svr() {
  // A deliberately strong configuration for accuracy-focused tests (the
  // library default mimics weaker WEKA-style settings).
  SvrOptions options;
  options.c = 50.0;
  options.epsilon = 0.01;
  options.kernel.gamma = 2.0;
  return options;
}

TEST(Svr, FitsNonlinearFunction) {
  util::Rng rng(1);
  linalg::Matrix x;
  std::vector<double> y;
  make_sine_data(300, 0.01, rng, x, y);
  KernelSvr model(strong_svr());
  model.fit(x, y);
  for (double probe : {-1.5, -0.5, 0.0, 0.7, 1.8}) {
    const double expected = std::sin(2.0 * probe) + 0.5 * probe;
    EXPECT_NEAR(model.predict_row(std::vector<double>{probe}), expected,
                0.15);
  }
}

TEST(Svr, WiderTubeYieldsFewerSupportVectors) {
  util::Rng rng(2);
  linalg::Matrix x;
  std::vector<double> y;
  make_sine_data(200, 0.05, rng, x, y);
  SvrOptions narrow = strong_svr();
  narrow.epsilon = 0.01;
  SvrOptions wide = strong_svr();
  wide.epsilon = 0.5;
  KernelSvr narrow_model(narrow);
  KernelSvr wide_model(wide);
  narrow_model.fit(x, y);
  wide_model.fit(x, y);
  EXPECT_LT(wide_model.num_support_vectors(),
            narrow_model.num_support_vectors());
}

TEST(Svr, ReportsIterationsAndRespectsCap) {
  util::Rng rng(3);
  linalg::Matrix x;
  std::vector<double> y;
  make_sine_data(150, 0.01, rng, x, y);
  SvrOptions capped = strong_svr();
  capped.max_iterations = 10;
  KernelSvr model(capped);
  model.fit(x, y);
  EXPECT_LE(model.iterations_used(), 10u);
}

TEST(Svr, InvalidOptionsRejected) {
  SvrOptions bad_c;
  bad_c.c = 0.0;
  EXPECT_THROW(KernelSvr{bad_c}, std::invalid_argument);
  SvrOptions bad_eps;
  bad_eps.epsilon = -0.1;
  EXPECT_THROW(KernelSvr{bad_eps}, std::invalid_argument);
}

TEST(Svr, SaveLoadPreservesPredictions) {
  util::Rng rng(4);
  linalg::Matrix x;
  std::vector<double> y;
  make_sine_data(150, 0.02, rng, x, y);
  KernelSvr model(strong_svr());
  model.fit(x, y);
  std::stringstream buffer;
  save_model(model, buffer);
  const auto loaded = load_model(buffer);
  EXPECT_EQ(loaded->name(), "svm");
  for (double probe : {-1.2, 0.0, 1.3}) {
    const std::vector<double> row{probe};
    EXPECT_NEAR(loaded->predict_row(row), model.predict_row(row), 1e-9);
  }
}

TEST(Svr, ConstantTargetPredictsConstant) {
  linalg::Matrix x(20, 1);
  for (std::size_t i = 0; i < 20; ++i) x(i, 0) = static_cast<double>(i);
  const std::vector<double> y(20, 4.0);
  KernelSvr model;
  model.fit(x, y);
  EXPECT_NEAR(model.predict_row(std::vector<double>{10.0}), 4.0, 1e-6);
}

TEST(Svr, ShrinkingAndTinyCacheMatchDenseSolver) {
  // The kernel cache and shrinking are pure optimizations: at a tight
  // solver tolerance both configurations must land on the same solution.
  // A generous cache with shrinking off reproduces the old dense-matrix
  // solver's trajectory; an 8 KB cache (a handful of rows at n = 120)
  // with shrinking on exercises eviction and gradient reconstruction.
  // The data is 3-dimensional so the kernel matrix is well conditioned and
  // the dual optimum is sharp — on near-singular problems two KKT-optimal
  // points can legitimately predict differently.
  util::Rng rng(31);
  const std::size_t n = 120;
  linalg::Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    x(i, 1) = rng.uniform(-2.0, 2.0);
    x(i, 2) = rng.uniform(-2.0, 2.0);
    y[i] = std::sin(x(i, 0)) + 0.3 * x(i, 1) * x(i, 1) - 0.5 * x(i, 2) +
           rng.normal(0.0, 0.05);
  }
  SvrOptions reference;
  reference.c = 5.0;
  reference.epsilon = 0.05;
  reference.kernel.gamma = 0.5;
  reference.tolerance = 1e-10;
  reference.cache_bytes = 1ull << 30;
  reference.shrinking = false;
  SvrOptions optimized = reference;
  optimized.cache_bytes = 8 * 1024;
  optimized.shrinking = true;
  KernelSvr reference_model(reference);
  KernelSvr optimized_model(optimized);
  reference_model.fit(x, y);
  optimized_model.fit(x, y);
  ASSERT_LT(reference_model.iterations_used(), reference.max_iterations);
  ASSERT_LT(optimized_model.iterations_used(), optimized.max_iterations);
  EXPECT_GT(optimized_model.cache_stats().evictions, 0u);
  util::Rng probe_rng(7);
  for (int probe = 0; probe < 100; ++probe) {
    const std::vector<double> row{probe_rng.uniform(-2.0, 2.0),
                                  probe_rng.uniform(-2.0, 2.0),
                                  probe_rng.uniform(-2.0, 2.0)};
    EXPECT_NEAR(optimized_model.predict_row(row),
                reference_model.predict_row(row), 1e-8);
  }
}

TEST(Svr, CacheStatsReportedAndBounded) {
  util::Rng rng(32);
  linalg::Matrix x;
  std::vector<double> y;
  make_sine_data(150, 0.02, rng, x, y);
  SvrOptions options = strong_svr();
  options.cache_bytes = 8 * 1024;  // ~6 rows at n = 150
  KernelSvr model(options);
  model.fit(x, y);
  const KernelCacheStats& stats = model.cache_stats();
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(stats.peak_bytes, options.cache_bytes);
  EXPECT_EQ(stats.budget_bytes, options.cache_bytes);
}

TEST(Svr, BatchPredictMatchesRowPredict) {
  util::Rng rng(33);
  linalg::Matrix x;
  std::vector<double> y;
  make_sine_data(150, 0.02, rng, x, y);
  KernelSvr model(strong_svr());
  model.fit(x, y);
  linalg::Matrix probes(40, 1);
  for (std::size_t i = 0; i < probes.rows(); ++i) {
    probes(i, 0) = rng.uniform(-2.0, 2.0);
  }
  const std::vector<double> batched = model.predict(probes);
  ASSERT_EQ(batched.size(), probes.rows());
  for (std::size_t i = 0; i < probes.rows(); ++i) {
    EXPECT_NEAR(batched[i], model.predict_row(probes.row(i)), 1e-9);
  }
}

TEST(Svr, SaveLoadRoundTripsExtremeFeatureScales) {
  // A feature with a huge mean and a tiny spread breaks the old
  // refit-on-synthetic-rows deserialization (catastrophic cancellation);
  // from_moments must reproduce predictions exactly.
  util::Rng rng(34);
  const std::size_t n = 60;
  linalg::Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    x(i, 1) = 1e9 + rng.uniform(0.0, 1e-4);  // constant-ish extreme column
    y[i] = std::sin(2.0 * x(i, 0)) + rng.normal(0.0, 0.01);
  }
  KernelSvr model(strong_svr());
  model.fit(x, y);
  std::stringstream buffer;
  save_model(model, buffer);
  const auto loaded = load_model(buffer);
  for (std::size_t i = 0; i < 10; ++i) {
    const std::vector<double> row{rng.uniform(-2.0, 2.0),
                                  1e9 + rng.uniform(0.0, 1e-4)};
    EXPECT_DOUBLE_EQ(loaded->predict_row(row), model.predict_row(row));
  }
}

TEST(LsSvm, FitsNonlinearFunction) {
  util::Rng rng(5);
  linalg::Matrix x;
  std::vector<double> y;
  make_sine_data(250, 0.01, rng, x, y);
  LsSvmOptions options;
  options.gamma = 1000.0;
  options.kernel.gamma = 2.0;
  LsSvm model(options);
  model.fit(x, y);
  for (double probe : {-1.5, 0.0, 1.5}) {
    const double expected = std::sin(2.0 * probe) + 0.5 * probe;
    EXPECT_NEAR(model.predict_row(std::vector<double>{probe}), expected,
                0.1);
  }
}

TEST(LsSvm, SmallGammaUnderfitsTowardMean) {
  util::Rng rng(6);
  linalg::Matrix x;
  std::vector<double> y;
  make_sine_data(200, 0.01, rng, x, y);
  LsSvmOptions smooth;
  smooth.gamma = 1e-6;
  smooth.kernel.gamma = 2.0;
  LsSvm model(smooth);
  model.fit(x, y);
  // With negligible gamma, the fit collapses toward the bias ~= mean(y).
  double mean_y = 0.0;
  for (double v : y) mean_y += v;
  mean_y /= static_cast<double>(y.size());
  EXPECT_NEAR(model.predict_row(std::vector<double>{1.0}), mean_y, 0.3);
}

TEST(LsSvm, RegularizationMonotonicallyImprovesTrainFit) {
  util::Rng rng(7);
  linalg::Matrix x;
  std::vector<double> y;
  make_sine_data(150, 0.05, rng, x, y);
  double previous = 1e18;
  for (double gamma : {0.01, 1.0, 100.0, 10000.0}) {
    LsSvmOptions options;
    options.gamma = gamma;
    options.kernel.gamma = 2.0;
    LsSvm model(options);
    model.fit(x, y);
    const double train_mae = mean_absolute_error(model.predict(x), y);
    // Allow a sliver of numerical slack: at large gamma consecutive fits
    // are near-identical and solver round-off can tie-break either way.
    EXPECT_LE(train_mae, previous * 1.01 + 1e-6);
    previous = train_mae;
  }
}

TEST(LsSvm, InvalidGammaRejected) {
  LsSvmOptions bad;
  bad.gamma = 0.0;
  EXPECT_THROW(LsSvm{bad}, std::invalid_argument);
}

TEST(LsSvm, SaveLoadPreservesPredictions) {
  util::Rng rng(8);
  linalg::Matrix x;
  std::vector<double> y;
  make_sine_data(120, 0.02, rng, x, y);
  LsSvmOptions options;
  options.gamma = 100.0;
  options.kernel.gamma = 1.0;
  LsSvm model(options);
  model.fit(x, y);
  std::stringstream buffer;
  save_model(model, buffer);
  const auto loaded = load_model(buffer);
  EXPECT_EQ(loaded->name(), "svm2");
  for (double probe : {-1.0, 0.4, 1.9}) {
    const std::vector<double> row{probe};
    EXPECT_NEAR(loaded->predict_row(row), model.predict_row(row), 1e-9);
  }
}

/// Both SVM variants must beat the mean predictor on non-linear data —
/// the basic sanity the paper's Table II ranking presumes.
class SvmFamilyBeatsMean : public ::testing::TestWithParam<std::string> {};

TEST_P(SvmFamilyBeatsMean, RaeBelowOne) {
  util::Rng rng(9);
  linalg::Matrix x;
  std::vector<double> y;
  make_sine_data(200, 0.05, rng, x, y);
  linalg::Matrix x_val;
  std::vector<double> y_val;
  make_sine_data(100, 0.05, rng, x_val, y_val);
  std::unique_ptr<Regressor> model;
  if (GetParam() == "svm") {
    model = std::make_unique<KernelSvr>(strong_svr());
  } else {
    LsSvmOptions options;
    options.gamma = 1000.0;
    options.kernel.gamma = 2.0;
    model = std::make_unique<LsSvm>(options);
  }
  model->fit(x, y);
  EXPECT_LT(relative_absolute_error(model->predict(x_val), y_val), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Variants, SvmFamilyBeatsMean,
                         ::testing::Values("svm", "svm2"));

}  // namespace
}  // namespace f2pm::ml
