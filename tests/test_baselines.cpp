#include <gtest/gtest.h>

#include <sstream>

#include "data/aggregation.hpp"
#include "ml/exhaustion_heuristic.hpp"
#include "ml/metrics.hpp"
#include "ml/state_classifier.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

TEST(StateLabeling, ThresholdsPartitionTheAxis) {
  const StateThresholds thresholds{.danger_seconds = 300.0,
                                   .warning_seconds = 900.0};
  EXPECT_EQ(state_from_rttf(0.0, thresholds), SystemState::kDanger);
  EXPECT_EQ(state_from_rttf(299.9, thresholds), SystemState::kDanger);
  EXPECT_EQ(state_from_rttf(300.0, thresholds), SystemState::kWarning);
  EXPECT_EQ(state_from_rttf(899.9, thresholds), SystemState::kWarning);
  EXPECT_EQ(state_from_rttf(900.0, thresholds), SystemState::kAllOk);
  EXPECT_EQ(state_from_rttf(5000.0, thresholds), SystemState::kAllOk);
}

TEST(StateLabeling, VectorizedLabeling) {
  const std::vector<double> rttf{100.0, 500.0, 2000.0};
  const auto states = states_from_rttf(rttf, StateThresholds{});
  EXPECT_EQ(states[0], SystemState::kDanger);
  EXPECT_EQ(states[1], SystemState::kWarning);
  EXPECT_EQ(states[2], SystemState::kAllOk);
}

TEST(StateLabeling, NamesAreStable) {
  EXPECT_EQ(state_name(SystemState::kAllOk), "all-ok");
  EXPECT_EQ(state_name(SystemState::kWarning), "warning");
  EXPECT_EQ(state_name(SystemState::kDanger), "danger");
}

/// Synthetic separable data: the state depends on a single feature.
void make_separable(std::size_t n, util::Rng& rng, linalg::Matrix& x,
                    std::vector<SystemState>& labels) {
  x = linalg::Matrix(n, 3);
  labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0.0, 3.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);  // noise
    x(i, 2) = rng.uniform(-1.0, 1.0);  // noise
    labels[i] = x(i, 0) < 1.0   ? SystemState::kDanger
                : x(i, 0) < 2.0 ? SystemState::kWarning
                                : SystemState::kAllOk;
  }
}

TEST(StateClassifier, LearnsSeparableStates) {
  util::Rng rng(1);
  linalg::Matrix x;
  std::vector<SystemState> labels;
  make_separable(600, rng, x, labels);
  StateClassifierTree tree;
  tree.fit(x, labels);
  linalg::Matrix x_val;
  std::vector<SystemState> val_labels;
  make_separable(200, rng, x_val, val_labels);
  const auto report =
      evaluate_classification(tree.predict(x_val), val_labels);
  EXPECT_GT(report.accuracy, 0.95);
  EXPECT_GT(report.danger_recall, 0.95);
}

TEST(StateClassifier, PureNodeBecomesLeaf) {
  linalg::Matrix x(20, 1);
  std::vector<SystemState> labels(20, SystemState::kWarning);
  for (std::size_t i = 0; i < 20; ++i) x(i, 0) = static_cast<double>(i);
  StateClassifierTree tree;
  tree.fit(x, labels);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_EQ(tree.predict_row(std::vector<double>{5.0}),
            SystemState::kWarning);
}

TEST(StateClassifier, MaxDepthBoundsTheTree) {
  util::Rng rng(2);
  linalg::Matrix x;
  std::vector<SystemState> labels;
  make_separable(400, rng, x, labels);
  StateClassifierOptions options;
  options.max_depth = 1;
  StateClassifierTree stump(options);
  stump.fit(x, labels);
  EXPECT_LE(stump.num_leaves(), 2u);
}

TEST(StateClassifier, GuardsApi) {
  StateClassifierTree tree;
  EXPECT_THROW(tree.predict_row(std::vector<double>{1.0}),
               std::logic_error);
  EXPECT_THROW(tree.fit(linalg::Matrix(), {}), std::invalid_argument);
  StateClassifierOptions bad;
  bad.min_instances_per_leaf = 0;
  EXPECT_THROW(StateClassifierTree{bad}, std::invalid_argument);
}

TEST(ClassificationReport, ConfusionAndRecall) {
  using S = SystemState;
  const std::vector<S> actual{S::kDanger, S::kDanger, S::kWarning, S::kAllOk};
  const std::vector<S> predicted{S::kDanger, S::kWarning, S::kWarning,
                                 S::kAllOk};
  const auto report = evaluate_classification(predicted, actual);
  EXPECT_DOUBLE_EQ(report.accuracy, 0.75);
  EXPECT_DOUBLE_EQ(report.danger_recall, 0.5);
  EXPECT_EQ(report.confusion[static_cast<std::size_t>(S::kDanger)]
                            [static_cast<std::size_t>(S::kWarning)],
            1u);
  EXPECT_THROW(evaluate_classification({}, {}), std::invalid_argument);
}

/// Builds a full-layout row with the given memory pool and slope.
std::vector<double> heuristic_row(double free_kb, double swap_free_kb,
                                  double mem_slope, double intergen) {
  std::vector<double> row(data::kInputCount, 0.0);
  row[static_cast<std::size_t>(data::FeatureId::kMemFree)] = free_kb;
  row[static_cast<std::size_t>(data::FeatureId::kSwapFree)] = swap_free_kb;
  row[data::kFeatureCount +
      static_cast<std::size_t>(data::FeatureId::kMemUsed)] = mem_slope;
  row[data::kInputCount - 2] = intergen;
  return row;
}

TEST(ExhaustionHeuristic, RawEstimateIsPoolOverRate) {
  ExhaustionHeuristic heuristic;
  // Pool 10000 KiB, slope 20 KiB/sample at 2 s/sample -> 10 KiB/s -> 1000s.
  const auto row = heuristic_row(8000.0, 2000.0, 20.0, 2.0);
  EXPECT_NEAR(heuristic.raw_estimate(row), 1000.0, 1e-9);
}

TEST(ExhaustionHeuristic, RateFloorPreventsBlowUp) {
  ExhaustionHeuristicOptions options;
  options.min_rate_kb_per_s = 10.0;
  options.max_prediction_seconds = 1e5;
  ExhaustionHeuristic heuristic(options);
  const auto row = heuristic_row(1e6, 0.0, 0.0, 1.5);  // zero slope
  EXPECT_NEAR(heuristic.raw_estimate(row), 1e5, 1e-9);  // clamped
}

TEST(ExhaustionHeuristic, CalibrationRecoversLinearScale) {
  // If the true RTTF is exactly 0.5x the raw estimate, fit() learns 0.5.
  util::Rng rng(3);
  linalg::Matrix x(100, data::kInputCount);
  std::vector<double> y(100);
  ExhaustionHeuristic reference;
  for (std::size_t i = 0; i < 100; ++i) {
    const auto row = heuristic_row(rng.uniform(1e4, 1e6),
                                   rng.uniform(0.0, 1e5),
                                   rng.uniform(10.0, 100.0), 1.5);
    std::copy(row.begin(), row.end(), x.row(i).begin());
    y[i] = 0.5 * reference.raw_estimate(row);
  }
  ExhaustionHeuristic heuristic;
  heuristic.fit(x, y);
  EXPECT_NEAR(heuristic.scale(), 0.5, 1e-9);
  EXPECT_NEAR(heuristic.predict_row(x.row(0)), y[0], 1e-6);
}

TEST(ExhaustionHeuristic, RequiresFullLayout) {
  ExhaustionHeuristic heuristic;
  linalg::Matrix narrow(10, 3, 1.0);
  const std::vector<double> y(10, 1.0);
  EXPECT_THROW(heuristic.fit(narrow, y), std::invalid_argument);
}

TEST(ExhaustionHeuristic, SaveLoadRoundTrip) {
  util::Rng rng(4);
  linalg::Matrix x(50, data::kInputCount);
  std::vector<double> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto row = heuristic_row(rng.uniform(1e4, 1e6), 1e4,
                                   rng.uniform(10.0, 50.0), 1.5);
    std::copy(row.begin(), row.end(), x.row(i).begin());
    y[i] = rng.uniform(100.0, 2000.0);
  }
  ExhaustionHeuristic model;
  model.fit(x, y);
  std::stringstream buffer;
  save_model(model, buffer);
  const auto loaded = load_model(buffer);
  EXPECT_EQ(loaded->name(), "heuristic");
  EXPECT_NEAR(loaded->predict_row(x.row(7)), model.predict_row(x.row(7)),
              1e-9);
}

}  // namespace
}  // namespace f2pm::ml
