#include "data/aggregation.hpp"

#include <gtest/gtest.h>

namespace f2pm::data {
namespace {

/// Builds a run with samples at fixed `step` spacing where feature
/// mem_used = base + rate * t.
Run linear_run(double step, double duration, double fail_time, double base,
               double rate) {
  f2pm::data::Run run;
  for (double t = step; t <= duration; t += step) {
    RawDatapoint sample;
    sample.tgen = t;
    sample[FeatureId::kMemUsed] = base + rate * t;
    sample[FeatureId::kNumThreads] = 100.0;
    run.samples.push_back(sample);
  }
  run.fail_time = fail_time;
  run.failed = true;
  return run;
}

TEST(Aggregation, WindowMeansAndCounts) {
  DataHistory history;
  history.add_run(linear_run(1.0, 100.0, 100.0, 0.0, 10.0));
  AggregationOptions options;
  options.window_seconds = 10.0;
  const auto points = aggregate(history, options);
  ASSERT_FALSE(points.empty());
  // First window [0, 10): samples at t = 1..9 -> mean mem_used = 10*5 = 50.
  const auto& first = points.front();
  EXPECT_EQ(first.count, 9u);
  EXPECT_DOUBLE_EQ(first.window_start, 0.0);
  EXPECT_DOUBLE_EQ(first.window_end, 10.0);
  EXPECT_DOUBLE_EQ(
      first.means[static_cast<std::size_t>(FeatureId::kMemUsed)], 50.0);
  // Constant feature -> zero slope.
  EXPECT_DOUBLE_EQ(
      first.slopes[static_cast<std::size_t>(FeatureId::kNumThreads)], 0.0);
}

TEST(Aggregation, SlopeFollowsEquationOne) {
  DataHistory history;
  history.add_run(linear_run(1.0, 100.0, 100.0, 0.0, 10.0));
  AggregationOptions options;
  options.window_seconds = 10.0;
  const auto points = aggregate(history, options);
  // Window 2 ([10, 20), samples 10..19): x_end - x_start = 10*(19-10) = 90,
  // n = 10 -> slope = 9.
  const auto& second = points.at(1);
  EXPECT_EQ(second.count, 10u);
  EXPECT_DOUBLE_EQ(
      second.slopes[static_cast<std::size_t>(FeatureId::kMemUsed)], 9.0);
}

TEST(Aggregation, RttfIsFailTimeMinusWindowEnd) {
  DataHistory history;
  history.add_run(linear_run(1.0, 100.0, 100.0, 0.0, 1.0));
  AggregationOptions options;
  options.window_seconds = 10.0;
  const auto points = aggregate(history, options);
  for (const auto& point : points) {
    EXPECT_DOUBLE_EQ(point.rttf, 100.0 - point.window_end);
    EXPECT_GE(point.rttf, 0.0);
  }
}

TEST(Aggregation, InterGenerationTimeMatchesSampleSpacing) {
  DataHistory history;
  history.add_run(linear_run(2.0, 100.0, 100.0, 0.0, 1.0));
  AggregationOptions options;
  options.window_seconds = 20.0;
  const auto points = aggregate(history, options);
  ASSERT_FALSE(points.empty());
  for (const auto& point : points) {
    EXPECT_NEAR(point.intergen_mean, 2.0, 1e-9);
    EXPECT_NEAR(point.intergen_slope, 0.0, 1e-9);
  }
}

TEST(Aggregation, DropsWindowsPastFailTime) {
  DataHistory history;
  // Fail at 25s: window [20, 30) must be dropped (negative RTTF).
  history.add_run(linear_run(1.0, 25.0, 25.0, 0.0, 1.0));
  AggregationOptions options;
  options.window_seconds = 10.0;
  const auto points = aggregate(history, options);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points.back().window_end, 20.0);
}

TEST(Aggregation, MinSamplesFilterDropsSparseWindows) {
  DataHistory history;
  f2pm::data::Run run;
  for (double t : {1.0, 2.0, 3.0, 15.0}) {  // second window has one sample
    RawDatapoint sample;
    sample.tgen = t;
    run.samples.push_back(sample);
  }
  run.fail_time = 30.0;
  run.failed = true;
  history.add_run(std::move(run));
  AggregationOptions options;
  options.window_seconds = 10.0;
  options.min_samples_per_window = 2;
  const auto points = aggregate(history, options);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].count, 3u);
}

TEST(Aggregation, UnfailedRunsSkippedUnlessRequested) {
  DataHistory history;
  f2pm::data::Run run = linear_run(1.0, 50.0, 50.0, 0.0, 1.0);
  run.failed = false;
  history.add_run(std::move(run));
  AggregationOptions options;
  options.window_seconds = 10.0;
  EXPECT_TRUE(aggregate(history, options).empty());
  options.include_unfailed_runs = true;
  EXPECT_FALSE(aggregate(history, options).empty());
}

TEST(Aggregation, UnfailedRunWindowsAreRightCensored) {
  DataHistory history;
  history.add_run(linear_run(1.0, 50.0, 50.0, 0.0, 1.0));  // failed
  f2pm::data::Run survivor = linear_run(1.0, 50.0, 50.0, 0.0, 1.0);
  survivor.failed = false;
  history.add_run(std::move(survivor));

  AggregationOptions options;
  options.window_seconds = 10.0;
  options.include_unfailed_runs = true;
  const auto points = aggregate(history, options);
  ASSERT_FALSE(points.empty());
  std::size_t censored = 0;
  for (const auto& point : points) {
    // Exactly the windows of the unfailed run carry the censored flag: their
    // rttf is only "time until monitoring stopped".
    EXPECT_EQ(point.censored, point.run_index == 1) << point.window_end;
    censored += point.censored ? 1 : 0;
  }
  EXPECT_GT(censored, 0u);
  EXPECT_LT(censored, points.size());
}

TEST(Aggregation, MultipleRunsKeepRunIndex) {
  DataHistory history;
  history.add_run(linear_run(1.0, 30.0, 30.0, 0.0, 1.0));
  history.add_run(linear_run(1.0, 30.0, 30.0, 5.0, 2.0));
  AggregationOptions options;
  options.window_seconds = 10.0;
  const auto points = aggregate(history, options);
  bool saw_zero = false;
  bool saw_one = false;
  for (const auto& point : points) {
    saw_zero |= point.run_index == 0;
    saw_one |= point.run_index == 1;
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_one);
}

TEST(Aggregation, RejectsNonPositiveWindow) {
  DataHistory history;
  AggregationOptions options;
  options.window_seconds = 0.0;
  EXPECT_THROW(aggregate(history, options), std::invalid_argument);
}

TEST(Aggregation, InputLayoutAndNames) {
  EXPECT_EQ(kInputCount, 2 * kFeatureCount + 2);
  const auto names = input_feature_names();
  ASSERT_EQ(names.size(), kInputCount);
  EXPECT_EQ(names[0], "n_threads");
  EXPECT_EQ(names[kFeatureCount], "n_threads_slope");
  EXPECT_EQ(names[kInputCount - 2], "intergen_time");
  EXPECT_EQ(names[kInputCount - 1], "intergen_time_slope");
  // The paper's Table I slope names must exist in the layout.
  EXPECT_NE(std::find(names.begin(), names.end(), "mem_used_slope"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "swap_free_slope"),
            names.end());
}

TEST(Aggregation, ToInputVectorLayout) {
  AggregatedDatapoint point;
  point.means[static_cast<std::size_t>(FeatureId::kMemUsed)] = 7.0;
  point.slopes[static_cast<std::size_t>(FeatureId::kMemUsed)] = 8.0;
  point.intergen_mean = 9.0;
  point.intergen_slope = 10.0;
  const auto row = to_input_vector(point);
  EXPECT_DOUBLE_EQ(row[static_cast<std::size_t>(FeatureId::kMemUsed)], 7.0);
  EXPECT_DOUBLE_EQ(
      row[kFeatureCount + static_cast<std::size_t>(FeatureId::kMemUsed)],
      8.0);
  EXPECT_DOUBLE_EQ(row[kInputCount - 2], 9.0);
  EXPECT_DOUBLE_EQ(row[kInputCount - 1], 10.0);
}

/// Property sweep: for any window size, aggregated windows never overlap,
/// never extend past the fail time, and means stay within min/max of the
/// raw feature values.
class AggregationWindowSweep : public ::testing::TestWithParam<double> {};

TEST_P(AggregationWindowSweep, InvariantsHoldAcrossWindowSizes) {
  const double window = GetParam();
  DataHistory history;
  history.add_run(linear_run(1.7, 200.0, 203.0, 50.0, 3.0));
  AggregationOptions options;
  options.window_seconds = window;
  const auto points = aggregate(history, options);
  double previous_end = 0.0;
  for (const auto& point : points) {
    EXPECT_GE(point.window_start, previous_end - 1e-9);
    EXPECT_DOUBLE_EQ(point.window_end - point.window_start, window);
    EXPECT_LE(point.window_end, 203.0);
    previous_end = point.window_end;
    const double mem =
        point.means[static_cast<std::size_t>(FeatureId::kMemUsed)];
    EXPECT_GE(mem, 50.0);
    EXPECT_LE(mem, 50.0 + 3.0 * 200.0);
    EXPECT_GE(point.count, options.min_samples_per_window);
  }
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, AggregationWindowSweep,
                         ::testing::Values(5.0, 10.0, 17.3, 30.0, 60.0));

}  // namespace
}  // namespace f2pm::data
