// Shared chaos harness: drives a fleet of FeatureMonitorClients through a
// FaultPlan against a live PredictionService and validates the delivery
// guarantees (bounded loss, exactly-once visible predictions, monotonic
// window ends). Used by tests/test_chaos.cpp for correctness soaks and by
// bench/serve_fault_tolerance.cpp to measure throughput vs fault rate.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/datapoint.hpp"
#include "linalg/matrix.hpp"
#include "ml/linear_regression.hpp"
#include "net/fault.hpp"
#include "net/fmc.hpp"
#include "serve/service.hpp"

namespace f2pm::chaos {

inline data::RawDatapoint sample_at(double tgen) {
  data::RawDatapoint sample;
  sample.tgen = tgen;
  sample[data::FeatureId::kMemUsed] = 500.0 + tgen;
  sample[data::FeatureId::kCpuUser] = 10.0;
  return sample;
}

// A fitted model that predicts exactly `value` for every input: OLS on a
// full-rank random design with a constant target has the unique exact
// solution beta = 0, intercept = value.
inline std::shared_ptr<const ml::Regressor> constant_model(double value) {
  const std::size_t rows = data::kInputCount + 8;
  linalg::Matrix x(rows, data::kInputCount);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < data::kInputCount; ++c) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      x(r, c) = static_cast<double>(state >> 40) / 1e6;
    }
  }
  std::vector<double> y(rows, value);
  auto model = std::make_shared<ml::LinearRegression>();
  model->fit(x, y);
  return model;
}

/// The aggregation layout every chaos scenario runs under. Window width 4
/// with 1-second samples means datapoint tgen=t closes the window ending
/// at floor(t/4)*4.
inline constexpr double kChaosWindowSeconds = 4.0;

/// Shard count for the chaos matrix: F2PM_CHAOS_SHARDS (default 1), so CI
/// can run the same binaries against a sharded service without a rebuild.
inline std::size_t chaos_shards() {
  const char* env = std::getenv("F2PM_CHAOS_SHARDS");
  if (env != nullptr && *env != '\0') {
    const unsigned long value = std::strtoul(env, nullptr, 10);
    if (value >= 1) return static_cast<std::size_t>(value);
  }
  return 1;
}

inline serve::ServiceOptions chaos_service_options() {
  serve::ServiceOptions options;
  options.aggregation.window_seconds = kChaosWindowSeconds;
  options.aggregation.min_samples_per_window = 2;
  options.scoring_threads = 2;
  options.shards = chaos_shards();
  return options;
}

/// Client tuned for fast recovery in tests: aggressive reconnect with
/// millisecond backoff, and a hard deadline so a wedged scenario fails the
/// test instead of hanging it.
inline net::ClientOptions chaos_client_options(std::uint64_t jitter_seed) {
  net::ClientOptions options;
  options.reconnect = true;
  options.max_connect_attempts = 8;
  options.backoff_initial_seconds = 0.001;
  options.backoff_max_seconds = 0.05;
  options.jitter_seed = jitter_seed;
  options.op_deadline_seconds = 30.0;
  return options;
}

/// The standard soak plan: every fault class at once, rates low enough
/// that most operations succeed but every client sees several faults over
/// a 120-point stream.
inline net::FaultPlan chaos_plan(std::uint64_t seed) {
  net::FaultPlan plan;
  plan.seed = seed;
  plan.refuse_connect_rate = 0.10;
  plan.delay_connect_rate = 0.05;
  plan.connect_delay_ms = 1;
  plan.accept_drop_rate = 0.05;
  plan.read_reset_rate = 0.002;
  plan.write_reset_rate = 0.002;
  plan.short_read_rate = 0.05;
  plan.short_write_rate = 0.05;
  plan.short_io_bytes = 3;
  plan.read_eagain_rate = 0.02;
  plan.write_eagain_rate = 0.02;
  plan.eagain_burst = 2;
  plan.stall_rate = 0.002;
  plan.stall_ms = 1;
  return plan;
}

/// What one chaos client observed end to end.
struct ChaosClientReport {
  std::size_t sent = 0;
  std::size_t received = 0;    ///< Predictions that reached the caller.
  std::size_t reconnects = 0;
  std::size_t replayed = 0;    ///< Datapoints re-sent across reconnects.
  bool monotonic = true;       ///< window_end strictly increased.
  bool rttf_ok = true;         ///< Every rttf matched the constant model.
  double last_window_end = 0.0;
  std::string error;           ///< Non-empty when the client aborted.
};

/// Runs one client: sends `num_points` samples at 1-second spacing inside
/// fault lane `lane`, insists on receiving every closed window, then
/// finishes and drains. The final flush prediction is best-effort (it can
/// die with the connection), so callers should expect
/// `closed_windows(num_points) <= received <= closed_windows + 1`.
inline ChaosClientReport run_chaos_client(std::uint16_t port,
                                          std::uint64_t lane,
                                          std::size_t num_points,
                                          double expected_rttf,
                                          const net::ClientOptions& options) {
  ChaosClientReport report;
  net::FaultLaneScope scope(lane);
  const auto note = [&report, expected_rttf](const net::Prediction& p) {
    if (report.received > 0 && p.window_end <= report.last_window_end) {
      report.monotonic = false;
    }
    report.last_window_end = p.window_end;
    if (std::abs(p.rttf - expected_rttf) > 1e-6) report.rttf_ok = false;
    ++report.received;
  };
  try {
    net::FeatureMonitorClient client("127.0.0.1", port, options);
    client.hello("chaos-" + std::to_string(lane));
    for (std::size_t i = 0; i < num_points; ++i) {
      client.send(sample_at(static_cast<double>(i)));
      if (auto p = client.poll_prediction()) note(*p);
    }
    // Every window already closed by a sent datapoint must arrive: the
    // replay/reconnect machinery recomputes anything a fault destroyed.
    const double closed_edge =
        std::floor(static_cast<double>(num_points - 1) / kChaosWindowSeconds) *
        kChaosWindowSeconds;
    while (report.last_window_end < closed_edge) {
      auto p = client.wait_prediction();
      if (!p) {
        report.error = "server closed before all closed windows arrived";
        break;
      }
      note(*p);
    }
    client.finish();
    // Drain the best-effort flush of the final open window.
    while (auto p = client.wait_prediction()) note(*p);
    report.sent = client.datapoints_sent();
    report.reconnects = client.reconnects();
    report.replayed = client.replayed_datapoints();
  } catch (const std::exception& e) {
    report.error = e.what();
  }
  return report;
}

/// Predictions guaranteed (lower bound) for a `num_points` stream.
inline std::size_t closed_windows(std::size_t num_points) {
  return static_cast<std::size_t>(
      std::floor(static_cast<double>(num_points - 1) / kChaosWindowSeconds));
}

/// Runs `num_clients` chaos clients concurrently (lane = client index + 1,
/// lane 0 stays free for scripted faults) and returns their reports.
inline std::vector<ChaosClientReport> run_chaos_fleet(
    std::uint16_t port, std::size_t num_clients, std::size_t num_points,
    double expected_rttf, std::uint64_t jitter_seed_base) {
  std::vector<ChaosClientReport> reports(num_clients);
  std::vector<std::thread> threads;
  threads.reserve(num_clients);
  for (std::size_t i = 0; i < num_clients; ++i) {
    threads.emplace_back([&reports, port, num_points, expected_rttf,
                          jitter_seed_base, i] {
      net::ClientOptions options = chaos_client_options(jitter_seed_base + i);
      reports[i] =
          run_chaos_client(port, i + 1, num_points, expected_rttf, options);
    });
  }
  for (std::thread& thread : threads) thread.join();
  return reports;
}

}  // namespace f2pm::chaos
