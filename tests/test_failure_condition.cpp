#include "core/failure_condition.hpp"

#include <gtest/gtest.h>

namespace f2pm::core {
namespace {

data::RawDatapoint sample_with(data::FeatureId feature, double value) {
  data::RawDatapoint sample;
  sample[feature] = value;
  return sample;
}

TEST(FailureCondition, FeatureComparisons) {
  const auto above =
      FailureCondition::feature_above(data::FeatureId::kSwapUsed, 100.0);
  EXPECT_TRUE(above.evaluate(
      {sample_with(data::FeatureId::kSwapUsed, 150.0), 0.0}));
  EXPECT_FALSE(above.evaluate(
      {sample_with(data::FeatureId::kSwapUsed, 100.0), 0.0}));

  const auto below =
      FailureCondition::feature_below(data::FeatureId::kSwapFree, 50.0);
  EXPECT_TRUE(below.evaluate(
      {sample_with(data::FeatureId::kSwapFree, 10.0), 0.0}));
  EXPECT_FALSE(below.evaluate(
      {sample_with(data::FeatureId::kSwapFree, 50.0), 0.0}));
}

TEST(FailureCondition, IntergenThreshold) {
  const auto overload = FailureCondition::intergen_above(5.0);
  EXPECT_TRUE(overload.evaluate({data::RawDatapoint{}, 6.0}));
  EXPECT_FALSE(overload.evaluate({data::RawDatapoint{}, 5.0}));
}

TEST(FailureCondition, ConjunctionAndDisjunction) {
  const auto both =
      FailureCondition::feature_above(data::FeatureId::kSwapUsed, 100.0) &&
      FailureCondition::intergen_above(5.0);
  data::RawDatapoint hot = sample_with(data::FeatureId::kSwapUsed, 200.0);
  EXPECT_TRUE(both.evaluate({hot, 6.0}));
  EXPECT_FALSE(both.evaluate({hot, 1.0}));

  const auto either =
      FailureCondition::feature_above(data::FeatureId::kSwapUsed, 100.0) ||
      FailureCondition::intergen_above(5.0);
  EXPECT_TRUE(either.evaluate({data::RawDatapoint{}, 6.0}));
  EXPECT_TRUE(either.evaluate({hot, 0.0}));
  EXPECT_FALSE(either.evaluate({data::RawDatapoint{}, 0.0}));
}

TEST(FailureCondition, NeverIsIdentityForOr) {
  const auto condition = FailureCondition::never() ||
                         FailureCondition::intergen_above(1.0);
  EXPECT_TRUE(condition.evaluate({data::RawDatapoint{}, 2.0}));
  EXPECT_FALSE(FailureCondition::never().evaluate({data::RawDatapoint{}, 9e9}));
}

TEST(FailureCondition, DescriptionNamesTheParts) {
  const auto condition =
      FailureCondition::feature_below(data::FeatureId::kSwapFree, 1024.0) ||
      FailureCondition::intergen_above(4.5);
  const std::string text = condition.describe();
  EXPECT_NE(text.find("swap_free"), std::string::npos);
  EXPECT_NE(text.find("OR"), std::string::npos);
  EXPECT_NE(text.find("intergen"), std::string::npos);
}

TEST(FirstFailureIndex, FindsEarliestTrigger) {
  std::vector<data::RawDatapoint> samples;
  for (int i = 0; i < 10; ++i) {
    data::RawDatapoint sample;
    sample.tgen = static_cast<double>(i);
    sample[data::FeatureId::kSwapUsed] = i >= 7 ? 500.0 : 0.0;
    samples.push_back(sample);
  }
  const auto condition =
      FailureCondition::feature_above(data::FeatureId::kSwapUsed, 100.0);
  EXPECT_EQ(first_failure_index(condition, samples), 7u);
}

TEST(FirstFailureIndex, ComputesIntergenFromTimestamps) {
  std::vector<data::RawDatapoint> samples;
  for (double t : {0.0, 1.5, 3.0, 10.0}) {  // last gap is 7 seconds
    data::RawDatapoint sample;
    sample.tgen = t;
    samples.push_back(sample);
  }
  const auto condition = FailureCondition::intergen_above(5.0);
  EXPECT_EQ(first_failure_index(condition, samples), 3u);
}

TEST(FirstFailureIndex, ReturnsNposWhenNeverMet) {
  std::vector<data::RawDatapoint> samples(5);
  const auto condition = FailureCondition::intergen_above(100.0);
  EXPECT_EQ(first_failure_index(condition, samples),
            std::numeric_limits<std::size_t>::max());
}

}  // namespace
}  // namespace f2pm::core
