// Framing tests for the byte-incremental FrameDecoder / FrameEncoder pair
// shared by the blocking (FMC/FMS) and non-blocking (f2pm_serve) paths.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace f2pm::net {
namespace {

data::RawDatapoint sample_at(double tgen) {
  data::RawDatapoint sample;
  sample.tgen = tgen;
  sample[data::FeatureId::kMemUsed] = 123.0 + tgen;
  sample[data::FeatureId::kCpuUser] = 45.5;
  return sample;
}

// One of each frame type, back to back.
std::vector<std::uint8_t> encode_all() {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_hello(bytes, Hello{kProtocolVersion, "vm-07"});
  FrameEncoder::encode_datapoint(bytes, sample_at(3.5));
  FrameEncoder::encode_fail_event(bytes, 99.25);
  Prediction prediction;
  prediction.window_end = 30.0;
  prediction.rttf = 1234.5;
  prediction.alarm = true;
  prediction.model_version = 7;
  FrameEncoder::encode_prediction(bytes, prediction);
  FrameEncoder::encode_stats_request(bytes);
  FrameEncoder::encode_stats_reply(
      bytes, StatsReply{"f2pm_up 1\n# not parsed, just carried\n"});
  FrameEncoder::encode_bye(bytes);
  return bytes;
}

void expect_all_frames(const std::vector<Frame>& frames) {
  ASSERT_EQ(frames.size(), 7u);
  const auto* hello = std::get_if<Hello>(&frames[0]);
  ASSERT_NE(hello, nullptr);
  EXPECT_EQ(hello->version, kProtocolVersion);
  EXPECT_EQ(hello->client_id, "vm-07");
  const auto* datapoint = std::get_if<data::RawDatapoint>(&frames[1]);
  ASSERT_NE(datapoint, nullptr);
  EXPECT_EQ(*datapoint, sample_at(3.5));
  const auto* fail = std::get_if<FailEvent>(&frames[2]);
  ASSERT_NE(fail, nullptr);
  EXPECT_DOUBLE_EQ(fail->fail_time, 99.25);
  const auto* prediction = std::get_if<Prediction>(&frames[3]);
  ASSERT_NE(prediction, nullptr);
  EXPECT_DOUBLE_EQ(prediction->window_end, 30.0);
  EXPECT_DOUBLE_EQ(prediction->rttf, 1234.5);
  EXPECT_TRUE(prediction->alarm);
  EXPECT_EQ(prediction->model_version, 7u);
  EXPECT_NE(std::get_if<StatsRequest>(&frames[4]), nullptr);
  const auto* stats = std::get_if<StatsReply>(&frames[5]);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->text, "f2pm_up 1\n# not parsed, just carried\n");
  EXPECT_NE(std::get_if<Bye>(&frames[6]), nullptr);
}

TEST(FrameDecoder, CoalescedFramesInOneFeed) {
  const std::vector<std::uint8_t> bytes = encode_all();
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  std::vector<Frame> frames;
  while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
  expect_all_frames(frames);
  EXPECT_FALSE(decoder.mid_frame());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoder, OneByteAtATime) {
  const std::vector<std::uint8_t> bytes = encode_all();
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (std::uint8_t byte : bytes) {
    decoder.feed(&byte, 1);
    while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
  }
  expect_all_frames(frames);
  EXPECT_FALSE(decoder.mid_frame());
}

// Split the stream at EVERY byte boundary: two feeds [0,k) and [k,end).
TEST(FrameDecoder, SplitAtEveryByteBoundary) {
  const std::vector<std::uint8_t> bytes = encode_all();
  for (std::size_t split = 0; split <= bytes.size(); ++split) {
    FrameDecoder decoder;
    std::vector<Frame> frames;
    decoder.feed(bytes.data(), split);
    while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
    decoder.feed(bytes.data() + split, bytes.size() - split);
    while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
    expect_all_frames(frames);
  }
}

TEST(FrameDecoder, BadMagicThrows) {
  FrameDecoder decoder;
  const char garbage[8] = {'g', 'a', 'r', 'b', 'a', 'g', 'e', '!'};
  decoder.feed(garbage, sizeof(garbage));
  try {
    decoder.next();
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolError::Kind::kBadMagic);
  }
}

TEST(FrameDecoder, UnknownTypeThrows) {
  std::vector<std::uint8_t> bytes(8, 0);
  std::memcpy(bytes.data(), &kProtocolMagic, 4);
  const std::uint32_t bogus_type = 999;
  std::memcpy(bytes.data() + 4, &bogus_type, 4);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  try {
    decoder.next();
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolError::Kind::kUnknownType);
  }
}

TEST(FrameDecoder, OversizedHelloThrows) {
  std::vector<std::uint8_t> bytes(16, 0);
  std::memcpy(bytes.data(), &kProtocolMagic, 4);
  const auto type = static_cast<std::uint32_t>(FrameType::kHello);
  std::memcpy(bytes.data() + 4, &type, 4);
  const std::uint32_t version = kProtocolVersion;
  std::memcpy(bytes.data() + 8, &version, 4);
  const std::uint32_t huge_len = 1u << 20;  // 1 MiB "client id"
  std::memcpy(bytes.data() + 12, &huge_len, 4);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  try {
    decoder.next();
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolError::Kind::kOversized);
  }
}

TEST(FrameDecoder, OversizedStatsReplyThrows) {
  std::vector<std::uint8_t> bytes(12, 0);
  std::memcpy(bytes.data(), &kProtocolMagic, 4);
  const auto type = static_cast<std::uint32_t>(FrameType::kStatsReply);
  std::memcpy(bytes.data() + 4, &type, 4);
  const std::uint32_t huge_len =
      static_cast<std::uint32_t>(kMaxStatsBytes) + 1;
  std::memcpy(bytes.data() + 8, &huge_len, 4);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  try {
    decoder.next();
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolError::Kind::kOversized);
  }
}

TEST(FrameEncoder, RejectsOversizedStatsReply) {
  std::vector<std::uint8_t> bytes;
  StatsReply reply;
  reply.text.assign(kMaxStatsBytes + 1, 'm');
  EXPECT_THROW(FrameEncoder::encode_stats_reply(bytes, reply),
               std::invalid_argument);
}

TEST(FrameDecoder, EmptyStatsReplyRoundTrips) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_stats_reply(bytes, StatsReply{});
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(std::get<StatsReply>(*frame).text.empty());
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(FrameEncoder, RejectsOversizedClientId) {
  std::vector<std::uint8_t> bytes;
  Hello hello;
  hello.client_id.assign(kMaxClientIdBytes + 1, 'x');
  EXPECT_THROW(FrameEncoder::encode_hello(bytes, hello),
               std::invalid_argument);
}

TEST(FrameEncoder, MaxLengthClientIdRoundTrips) {
  std::vector<std::uint8_t> bytes;
  Hello hello;
  hello.client_id.assign(kMaxClientIdBytes, 'y');
  FrameEncoder::encode_hello(bytes, hello);
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(std::get<Hello>(*frame).client_id, hello.client_id);
}

TEST(FrameDecoder, MidFrameAndBytesNeeded) {
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.mid_frame());
  EXPECT_EQ(decoder.bytes_needed(), 8u);  // a full header first

  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_datapoint(bytes, sample_at(1.0));
  decoder.feed(bytes.data(), 3);  // partial header
  EXPECT_TRUE(decoder.mid_frame());
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.bytes_needed(), 5u);

  decoder.feed(bytes.data() + 3, 5);  // header complete, payload missing
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.bytes_needed(), bytes.size() - 8);
  EXPECT_TRUE(decoder.mid_frame());

  decoder.feed(bytes.data() + 8, bytes.size() - 8);
  EXPECT_TRUE(decoder.next().has_value());
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(FrameDecoder, ResetDropsPartialFrame) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_datapoint(bytes, sample_at(1.0));
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size() - 1);
  EXPECT_TRUE(decoder.mid_frame());
  decoder.reset();
  EXPECT_FALSE(decoder.mid_frame());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  // The decoder is reusable after reset.
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_TRUE(decoder.next().has_value());
}

// Blocking receive_frame: clean EOF between frames is nullopt, EOF inside
// a frame is an error — the distinction the legacy path used to lack.
TEST(BlockingReceive, CleanEofVsMidFrameTruncation) {
  {  // clean close after a complete frame
    TcpListener listener(0);
    std::thread client([port = listener.port()] {
      TcpStream stream = TcpStream::connect("127.0.0.1", port);
      send_datapoint(stream, sample_at(1.0));
    });
    auto server_side = listener.accept();
    ASSERT_TRUE(server_side.has_value());
    FrameDecoder decoder;
    EXPECT_TRUE(receive_frame(*server_side, decoder).has_value());
    client.join();
    EXPECT_FALSE(receive_frame(*server_side, decoder).has_value());
  }
  {  // close mid-frame
    TcpListener listener(0);
    std::thread client([port = listener.port()] {
      TcpStream stream = TcpStream::connect("127.0.0.1", port);
      std::vector<std::uint8_t> bytes;
      FrameEncoder::encode_datapoint(bytes, sample_at(1.0));
      stream.send_all(bytes.data(), bytes.size() / 2);  // truncated
    });
    auto server_side = listener.accept();
    ASSERT_TRUE(server_side.has_value());
    FrameDecoder decoder;
    EXPECT_THROW(receive_frame(*server_side, decoder), std::runtime_error);
    client.join();
  }
}

// ---------------------------------------------------------------------------
// Zero-copy decode: next_view() hands out views into the decoder buffer.
// A view must be consumed (or detached by copying) before the next decoder
// call; these tests pin the lifetime rules the serve hot path relies on.

/// Validates view number `index` of the encode_all() stream in place.
void expect_view(const FrameView& view, std::size_t index) {
  switch (index) {
    case 0: {
      ASSERT_EQ(view.type(), FrameType::kHello);
      EXPECT_EQ(view.hello_version(), kProtocolVersion);
      EXPECT_EQ(view.hello_client_id(), "vm-07");
      break;
    }
    case 1: {
      ASSERT_EQ(view.type(), FrameType::kDatapoint);
      data::RawDatapoint datapoint;
      view.datapoint(datapoint);
      EXPECT_EQ(datapoint, sample_at(3.5));
      break;
    }
    case 2:
      ASSERT_EQ(view.type(), FrameType::kFailEvent);
      EXPECT_DOUBLE_EQ(view.fail_time(), 99.25);
      break;
    case 3: {
      ASSERT_EQ(view.type(), FrameType::kPrediction);
      const Prediction prediction = view.prediction();
      EXPECT_DOUBLE_EQ(prediction.window_end, 30.0);
      EXPECT_DOUBLE_EQ(prediction.rttf, 1234.5);
      EXPECT_TRUE(prediction.alarm);
      EXPECT_EQ(prediction.model_version, 7u);
      break;
    }
    case 4:
      EXPECT_EQ(view.type(), FrameType::kStatsRequest);
      break;
    case 5:
      ASSERT_EQ(view.type(), FrameType::kStatsReply);
      EXPECT_EQ(view.stats_text(), "f2pm_up 1\n# not parsed, just carried\n");
      break;
    case 6:
      EXPECT_EQ(view.type(), FrameType::kBye);
      break;
    default:
      FAIL() << "unexpected frame index " << index;
  }
}

TEST(FrameView, CoalescedStreamYieldsValidViews) {
  const std::vector<std::uint8_t> bytes = encode_all();
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  std::size_t index = 0;
  while (auto view = decoder.next_view()) expect_view(*view, index++);
  EXPECT_EQ(index, 7u);
  EXPECT_FALSE(decoder.mid_frame());
}

// Feeds split at EVERY byte boundary still yield valid views — including
// views whose payloads are misaligned by the odd-length Hello id before
// them (the reason every field accessor reads via memcpy).
TEST(FrameView, SplitAtEveryByteBoundaryYieldsValidViews) {
  const std::vector<std::uint8_t> bytes = encode_all();
  for (std::size_t split = 0; split <= bytes.size(); ++split) {
    FrameDecoder decoder;
    std::size_t index = 0;
    decoder.feed(bytes.data(), split);
    while (auto view = decoder.next_view()) expect_view(*view, index++);
    decoder.feed(bytes.data() + split, bytes.size() - split);
    while (auto view = decoder.next_view()) expect_view(*view, index++);
    ASSERT_EQ(index, 7u) << "split at byte " << split;
  }
}

// Backpressure shape: many frames arrive in one feed, only some are
// consumed before the reader pauses. The frames left buffered must stay
// valid in place across the pause and across the compaction the next
// feed() performs (the consumed prefix is > 4 KiB by then).
TEST(FrameView, BufferedFramesSurviveCompactionAtNextFeed) {
  std::vector<std::uint8_t> bytes;
  constexpr std::size_t kFrames = 100;
  for (std::size_t i = 0; i < kFrames; ++i) {
    FrameEncoder::encode_datapoint(bytes, sample_at(static_cast<double>(i)));
  }
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  for (std::size_t i = 0; i < kFrames / 2; ++i) {  // consume half, "pause"
    auto view = decoder.next_view();
    ASSERT_TRUE(view.has_value());
    data::RawDatapoint datapoint;
    view->datapoint(datapoint);
    ASSERT_EQ(datapoint, sample_at(static_cast<double>(i)));
  }
  // "Resume": more bytes arrive; the consumed prefix (50 frames, 6.4 KB)
  // is compacted away and the second half must still parse exactly.
  std::vector<std::uint8_t> more;
  FrameEncoder::encode_datapoint(more, sample_at(1000.0));
  decoder.feed(more.data(), more.size());
  for (std::size_t i = kFrames / 2; i < kFrames; ++i) {
    auto view = decoder.next_view();
    ASSERT_TRUE(view.has_value());
    data::RawDatapoint datapoint;
    view->datapoint(datapoint);
    ASSERT_EQ(datapoint, sample_at(static_cast<double>(i)));
  }
  auto view = decoder.next_view();
  ASSERT_TRUE(view.has_value());
  data::RawDatapoint datapoint;
  view->datapoint(datapoint);
  EXPECT_EQ(datapoint, sample_at(1000.0));
  EXPECT_FALSE(decoder.next_view().has_value());
}

// Detach-before-reuse: a payload copied out of a view stays intact after
// the decoder moves on (and after a feed() compaction reuses the bytes
// the view aliased).
TEST(FrameView, DetachedCopySurvivesDecoderReuse) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_datapoint(bytes, sample_at(7.0));
  FrameEncoder::encode_datapoint(bytes, sample_at(8.0));
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());

  auto first = decoder.next_view();
  ASSERT_TRUE(first.has_value());
  data::RawDatapoint detached;
  first->datapoint(detached);  // detach: copy out before the next call

  ASSERT_TRUE(decoder.next_view().has_value());  // invalidates `first`
  std::vector<std::uint8_t> refill(8192, 0xEE);
  decoder.feed(refill.data(), 0);  // compaction point, view bytes dead

  EXPECT_EQ(detached, sample_at(7.0));
}

// next() is a materializing wrapper over next_view(): both paths decode
// the same stream to the same frames (the owned path just pays the copy).
TEST(FrameView, NextMaterializesExactlyWhatViewsYield) {
  const std::vector<std::uint8_t> bytes = encode_all();
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  std::vector<Frame> frames;
  while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
  expect_all_frames(frames);
}

// bytes_needed() and next_view() size frames through one shared helper;
// feeding exactly bytes_needed() at every step must walk the stream
// frame by frame without ever stalling or over-asking.
TEST(FrameView, BytesNeededDrivesExactProgress) {
  const std::vector<std::uint8_t> bytes = encode_all();
  FrameDecoder decoder;
  std::size_t fed = 0;
  std::size_t index = 0;
  while (index < 7u) {
    while (auto view = decoder.next_view()) expect_view(*view, index++);
    if (index == 7u) break;
    const std::size_t need = decoder.bytes_needed();
    ASSERT_GE(need, 1u);
    ASSERT_LE(fed + need, bytes.size())
        << "decoder over-asked at frame " << index;
    decoder.feed(bytes.data() + fed, need);
    fed += need;
  }
  EXPECT_EQ(index, 7u);
}

// A persistent decoder carries bytes across receive_frame calls, so a
// peer that writes everything in one burst still yields frame-by-frame.
TEST(BlockingReceive, PersistentDecoderAcrossCalls) {
  TcpListener listener(0);
  std::thread client([port = listener.port()] {
    TcpStream stream = TcpStream::connect("127.0.0.1", port);
    const std::vector<std::uint8_t> bytes = encode_all();
    stream.send_all(bytes.data(), bytes.size());
  });
  auto server_side = listener.accept();
  ASSERT_TRUE(server_side.has_value());
  FrameDecoder decoder;
  std::vector<Frame> frames;
  while (auto frame = receive_frame(*server_side, decoder)) {
    frames.push_back(std::move(*frame));
  }
  expect_all_frames(frames);
  client.join();
}

}  // namespace
}  // namespace f2pm::net
