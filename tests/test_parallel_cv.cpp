#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "ml/cross_validation.hpp"
#include "ml/grid_search.hpp"
#include "ml/registry.hpp"
#include "ml/svr.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

void make_quadratic_data(std::size_t n, util::Rng& rng, linalg::Matrix& x,
                         std::vector<double>& y) {
  x = linalg::Matrix(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    x(i, 1) = rng.uniform(0.0, 4.0);
    y[i] = x(i, 0) * x(i, 0) + 0.5 * x(i, 1) + rng.normal(0.0, 0.05);
  }
}

void expect_identical(const CrossValidationResult& a,
                      const CrossValidationResult& b) {
  EXPECT_DOUBLE_EQ(a.mean_mae, b.mean_mae);
  EXPECT_DOUBLE_EQ(a.std_mae, b.std_mae);
  EXPECT_DOUBLE_EQ(a.mean_soft_mae, b.mean_soft_mae);
  EXPECT_DOUBLE_EQ(a.mean_rae, b.mean_rae);
  ASSERT_EQ(a.folds.size(), b.folds.size());
  for (std::size_t f = 0; f < a.folds.size(); ++f) {
    EXPECT_DOUBLE_EQ(a.folds[f].mae, b.folds[f].mae);
    EXPECT_DOUBLE_EQ(a.folds[f].rae, b.folds[f].rae);
    EXPECT_DOUBLE_EQ(a.folds[f].soft_mae, b.folds[f].soft_mae);
  }
}

TEST(ParallelCrossValidation, MatchesSerialBitwise) {
  util::Rng data_rng(21);
  linalg::Matrix x;
  std::vector<double> y;
  make_quadratic_data(120, data_rng, x, y);
  const auto factory = [] { return make_model("linear"); };
  util::Rng serial_rng(7);
  util::Rng parallel_rng(7);
  const auto serial =
      k_fold_cross_validation(factory, x, y, 6, serial_rng, 1.0, false);
  const auto parallel =
      k_fold_cross_validation(factory, x, y, 6, parallel_rng, 1.0, true);
  expect_identical(serial, parallel);
}

TEST(ParallelCrossValidation, MatchesSerialForSvr) {
  // The SVR fit itself uses the shared pool (kernel rows, gradient
  // chunks); nested parallelism must neither deadlock nor perturb the
  // result.
  util::Rng data_rng(22);
  linalg::Matrix x;
  std::vector<double> y;
  make_quadratic_data(90, data_rng, x, y);
  const auto factory = [] {
    SvrOptions options;
    options.c = 10.0;
    options.kernel.gamma = 0.5;
    return std::make_unique<KernelSvr>(options);
  };
  util::Rng serial_rng(3);
  util::Rng parallel_rng(3);
  const auto serial =
      k_fold_cross_validation(factory, x, y, 5, serial_rng, 1.0, false);
  const auto parallel =
      k_fold_cross_validation(factory, x, y, 5, parallel_rng, 1.0, true);
  expect_identical(serial, parallel);
}

TEST(ParallelGridSearch, MatchesSerialBitwise) {
  util::Rng data_rng(23);
  linalg::Matrix x;
  std::vector<double> y;
  make_quadratic_data(100, data_rng, x, y);
  const ParameterGrid grid{{"ridge.lambda", {"0.01", "1.0", "100.0"}},
                           {"unused.flag", {"a", "b"}}};
  util::Rng serial_rng(11);
  util::Rng parallel_rng(11);
  const auto serial =
      grid_search("ridge", grid, x, y, 4, serial_rng, 1.0, {}, false);
  const auto parallel =
      grid_search("ridge", grid, x, y, 4, parallel_rng, 1.0, {}, true);
  ASSERT_EQ(serial.points.size(), 6u);
  ASSERT_EQ(parallel.points.size(), 6u);
  for (std::size_t p = 0; p < serial.points.size(); ++p) {
    EXPECT_DOUBLE_EQ(serial.points[p].mean_mae, parallel.points[p].mean_mae);
    EXPECT_DOUBLE_EQ(serial.points[p].std_mae, parallel.points[p].std_mae);
    EXPECT_DOUBLE_EQ(serial.points[p].mean_soft_mae,
                     parallel.points[p].mean_soft_mae);
    EXPECT_DOUBLE_EQ(serial.points[p].mean_rae, parallel.points[p].mean_rae);
    EXPECT_EQ(serial.points[p].params.get_string("ridge.lambda", ""),
              parallel.points[p].params.get_string("ridge.lambda", ""));
  }
}

TEST(ParallelGridSearch, GridPointCarriesSoftMaeAndRae) {
  util::Rng data_rng(24);
  linalg::Matrix x;
  std::vector<double> y;
  make_quadratic_data(80, data_rng, x, y);
  const ParameterGrid grid{{"ridge.lambda", {"0.1", "10.0"}}};
  util::Rng rng(5);
  const double threshold = 0.5;
  const auto result =
      grid_search("ridge", grid, x, y, 4, rng, threshold, {}, true);
  for (const GridPoint& point : result.points) {
    // Soft MAE forgives errors below the threshold, so it can only shrink
    // relative to MAE; both must be populated (RAE of a sane model on this
    // data is finite and positive).
    EXPECT_LE(point.mean_soft_mae, point.mean_mae);
    EXPECT_GE(point.mean_soft_mae, 0.0);
    EXPECT_GT(point.mean_rae, 0.0);
    EXPECT_TRUE(std::isfinite(point.mean_rae));
  }
}

}  // namespace
}  // namespace f2pm::ml
