#include "util/config.hpp"

#include <gtest/gtest.h>

namespace f2pm::util {
namespace {

TEST(Config, ParsesKeyValueLines) {
  const Config config = Config::from_string(
      "alpha = 1.5\n"
      "# a comment\n"
      "name = hello world  # trailing comment\n"
      "\n"
      "flag=true\n");
  EXPECT_DOUBLE_EQ(config.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(config.get_string("name", ""), "hello world");
  EXPECT_TRUE(config.get_bool("flag", false));
}

TEST(Config, LaterKeysOverrideEarlier) {
  const Config config = Config::from_string("x = 1\nx = 2\n");
  EXPECT_EQ(config.get_int("x", 0), 2);
}

TEST(Config, MissingEqualsSignThrows) {
  EXPECT_THROW(Config::from_string("just a line\n"), std::invalid_argument);
}

TEST(Config, DefaultsWhenAbsent) {
  const Config config;
  EXPECT_EQ(config.get_int("nope", 9), 9);
  EXPECT_DOUBLE_EQ(config.get_double("nope", 1.25), 1.25);
  EXPECT_EQ(config.get_string("nope", "d"), "d");
  EXPECT_TRUE(config.get_bool("nope", true));
  EXPECT_FALSE(config.contains("nope"));
}

TEST(Config, ApplyArgsParsesDoubleDashPairs) {
  Config config;
  const char* argv[] = {"prog", "--runs=5", "ignored", "--name=x",
                        "--noequals"};
  config.apply_args(5, argv);
  EXPECT_EQ(config.get_int("runs", 0), 5);
  EXPECT_EQ(config.get_string("name", ""), "x");
  EXPECT_FALSE(config.contains("noequals"));
}

TEST(Config, BooleanSpellings) {
  const Config config = Config::from_string(
      "a = yes\nb = OFF\nc = 1\nd = False\n");
  EXPECT_TRUE(config.get_bool("a", false));
  EXPECT_FALSE(config.get_bool("b", true));
  EXPECT_TRUE(config.get_bool("c", false));
  EXPECT_FALSE(config.get_bool("d", true));
}

TEST(Config, MalformedTypedValuesThrow) {
  const Config config = Config::from_string("x = notanumber\n");
  EXPECT_THROW(config.get_double("x", 0.0), std::invalid_argument);
  EXPECT_THROW(config.get_int("x", 0), std::invalid_argument);
  EXPECT_THROW(config.get_bool("x", false), std::invalid_argument);
}

TEST(Config, KeysPreserveInsertionOrder) {
  Config config;
  config.set("b", "1");
  config.set("a", "2");
  config.set("b", "3");  // update, not reinsert
  EXPECT_EQ(config.keys(), (std::vector<std::string>{"b", "a"}));
}

}  // namespace
}  // namespace f2pm::util
