// Property-based save/load round-trip over every model in the registry:
// for each seed, every model is constructed with randomly drawn
// hyperparameters, fitted on random data, serialized, reloaded, and must
// produce BIT-IDENTICAL batched predictions. Exact equality (not
// EXPECT_NEAR) is the property the ModelStore hot-swap relies on — a
// reloaded model is the same function, not an approximation of it.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/model.hpp"
#include "ml/registry.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

constexpr std::size_t kRows = 60;
constexpr std::size_t kCols = 4;
constexpr std::size_t kProbeRows = 32;

std::string fmt(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

std::string fmt(std::int64_t value) { return std::to_string(value); }

const char* pick_split_mode(util::Rng& rng) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return "presort";
    case 1: return "naive";
    default: return "histogram";
  }
}

const char* pick_kernel(util::Rng& rng) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return "rbf";
    case 1: return "linear";
    default: return "poly";
  }
}

/// Draws a random-but-sane hyperparameter set for `name`. Every key the
/// registry consults for that model gets a value, so the round-trip
/// property is exercised across the whole configuration space, not just
/// the defaults.
util::Config random_config(const std::string& name, util::Rng& rng) {
  util::Config params;
  if (name == "ridge") {
    params.set("ridge.lambda", fmt(rng.uniform(1e-4, 10.0)));
  } else if (name == "lasso") {
    params.set("lasso.lambda", fmt(rng.uniform(1e-4, 5.0)));
    params.set("lasso.max_iterations", fmt(rng.uniform_int(200, 2000)));
    params.set("lasso.tolerance", fmt(rng.uniform(1e-9, 1e-6)));
  } else if (name == "reptree") {
    params.set("reptree.min_instances", fmt(rng.uniform_int(1, 8)));
    params.set("reptree.max_depth", fmt(rng.uniform_int(0, 6)));
    params.set("reptree.num_folds", fmt(rng.uniform_int(2, 4)));
    params.set("reptree.prune", rng.bernoulli(0.5) ? "true" : "false");
    params.set("reptree.seed", fmt(rng.uniform_int(1, 1 << 20)));
    params.set("reptree.split_mode", pick_split_mode(rng));
    params.set("reptree.histogram_bins", fmt(rng.uniform_int(8, 64)));
  } else if (name == "m5p") {
    params.set("m5p.min_instances", fmt(rng.uniform_int(2, 10)));
    params.set("m5p.prune", rng.bernoulli(0.5) ? "true" : "false");
    params.set("m5p.smoothing", rng.bernoulli(0.5) ? "true" : "false");
    params.set("m5p.smoothing_k", fmt(rng.uniform(1.0, 30.0)));
    params.set("m5p.split_mode", pick_split_mode(rng));
    params.set("m5p.histogram_bins", fmt(rng.uniform_int(8, 64)));
  } else if (name == "svm") {
    params.set("svm.kernel", pick_kernel(rng));
    params.set("svm.gamma", fmt(rng.uniform(1e-3, 1.0)));
    params.set("svm.coef0", fmt(rng.uniform(0.0, 2.0)));
    params.set("svm.degree", fmt(rng.uniform_int(2, 3)));
    params.set("svm.c", fmt(rng.uniform(0.1, 10.0)));
    params.set("svm.epsilon", fmt(rng.uniform(1e-3, 0.1)));
    params.set("svm.shrinking", rng.bernoulli(0.5) ? "true" : "false");
  } else if (name == "svm2") {
    params.set("svm2.kernel", pick_kernel(rng));
    params.set("svm2.gamma", fmt(rng.uniform(0.1, 10.0)));
    params.set("svm2.coef0", fmt(rng.uniform(0.0, 2.0)));
    params.set("svm2.degree", fmt(rng.uniform_int(2, 3)));
  } else if (name == "knn") {
    params.set("knn.k", fmt(rng.uniform_int(1, 10)));
    params.set("knn.distance_weighted", rng.bernoulli(0.5) ? "true" : "false");
  } else if (name == "bagging") {
    params.set("bagging.num_trees", fmt(rng.uniform_int(2, 8)));
    params.set("bagging.sample_fraction", fmt(rng.uniform(0.5, 1.0)));
    params.set("bagging.seed", fmt(rng.uniform_int(1, 1 << 20)));
    params.set("bagging.split_mode", pick_split_mode(rng));
    params.set("bagging.histogram_bins", fmt(rng.uniform_int(8, 64)));
  } else if (name == "gbdt") {
    params.set("gbdt.n_rounds", fmt(rng.uniform_int(1, 12)));
    params.set("gbdt.learning_rate", fmt(rng.uniform(0.05, 1.0)));
    params.set("gbdt.max_depth", fmt(rng.uniform_int(0, 5)));
    params.set("gbdt.max_leaves",
               rng.bernoulli(0.3) ? "0" : fmt(rng.uniform_int(4, 16)));
    params.set("gbdt.min_instances", fmt(rng.uniform_int(1, 6)));
    params.set("gbdt.row_subsample", fmt(rng.uniform(0.5, 1.0)));
    params.set("gbdt.feature_subsample", fmt(rng.uniform(0.5, 1.0)));
    params.set("gbdt.histogram_bins", fmt(rng.uniform_int(8, 64)));
    params.set("gbdt.bin_mode", rng.bernoulli(0.5) ? "quantile" : "width");
    params.set("gbdt.base_score", rng.bernoulli(0.5) ? "mean" : "zero");
    params.set("gbdt.seed", fmt(rng.uniform_int(1, 1 << 20)));
    if (rng.bernoulli(0.4)) {
      params.set("gbdt.early_stopping_rounds", fmt(rng.uniform_int(1, 4)));
      params.set("gbdt.validation_fraction", fmt(rng.uniform(0.1, 0.3)));
    }
  } else if (name == "cascade") {
    params.set("cascade.horizon_seconds", fmt(rng.uniform(5.0, 80.0)));
    params.set("cascade.band_quantile", fmt(rng.uniform(0.0, 1.0)));
    if (rng.bernoulli(0.5)) {
      params.set("cascade.screen_lasso_lambda", fmt(rng.uniform(0.01, 100.0)));
    }
    params.set("cascade.screen", rng.bernoulli(0.5) ? "linear" : "reptree");
    params.set("cascade.screen.reptree.max_depth", "2");
    switch (rng.uniform_int(0, 2)) {
      case 0: params.set("cascade.full", "reptree"); break;
      case 1: params.set("cascade.full", "m5p"); break;
      default:
        params.set("cascade.full", "gbdt");
        params.set("cascade.full.gbdt.n_rounds", "4");
        params.set("cascade.full.gbdt.max_leaves", "6");
        break;
    }
  }
  // "linear" has no hyperparameters; an empty config is its whole space.
  return params;
}

linalg::Matrix random_design(util::Rng& rng, std::size_t rows) {
  linalg::Matrix x(rows, kCols);
  for (std::size_t r = 0; r < rows; ++r) {
    x(r, 0) = rng.uniform(-2.0, 2.0);
    x(r, 1) = rng.uniform(0.0, 10.0);
    x(r, 2) = rng.uniform(-1.0, 1.0);
    x(r, 3) = rng.uniform(50.0, 150.0);
  }
  return x;
}

std::vector<double> random_targets(const linalg::Matrix& x, util::Rng& rng) {
  std::vector<double> y(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    y[r] = 40.0 + 3.0 * x(r, 0) + 0.2 * x(r, 1) * x(r, 1) - 0.1 * x(r, 3) +
           rng.normal(0.0, 0.5);
  }
  return y;
}

class ModelRoundTripProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelRoundTripProperty, ReloadedModelIsBitIdentical) {
  const std::uint64_t seed = GetParam();
  for (const std::string& name : all_model_names()) {
    SCOPED_TRACE("model " + name + " seed " + std::to_string(seed));
    util::Rng rng(seed * 1000003 + std::hash<std::string>{}(name));
    const util::Config params = random_config(name, rng);

    const linalg::Matrix x = random_design(rng, kRows);
    const std::vector<double> y = random_targets(x, rng);
    const auto model = make_model(name, params);
    model->fit(x, y);

    std::stringstream buffer;
    save_model(*model, buffer);
    const auto loaded = load_model(buffer);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->name(), name);
    EXPECT_TRUE(loaded->is_fitted());
    EXPECT_EQ(loaded->num_inputs(), kCols);

    // Batched predictions on unseen rows must match bit for bit: compare
    // the IEEE-754 payloads, not a tolerance.
    const linalg::Matrix probes = random_design(rng, kProbeRows);
    const std::vector<double> expected = model->predict(probes);
    const std::vector<double> actual = loaded->predict(probes);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(actual[i]),
                std::bit_cast<std::uint64_t>(expected[i]))
          << "probe " << i << ": " << actual[i] << " vs " << expected[i];
    }

    // The property must also hold through a second generation: a model
    // saved from a loaded model is the same archive semantics.
    std::stringstream second;
    save_model(*loaded, second);
    const auto twice = load_model(second);
    const std::vector<double> again = twice->predict(probes);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(again[i]),
                std::bit_cast<std::uint64_t>(expected[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelRoundTripProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace f2pm::ml
