#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace f2pm::data {
namespace {

std::vector<AggregatedDatapoint> make_points(std::size_t n,
                                             std::size_t num_runs) {
  std::vector<AggregatedDatapoint> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    points[i].run_index = i % num_runs;
    points[i].window_end = static_cast<double>(i) * 30.0;
    points[i].rttf = 1000.0 - static_cast<double>(i);
    points[i].means[0] = static_cast<double>(i);
    points[i].intergen_mean = 1.5;
  }
  return points;
}

TEST(Dataset, BuildShapesAndProvenance) {
  const Dataset dataset = build_dataset(make_points(10, 3));
  EXPECT_EQ(dataset.num_rows(), 10u);
  EXPECT_EQ(dataset.num_features(), kInputCount);
  EXPECT_EQ(dataset.feature_names.size(), kInputCount);
  EXPECT_EQ(dataset.y.size(), 10u);
  EXPECT_EQ(dataset.run_index[4], 1u);
  EXPECT_DOUBLE_EQ(dataset.window_end[2], 60.0);
  EXPECT_DOUBLE_EQ(dataset.x(3, 0), 3.0);
  EXPECT_DOUBLE_EQ(dataset.x(3, kInputCount - 2), 1.5);
}

TEST(Dataset, CensoredWindowsExcludedFromTrainingByDefault) {
  auto points = make_points(10, 2);
  points[3].censored = true;
  points[7].censored = true;

  // Default: censored rows never become training labels.
  const Dataset trained = build_dataset(points);
  EXPECT_EQ(trained.num_rows(), 8u);
  for (const double label : trained.y) {
    EXPECT_NE(label, points[3].rttf);
    EXPECT_NE(label, points[7].rttf);
  }
  // Row order and provenance of the kept points are preserved.
  EXPECT_DOUBLE_EQ(trained.x(3, 0), 4.0);  // point 4 shifted into row 3
  EXPECT_DOUBLE_EQ(trained.window_end[3], 120.0);

  // Label-free uses (feature statistics, standardization) can opt in.
  const Dataset all = build_dataset(points, /*include_censored=*/true);
  EXPECT_EQ(all.num_rows(), 10u);
}

TEST(Dataset, FeatureIndexLookup) {
  const Dataset dataset = build_dataset(make_points(2, 1));
  EXPECT_EQ(dataset.feature_index("n_threads"), 0u);
  EXPECT_THROW(dataset.feature_index("nope"), std::out_of_range);
}

TEST(Dataset, SelectFeaturesKeepsLabelsAndNames) {
  const Dataset dataset = build_dataset(make_points(5, 2));
  const Dataset sel = dataset.select_features({0, kInputCount - 2});
  EXPECT_EQ(sel.num_features(), 2u);
  EXPECT_EQ(sel.feature_names[1], "intergen_time");
  EXPECT_EQ(sel.y, dataset.y);
  EXPECT_DOUBLE_EQ(sel.x(3, 0), 3.0);
  EXPECT_THROW(dataset.select_features({kInputCount}), std::out_of_range);
}

TEST(Dataset, SelectRows) {
  const Dataset dataset = build_dataset(make_points(5, 2));
  const Dataset sel = dataset.select_rows({4, 0});
  EXPECT_EQ(sel.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(sel.y[0], 996.0);
  EXPECT_DOUBLE_EQ(sel.y[1], 1000.0);
  EXPECT_THROW(dataset.select_rows({99}), std::out_of_range);
}

TEST(SplitDataset, PartitionIsDisjointAndComplete) {
  const Dataset dataset = build_dataset(make_points(100, 4));
  util::Rng rng(5);
  const auto split = split_dataset(dataset, 0.7, rng);
  EXPECT_EQ(split.train.num_rows(), 70u);
  EXPECT_EQ(split.validation.num_rows(), 30u);
  // Reconstruct the y multiset: nothing lost, nothing duplicated.
  std::multiset<double> all(dataset.y.begin(), dataset.y.end());
  std::multiset<double> parts(split.train.y.begin(), split.train.y.end());
  parts.insert(split.validation.y.begin(), split.validation.y.end());
  EXPECT_EQ(all, parts);
}

TEST(SplitDataset, InvalidFractionThrows) {
  const Dataset dataset = build_dataset(make_points(10, 2));
  util::Rng rng(5);
  EXPECT_THROW(split_dataset(dataset, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(split_dataset(dataset, 1.0, rng), std::invalid_argument);
}

TEST(SplitDataset, DeterministicGivenSeed) {
  const Dataset dataset = build_dataset(make_points(50, 3));
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  const auto a = split_dataset(dataset, 0.6, rng_a);
  const auto b = split_dataset(dataset, 0.6, rng_b);
  EXPECT_EQ(a.train.y, b.train.y);
  EXPECT_EQ(a.validation.y, b.validation.y);
}

TEST(SplitByRun, NoRunStraddlesTheBoundary) {
  const Dataset dataset = build_dataset(make_points(60, 6));
  util::Rng rng(11);
  const auto split = split_dataset_by_run(dataset, 0.5, rng);
  std::set<std::size_t> train_runs(split.train.run_index.begin(),
                                   split.train.run_index.end());
  std::set<std::size_t> val_runs(split.validation.run_index.begin(),
                                 split.validation.run_index.end());
  for (std::size_t run : train_runs) EXPECT_EQ(val_runs.count(run), 0u);
  EXPECT_EQ(split.train.num_rows() + split.validation.num_rows(), 60u);
}

}  // namespace
}  // namespace f2pm::data
