#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include "ml/linear_regression.hpp"

#include <cmath>
namespace f2pm::ml {
namespace {

const std::vector<double> kPredicted{10.0, 20.0, 35.0};
const std::vector<double> kActual{12.0, 20.0, 30.0};

TEST(Metrics, MaeMatchesHandComputation) {
  // |10-12| + |20-20| + |35-30| = 7 -> / 3.
  EXPECT_NEAR(mean_absolute_error(kPredicted, kActual), 7.0 / 3.0, 1e-12);
}

TEST(Metrics, MaxAe) {
  EXPECT_DOUBLE_EQ(max_absolute_error(kPredicted, kActual), 5.0);
}

TEST(Metrics, RaeAgainstMeanBaseline) {
  // Ȳ = (12+20+30)/3 = 62/3. Baseline error:
  // |62/3-12| + |62/3-20| + |62/3-30| = 26/3 + 2/3 + 28/3 = 56/3.
  EXPECT_NEAR(relative_absolute_error(kPredicted, kActual), 7.0 / (56.0 / 3.0),
              1e-12);
}

TEST(Metrics, RaeOfMeanPredictorIsOne) {
  const std::vector<double> actual{1.0, 2.0, 3.0};
  const std::vector<double> predicted(3, 2.0);  // mean of y
  EXPECT_NEAR(relative_absolute_error(predicted, actual), 1.0, 1e-12);
}

TEST(Metrics, RaeBaselineUsesSignedMean) {
  // With signed targets, the denominator must be Σ|Ȳ - y_i| with the
  // signed mean Ȳ, not the mean of |y|. Here Ȳ = (-1-1+4)/3 = 2/3, so the
  // baseline error is |2/3+1|*2 + |2/3-4| = 10/3 + 10/3 = 20/3 and the
  // zero predictor scores 6 / (20/3) = 0.9. The old mean-of-|y| baseline
  // (2, giving 3+3+2 = 8) would have reported 0.75.
  const std::vector<double> actual{-1.0, -1.0, 4.0};
  const std::vector<double> predicted{0.0, 0.0, 0.0};
  EXPECT_NEAR(relative_absolute_error(predicted, actual), 0.9, 1e-12);
}

TEST(Metrics, SoftMaeZeroesSmallErrors) {
  // Threshold 3: only |35-30| = 5 survives -> 5/3.
  EXPECT_NEAR(soft_mean_absolute_error(kPredicted, kActual, 3.0), 5.0 / 3.0,
              1e-12);
  // Threshold above every error: zero.
  EXPECT_DOUBLE_EQ(soft_mean_absolute_error(kPredicted, kActual, 10.0), 0.0);
  // Threshold zero: degenerates to the plain MAE.
  EXPECT_NEAR(soft_mean_absolute_error(kPredicted, kActual, 0.0),
              mean_absolute_error(kPredicted, kActual), 1e-12);
}

TEST(Metrics, SoftMaeIsMonotoneInThreshold) {
  double previous = 1e18;
  for (double threshold : {0.0, 1.0, 2.0, 4.0, 6.0}) {
    const double value =
        soft_mean_absolute_error(kPredicted, kActual, threshold);
    EXPECT_LE(value, previous);
    previous = value;
  }
}

TEST(Metrics, NegativeSoftThresholdThrows) {
  EXPECT_THROW(soft_mean_absolute_error(kPredicted, kActual, -1.0),
               std::invalid_argument);
}

TEST(Metrics, RmseAndR2) {
  // errors: -2, 0, 5 -> mse = 29/3.
  EXPECT_NEAR(root_mean_squared_error(kPredicted, kActual),
              std::sqrt(29.0 / 3.0), 1e-12);
  const std::vector<double> perfect = kActual;
  EXPECT_DOUBLE_EQ(r_squared(perfect, kActual), 1.0);
}

TEST(Metrics, SizeMismatchAndEmptyThrow) {
  EXPECT_THROW(mean_absolute_error(kPredicted, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(mean_absolute_error({}, {}), std::invalid_argument);
}

TEST(EvaluateModel, FillsReportAndTimings) {
  linalg::Matrix x_train(50, 1);
  std::vector<double> y_train(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x_train(i, 0) = static_cast<double>(i);
    y_train[i] = 3.0 * static_cast<double>(i) + 1.0;
  }
  linalg::Matrix x_val(10, 1);
  std::vector<double> y_val(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x_val(i, 0) = static_cast<double>(100 + i);
    y_val[i] = 3.0 * static_cast<double>(100 + i) + 1.0;
  }
  LinearRegression model;
  const EvaluationReport report =
      evaluate_model(model, x_train, y_train, x_val, y_val, 0.5);
  EXPECT_EQ(report.model_name, "linear");
  EXPECT_EQ(report.train_rows, 50u);
  EXPECT_EQ(report.validation_rows, 10u);
  EXPECT_NEAR(report.mae, 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(report.soft_mae, 0.0);
  EXPECT_GE(report.training_seconds, 0.0);
  EXPECT_GE(report.validation_seconds, 0.0);
  EXPECT_NEAR(report.r2, 1.0, 1e-9);
}

}  // namespace
}  // namespace f2pm::ml
