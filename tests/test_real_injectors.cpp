#include "sysmon/real_injectors.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace f2pm::sysmon {
namespace {

RealLeakConfig fast_leaks() {
  RealLeakConfig config;
  config.size_min_bytes = 4 * 1024;
  config.size_max_bytes = 16 * 1024;
  config.mean_interval_min_seconds = 0.001;
  config.mean_interval_max_seconds = 0.002;
  config.max_total_bytes = 4 * 1024 * 1024;
  return config;
}

TEST(RealMemoryLeaker, ActuallyLeaksDirtyMemory) {
  RealMemoryLeaker leaker(fast_leaks(), 1);
  leaker.start();
  EXPECT_TRUE(leaker.running());
  // Wait until a few leaks happened (bounded spin).
  for (int i = 0; i < 200 && leaker.leaks_performed() < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(leaker.leaks_performed(), 5u);
  EXPECT_GE(leaker.leaked_bytes(), 5u * 4 * 1024);
  leaker.stop();
  EXPECT_FALSE(leaker.running());
  // Teardown released the chunks.
  EXPECT_EQ(leaker.leaked_bytes(), 0u);
}

TEST(RealMemoryLeaker, RespectsTheSafetyCap) {
  RealLeakConfig config = fast_leaks();
  config.max_total_bytes = 64 * 1024;
  RealMemoryLeaker leaker(config, 2);
  leaker.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_LE(leaker.leaked_bytes(), config.max_total_bytes);
  leaker.stop();
}

TEST(RealMemoryLeaker, MeanIntervalDrawnFromRange) {
  RealLeakConfig config = fast_leaks();
  config.mean_interval_min_seconds = 0.5;
  config.mean_interval_max_seconds = 1.5;
  RealMemoryLeaker leaker(config, 3);
  leaker.start();
  EXPECT_GE(leaker.chosen_mean_interval(), 0.5);
  EXPECT_LE(leaker.chosen_mean_interval(), 1.5);
  leaker.stop();
}

TEST(RealMemoryLeaker, DoubleStartThrows) {
  RealMemoryLeaker leaker(fast_leaks(), 4);
  leaker.start();
  EXPECT_THROW(leaker.start(), std::logic_error);
  leaker.stop();
  EXPECT_NO_THROW(leaker.start());
  leaker.stop();
}

TEST(RealThreadLeaker, SpawnsAndReapsStrayThreads) {
  RealThreadConfig config;
  config.mean_interval_min_seconds = 0.001;
  config.mean_interval_max_seconds = 0.002;
  config.max_threads = 8;
  RealThreadLeaker leaker(config, 5);
  leaker.start();
  for (int i = 0; i < 200 && leaker.threads_spawned() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(leaker.threads_spawned(), 3u);
  EXPECT_LE(leaker.threads_spawned(), config.max_threads);
  leaker.stop();
  EXPECT_FALSE(leaker.running());
}

TEST(RealThreadLeaker, StopIsIdempotentAndDestructorSafe) {
  RealThreadConfig config;
  config.mean_interval_min_seconds = 0.001;
  config.mean_interval_max_seconds = 0.002;
  {
    RealThreadLeaker leaker(config, 6);
    leaker.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    leaker.stop();
    leaker.stop();  // idempotent
  }                 // destructor after stop: no hang, no crash
  SUCCEED();
}

}  // namespace
}  // namespace f2pm::sysmon
