// Integration tests for the f2pm_serve prediction service: concurrent
// sessions, model hot-swap under load, eviction of misbehaving clients,
// admission control, idle timeouts, graceful drain and legacy clients.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/aggregation.hpp"
#include "ml/cascade.hpp"
#include "ml/gbdt.hpp"
#include "ml/linear_regression.hpp"
#include "ml/model.hpp"
#include "net/fmc.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"

namespace f2pm::serve {
namespace {

using namespace std::chrono_literals;

data::RawDatapoint sample_at(double tgen) {
  data::RawDatapoint sample;
  sample.tgen = tgen;
  sample[data::FeatureId::kMemUsed] = 500.0 + tgen;
  sample[data::FeatureId::kCpuUser] = 10.0;
  return sample;
}

// A fitted model that predicts exactly `value` for every input: OLS on a
// full-rank random design with a constant target has the unique exact
// solution beta = 0, intercept = value.
std::shared_ptr<const ml::Regressor> constant_model(double value) {
  const std::size_t rows = data::kInputCount + 8;
  linalg::Matrix x(rows, data::kInputCount);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < data::kInputCount; ++c) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      x(r, c) = static_cast<double>(state >> 40) / 1e6;
    }
  }
  std::vector<double> y(rows, value);
  auto model = std::make_shared<ml::LinearRegression>();
  model->fit(x, y);
  return model;
}

ServiceOptions fast_options() {
  ServiceOptions options;
  options.aggregation.window_seconds = 4.0;
  options.aggregation.min_samples_per_window = 2;
  options.scoring_threads = 2;
  return options;
}

// Polls `predicate` until it holds or `deadline` passes.
template <typename Predicate>
bool eventually(Predicate predicate,
                std::chrono::milliseconds deadline = 5000ms) {
  const auto end = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < end) {
    if (predicate()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return predicate();
}

TEST(ModelStore, ValidatesBeforePublishing) {
  ModelStore store;
  EXPECT_EQ(store.version(), 0u);
  EXPECT_EQ(store.current(), nullptr);

  // Unfitted model: rejected, store unchanged.
  EXPECT_THROW(store.swap(std::make_shared<ml::LinearRegression>()),
               std::invalid_argument);
  EXPECT_EQ(store.version(), 0u);

  // Width mismatch with the selected-columns layout: rejected.
  EXPECT_THROW(store.swap(constant_model(1.0), {0, 1, 2}),
               std::invalid_argument);

  EXPECT_EQ(store.swap(constant_model(1.0)), 1u);
  EXPECT_EQ(store.version(), 1u);
  EXPECT_EQ(store.swap(constant_model(2.0)), 2u);
  ASSERT_NE(store.current(), nullptr);
  EXPECT_EQ(store.current()->version, 2u);
}

TEST(PredictionService, EndToEndSingleClient) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(1000.0));
  PredictionService service(fast_options(), store);

  net::FeatureMonitorClient client("127.0.0.1", service.port());
  client.hello("client-0");
  for (int i = 0; i <= 6; ++i) client.send(sample_at(i));

  auto prediction = client.wait_prediction();
  ASSERT_TRUE(prediction.has_value());
  EXPECT_NEAR(prediction->rttf, 1000.0, 1e-6);
  EXPECT_EQ(prediction->model_version, 1u);
  EXPECT_DOUBLE_EQ(prediction->window_end, 4.0);

  client.finish();
  service.stop();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions_accepted, 1u);
  EXPECT_EQ(stats.sessions_active, 0u);
  EXPECT_EQ(stats.datapoints_received, 7u);
  EXPECT_GE(stats.predictions_sent, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(PredictionService, SixteenConcurrentSessions) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(777.0));
  PredictionService service(fast_options(), store);

  constexpr int kClients = 16;
  constexpr int kPointsPerClient = 13;  // 3 full windows
  std::atomic<int> predictions_ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::FeatureMonitorClient client("127.0.0.1", service.port());
      client.hello("client-" + std::to_string(c));
      for (int i = 0; i < kPointsPerClient; ++i) client.send(sample_at(i));
      int received = 0;
      while (auto prediction = client.wait_prediction()) {
        EXPECT_NEAR(prediction->rttf, 777.0, 1e-6);
        if (++received == 3) break;
      }
      if (received == 3) ++predictions_ok;
      client.finish();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(predictions_ok.load(), kClients);

  service.stop();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions_accepted, 16u);
  EXPECT_EQ(stats.datapoints_received,
            static_cast<std::uint64_t>(kClients) * kPointsPerClient);
  EXPECT_GE(stats.predictions_sent, static_cast<std::uint64_t>(kClients) * 3);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// Swap the model while clients are streaming. Every prediction must be
// consistent: version 1 always scores 1000, version 2 always 5000 — a
// half-loaded or torn model would break the pairing.
TEST(PredictionService, HotSwapUnderLoadNeverMixesModels) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(1000.0));
  PredictionService service(fast_options(), store);

  constexpr int kClients = 8;
  std::atomic<bool> mismatch{false};
  std::atomic<bool> keep_streaming{true};
  std::atomic<int> clients_on_v2{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::FeatureMonitorClient client("127.0.0.1", service.port());
      client.hello("swap-" + std::to_string(c));
      bool saw_v2 = false;
      const auto check = [&](const net::Prediction& prediction) {
        const double expected =
            prediction.model_version == 1 ? 1000.0 : 5000.0;
        if (std::abs(prediction.rttf - expected) > 1e-6) mismatch = true;
        if (prediction.model_version == 2 && !saw_v2) {
          saw_v2 = true;
          ++clients_on_v2;
        }
      };
      double tgen = 0.0;
      while (keep_streaming.load()) {
        client.send(sample_at(tgen));
        tgen += 1.0;
        while (auto prediction = client.poll_prediction()) {
          check(*prediction);
        }
      }
      client.finish();
      // Drain whatever the server still flushes for this session.
      while (auto prediction = client.wait_prediction()) check(*prediction);
    });
  }

  std::this_thread::sleep_for(30ms);  // let streams get going
  EXPECT_EQ(store->swap(constant_model(5000.0)), 2u);
  EXPECT_TRUE(eventually(
      [&] { return clients_on_v2.load() == kClients; }, 15000ms))
      << "only " << clients_on_v2.load()
      << " clients ever saw the new model";
  keep_streaming = false;

  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(mismatch.load());
  service.stop();
  EXPECT_EQ(service.stats().protocol_errors, 0u);
}

TEST(PredictionService, HotSwapFullOnlyArchiveForCascadeUnderLoad) {
  // A cascade of two OLS stages fit to a constant target predicts exactly
  // `value` (see constant_model); value < horizon means every window takes
  // the promoted (full-stage) route, so the swap also proves the serve
  // tier counts promotions.
  const auto constant_cascade = [](double value) {
    const std::size_t rows = data::kInputCount + 8;
    linalg::Matrix x(rows, data::kInputCount);
    std::uint64_t state = 0x2545f4914f6cdd1dull;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < data::kInputCount; ++c) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x(r, c) = static_cast<double>(state >> 40) / 1e6;
      }
    }
    const std::vector<double> y(rows, value);
    ml::CascadeOptions options;
    options.horizon_seconds = 600.0;
    auto cascade = std::make_unique<ml::CascadeRegressor>(
        std::make_unique<ml::LinearRegression>(),
        std::make_unique<ml::LinearRegression>(), options);
    cascade->fit(x, y);
    return cascade;
  };

  const std::string path = testing::TempDir() + "f2pm_cascade_swap_" +
                           std::to_string(::getpid()) + ".bin";
  {
    std::ofstream out(path, std::ios::binary);
    ml::save_model(*constant_model(1000.0), out);
  }
  auto store = std::make_shared<ModelStore>();
  store->load_file(path);
  PredictionService service(fast_options(), store);

  constexpr int kClients = 6;
  std::atomic<bool> mismatch{false};
  std::atomic<bool> keep_streaming{true};
  std::atomic<int> clients_on_v2{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::FeatureMonitorClient client("127.0.0.1", service.port());
      client.hello("cascade-swap-" + std::to_string(c));
      bool saw_v2 = false;
      const auto check = [&](const net::Prediction& prediction) {
        // v1 = full-only archive, v2 = cascade archive (promoted route).
        const double expected =
            prediction.model_version == 1 ? 1000.0 : 100.0;
        if (std::abs(prediction.rttf - expected) > 1e-6) mismatch = true;
        if (prediction.model_version == 2 && !saw_v2) {
          saw_v2 = true;
          ++clients_on_v2;
        }
      };
      double tgen = 0.0;
      while (keep_streaming.load()) {
        client.send(sample_at(tgen));
        tgen += 1.0;
        while (auto prediction = client.poll_prediction()) check(*prediction);
      }
      client.finish();
      while (auto prediction = client.wait_prediction()) check(*prediction);
    });
  }

  std::this_thread::sleep_for(30ms);  // let streams get going
  {  // atomic replace: write aside, then rename over
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::binary);
    ml::save_model(*constant_cascade(100.0), out);
    out.close();
    ASSERT_EQ(std::rename(tmp.c_str(), path.c_str()), 0);
  }
  EXPECT_EQ(store->load_file(path), 2u);
  EXPECT_TRUE(eventually(
      [&] { return clients_on_v2.load() == kClients; }, 15000ms))
      << "only " << clients_on_v2.load()
      << " clients ever saw the cascade archive";
  keep_streaming = false;

  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(mismatch.load());
  service.stop();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  // Every post-swap window screened below the horizon, so promotions
  // happened and never exceeded the prediction count.
  EXPECT_GT(stats.windows_promoted, 0u);
  EXPECT_LE(stats.windows_promoted, stats.predictions_sent);
  std::remove(path.c_str());
}

TEST(PredictionService, HotSwapFullOnlyArchiveForGbdtUnderLoad) {
  // A GBDT fit on a constant target is base_score = value plus all-zero
  // single-leaf trees (zero residuals leave nothing to split), so it
  // predicts exactly `value` — the version -> expected-rttf pairing stays
  // checkable while clients stream through the swap.
  const auto constant_gbdt = [](double value) {
    const std::size_t rows = data::kInputCount + 8;
    linalg::Matrix x(rows, data::kInputCount);
    std::uint64_t state = 0x2545f4914f6cdd1dull;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < data::kInputCount; ++c) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x(r, c) = static_cast<double>(state >> 40) / 1e6;
      }
    }
    const std::vector<double> y(rows, value);
    ml::GbdtOptions options;
    options.n_rounds = 3;
    options.min_instances_per_leaf = 1;
    auto model = std::make_unique<ml::GbdtRegressor>(options);
    model->fit(x, y);
    return model;
  };

  const std::string path = testing::TempDir() + "f2pm_gbdt_swap_" +
                           std::to_string(::getpid()) + ".bin";
  {
    std::ofstream out(path, std::ios::binary);
    ml::save_model(*constant_model(1000.0), out);
  }
  auto store = std::make_shared<ModelStore>();
  store->load_file(path);
  ASSERT_EQ(store->version(), 1u);
  PredictionService service(fast_options(), store);

  constexpr int kClients = 6;
  std::atomic<bool> mismatch{false};
  std::atomic<bool> keep_streaming{true};
  std::atomic<int> clients_on_v2{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::FeatureMonitorClient client("127.0.0.1", service.port());
      client.hello("gbdt-swap-" + std::to_string(c));
      bool saw_v2 = false;
      const auto check = [&](const net::Prediction& prediction) {
        // v1 = full-only (linear) archive, v2 = GBDT archive.
        const double expected =
            prediction.model_version == 1 ? 1000.0 : 100.0;
        if (std::abs(prediction.rttf - expected) > 1e-6) mismatch = true;
        if (prediction.model_version == 2 && !saw_v2) {
          saw_v2 = true;
          ++clients_on_v2;
        }
      };
      double tgen = 0.0;
      while (keep_streaming.load()) {
        client.send(sample_at(tgen));
        tgen += 1.0;
        while (auto prediction = client.poll_prediction()) check(*prediction);
      }
      client.finish();
      while (auto prediction = client.wait_prediction()) check(*prediction);
    });
  }

  std::this_thread::sleep_for(30ms);  // let streams get going
  {  // atomic replace: write aside, then rename over
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::binary);
    ml::save_model(*constant_gbdt(100.0), out);
    out.close();
    ASSERT_EQ(std::rename(tmp.c_str(), path.c_str()), 0);
  }
  // The swap counter (store version) increments exactly once.
  EXPECT_EQ(store->load_file(path), 2u);
  EXPECT_EQ(store->version(), 2u);
  EXPECT_TRUE(eventually(
      [&] { return clients_on_v2.load() == kClients; }, 15000ms))
      << "only " << clients_on_v2.load()
      << " clients ever saw the GBDT archive";
  keep_streaming = false;

  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(mismatch.load());
  service.stop();
  EXPECT_EQ(service.stats().protocol_errors, 0u);
  std::remove(path.c_str());
}

TEST(PredictionService, MisbehavingClientEvictedOthersUndisturbed) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(42.0));
  PredictionService service(fast_options(), store);

  net::FeatureMonitorClient good("127.0.0.1", service.port());
  good.hello("good");
  for (int i = 0; i <= 4; ++i) good.send(sample_at(i));
  ASSERT_TRUE(good.wait_prediction().has_value());

  {  // a client that speaks garbage
    net::TcpStream bad = net::TcpStream::connect("127.0.0.1", service.port());
    const char garbage[] = "this is not the f2pm protocol";
    bad.send_all(garbage, sizeof(garbage));
    // The server must evict it (we observe EOF on our side).
    char byte = 0;
    EXPECT_FALSE(bad.recv_exact(&byte, 1));
  }
  ASSERT_TRUE(eventually([&] {
    const ServiceStats stats = service.stats();
    return stats.sessions_evicted >= 1 && stats.protocol_errors >= 1;
  }));

  // The well-behaved session keeps streaming and predicting.
  for (int i = 5; i <= 8; ++i) good.send(sample_at(i));
  auto prediction = good.wait_prediction();
  ASSERT_TRUE(prediction.has_value());
  EXPECT_NEAR(prediction->rttf, 42.0, 1e-6);
  good.finish();
  service.stop();
}

TEST(PredictionService, AdmissionControlRejectsExcessSessions) {
  auto store = std::make_shared<ModelStore>();
  ServiceOptions options = fast_options();
  options.max_sessions = 2;
  PredictionService service(options, store);

  net::FeatureMonitorClient first("127.0.0.1", service.port());
  net::FeatureMonitorClient second("127.0.0.1", service.port());
  first.send(sample_at(0.0));
  second.send(sample_at(0.0));
  ASSERT_TRUE(eventually(
      [&] { return service.stats().sessions_accepted == 2; }));

  // The third connection is accepted by the kernel but closed by the
  // service before any serving happens.
  net::FeatureMonitorClient third("127.0.0.1", service.port());
  EXPECT_FALSE(third.wait_prediction().has_value());  // EOF
  ASSERT_TRUE(eventually(
      [&] { return service.stats().sessions_rejected >= 1; }));
  EXPECT_EQ(service.stats().sessions_active, 2u);

  first.finish();
  second.finish();
  service.stop();
}

TEST(PredictionService, IdleSessionsEvicted) {
  auto store = std::make_shared<ModelStore>();
  ServiceOptions options = fast_options();
  options.idle_timeout_seconds = 0.1;
  PredictionService service(options, store);

  net::FeatureMonitorClient idle("127.0.0.1", service.port());
  idle.send(sample_at(0.0));
  ASSERT_TRUE(eventually(
      [&] { return service.stats().sessions_accepted == 1; }));
  ASSERT_TRUE(eventually([&] {
    const ServiceStats stats = service.stats();
    return stats.sessions_evicted == 1 && stats.sessions_active == 0;
  }));
  service.stop();
}

// stop() must flush predictions already earned by received datapoints
// before closing (graceful drain), not just slam the sockets shut.
TEST(PredictionService, GracefulDrainFlushesPendingPredictions) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(314.0));
  auto service =
      std::make_unique<PredictionService>(fast_options(), store);

  net::FeatureMonitorClient client("127.0.0.1", service->port());
  client.hello("drainee");
  for (int i = 0; i <= 12; ++i) client.send(sample_at(i));
  ASSERT_TRUE(eventually(
      [&] { return service->stats().datapoints_received == 13; }));

  service->stop();  // drain: queued windows still score and flush

  int received = 0;
  while (auto prediction = client.wait_prediction()) {
    EXPECT_NEAR(prediction->rttf, 314.0, 1e-6);
    ++received;
  }
  EXPECT_EQ(received, 3);  // windows ending at t = 4, 8, 12
}

// A client that half-closes (EOF, no Bye) mid-window must still receive a
// prediction for the open window when it has enough samples — this is the
// data-loss case the drain-path flush exists for: the window would never
// close on its own because no later datapoint can arrive.
TEST(PredictionService, HalfCloseAfterCompleteWindowGetsFlushedPrediction) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(250.0));
  PredictionService service(fast_options(), store);

  net::TcpStream stream =
      net::TcpStream::connect("127.0.0.1", service.port());
  net::send_hello(stream, net::Hello{net::kProtocolVersion, "half-closer"});
  // Three samples inside [0,4): above min_samples_per_window but the
  // window never closes because no t >= 4 sample follows.
  for (int i = 0; i <= 2; ++i) net::send_datapoint(stream, sample_at(i));
  stream.shutdown_write();  // EOF without Bye

  net::FrameDecoder decoder;
  std::size_t predictions = 0;
  while (auto frame = net::receive_frame(stream, decoder)) {
    const auto* prediction = std::get_if<net::Prediction>(&*frame);
    ASSERT_NE(prediction, nullptr);
    EXPECT_NEAR(prediction->rttf, 250.0, 1e-6);
    EXPECT_DOUBLE_EQ(prediction->window_end, 4.0);
    ++predictions;
  }
  EXPECT_EQ(predictions, 1u);
  service.stop();
  EXPECT_EQ(service.stats().protocol_errors, 0u);
}

// Same shape, but the open window is below the minimum: the flush must
// emit nothing and the session still closes cleanly.
TEST(PredictionService, HalfCloseBelowMinimumFlushesNothing) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(250.0));
  PredictionService service(fast_options(), store);

  net::TcpStream stream =
      net::TcpStream::connect("127.0.0.1", service.port());
  net::send_hello(stream, net::Hello{net::kProtocolVersion, "sparse"});
  net::send_datapoint(stream, sample_at(0.0));  // one sample < min of 2
  stream.shutdown_write();

  net::FrameDecoder decoder;
  EXPECT_FALSE(net::receive_frame(stream, decoder).has_value());  // EOF
  service.stop();
  EXPECT_EQ(service.stats().predictions_sent, 0u);
  EXPECT_EQ(service.stats().protocol_errors, 0u);
}

// The in-band stats frame: a hello'd client can pull the same Prometheus
// text the HTTP endpoint serves, interleaved with its prediction stream.
TEST(PredictionService, StatsRequestReturnsExposition) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(77.0));
  PredictionService service(fast_options(), store);

  net::FeatureMonitorClient client("127.0.0.1", service.port());
  client.hello("stats-client");
  for (int i = 0; i <= 4; ++i) client.send(sample_at(i));
  ASSERT_TRUE(client.wait_prediction().has_value());

  const auto text = client.fetch_stats();
  ASSERT_TRUE(text.has_value());
  EXPECT_NE(text->find("# TYPE f2pm_serve_sessions_active gauge"),
            std::string::npos);
  EXPECT_NE(text->find("f2pm_serve_datapoints_received_total"),
            std::string::npos);
  EXPECT_NE(text->find("f2pm_serve_scoring_batch_seconds_bucket"),
            std::string::npos);

  // The session survives the stats exchange and keeps predicting.
  for (int i = 5; i <= 8; ++i) client.send(sample_at(i));
  auto prediction = client.wait_prediction();
  ASSERT_TRUE(prediction.has_value());
  EXPECT_NEAR(prediction->rttf, 77.0, 1e-6);
  client.finish();
  service.stop();
  EXPECT_EQ(service.stats().protocol_errors, 0u);
}

// The HTTP scrape endpoint: a live service exposes session gauges and the
// scoring-latency histogram over plain HTTP on the metrics port.
TEST(PredictionService, MetricsEndpointServesPrometheusScrape) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(123.0));
  ServiceOptions options = fast_options();
  options.metrics_port = 0;  // ephemeral
  PredictionService service(options, store);
  ASSERT_NE(service.metrics_port(), 0u);
  ASSERT_NE(service.metrics_port(), service.port());

  net::FeatureMonitorClient client("127.0.0.1", service.port());
  client.hello("scraped");
  for (int i = 0; i <= 6; ++i) client.send(sample_at(i));
  ASSERT_TRUE(client.wait_prediction().has_value());

  const auto scrape = [&]() -> std::string {
    net::TcpStream http =
        net::TcpStream::connect("127.0.0.1", service.metrics_port());
    const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
    http.send_all(request.data(), request.size());
    std::string response;
    char chunk[4096];
    std::size_t got = 0;
    while (true) {
      const net::IoResult io = http.recv_some(chunk, sizeof(chunk), got);
      if (io == net::IoResult::kEof) break;
      if (io == net::IoResult::kOk) response.append(chunk, got);
    }
    return response;
  };

  const std::string response = scrape();
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  // The one connected session shows in the (shard-labeled) gauge...
  EXPECT_NE(response.find("\nf2pm_serve_sessions_active{shard=\"0\"} 1\n"),
            std::string::npos);
  // ...and scoring latencies landed in the histogram.
  const std::size_t count_at =
      response.find("\nf2pm_serve_scoring_batch_seconds_count{shard=\"0\"} ");
  ASSERT_NE(count_at, std::string::npos);
  EXPECT_NE(
      response.find("f2pm_serve_scoring_batch_seconds_bucket{shard=\"0\",le=\""),
      std::string::npos);

  // Scrapes are cheap and repeatable: a second connection works too.
  EXPECT_EQ(scrape().rfind("HTTP/1.0 200 OK\r\n", 0), 0u);

  client.finish();
  service.stop();
  EXPECT_EQ(service.stats().protocol_errors, 0u);
}

// Hello-less legacy clients are ingest-only: datapoints are accepted but
// no predictions come back.
TEST(PredictionService, LegacyClientWithoutHelloGetsNoPredictions) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(9.0));
  PredictionService service(fast_options(), store);

  net::FeatureMonitorClient legacy("127.0.0.1", service.port());
  for (int i = 0; i <= 9; ++i) legacy.send(sample_at(i));
  ASSERT_TRUE(eventually(
      [&] { return service.stats().datapoints_received == 10; }));
  std::this_thread::sleep_for(50ms);  // give scoring a chance to misfire
  EXPECT_FALSE(legacy.poll_prediction().has_value());
  EXPECT_EQ(service.stats().predictions_sent, 0u);
  legacy.finish();
  service.stop();
}

// A fail event is a run boundary: the window restarts, so tgen may start
// over without tripping the nondecreasing check.
TEST(PredictionService, FailEventResetsTheStream) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(11.0));
  PredictionService service(fast_options(), store);

  net::FeatureMonitorClient client("127.0.0.1", service.port());
  client.hello("restarting");
  for (int i = 0; i <= 5; ++i) client.send(sample_at(i));
  ASSERT_TRUE(client.wait_prediction().has_value());
  client.report_failure(5.5);
  for (int i = 0; i <= 5; ++i) client.send(sample_at(i));  // tgen restarts
  auto prediction = client.wait_prediction();
  ASSERT_TRUE(prediction.has_value());
  EXPECT_NEAR(prediction->rttf, 11.0, 1e-6);
  client.finish();
  service.stop();
  EXPECT_EQ(service.stats().protocol_errors, 0u);
}

TEST(PredictionService, PollBackendServes) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(64.0));
  ServiceOptions options = fast_options();
  options.backend = net::Poller::Backend::kPoll;
  PredictionService service(options, store);

  net::FeatureMonitorClient client("127.0.0.1", service.port());
  client.hello("poll-client");
  for (int i = 0; i <= 6; ++i) client.send(sample_at(i));
  auto prediction = client.wait_prediction();
  ASSERT_TRUE(prediction.has_value());
  EXPECT_NEAR(prediction->rttf, 64.0, 1e-6);
  client.finish();
  service.stop();
}

// The watched-file path: drop a new archive in place and the service
// hot-swaps to it within the poll cadence.
TEST(PredictionService, WatchedFileHotSwap) {
  const std::string path =
      testing::TempDir() + "f2pm_watch_model_" +
      std::to_string(::getpid()) + ".bin";
  {
    std::ofstream out(path, std::ios::binary);
    ml::save_model(*constant_model(100.0), out);
  }
  auto store = std::make_shared<ModelStore>();
  store->watch_file(path);
  ServiceOptions options = fast_options();
  options.model_poll_seconds = 0.02;
  PredictionService service(options, store);

  ASSERT_TRUE(eventually([&] { return store->version() == 1; }));

  net::FeatureMonitorClient client("127.0.0.1", service.port());
  client.hello("watcher");
  for (int i = 0; i <= 4; ++i) client.send(sample_at(i));
  auto prediction = client.wait_prediction();
  ASSERT_TRUE(prediction.has_value());
  EXPECT_NEAR(prediction->rttf, 100.0, 1e-6);

  {  // atomic replace: write aside, then rename over
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::binary);
    ml::save_model(*constant_model(200.0), out);
    out.close();
    ASSERT_EQ(std::rename(tmp.c_str(), path.c_str()), 0);
  }
  ASSERT_TRUE(eventually([&] { return store->version() == 2; }));

  double tgen = 5.0;
  auto swapped = eventually([&] {
    client.send(sample_at(tgen));
    tgen += 1.0;
    while (auto reply = client.poll_prediction()) {
      if (reply->model_version == 2) {
        EXPECT_NEAR(reply->rttf, 200.0, 1e-6);
        return true;
      }
      EXPECT_NEAR(reply->rttf, 100.0, 1e-6);
    }
    return false;
  });
  EXPECT_TRUE(swapped);
  client.finish();
  service.stop();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Multi-shard (multi-reactor) variants. kHandoff placement is round-robin
// and therefore deterministic: with S shards and k*S sequential connects,
// every shard serves exactly k sessions.
// ---------------------------------------------------------------------------

ServiceOptions sharded_options(std::size_t shards,
                               ServiceOptions::AcceptMode mode) {
  ServiceOptions options = fast_options();
  options.shards = shards;
  options.accept_mode = mode;
  return options;
}

TEST(ShardedService, HandoffSpreadsSessionsDeterministically) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(321.0));
  PredictionService service(
      sharded_options(4, ServiceOptions::AcceptMode::kHandoff), store);
  ASSERT_EQ(service.shards(), 4u);

  constexpr int kClients = 8;  // 2 per shard
  std::vector<std::unique_ptr<net::FeatureMonitorClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<net::FeatureMonitorClient>(
        "127.0.0.1", service.port()));
    clients.back()->hello("spread-" + std::to_string(c));
    // Wait for registration so the next connect round-robins after it.
    ASSERT_TRUE(eventually([&] {
      return service.stats().sessions_accepted ==
             static_cast<std::uint64_t>(c) + 1;
    }));
  }
  for (auto& client : clients) {
    for (int i = 0; i <= 4; ++i) client->send(sample_at(i));
    auto prediction = client->wait_prediction();
    ASSERT_TRUE(prediction.has_value());
    EXPECT_NEAR(prediction->rttf, 321.0, 1e-6);
  }

  const std::vector<ServiceStats> per_shard = service.shard_stats();
  ASSERT_EQ(per_shard.size(), 4u);
  for (const ServiceStats& s : per_shard) {
    EXPECT_EQ(s.sessions_accepted, 2u);  // exact round-robin
    EXPECT_GE(s.predictions_sent, 2u);
  }
  for (auto& client : clients) client->finish();
  service.stop();
  const ServiceStats total = service.stats();
  EXPECT_EQ(total.sessions_accepted, 8u);
  EXPECT_EQ(total.sessions_active, 0u);
  EXPECT_EQ(total.protocol_errors, 0u);
}

TEST(ShardedService, ReusePortServesConcurrentClients) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(654.0));
  PredictionService service(
      sharded_options(2, ServiceOptions::AcceptMode::kReusePort), store);
  ASSERT_EQ(service.shards(), 2u);

  constexpr int kClients = 12;
  std::atomic<int> predictions_ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::FeatureMonitorClient client("127.0.0.1", service.port());
      client.hello("reuse-" + std::to_string(c));
      for (int i = 0; i <= 8; ++i) client.send(sample_at(i));
      int received = 0;
      while (auto prediction = client.wait_prediction()) {
        EXPECT_NEAR(prediction->rttf, 654.0, 1e-6);
        if (++received == 2) break;
      }
      if (received == 2) ++predictions_ok;
      client.finish();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(predictions_ok.load(), kClients);

  service.stop();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions_accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.datapoints_received,
            static_cast<std::uint64_t>(kClients) * 9);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// Admission control is service-wide, not per shard: with max_sessions = 2
// and 4 shards, the third connection is rejected no matter where the
// kernel or the round-robin placed the first two.
TEST(ShardedService, AdmissionControlIsServiceWide) {
  auto store = std::make_shared<ModelStore>();
  ServiceOptions options =
      sharded_options(4, ServiceOptions::AcceptMode::kHandoff);
  options.max_sessions = 2;
  PredictionService service(options, store);

  net::FeatureMonitorClient first("127.0.0.1", service.port());
  net::FeatureMonitorClient second("127.0.0.1", service.port());
  first.send(sample_at(0.0));
  second.send(sample_at(0.0));
  ASSERT_TRUE(eventually(
      [&] { return service.stats().sessions_accepted == 2; }));

  net::FeatureMonitorClient third("127.0.0.1", service.port());
  EXPECT_FALSE(third.wait_prediction().has_value());  // EOF
  ASSERT_TRUE(eventually(
      [&] { return service.stats().sessions_rejected >= 1; }));
  EXPECT_EQ(service.stats().sessions_active, 2u);

  first.finish();
  second.finish();
  service.stop();
}

// Hot swap with several reactor shards: the RCU version gate is global,
// so every session on every shard flips to the new model, and no
// prediction ever mixes versions.
TEST(ShardedService, HotSwapUnderLoadReachesEveryShard) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(1000.0));
  PredictionService service(
      sharded_options(4, ServiceOptions::AcceptMode::kHandoff), store);

  constexpr int kClients = 8;  // 2 per shard
  std::atomic<bool> mismatch{false};
  std::atomic<bool> keep_streaming{true};
  std::atomic<int> clients_on_v2{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::FeatureMonitorClient client("127.0.0.1", service.port());
      client.hello("shard-swap-" + std::to_string(c));
      bool saw_v2 = false;
      const auto check = [&](const net::Prediction& prediction) {
        const double expected =
            prediction.model_version == 1 ? 1000.0 : 5000.0;
        if (std::abs(prediction.rttf - expected) > 1e-6) mismatch = true;
        if (prediction.model_version == 2 && !saw_v2) {
          saw_v2 = true;
          ++clients_on_v2;
        }
      };
      double tgen = 0.0;
      while (keep_streaming.load()) {
        client.send(sample_at(tgen));
        tgen += 1.0;
        while (auto prediction = client.poll_prediction()) check(*prediction);
      }
      client.finish();
      while (auto prediction = client.wait_prediction()) check(*prediction);
    });
  }

  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(store->swap(constant_model(5000.0)), 2u);
  EXPECT_TRUE(eventually(
      [&] { return clients_on_v2.load() == kClients; }, 15000ms))
      << "only " << clients_on_v2.load()
      << " clients ever saw the new model";
  keep_streaming = false;

  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(mismatch.load());
  service.stop();
  EXPECT_EQ(service.stats().protocol_errors, 0u);
}

// Graceful drain must flush the open aggregation window of every session
// on EVERY shard, not just shard 0's.
TEST(ShardedService, DrainFlushesFinalWindowOnEveryShard) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(314.0));
  auto service = std::make_unique<PredictionService>(
      sharded_options(4, ServiceOptions::AcceptMode::kHandoff), store);

  constexpr int kClients = 4;  // exactly 1 per shard (round-robin)
  std::vector<std::unique_ptr<net::FeatureMonitorClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<net::FeatureMonitorClient>(
        "127.0.0.1", service->port()));
    clients.back()->hello("drain-" + std::to_string(c));
    ASSERT_TRUE(eventually([&] {
      return service->stats().sessions_accepted ==
             static_cast<std::uint64_t>(c) + 1;
    }));
  }
  // Three samples inside [0,4): a complete-but-open window on each shard
  // that only the drain-path flush can turn into a prediction.
  for (auto& client : clients) {
    for (int i = 0; i <= 2; ++i) client->send(sample_at(i));
  }
  ASSERT_TRUE(eventually([&] {
    return service->stats().datapoints_received ==
           static_cast<std::uint64_t>(kClients) * 3;
  }));

  service->stop();

  for (auto& client : clients) {
    auto prediction = client->wait_prediction();
    ASSERT_TRUE(prediction.has_value());
    EXPECT_NEAR(prediction->rttf, 314.0, 1e-6);
    EXPECT_DOUBLE_EQ(prediction->window_end, 4.0);
  }
  const std::vector<ServiceStats> per_shard = service->shard_stats();
  ASSERT_EQ(per_shard.size(), 4u);
  for (const ServiceStats& s : per_shard) {
    EXPECT_EQ(s.sessions_accepted, 1u);
    EXPECT_EQ(s.predictions_sent, 1u);  // the flushed final window
    EXPECT_EQ(s.sessions_active, 0u);
  }
}

// Session affinity: one session's predictions stay on one shard and stay
// in order (strictly increasing window_end) even when other shards are
// busy with their own sessions.
TEST(ShardedService, PredictionsStayInOrderPerSession) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(88.0));
  PredictionService service(
      sharded_options(2, ServiceOptions::AcceptMode::kHandoff), store);

  constexpr int kClients = 4;
  constexpr int kWindows = 8;
  std::atomic<bool> out_of_order{false};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::FeatureMonitorClient client("127.0.0.1", service.port());
      client.hello("order-" + std::to_string(c));
      for (int i = 0; i <= kWindows * 4; ++i) client.send(sample_at(i));
      double last_end = 0.0;
      int received = 0;
      while (auto prediction = client.wait_prediction()) {
        if (prediction->window_end <= last_end) out_of_order = true;
        last_end = prediction->window_end;
        if (++received == kWindows) break;
      }
      EXPECT_EQ(received, kWindows);
      client.finish();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(out_of_order.load());
  service.stop();
  EXPECT_EQ(service.stats().protocol_errors, 0u);
}

// The metrics scrape of a sharded service carries one series per shard.
TEST(ShardedService, MetricsScrapeBreaksSeriesDownByShard) {
  auto store = std::make_shared<ModelStore>();
  store->swap(constant_model(5.0));
  ServiceOptions options =
      sharded_options(2, ServiceOptions::AcceptMode::kHandoff);
  options.metrics_port = 0;
  PredictionService service(options, store);
  ASSERT_NE(service.metrics_port(), 0u);

  // One session per shard (round-robin), each scoring one window.
  std::vector<std::unique_ptr<net::FeatureMonitorClient>> clients;
  for (int c = 0; c < 2; ++c) {
    clients.push_back(std::make_unique<net::FeatureMonitorClient>(
        "127.0.0.1", service.port()));
    clients.back()->hello("labeled-" + std::to_string(c));
    ASSERT_TRUE(eventually([&] {
      return service.stats().sessions_accepted ==
             static_cast<std::uint64_t>(c) + 1;
    }));
  }
  for (auto& client : clients) {
    for (int i = 0; i <= 4; ++i) client->send(sample_at(i));
    ASSERT_TRUE(client->wait_prediction().has_value());
  }

  net::TcpStream http =
      net::TcpStream::connect("127.0.0.1", service.metrics_port());
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  http.send_all(request.data(), request.size());
  std::string response;
  char chunk[4096];
  std::size_t got = 0;
  while (true) {
    const net::IoResult io = http.recv_some(chunk, sizeof(chunk), got);
    if (io == net::IoResult::kEof) break;
    if (io == net::IoResult::kOk) response.append(chunk, got);
  }
  // Gauges reflect the live service: one session on each shard. (Counter
  // values are cumulative across every service in this process, so only
  // the per-shard series' existence is asserted for those.)
  EXPECT_NE(response.find("f2pm_serve_sessions_active{shard=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(response.find("f2pm_serve_sessions_active{shard=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(response.find("f2pm_serve_datapoints_received_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(response.find("f2pm_serve_datapoints_received_total{shard=\"1\"}"),
            std::string::npos);

  for (auto& client : clients) client->finish();
  service.stop();
  EXPECT_EQ(service.stats().protocol_errors, 0u);
}

}  // namespace
}  // namespace f2pm::serve
