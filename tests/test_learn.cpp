// Unit coverage of the continuous-learning primitives: rolling-S-MAE
// drift detection as a pure deterministic unit (window stream in → exact
// verdict sequence out), the bounded sliding corpus, the retrain budget
// planner, the hardened ModelStore archive swap, and the full trainer
// loop (bootstrap → drift → retrain → publish) driven without a server.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "data/datapoint.hpp"
#include "learn/corpus.hpp"
#include "learn/drift.hpp"
#include "learn/trainer.hpp"
#include "ml/cascade.hpp"
#include "ml/gbdt.hpp"
#include "ml/linear_regression.hpp"
#include "obs/metrics.hpp"
#include "serve/model_store.hpp"

#include "chaos_driver.hpp"

namespace f2pm::learn {
namespace {

// --- RollingSmae ----------------------------------------------------------

TEST(RollingSmae, SoftThresholdAndRingBuffer) {
  RollingSmae rolling(4);
  EXPECT_EQ(rolling.count(), 0u);
  EXPECT_FALSE(rolling.full());
  EXPECT_DOUBLE_EQ(rolling.value(0.0), 0.0);

  rolling.observe(10.0, 2.0);  // |err| = 8
  rolling.observe(5.0, 5.0);   // 0
  EXPECT_DOUBLE_EQ(rolling.value(0.0), 4.0);
  // Errors at or below the tolerance count as zero but stay in the mean's
  // denominator (the paper's Soft-MAE).
  EXPECT_DOUBLE_EQ(rolling.value(8.0), 0.0);

  rolling.observe(1.0, 3.0);  // 2
  rolling.observe(0.0, 4.0);  // 4
  EXPECT_TRUE(rolling.full());
  EXPECT_DOUBLE_EQ(rolling.value(0.0), (8.0 + 0.0 + 2.0 + 4.0) / 4.0);

  rolling.observe(9.0, 9.0);  // 0, evicting the oldest (8)
  EXPECT_DOUBLE_EQ(rolling.value(0.0), (0.0 + 2.0 + 4.0 + 0.0) / 4.0);
  // The threshold is applied at read time, so it may drift upward as the
  // largest observed RTTF grows without rewriting history.
  EXPECT_DOUBLE_EQ(rolling.value(3.0), 1.0);  // only the 4 survives

  rolling.reset();
  EXPECT_EQ(rolling.count(), 0u);
  EXPECT_EQ(rolling.horizon(), 4u);
  EXPECT_DOUBLE_EQ(rolling.value(0.0), 0.0);
}

TEST(RollingSmae, ZeroHorizonThrows) {
  EXPECT_THROW(RollingSmae(0), std::invalid_argument);
}

// --- DriftDetector ---------------------------------------------------------

TEST(DriftDetector, ExactVerdictSequence) {
  DriftPolicy policy;
  policy.degrade_ratio = 2.0;
  policy.min_smae_seconds = 1.0;
  policy.consecutive = 2;
  DriftDetector detector(policy);

  EXPECT_FALSE(detector.has_baseline());
  // Deterministic stream → exact verdict sequence.
  EXPECT_FALSE(detector.evaluate(2.0));  // first call only sets baseline
  EXPECT_TRUE(detector.has_baseline());
  EXPECT_DOUBLE_EQ(detector.baseline(), 2.0);
  EXPECT_FALSE(detector.evaluate(3.9));  // below 2.0 * 2: healthy
  EXPECT_FALSE(detector.evaluate(4.1));  // degraded streak 1 of 2
  EXPECT_FALSE(detector.evaluate(3.0));  // healthy: streak resets
  EXPECT_FALSE(detector.evaluate(5.0));  // degraded streak 1 of 2
  EXPECT_TRUE(detector.evaluate(6.0));   // streak 2 → the one verdict
  EXPECT_TRUE(detector.triggered());
  EXPECT_FALSE(detector.evaluate(7.0));  // latched: never re-fires
  EXPECT_FALSE(detector.evaluate(0.1));

  detector.reset();
  EXPECT_FALSE(detector.triggered());
  EXPECT_FALSE(detector.has_baseline());
  EXPECT_FALSE(detector.evaluate(0.5));  // re-baselines after reset
  EXPECT_DOUBLE_EQ(detector.baseline(), 0.5);
}

TEST(DriftDetector, BaselineTracksTheBestObservedSteadyState) {
  DriftPolicy policy;
  policy.degrade_ratio = 1.5;
  policy.min_smae_seconds = 1.0;
  policy.consecutive = 2;
  DriftDetector detector(policy);
  // A lucky-high seed (the first post-swap evaluation is dominated by
  // whichever run filled the horizon) must not permanently raise the bar.
  EXPECT_FALSE(detector.evaluate(100.0));  // seed
  EXPECT_DOUBLE_EQ(detector.baseline(), 100.0);
  EXPECT_FALSE(detector.evaluate(10.0));  // steady state found
  EXPECT_DOUBLE_EQ(detector.baseline(), 10.0);
  EXPECT_FALSE(detector.evaluate(12.0));  // never raises
  EXPECT_DOUBLE_EQ(detector.baseline(), 10.0);
  EXPECT_FALSE(detector.evaluate(40.0));  // degraded vs 10, not vs 100
  EXPECT_TRUE(detector.evaluate(40.0));
  // Frozen once triggered: recovery noise below 10 must not move the
  // reference the latched verdict fired against.
  EXPECT_FALSE(detector.evaluate(5.0));
  EXPECT_DOUBLE_EQ(detector.baseline(), 10.0);
}

TEST(DriftDetector, AbsoluteFloorGatesNearZeroBaselines) {
  DriftPolicy policy;
  policy.degrade_ratio = 1.5;
  policy.min_smae_seconds = 1.0;
  policy.consecutive = 2;
  DriftDetector detector(policy);
  EXPECT_FALSE(detector.evaluate(0.0));  // baseline 0: any ratio passes
  // Without the absolute floor these would all be "degraded".
  EXPECT_FALSE(detector.evaluate(0.5));
  EXPECT_FALSE(detector.evaluate(0.9));
  EXPECT_FALSE(detector.evaluate(1.1));  // over the floor: streak 1
  EXPECT_TRUE(detector.evaluate(1.2));   // streak 2 → verdict
}

TEST(DriftDetector, RejectsBadPolicy) {
  DriftPolicy zero_consecutive;
  zero_consecutive.consecutive = 0;
  EXPECT_THROW(DriftDetector{zero_consecutive}, std::invalid_argument);
  DriftPolicy bad_ratio;
  bad_ratio.degrade_ratio = 0.0;
  EXPECT_THROW(DriftDetector{bad_ratio}, std::invalid_argument);
}

// --- SlidingCorpus ----------------------------------------------------------

data::Run simple_run(std::size_t num_samples, double fail_time) {
  data::Run run;
  for (std::size_t i = 0; i < num_samples; ++i) {
    data::RawDatapoint sample;
    sample.tgen = static_cast<double>(i);
    sample[data::FeatureId::kMemUsed] = static_cast<double>(i);
    run.samples.push_back(sample);
  }
  run.fail_time = fail_time;
  run.failed = true;
  return run;
}

TEST(SlidingCorpus, SequencesAndEvictsOldestByRunBound) {
  SlidingCorpus corpus({/*max_runs=*/2, /*max_samples=*/1000});
  EXPECT_EQ(corpus.add(simple_run(4, 10.0), "a"), 1u);
  EXPECT_EQ(corpus.add(simple_run(4, 10.0), "b"), 2u);
  EXPECT_EQ(corpus.add(simple_run(4, 10.0), "c"), 3u);
  EXPECT_EQ(corpus.num_runs(), 2u);
  EXPECT_EQ(corpus.runs_evicted(), 1u);
  const CorpusSpan span = corpus.span();
  EXPECT_EQ(span.first_sequence, 2u);
  EXPECT_EQ(span.last_sequence, 3u);
  EXPECT_EQ(corpus.runs().front().client_id, "b");
}

TEST(SlidingCorpus, SampleBoundNeverEvictsTheNewestRun) {
  SlidingCorpus corpus({/*max_runs=*/10, /*max_samples=*/10});
  corpus.add(simple_run(6, 10.0), "old");
  corpus.add(simple_run(8, 10.0), "new");  // 14 > 10: old must go
  EXPECT_EQ(corpus.num_runs(), 1u);
  EXPECT_EQ(corpus.num_samples(), 8u);
  // An over-budget single run is still retained: it beats an empty corpus.
  corpus.add(simple_run(64, 100.0), "huge");
  EXPECT_EQ(corpus.num_runs(), 1u);
  EXPECT_EQ(corpus.num_samples(), 64u);
}

TEST(SlidingCorpus, MaxFailTimeIsMonotonicAcrossEviction) {
  SlidingCorpus corpus({/*max_runs=*/1, /*max_samples=*/1000});
  corpus.add(simple_run(4, 100.0), "long");
  corpus.add(simple_run(4, 10.0), "short");  // evicts the 100 s run
  EXPECT_DOUBLE_EQ(corpus.max_fail_time(), 100.0);
}

TEST(SlidingCorpus, AssembleTakesNewestRunsWithinBudget) {
  SlidingCorpus corpus({/*max_runs=*/10, /*max_samples=*/1000});
  corpus.add(simple_run(10, 20.0), "a");  // seq 1
  corpus.add(simple_run(10, 20.0), "b");  // seq 2
  corpus.add(simple_run(10, 20.0), "c");  // seq 3
  CorpusSpan used;
  data::DataHistory history = corpus.assemble(/*sample_budget=*/25, used);
  EXPECT_EQ(history.num_runs(), 2u);  // newest two fit, oldest does not
  EXPECT_EQ(used.first_sequence, 2u);
  EXPECT_EQ(used.last_sequence, 3u);
  EXPECT_EQ(used.samples, 20u);
  // A budget below even one run still trains on the newest run.
  history = corpus.assemble(/*sample_budget=*/3, used);
  EXPECT_EQ(history.num_runs(), 1u);
  EXPECT_EQ(used.first_sequence, 3u);
  // Budget 0 = everything.
  history = corpus.assemble(0, used);
  EXPECT_EQ(history.num_runs(), 3u);
}

TEST(SlidingCorpus, RejectsMalformedRuns) {
  SlidingCorpus corpus({});
  EXPECT_THROW(corpus.add(data::Run{}, "empty"), std::invalid_argument);
  data::Run out_of_order = simple_run(3, 10.0);
  out_of_order.samples[1].tgen = 5.0;
  out_of_order.samples[2].tgen = 1.0;
  EXPECT_THROW(corpus.add(std::move(out_of_order), "disorder"),
               std::invalid_argument);
  data::Run early_fail = simple_run(5, 1.0);  // last sample at tgen 4
  EXPECT_THROW(corpus.add(std::move(early_fail), "early"),
               std::invalid_argument);
}

// --- plan_retrain ------------------------------------------------------------

TEST(PlanRetrain, UnbudgetedOrAffordableRunsFull) {
  RetrainPlan plan = plan_retrain(10'000, /*budget=*/0.0, /*est=*/500.0,
                                  /*rate=*/0.05, /*min=*/100);
  EXPECT_TRUE(plan.run);
  EXPECT_FALSE(plan.downscaled);
  EXPECT_EQ(plan.sample_budget, 0u);

  plan = plan_retrain(10'000, /*budget=*/2.0, /*est=*/1.5, 0.0, 100);
  EXPECT_TRUE(plan.run);
  EXPECT_FALSE(plan.downscaled);
}

TEST(PlanRetrain, DownscalesToTheAffordableNewestSamples) {
  // 10k samples at 1 ms each = 10 s, budget 2 s → 2000 samples fit.
  const RetrainPlan plan =
      plan_retrain(10'000, /*budget=*/2.0, /*est=*/10.0, /*rate=*/0.001,
                   /*min=*/100);
  EXPECT_TRUE(plan.run);
  EXPECT_TRUE(plan.downscaled);
  EXPECT_EQ(plan.sample_budget, 2000u);
  EXPECT_NEAR(plan.estimated_seconds, 2.0, 1e-9);
}

TEST(PlanRetrain, SkipsWhenEvenTheFloorWontFit) {
  const RetrainPlan plan =
      plan_retrain(10'000, /*budget=*/0.05, /*est=*/10.0, /*rate=*/0.001,
                   /*min=*/100);  // affordable = 50 < floor 100
  EXPECT_FALSE(plan.run);
  EXPECT_TRUE(plan.skipped_budget);
}

TEST(PlanRetrain, SkipsOverBudgetWithUnknownRate) {
  const RetrainPlan plan = plan_retrain(10'000, /*budget=*/2.0, /*est=*/10.0,
                                        /*rate=*/0.0, /*min=*/100);
  EXPECT_FALSE(plan.run);
  EXPECT_TRUE(plan.skipped_budget);
}

TEST(PlanRetrain, EmptyCorpusNeverRuns) {
  const RetrainPlan plan = plan_retrain(0, 0.0, 0.0, 0.0, 1);
  EXPECT_FALSE(plan.run);
  EXPECT_FALSE(plan.skipped_budget);
}

// --- ModelStore torn-write hardening -----------------------------------------

std::uint64_t swap_failures_total() {
  const auto snap =
      obs::Registry::global().find("f2pm_serve_swap_failures_total");
  return snap ? static_cast<std::uint64_t>(snap->value) : 0u;
}

TEST(ModelStoreSwap, TornArchiveKeepsOldModelAndCountsOneFailure) {
  const std::string path = testing::TempDir() + "/torn_model.bin";
  serve::ModelStore store;
  store.swap(chaos::constant_model(42.0));
  ASSERT_EQ(store.version(), 1u);
  const auto live = store.current();

  // A truncated real archive: exactly what a torn writer leaves behind.
  std::ostringstream full;
  ml::save_model(*chaos::constant_model(7.0), full);
  const std::string bytes = full.str();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  const std::uint64_t before = swap_failures_total();
  EXPECT_THROW(store.load_file(path), std::exception);
  EXPECT_EQ(swap_failures_total(), before + 1);  // counted exactly once
  EXPECT_EQ(store.version(), 1u);
  EXPECT_EQ(store.current(), live);  // the old model stayed active

  // The watch path swallows the same failure and keeps polling...
  store.watch_file(path);
  EXPECT_FALSE(store.poll_watch());
  EXPECT_EQ(store.version(), 1u);
  // ...and picks the archive up as soon as a complete write lands.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_TRUE(store.poll_watch());
  EXPECT_EQ(store.version(), 2u);
  EXPECT_NE(store.current(), live);
  std::remove(path.c_str());
}

TEST(ModelStoreSwap, ValidationFailureCountsOnce) {
  serve::ModelStore store;
  const std::uint64_t before = swap_failures_total();
  EXPECT_THROW(store.swap(nullptr), std::invalid_argument);
  EXPECT_EQ(swap_failures_total(), before + 1);
  auto unfitted = std::make_shared<ml::LinearRegression>();
  EXPECT_THROW(store.swap(unfitted), std::invalid_argument);
  EXPECT_EQ(swap_failures_total(), before + 2);
  EXPECT_EQ(store.version(), 0u);
}

// --- ContinuousTrainer end to end (no server) --------------------------------

/// A memory ramp run: mem grows at `rate` KB/s sampled once a second and
/// the process dies when mem reaches `fail_mem`, so fail_time = fail_mem /
/// rate and RTTF is exactly (fail_mem - mem) / rate. A model trained at
/// one rate systematically mispredicts streams produced at another —
/// drift by construction — while the per-window mem slope feature lets a
/// retrained tree separate the regimes.
data::Run ramp_run(double rate, double fail_mem) {
  data::Run run;
  const double fail_time = fail_mem / rate;
  for (double t = 0.0; t <= fail_time + 1e-9; t += 1.0) {
    data::RawDatapoint sample;
    sample.tgen = t;
    sample[data::FeatureId::kMemUsed] = rate * t;
    sample[data::FeatureId::kCpuUser] = 10.0;
    run.samples.push_back(sample);
  }
  run.fail_time = fail_time;
  run.failed = true;
  return run;
}

serve::CompletedRun completed(data::Run run) {
  serve::CompletedRun out;
  out.run = std::move(run);
  out.client_id = "unit";
  return out;
}

TEST(ContinuousTrainer, BootstrapDriftRetrainPublishRecover) {
  const std::string archive = testing::TempDir() + "/trainer_model.bin";
  std::remove(archive.c_str());
  serve::ModelStore store;
  store.watch_file(archive);

  TrainerOptions options;
  options.model_name = "reptree";
  // The corpus is small and deterministic; reduced-error pruning would
  // hold out a third of the few post-shift windows and can collapse their
  // subtree, so grow the full tree.
  options.model_params.set("reptree.prune", "false");
  options.archive_path = archive;
  options.aggregation.window_seconds = 4.0;
  options.aggregation.min_samples_per_window = 2;
  options.corpus.max_runs = 8;
  options.drift.horizon = 20;
  options.drift.degrade_ratio = 1.5;
  options.drift.min_smae_seconds = 1.0;
  options.drift.consecutive = 2;
  options.min_corpus_runs = 3;
  options.candidate_min_windows = 7;
  ContinuousTrainer trainer(store, options);

  // Bootstrap: three pre-shift runs (rate 1, fail at t=60) trigger the
  // unconditional first publish.
  for (int i = 0; i < 3; ++i) trainer.ingest(completed(ramp_run(1.0, 60.0)));
  trainer.drain();
  TrainerStats stats = trainer.stats();
  ASSERT_EQ(stats.publishes, 1u);
  EXPECT_EQ(stats.last_publish_trigger, "bootstrap");
  EXPECT_TRUE(stats.publish_pending);
  ASSERT_TRUE(store.poll_watch());  // the "serve side" adopts the archive
  EXPECT_EQ(store.version(), 1u);

  // Steady pre-shift regime: the live model shadow-scores cleanly.
  for (int i = 0; i < 3; ++i) {
    trainer.ingest(completed(ramp_run(1.0, 60.0)));
    trainer.drain();
  }
  const TrainerStats pre = trainer.stats();
  EXPECT_EQ(pre.observed_model_version, 1u);
  EXPECT_FALSE(pre.publish_pending);
  EXPECT_GE(pre.live_window_count, options.drift.horizon);
  EXPECT_FALSE(pre.drift_active);
  EXPECT_LT(pre.live_smae, 1.0);

  // Drift storm: the leak rate doubles mid-campaign. The live model now
  // over-predicts RTTF by ~2x; the trainer must notice, retrain, beat the
  // live model in shadow, and publish — all without outside help.
  int runs_to_recover = 0;
  for (int i = 0; i < 25 && trainer.stats().publishes < 2; ++i) {
    trainer.ingest(completed(ramp_run(2.0, 60.0)));
    trainer.drain();
    ++runs_to_recover;
  }
  stats = trainer.stats();
  ASSERT_GE(stats.publishes, 2u) << "no drift publish after "
                                 << runs_to_recover << " shifted runs";
  EXPECT_GE(stats.drift_verdicts, 1u);
  EXPECT_EQ(stats.last_publish_trigger, "drift");
  EXPECT_GE(stats.retrains_completed, 2u);
  ASSERT_TRUE(store.poll_watch());
  EXPECT_EQ(store.version(), 2u);

  // Recovery: post-swap windows score within 10% of the pre-shift
  // baseline (both effectively zero under the Soft-MAE tolerance).
  for (int i = 0; i < 4; ++i) {
    trainer.ingest(completed(ramp_run(2.0, 60.0)));
    trainer.drain();
  }
  const TrainerStats post = trainer.stats();
  EXPECT_EQ(post.observed_model_version, 2u);
  EXPECT_FALSE(post.drift_active);
  EXPECT_GE(post.live_window_count, options.drift.horizon);
  EXPECT_LE(post.live_smae, pre.live_smae * 1.10 + 0.5);
  trainer.stop();
  std::remove(archive.c_str());
}

TEST(ContinuousTrainer, RetrainsAndPublishesCascadeArchives) {
  const std::string archive = testing::TempDir() + "/trainer_cascade.bin";
  std::remove(archive.c_str());
  serve::ModelStore store;
  store.watch_file(archive);

  TrainerOptions options;
  options.model_name = "cascade";
  options.model_params.set("cascade.horizon_seconds", "30");
  options.model_params.set("cascade.full", "reptree");
  options.model_params.set("cascade.full.reptree.prune", "false");
  options.archive_path = archive;
  options.aggregation.window_seconds = 4.0;
  options.aggregation.min_samples_per_window = 2;
  options.min_corpus_runs = 3;
  options.candidate_min_windows = 7;
  ContinuousTrainer trainer(store, options);

  for (int i = 0; i < 3; ++i) trainer.ingest(completed(ramp_run(1.0, 60.0)));
  trainer.drain();
  ASSERT_EQ(trainer.stats().publishes, 1u);
  ASSERT_TRUE(store.poll_watch());
  ASSERT_EQ(store.version(), 1u);

  // The published archive carries the whole cascade: both stages refit
  // from the same corpus, full-model width matching the serve layout.
  const auto model = store.current();
  ASSERT_NE(model, nullptr);
  const auto* cascade =
      dynamic_cast<const ml::CascadeRegressor*>(model->regressor.get());
  ASSERT_NE(cascade, nullptr);
  EXPECT_TRUE(cascade->screen().is_fitted());
  EXPECT_TRUE(cascade->full().is_fitted());
  EXPECT_EQ(cascade->full().num_inputs(), data::kInputCount);
  EXPECT_DOUBLE_EQ(cascade->options().horizon_seconds, 30.0);
  trainer.stop();
  std::remove(archive.c_str());
}

TEST(ContinuousTrainer, RetrainsAndPublishesGbdtAfterDriftVerdict) {
  const std::string archive = testing::TempDir() + "/trainer_gbdt.bin";
  std::remove(archive.c_str());
  serve::ModelStore store;
  store.watch_file(archive);

  TrainerOptions options;
  options.model_name = "gbdt";
  // Small but expressive booster: enough rounds to memorise the ramp
  // corpus exactly (the shadow-score recovery check below needs it).
  options.model_params.set("gbdt.n_rounds", "30");
  options.model_params.set("gbdt.learning_rate", "0.5");
  options.model_params.set("gbdt.min_instances", "1");
  options.model_params.set("gbdt.max_leaves", "0");
  options.archive_path = archive;
  options.aggregation.window_seconds = 4.0;
  options.aggregation.min_samples_per_window = 2;
  options.corpus.max_runs = 8;
  options.drift.horizon = 20;
  options.drift.degrade_ratio = 1.5;
  options.drift.min_smae_seconds = 1.0;
  options.drift.consecutive = 2;
  options.min_corpus_runs = 3;
  options.candidate_min_windows = 7;
  ContinuousTrainer trainer(store, options);

  // Bootstrap publish: the archive must carry a fitted GBDT with the
  // serve-layout input width.
  for (int i = 0; i < 3; ++i) trainer.ingest(completed(ramp_run(1.0, 60.0)));
  trainer.drain();
  ASSERT_EQ(trainer.stats().publishes, 1u);
  ASSERT_TRUE(store.poll_watch());
  ASSERT_EQ(store.version(), 1u);
  {
    const auto model = store.current();
    ASSERT_NE(model, nullptr);
    const auto* gbdt =
        dynamic_cast<const ml::GbdtRegressor*>(model->regressor.get());
    ASSERT_NE(gbdt, nullptr);
    EXPECT_TRUE(gbdt->is_fitted());
    EXPECT_GE(gbdt->num_trees(), 1u);
    EXPECT_EQ(gbdt->num_inputs(), data::kInputCount);
  }

  // Settle the shadow scorer on the pre-shift regime.
  for (int i = 0; i < 3; ++i) {
    trainer.ingest(completed(ramp_run(1.0, 60.0)));
    trainer.drain();
  }
  EXPECT_FALSE(trainer.stats().drift_active);

  // Drift storm: the leak rate doubles; the trainer must raise a drift
  // verdict, retrain a GBDT candidate, and publish it.
  for (int i = 0; i < 25 && trainer.stats().publishes < 2; ++i) {
    trainer.ingest(completed(ramp_run(2.0, 60.0)));
    trainer.drain();
  }
  const TrainerStats stats = trainer.stats();
  ASSERT_GE(stats.publishes, 2u);
  EXPECT_GE(stats.drift_verdicts, 1u);
  EXPECT_EQ(stats.last_publish_trigger, "drift");
  ASSERT_TRUE(store.poll_watch());
  EXPECT_EQ(store.version(), 2u);

  // The drift publish is again a GBDT archive, refit on the shifted corpus.
  const auto swapped = store.current();
  ASSERT_NE(swapped, nullptr);
  const auto* candidate =
      dynamic_cast<const ml::GbdtRegressor*>(swapped->regressor.get());
  ASSERT_NE(candidate, nullptr);
  EXPECT_TRUE(candidate->is_fitted());
  trainer.stop();
  std::remove(archive.c_str());
}

TEST(ContinuousTrainer, RejectsMalformedExportsWithoutWedging) {
  const std::string archive = testing::TempDir() + "/trainer_reject.bin";
  std::remove(archive.c_str());
  serve::ModelStore store;
  TrainerOptions options;
  options.archive_path = archive;
  ContinuousTrainer trainer(store, options);
  serve::CompletedRun empty;  // no samples: must be rejected, not fatal
  trainer.ingest(std::move(empty));
  trainer.drain();
  EXPECT_EQ(trainer.stats().runs_rejected, 1u);
  // The loop still works afterwards.
  trainer.ingest(completed(ramp_run(1.0, 60.0)));
  trainer.drain();
  EXPECT_EQ(trainer.stats().runs_ingested, 1u);
}

TEST(ContinuousTrainer, RequiresArchivePath) {
  serve::ModelStore store;
  EXPECT_THROW(ContinuousTrainer(store, TrainerOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace f2pm::learn
