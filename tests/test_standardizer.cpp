#include "data/standardizer.hpp"

#include <gtest/gtest.h>

#include "linalg/stats.hpp"
#include "util/rng.hpp"

namespace f2pm::data {
namespace {

TEST(Standardizer, TransformedColumnsHaveZeroMeanUnitVariance) {
  util::Rng rng(3);
  linalg::Matrix x(200, 3);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    x(r, 0) = rng.normal(50.0, 10.0);
    x(r, 1) = rng.uniform(0.0, 1e6);
    x(r, 2) = rng.exponential(2.0);
  }
  const Standardizer scaler = Standardizer::fit(x);
  const linalg::Matrix z = scaler.transform(x);
  for (std::size_t c = 0; c < 3; ++c) {
    const auto column = z.column(c);
    EXPECT_NEAR(linalg::mean(column), 0.0, 1e-9);
    EXPECT_NEAR(linalg::stddev(column), 1.0, 1e-9);
  }
}

TEST(Standardizer, InverseTransformRoundTrips) {
  linalg::Matrix x{{1.0, 100.0}, {2.0, 300.0}, {3.0, 500.0}};
  const Standardizer scaler = Standardizer::fit(x);
  const linalg::Matrix round = scaler.inverse_transform(scaler.transform(x));
  EXPECT_LT(linalg::max_abs_diff(x, round), 1e-12);
}

TEST(Standardizer, ConstantColumnMapsToZero) {
  linalg::Matrix x{{5.0}, {5.0}, {5.0}};
  const Standardizer scaler = Standardizer::fit(x);
  const linalg::Matrix z = scaler.transform(x);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(z(r, 0), 0.0);
}

TEST(Standardizer, ColumnMismatchThrows) {
  const Standardizer scaler = Standardizer::fit(linalg::Matrix(4, 2));
  EXPECT_THROW(scaler.transform(linalg::Matrix(4, 3)),
               std::invalid_argument);
  EXPECT_THROW(scaler.inverse_transform(linalg::Matrix(4, 3)),
               std::invalid_argument);
}

TEST(Standardizer, FromMomentsReproducesFittedScalerExactly) {
  util::Rng rng(9);
  linalg::Matrix x(50, 3);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    x(r, 0) = rng.normal(1e9, 1e-4);  // large mean, tiny spread
    x(r, 1) = rng.uniform(-1.0, 1.0);
    x(r, 2) = 5.0;  // constant column -> clamped scale of 1
  }
  const Standardizer fitted = Standardizer::fit(x);
  const Standardizer rebuilt =
      Standardizer::from_moments(fitted.means(), fitted.scales());
  EXPECT_EQ(rebuilt.means(), fitted.means());
  EXPECT_EQ(rebuilt.scales(), fitted.scales());
  const linalg::Matrix a = fitted.transform(x);
  const linalg::Matrix b = rebuilt.transform(x);
  EXPECT_DOUBLE_EQ(linalg::max_abs_diff(a, b), 0.0);
}

TEST(Standardizer, FromMomentsValidatesInput) {
  EXPECT_THROW(Standardizer::from_moments({1.0, 2.0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(Standardizer::from_moments({1.0}, {0.0}),
               std::invalid_argument);
  EXPECT_THROW(Standardizer::from_moments({1.0}, {-2.0}),
               std::invalid_argument);
}

TEST(TargetScaler, NormalizesAndInverts) {
  const std::vector<double> y{10.0, 20.0, 30.0};
  const TargetScaler scaler = TargetScaler::fit(y);
  const auto z = scaler.transform(y);
  EXPECT_NEAR(linalg::mean(z), 0.0, 1e-12);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(scaler.inverse(z[i]), y[i], 1e-12);
  }
}

TEST(TargetScaler, ConstantTargetUsesUnitScale) {
  const TargetScaler scaler = TargetScaler::fit({7.0, 7.0});
  EXPECT_DOUBLE_EQ(scaler.scale, 1.0);
  EXPECT_DOUBLE_EQ(scaler.inverse(0.0), 7.0);
}

}  // namespace
}  // namespace f2pm::data
