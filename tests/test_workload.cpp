#include "sim/tpcw_workload.hpp"

#include <gtest/gtest.h>

#include <map>

namespace f2pm::sim {
namespace {

/// Test double counting submissions and completing them after a fixed
/// service delay.
class RecordingSink final : public RequestSink {
 public:
  RecordingSink(Simulator& sim, double service_time)
      : sim_(sim), service_time_(service_time) {}

  void submit(Interaction interaction,
              std::function<void(double)> on_complete) override {
    ++counts_[interaction];
    ++total_;
    sim_.schedule_in(service_time_, [cb = std::move(on_complete),
                                     service = service_time_] {
      cb(service);
    });
  }

  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] const std::map<Interaction, std::size_t>& counts() const {
    return counts_;
  }

 private:
  Simulator& sim_;
  double service_time_;
  std::map<Interaction, std::size_t> counts_;
  std::size_t total_ = 0;
};

TEST(Workload, MixWeightsSumToRoughlyOneHundredPercent) {
  for (TpcwMix mix :
       {TpcwMix::kBrowsing, TpcwMix::kShopping, TpcwMix::kOrdering}) {
    double sum = 0.0;
    for (double w : mix_weights(mix)) sum += w;
    EXPECT_NEAR(sum, 100.0, 0.5);
  }
}

TEST(Workload, MixesDifferInOrderIntensity) {
  // Ordering traffic buys far more than browsing traffic.
  const auto buy = static_cast<std::size_t>(Interaction::kBuyConfirm);
  EXPECT_GT(mix_weights(TpcwMix::kOrdering)[buy],
            10.0 * mix_weights(TpcwMix::kBrowsing)[buy]);
  EXPECT_EQ(&mix_weights(TpcwMix::kBrowsing), &browsing_mix_weights());
}

TEST(Workload, OrderingMixShiftsTheIssuedTraffic) {
  Simulator sim;
  RecordingSink sink(sim, 0.001);
  util::Rng rng(9);
  WorkloadConfig config;
  config.num_browsers = 50;
  config.think_time_mean = 1.0;
  config.mix = TpcwMix::kOrdering;
  BrowserPool pool(sim, sink, config, rng);
  pool.start();
  sim.run_until(200.0);
  ASSERT_GT(sink.total(), 2000u);
  const double buy_fraction =
      static_cast<double>(sink.counts().count(Interaction::kBuyConfirm)
                              ? sink.counts().at(Interaction::kBuyConfirm)
                              : 0) /
      static_cast<double>(sink.total());
  EXPECT_NEAR(buy_fraction, 0.102, 0.03);
}

TEST(Workload, HomeIsTheMostFrequentInteraction) {
  const auto& mix = browsing_mix_weights();
  const double home = mix[static_cast<std::size_t>(Interaction::kHome)];
  for (double w : mix) EXPECT_LE(w, home);
}

TEST(Workload, EveryInteractionHasNameAndPositiveDemand) {
  for (std::size_t i = 0; i < kInteractionCount; ++i) {
    const auto interaction = static_cast<Interaction>(i);
    EXPECT_FALSE(interaction_name(interaction).empty());
    const InteractionDemand demand = interaction_demand(interaction);
    EXPECT_GT(demand.cpu_seconds, 0.0);
    EXPECT_GT(demand.io_seconds, 0.0);
  }
}

TEST(Workload, BestSellersIsHeavierThanSearchRequest) {
  // The DB-heavy interactions must dominate the cheap ones, as in TPC-W.
  EXPECT_GT(interaction_demand(Interaction::kBestSellers).cpu_seconds,
            interaction_demand(Interaction::kSearchRequest).cpu_seconds);
}

TEST(BrowserPool, ClosedLoopIssuesAndCompletes) {
  Simulator sim;
  RecordingSink sink(sim, 0.05);
  util::Rng rng(1);
  WorkloadConfig config;
  config.num_browsers = 10;
  config.think_time_mean = 2.0;
  BrowserPool pool(sim, sink, config, rng);
  pool.start();
  sim.run_until(100.0);
  // ~10 browsers * (100 / ~2.05s cycle) ~ 480 requests; loose bounds.
  EXPECT_GT(sink.total(), 200u);
  EXPECT_LT(sink.total(), 1000u);
  EXPECT_EQ(pool.requests_issued(), sink.total());
  // Closed loop: responses trail requests by at most the browser count.
  EXPECT_LE(pool.requests_issued() - pool.responses_received(),
            config.num_browsers);
}

TEST(BrowserPool, InteractionFrequenciesFollowTheMix) {
  Simulator sim;
  RecordingSink sink(sim, 0.001);
  util::Rng rng(2);
  WorkloadConfig config;
  config.num_browsers = 50;
  config.think_time_mean = 1.0;
  BrowserPool pool(sim, sink, config, rng);
  pool.start();
  sim.run_until(400.0);
  ASSERT_GT(sink.total(), 5000u);
  const double home_fraction =
      static_cast<double>(sink.counts().at(Interaction::kHome)) /
      static_cast<double>(sink.total());
  EXPECT_NEAR(home_fraction, 0.29, 0.03);
}

TEST(BrowserPool, StopQuiescesTheLoop) {
  Simulator sim;
  RecordingSink sink(sim, 0.01);
  util::Rng rng(3);
  WorkloadConfig config;
  config.num_browsers = 5;
  config.think_time_mean = 1.0;
  BrowserPool pool(sim, sink, config, rng);
  pool.start();
  sim.run_until(20.0);
  pool.stop();
  const std::size_t at_stop = pool.requests_issued();
  sim.run_until(100.0);
  EXPECT_EQ(pool.requests_issued(), at_stop);
}

}  // namespace
}  // namespace f2pm::sim
