// Allocation-counting hook for the serve hot path: every global operator
// new in this binary bumps a counter, so a test can warm a component, take
// a snapshot, run N steady-state iterations and assert the count did not
// move. Combined with SessionArena's own do_allocate counters this proves
// the per-datapoint path — decode, window append, aggregate+score, encode
// — touches the heap zero times once buffers are warm.
//
// Counting is process-wide, so measured regions must not call gtest
// constructs that allocate (SCOPED_TRACE, failing EXPECTs with streamed
// messages); snapshots are compared after the loop instead.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <optional>
#include <vector>

#include "core/online.hpp"
#include "data/aggregation.hpp"
#include "data/datapoint.hpp"
#include "linalg/matrix.hpp"
#include "ml/cascade.hpp"
#include "ml/linear_regression.hpp"
#include "net/protocol.hpp"
#include "serve/arena.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

void* counted_alloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* ptr = std::malloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

std::uint64_t global_news() {
  return g_news.load(std::memory_order_relaxed);
}

}  // namespace

// Replace the global allocation functions for this test binary. Only the
// unaligned forms are replaced — nothing on the measured paths uses
// over-aligned types, and the default aligned forms stay available.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace f2pm {
namespace {

/// A fitted LinearRegression over the full model-input row.
std::shared_ptr<ml::LinearRegression> fitted_linear(util::Rng& rng) {
  const std::size_t rows = 4 * data::kInputCount;
  linalg::Matrix x(rows, data::kInputCount);
  std::vector<double> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < data::kInputCount; ++c) {
      x(r, c) = rng.uniform(-1.0, 1.0);
    }
    y[r] = rng.uniform(0.0, 1000.0);
  }
  auto model = std::make_shared<ml::LinearRegression>();
  model->fit(x, y);
  return model;
}

/// Streams `windows` aggregation windows through `predictor` (100 samples
/// per 1-second window, starting at *tgen) and returns the number of
/// predictions emitted. Allocation-free once the predictor is warm, so it
/// doubles as warm-up and as the measured region.
std::size_t stream_windows(core::OnlinePredictor& predictor, double* tgen,
                           std::size_t windows) {
  std::size_t emitted = 0;
  data::RawDatapoint sample;
  for (std::size_t f = 0; f < data::kFeatureCount; ++f) {
    sample.values[f] = 0.125 * static_cast<double>(f + 1);
  }
  for (std::size_t i = 0; i < windows * 100; ++i) {
    sample.tgen = *tgen;
    sample.values[0] = *tgen;  // Nonconstant so slopes are nonzero.
    if (predictor.observe(sample)) ++emitted;
    *tgen += 0.01;
  }
  return emitted;
}

TEST(SessionArena, CountsAllocationsAndRecyclesCapacity) {
  serve::SessionArena arena;
  std::pmr::vector<double> buffer(&arena);
  buffer.reserve(256);
  const std::uint64_t after_reserve = arena.allocations();
  EXPECT_GE(after_reserve, 1u);

  // clear() keeps capacity: refilling within it never reaches the arena.
  for (int round = 0; round < 10; ++round) {
    buffer.clear();
    for (int i = 0; i < 256; ++i) buffer.push_back(static_cast<double>(i));
  }
  EXPECT_EQ(arena.allocations(), after_reserve);
  EXPECT_GE(arena.bytes_requested(), 256 * sizeof(double));
}

TEST(HotPathAlloc, OnlinePredictorSteadyStateIsAllocationFree) {
  util::Rng rng(42);
  auto model = fitted_linear(rng);
  data::AggregationOptions aggregation;
  aggregation.window_seconds = 1.0;
  aggregation.min_samples_per_window = 2;

  serve::SessionArena arena;
  core::OnlinePredictor predictor(model, aggregation, {}, &arena);
  predictor.reserve_window(512);

  // Warm-up: grows nothing past reserve_window but resolves the obs
  // registry statics and the first histogram observation.
  double tgen = 0.0;
  ASSERT_GT(stream_windows(predictor, &tgen, 5), 0u);

  const std::uint64_t news_before = global_news();
  const std::uint64_t arena_before = arena.allocations();
  const std::size_t emitted = stream_windows(predictor, &tgen, 20);
  const std::uint64_t news_after = global_news();
  const std::uint64_t arena_after = arena.allocations();

  EXPECT_EQ(emitted, 20u);
  EXPECT_EQ(news_after, news_before)
      << "observe/aggregate/score allocated on the steady-state path";
  EXPECT_EQ(arena_after, arena_before)
      << "window buffer grew past its reserve_hot_buffers capacity";
}

TEST(HotPathAlloc, CascadeScreenPathSteadyStateIsAllocationFree) {
  util::Rng rng(43);
  ml::CascadeOptions options;
  options.horizon_seconds = 600.0;
  options.screen_columns = {0, 1, 2, 3};
  auto cascade = std::make_shared<ml::CascadeRegressor>(
      std::make_unique<ml::LinearRegression>(),
      std::make_unique<ml::LinearRegression>(), options);
  {
    const std::size_t rows = 4 * data::kInputCount;
    linalg::Matrix x(rows, data::kInputCount);
    std::vector<double> y(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < data::kInputCount; ++c) {
        x(r, c) = rng.uniform(-1.0, 1.0);
      }
      y[r] = rng.uniform(0.0, 2000.0);
    }
    cascade->fit(x, y);
  }

  serve::SessionArena arena;
  data::AggregationOptions aggregation;
  aggregation.window_seconds = 1.0;
  aggregation.min_samples_per_window = 2;
  core::OnlinePredictor predictor(cascade, aggregation, {}, &arena);
  predictor.reserve_window(512);

  // Warm-up also sizes the screen stage's thread_local gather scratch.
  double tgen = 0.0;
  ASSERT_GT(stream_windows(predictor, &tgen, 5), 0u);

  const std::uint64_t news_before = global_news();
  const std::uint64_t arena_before = arena.allocations();
  const std::size_t emitted = stream_windows(predictor, &tgen, 20);

  EXPECT_EQ(emitted, 20u);
  EXPECT_EQ(global_news(), news_before)
      << "cascade screen/promote path allocated per window";
  EXPECT_EQ(arena.allocations(), arena_before);
}

TEST(HotPathAlloc, FrameEncoderIntoWarmBufferIsAllocationFree) {
  net::Prediction prediction;
  prediction.window_end = 30.0;
  prediction.rttf = 1234.5;
  prediction.alarm = true;
  prediction.model_version = 7;

  std::vector<std::uint8_t> out;
  net::FrameEncoder::encode_prediction(out, prediction);  // Warm: sizes
  net::FrameEncoder::encode_datapoint(out, data::RawDatapoint{});  // + obs.

  const std::uint64_t news_before = global_news();
  for (int i = 0; i < 1000; ++i) {
    out.clear();  // Capacity retained: the encodes below just rewrite it.
    net::FrameEncoder::encode_prediction(out, prediction);
    net::FrameEncoder::encode_datapoint(out, data::RawDatapoint{});
  }
  EXPECT_EQ(global_news(), news_before)
      << "FrameEncoder allocated while encoding into a warm buffer";
}

TEST(HotPathAlloc, FrameDecoderSteadyStateIsAllocationFree) {
  std::vector<std::uint8_t> wire;
  data::RawDatapoint sample;
  sample.tgen = 1.5;
  for (std::size_t f = 0; f < data::kFeatureCount; ++f) {
    sample.values[f] = static_cast<double>(f);
  }
  net::FrameEncoder::encode_datapoint(wire, sample);

  net::FrameDecoder decoder;
  // Warm: one full feed/view cycle sizes the inbox buffer and resolves
  // the net metrics statics.
  decoder.feed(wire.data(), wire.size());
  ASSERT_TRUE(decoder.next_view().has_value());

  data::RawDatapoint scratch;
  const std::uint64_t news_before = global_news();
  for (int i = 0; i < 1000; ++i) {
    // The buffer was fully consumed, so feed() recycles it (clear keeps
    // capacity) and the insert fits without growing.
    decoder.feed(wire.data(), wire.size());
    auto view = decoder.next_view();
    if (!view) break;  // EXPECT below reports the miscount.
    view->datapoint(scratch);
  }
  EXPECT_EQ(global_news(), news_before)
      << "FrameDecoder feed/next_view steady state allocated";
  EXPECT_EQ(scratch.tgen, sample.tgen);
}

}  // namespace
}  // namespace f2pm
