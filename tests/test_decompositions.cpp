#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"
#include "linalg/solve.hpp"
#include "util/rng.hpp"

namespace f2pm::linalg {
namespace {

Matrix random_spd(std::size_t n, util::Rng& rng) {
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
  }
  Matrix spd = gram(a);  // AᵀA is PSD; add I for strict PD
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(Cholesky, FactorReconstructsMatrix) {
  util::Rng rng(3);
  const Matrix a = random_spd(8, rng);
  const auto factor = cholesky(a);
  ASSERT_TRUE(factor.has_value());
  const Matrix reconstructed = gemm(factor->l, factor->l.transposed());
  EXPECT_LT(max_abs_diff(a, reconstructed), 1e-9);
}

TEST(Cholesky, SolveSatisfiesSystem) {
  util::Rng rng(4);
  const Matrix a = random_spd(10, rng);
  std::vector<double> b(10);
  for (double& v : b) v = rng.uniform(-5.0, 5.0);
  const auto x = cholesky(a)->solve(b);
  const auto ax = gemv(a, x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  const Matrix indefinite{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky(indefinite).has_value());
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, LogDetMatchesKnownValue) {
  const Matrix diag{{4.0, 0.0}, {0.0, 9.0}};
  EXPECT_NEAR(cholesky(diag)->log_det(), std::log(36.0), 1e-12);
}

TEST(SolveSpd, JitterRescuesSemidefinite) {
  // Rank-1 PSD matrix; plain Cholesky fails, jitter succeeds.
  const Matrix semi{{1.0, 1.0}, {1.0, 1.0}};
  const std::vector<double> b{1.0, 1.0};
  const auto x = solve_spd(semi, b);
  const auto ax = gemv(semi, x);
  EXPECT_NEAR(ax[0], 1.0, 1e-4);
}

TEST(Qr, LeastSquaresRecoversExactSolution) {
  // Square invertible system: LS solution is the exact solution.
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> b{5.0, 10.0};
  const auto x = least_squares(a, b);
  const auto ax = gemv(a, x);
  EXPECT_NEAR(ax[0], 5.0, 1e-10);
  EXPECT_NEAR(ax[1], 10.0, 1e-10);
}

TEST(Qr, OverdeterminedResidualIsOrthogonal) {
  util::Rng rng(9);
  Matrix a(30, 4);
  std::vector<double> b(30);
  for (std::size_t r = 0; r < 30; ++r) {
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    b[r] = rng.uniform(-1.0, 1.0);
  }
  const auto x = least_squares(a, b);
  // Normal equations must hold: Aᵀ(b - Ax) = 0.
  auto residual = b;
  const auto ax = gemv(a, x);
  for (std::size_t i = 0; i < residual.size(); ++i) residual[i] -= ax[i];
  const auto atr = gemv_transposed(a, residual);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Qr, UnderdeterminedThrows) {
  EXPECT_THROW(QrFactor(Matrix(2, 5)), std::invalid_argument);
}

TEST(Qr, RankDeficientSolveThrows) {
  Matrix a(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    a(r, 0) = static_cast<double>(r);
    a(r, 1) = 2.0 * static_cast<double>(r);  // duplicate direction
  }
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0};
  QrFactor factor(a);
  EXPECT_FALSE(factor.full_rank());
  EXPECT_THROW(factor.solve(b), std::runtime_error);
}

TEST(Lu, SolveMatchesKnownSystem) {
  const Matrix a{{0.0, 2.0}, {1.0, 0.0}};  // forces pivoting
  const std::vector<double> b{4.0, 3.0};
  const auto x = solve(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DeterminantWithPivoting) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(LuFactor(a).determinant(), -1.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  const Matrix singular{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuFactor{singular}, std::runtime_error);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  util::Rng rng(10);
  Matrix a(5, 5);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += 3.0;  // well conditioned
  }
  const Matrix prod = gemm(a, inverse(a));
  EXPECT_LT(max_abs_diff(prod, Matrix::identity(5)), 1e-9);
}

TEST(Lu, SolvesSymmetricIndefiniteBorderedSystem) {
  // The LS-SVM bordered form: [[0, 1],[1, k]] is indefinite.
  const Matrix bordered{{0.0, 1.0}, {1.0, 2.0}};
  const std::vector<double> rhs{0.0, 3.0};
  const auto x = solve(bordered, rhs);
  const auto ax = gemv(bordered, x);
  EXPECT_NEAR(ax[0], 0.0, 1e-12);
  EXPECT_NEAR(ax[1], 3.0, 1e-12);
}

}  // namespace
}  // namespace f2pm::linalg
