#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace f2pm::util {
namespace {

/// Redirects the logger sink for the duration of a test.
class SinkGuard {
 public:
  explicit SinkGuard(std::ostream* sink) {
    Logger::instance().set_sink(sink);
  }
  ~SinkGuard() { Logger::instance().set_sink(nullptr); }
};

class LevelGuard {
 public:
  explicit LevelGuard(LogLevel level) : previous_(Logger::instance().min_level()) {
    Logger::instance().set_min_level(level);
  }
  ~LevelGuard() { Logger::instance().set_min_level(previous_); }

 private:
  LogLevel previous_;
};

TEST(Logging, WritesFormattedLines) {
  std::ostringstream sink;
  SinkGuard sink_guard(&sink);
  LevelGuard level_guard(LogLevel::kDebug);
  F2PM_LOG(kInfo, "component") << "value=" << 42;
  const std::string line = sink.str();
  EXPECT_NE(line.find("[INFO ]"), std::string::npos);
  EXPECT_NE(line.find("component: value=42"), std::string::npos);
}

TEST(Logging, MinLevelFilters) {
  std::ostringstream sink;
  SinkGuard sink_guard(&sink);
  LevelGuard level_guard(LogLevel::kWarn);
  F2PM_LOG(kDebug, "x") << "hidden";
  F2PM_LOG(kInfo, "x") << "hidden too";
  F2PM_LOG(kError, "x") << "visible";
  EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink.str().find("visible"), std::string::npos);
}

TEST(Logging, LevelNamesAreFixedWidth) {
  EXPECT_EQ(std::string(log_level_name(LogLevel::kDebug)).size(), 5u);
  EXPECT_EQ(std::string(log_level_name(LogLevel::kInfo)).size(), 5u);
  EXPECT_EQ(std::string(log_level_name(LogLevel::kWarn)).size(), 5u);
  EXPECT_EQ(std::string(log_level_name(LogLevel::kError)).size(), 5u);
}

TEST(Logging, ConcurrentWritersDoNotInterleave) {
  std::ostringstream sink;
  SinkGuard sink_guard(&sink);
  LevelGuard level_guard(LogLevel::kInfo);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        F2PM_LOG(kInfo, "thread") << "t" << t << "-i" << i << "-end";
      }
    });
  }
  for (auto& writer : writers) writer.join();
  // Every line must be complete: starts with the tag, ends with "-end".
  std::istringstream lines(sink.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("[INFO ] thread: t", 0), 0u) << line;
    EXPECT_EQ(line.substr(line.size() - 4), "-end") << line;
    ++count;
  }
  EXPECT_EQ(count, 200u);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = timer.elapsed_seconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);  // generous: CI machines stall
  EXPECT_NEAR(timer.elapsed_millis(), timer.elapsed_seconds() * 1e3,
              timer.elapsed_millis() * 0.5);
}

TEST(Timer, ResetRestartsTheClock) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.reset();
  EXPECT_LT(timer.elapsed_seconds(), 0.015);
}

TEST(Timed, ReturnsResultAndDuration) {
  const auto [value, seconds] = timed([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return 123;
  });
  EXPECT_EQ(value, 123);
  EXPECT_GE(seconds, 0.005);
}

TEST(Timed, VoidOverloadReturnsDurationOnly) {
  const double seconds = timed(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(10)); });
  EXPECT_GE(seconds, 0.005);
}

}  // namespace
}  // namespace f2pm::util
