#include "core/feature_selection.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include "util/rng.hpp"

namespace f2pm::core {
namespace {

/// A dataset with mixed feature scales (as in the real pipeline): a huge
/// informative feature, a small informative feature, and noise.
data::Dataset make_dataset(std::size_t n, util::Rng& rng) {
  data::Dataset dataset;
  dataset.feature_names = {"big_signal", "small_signal", "noise"};
  dataset.x = linalg::Matrix(n, 3);
  dataset.y.resize(n);
  dataset.run_index.assign(n, 0);
  dataset.window_end.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    dataset.x(i, 0) = rng.uniform(0.0, 1e6);
    dataset.x(i, 1) = rng.uniform(0.0, 10.0);
    dataset.x(i, 2) = rng.uniform(-1.0, 1.0);
    dataset.y[i] =
        0.001 * dataset.x(i, 0) + 20.0 * dataset.x(i, 1) + rng.normal(0.0, 1.0);
  }
  return dataset;
}

TEST(FeatureSelection, PaperGridIsTenDecades) {
  const auto grid = paper_lambda_grid();
  ASSERT_EQ(grid.size(), 10u);
  EXPECT_DOUBLE_EQ(grid.front(), 1.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1e9);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(grid[i] / grid[i - 1], 10.0);
  }
}

TEST(FeatureSelection, EntriesCarryNamesAndWeights) {
  util::Rng rng(1);
  const data::Dataset dataset = make_dataset(300, rng);
  const auto result = select_features(dataset, {1e-6});
  ASSERT_EQ(result.entries.size(), 1u);
  const auto& entry = result.entries[0];
  EXPECT_EQ(entry.selected.size(), entry.weights.size());
  EXPECT_EQ(entry.selected.size(), entry.names.size());
  // At negligible λ both signals must be selected.
  EXPECT_NE(std::find(entry.names.begin(), entry.names.end(), "big_signal"),
            entry.names.end());
  EXPECT_NE(
      std::find(entry.names.begin(), entry.names.end(), "small_signal"),
      entry.names.end());
}

TEST(FeatureSelection, SelectionCountDecreasesAlongGrid) {
  util::Rng rng(2);
  const data::Dataset dataset = make_dataset(400, rng);
  std::vector<double> grid;
  // Up to 1e12: this data's λ_max is ~1e11 (big_signal spans 1e6 and the
  // objective uses total squared error), so the top of the grid must clear
  // it for the all-zero end of the path to be reachable.
  for (int e = -4; e <= 12; ++e) grid.push_back(std::pow(10.0, e));
  const auto result = select_features(dataset, grid);
  EXPECT_GE(result.entries.front().selected.size(),
            result.entries.back().selected.size());
  EXPECT_TRUE(result.entries.back().selected.empty());
}

TEST(FeatureSelection, AtLambdaLookup) {
  util::Rng rng(3);
  const data::Dataset dataset = make_dataset(100, rng);
  const auto result = select_features(dataset, {1.0, 100.0});
  EXPECT_DOUBLE_EQ(result.at_lambda(100.0).lambda, 100.0);
  EXPECT_THROW(result.at_lambda(42.0), std::out_of_range);
}

TEST(FeatureSelection, WeightsAlignWithSelectedColumns) {
  util::Rng rng(4);
  const data::Dataset dataset = make_dataset(300, rng);
  const auto result = select_features(dataset, {1e-6});
  const auto& entry = result.entries[0];
  for (std::size_t i = 0; i < entry.selected.size(); ++i) {
    EXPECT_NE(entry.weights[i], 0.0);
    EXPECT_EQ(entry.names[i], dataset.feature_names[entry.selected[i]]);
  }
}

}  // namespace
}  // namespace f2pm::core
