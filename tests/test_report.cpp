#include "core/report.hpp"

#include <gtest/gtest.h>

namespace f2pm::core {
namespace {

PipelineResult fake_result() {
  PipelineResult result;
  result.soft_threshold = 100.0;
  ModelOutcome linear;
  linear.display_name = "linear";
  linear.report.model_name = "linear";
  linear.report.soft_mae = 137.6;
  linear.report.training_seconds = 0.30;
  linear.report.validation_seconds = 0.42;
  ModelOutcome reptree;
  reptree.display_name = "reptree";
  reptree.report.model_name = "reptree";
  reptree.report.soft_mae = 69.832;
  reptree.report.training_seconds = 0.56;
  reptree.report.validation_seconds = 0.55;
  result.using_all_features = {linear, reptree};
  ModelOutcome linear_sel = linear;
  linear_sel.report.soft_mae = 156.6;
  ModelOutcome reptree_sel = reptree;
  reptree_sel.report.soft_mae = 108.476;
  result.using_selected_features = {linear_sel, reptree_sel};

  FeatureSelectionResult selection;
  SelectionEntry low;
  low.lambda = 1.0;
  low.selected = {0, 1, 2};
  low.weights = {0.1, 0.2, 0.3};
  low.names = {"a", "b", "c"};
  SelectionEntry high;
  high.lambda = 1e9;
  high.selected = {5};
  high.weights = {0.000019235560086};
  high.names = {"mem_used_slope"};
  selection.entries = {low, high};
  result.selection = selection;
  return result;
}

TEST(Report, DisplayNames) {
  EXPECT_EQ(display_model_name("linear"), "Linear Regression");
  EXPECT_EQ(display_model_name("reptree"), "REP Tree");
  EXPECT_EQ(display_model_name("m5p"), "M5P");
  EXPECT_EQ(display_model_name("svm"), "SVM");
  EXPECT_EQ(display_model_name("svm2"), "SVM2");
  EXPECT_EQ(display_model_name("lasso-lambda-1000000000"),
            "Lasso (lambda = 1e9)");
  EXPECT_EQ(display_model_name("lasso-lambda-1"), "Lasso (lambda = 1)");
  EXPECT_EQ(display_model_name("custom_model"), "custom_model");
}

TEST(Report, SmaeTableHasBothColumnsAndValues) {
  const std::string table = render_smae_table(fake_result());
  EXPECT_NE(table.find("SOFT MEAN ABSOLUTE ERROR"), std::string::npos);
  EXPECT_NE(table.find("Linear Regression"), std::string::npos);
  EXPECT_NE(table.find("REP Tree"), std::string::npos);
  EXPECT_NE(table.find("137.6"), std::string::npos);
  EXPECT_NE(table.find("108.476"), std::string::npos);
}

TEST(Report, TimeTables) {
  const PipelineResult result = fake_result();
  const std::string training = render_training_time_table(result);
  EXPECT_NE(training.find("TRAINING TIME"), std::string::npos);
  EXPECT_NE(training.find("0.56"), std::string::npos);
  const std::string validation = render_validation_time_table(result);
  EXPECT_NE(validation.find("VALIDATION TIME"), std::string::npos);
  EXPECT_NE(validation.find("0.42"), std::string::npos);
}

TEST(Report, SelectionCurveListsEveryLambda) {
  const std::string curve =
      render_selection_curve(*fake_result().selection);
  EXPECT_NE(curve.find("lambda"), std::string::npos);
  EXPECT_NE(curve.find("1000000000"), std::string::npos);
  // Counts 3 and 1 appear as data rows.
  EXPECT_NE(curve.find('3'), std::string::npos);
}

TEST(Report, SelectedWeightsTableMatchesTableIFormat) {
  const std::string table =
      render_selected_weights(*fake_result().selection, 1e9);
  EXPECT_NE(table.find("mem_used_slope"), std::string::npos);
  EXPECT_NE(table.find("0.000019235560086"), std::string::npos);
  EXPECT_THROW(render_selected_weights(*fake_result().selection, 12.0),
               std::out_of_range);
}

TEST(Report, FullScorecardListsEveryMetricColumn) {
  const std::string card = render_full_scorecard(
      fake_result().using_all_features, "Scorecard");
  for (const char* column : {"MAE", "RAE", "MaxAE", "S-MAE", "R2",
                             "train(s)", "valid(s)"}) {
    EXPECT_NE(card.find(column), std::string::npos) << column;
  }
}

}  // namespace
}  // namespace f2pm::core
