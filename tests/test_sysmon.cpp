#include <gtest/gtest.h>

#include "sysmon/proc_parser.hpp"
#include "sysmon/proc_source.hpp"

namespace f2pm::sysmon {
namespace {

constexpr const char* kMeminfo =
    "MemTotal:        2097152 kB\n"
    "MemFree:          959900 kB\n"
    "MemAvailable:    1500000 kB\n"
    "Buffers:           98304 kB\n"
    "Cached:           532480 kB\n"
    "SwapCached:            0 kB\n"
    "Shmem:             65536 kB\n"
    "SwapTotal:       1048576 kB\n"
    "SwapFree:         948576 kB\n";

TEST(ProcParser, MeminfoFields) {
  const MemInfo info = parse_meminfo(kMeminfo);
  EXPECT_DOUBLE_EQ(info.total_kb, 2097152.0);
  EXPECT_DOUBLE_EQ(info.free_kb, 959900.0);
  EXPECT_DOUBLE_EQ(info.buffers_kb, 98304.0);
  EXPECT_DOUBLE_EQ(info.cached_kb, 532480.0);
  EXPECT_DOUBLE_EQ(info.shmem_kb, 65536.0);
  EXPECT_DOUBLE_EQ(info.swap_total_kb, 1048576.0);
  EXPECT_DOUBLE_EQ(info.swap_free_kb, 948576.0);
  EXPECT_DOUBLE_EQ(info.used_kb(), 2097152.0 - 959900.0 - 98304.0 - 532480.0);
  EXPECT_DOUBLE_EQ(info.swap_used_kb(), 100000.0);
}

TEST(ProcParser, MeminfoMissingKeysStayZero) {
  const MemInfo info = parse_meminfo("MemTotal: 1000 kB\n");
  EXPECT_DOUBLE_EQ(info.total_kb, 1000.0);
  EXPECT_DOUBLE_EQ(info.swap_total_kb, 0.0);
}

TEST(ProcParser, MeminfoDoesNotConfuseSwapCachedWithCached) {
  const MemInfo info = parse_meminfo("SwapCached: 77 kB\nCached: 42 kB\n");
  EXPECT_DOUBLE_EQ(info.cached_kb, 42.0);
}

TEST(ProcParser, ProcStatAggregateLine) {
  const CpuJiffies jiffies = parse_proc_stat(
      "cpu  100 5 50 800 30 2 3 10\n"
      "cpu0 100 5 50 800 30 2 3 10\n");
  EXPECT_EQ(jiffies.user, 100u);
  EXPECT_EQ(jiffies.nice, 5u);
  EXPECT_EQ(jiffies.system, 50u);
  EXPECT_EQ(jiffies.idle, 800u);
  EXPECT_EQ(jiffies.iowait, 30u);
  EXPECT_EQ(jiffies.irq, 2u);
  EXPECT_EQ(jiffies.softirq, 3u);
  EXPECT_EQ(jiffies.steal, 10u);
  EXPECT_EQ(jiffies.total(), 1000u);
}

TEST(ProcParser, ProcStatToleratesShortLines) {
  // Ancient kernels had only 4 fields.
  const CpuJiffies jiffies = parse_proc_stat("cpu  10 0 5 85\n");
  EXPECT_EQ(jiffies.iowait, 0u);
  EXPECT_EQ(jiffies.total(), 100u);
}

TEST(ProcParser, ProcStatMissingCpuLineThrows) {
  EXPECT_THROW(parse_proc_stat("intr 1234\n"), std::invalid_argument);
  EXPECT_THROW(parse_proc_stat("cpu0 1 2 3 4\n"), std::invalid_argument);
}

TEST(ProcParser, CpuPercentagesFromDeltas) {
  CpuJiffies earlier;
  CpuJiffies later;
  later.user = 50;
  later.system = 20;
  later.iowait = 10;
  later.idle = 20;
  const CpuPercentages pct = cpu_percentages(earlier, later);
  EXPECT_DOUBLE_EQ(pct.user, 50.0);
  EXPECT_DOUBLE_EQ(pct.system, 20.0);
  EXPECT_DOUBLE_EQ(pct.iowait, 10.0);
  EXPECT_DOUBLE_EQ(pct.idle, 20.0);
  const double sum = pct.user + pct.nice + pct.system + pct.iowait +
                     pct.steal + pct.idle;
  EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(ProcParser, CpuPercentagesHandleNoProgress) {
  CpuJiffies same;
  same.user = 100;
  const CpuPercentages pct = cpu_percentages(same, same);
  EXPECT_DOUBLE_EQ(pct.idle, 100.0);
}

TEST(ProcParser, CpuPercentagesFoldIrqIntoSystem) {
  CpuJiffies earlier;
  CpuJiffies later;
  later.system = 10;
  later.irq = 5;
  later.softirq = 5;
  later.idle = 80;
  EXPECT_DOUBLE_EQ(cpu_percentages(earlier, later).system, 20.0);
}

TEST(ProcParser, LoadavgThreadCount) {
  EXPECT_EQ(parse_loadavg_threads("0.42 0.37 0.31 2/1234 5678\n"), 1234);
  EXPECT_THROW(parse_loadavg_threads("0.1 0.2 0.3"), std::invalid_argument);
  EXPECT_THROW(parse_loadavg_threads("0.1 0.2 0.3 2/x 99"),
               std::invalid_argument);
}

TEST(ProcSource, SamplesTheLiveHostWhenProcExists) {
  ProcFeatureSource source;
  if (!source.available()) {
    GTEST_SKIP() << "/proc not available on this host";
  }
  const data::RawDatapoint first = source.sample();
  // Memory totals on a real machine are positive and self-consistent.
  EXPECT_GT(first[data::FeatureId::kMemUsed] +
                first[data::FeatureId::kMemFree],
            0.0);
  EXPECT_GE(first[data::FeatureId::kMemFree], 0.0);
  EXPECT_GE(first[data::FeatureId::kSwapFree], 0.0);
  EXPECT_GT(first[data::FeatureId::kNumThreads], 0.0);
  // First sample reports idle CPU (no previous snapshot).
  EXPECT_DOUBLE_EQ(first[data::FeatureId::kCpuIdle], 100.0);

  const data::RawDatapoint second = source.sample();
  EXPECT_GE(second.tgen, first.tgen);
  const double cpu_sum = second[data::FeatureId::kCpuUser] +
                         second[data::FeatureId::kCpuNice] +
                         second[data::FeatureId::kCpuSystem] +
                         second[data::FeatureId::kCpuIoWait] +
                         second[data::FeatureId::kCpuSteal] +
                         second[data::FeatureId::kCpuIdle];
  EXPECT_NEAR(cpu_sum, 100.0, 1e-6);
}

TEST(ProcSource, MissingProcRootReportsUnavailable) {
  ProcFeatureSource source("/nonexistent_proc_root");
  EXPECT_FALSE(source.available());
  EXPECT_THROW(source.sample(), std::runtime_error);
}

}  // namespace
}  // namespace f2pm::sysmon
