#include "sim/resources.hpp"

#include <gtest/gtest.h>

namespace f2pm::sim {
namespace {

TEST(Resources, HealthySystemHasNoSwapAndFullCache) {
  ResourceModel model;
  const MemorySnapshot snapshot = model.memory();
  EXPECT_DOUBLE_EQ(snapshot.swap_used_kb, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.cached_kb, model.config().base_cached_kb);
  EXPECT_DOUBLE_EQ(snapshot.buffers_kb, model.config().base_buffers_kb);
  EXPECT_GT(snapshot.free_kb, 0.0);
  EXPECT_FALSE(model.crashed());
  EXPECT_DOUBLE_EQ(model.slowdown_factor(), 1.0);
}

TEST(Resources, MemoryAccountingConserved) {
  ResourceModel model;
  model.leak_memory(300.0 * 1024);
  const MemorySnapshot s = model.memory();
  // used + free + buffers + cached = total while swap is untouched.
  EXPECT_NEAR(s.used_kb + s.free_kb + s.buffers_kb + s.cached_kb,
              model.config().total_memory_kb, 1e-6);
}

TEST(Resources, CacheReclaimedBeforeSwap) {
  ResourceModel model;
  const double total = model.config().total_memory_kb;
  // Leak enough to exhaust free memory but not the reclaimable cache.
  model.leak_memory(total - model.config().base_used_kb -
                    model.config().base_cached_kb -
                    model.config().base_buffers_kb -
                    model.config().base_shared_kb + 100.0 * 1024);
  const MemorySnapshot s = model.memory();
  EXPECT_LT(s.cached_kb, model.config().base_cached_kb);
  EXPECT_DOUBLE_EQ(s.swap_used_kb, 0.0);
  EXPECT_DOUBLE_EQ(s.free_kb, 0.0);
}

TEST(Resources, OverflowSpillsToSwapThenCrashes) {
  ResourceModel model;
  model.leak_memory(model.config().total_memory_kb);  // way past RAM
  const MemorySnapshot s = model.memory();
  EXPECT_GT(s.swap_used_kb, 0.0);
  EXPECT_DOUBLE_EQ(s.cached_kb, model.config().min_cached_kb);
  EXPECT_DOUBLE_EQ(s.buffers_kb, model.config().min_buffers_kb);
  EXPECT_FALSE(model.crashed());
  model.leak_memory(model.config().total_swap_kb);
  EXPECT_TRUE(model.crashed());
  EXPECT_GE(model.swap_pressure(), model.config().crash_swap_fraction);
}

TEST(Resources, SwapNeverExceedsTotal) {
  ResourceModel model;
  model.leak_memory(100.0 * model.config().total_memory_kb);
  const MemorySnapshot s = model.memory();
  EXPECT_LE(s.swap_used_kb, model.config().total_swap_kb);
  EXPECT_GE(s.swap_free_kb, 0.0);
}

TEST(Resources, ThreadCensusCountsEverything) {
  ResourceModel model;
  const int base = model.config().base_threads;
  EXPECT_EQ(model.num_threads(), base);
  model.leak_thread();
  model.leak_thread();
  model.set_active_requests(5, 8);
  EXPECT_EQ(model.num_threads(), base + 2 + 8);
  EXPECT_EQ(model.leaked_threads(), 2);
}

TEST(Resources, SlowdownGrowsWithSwapPressure) {
  ResourceModel model;
  const double healthy = model.slowdown_factor();
  model.leak_memory(model.config().total_memory_kb +
                    0.5 * model.config().total_swap_kb);
  const double thrashing = model.slowdown_factor();
  EXPECT_GT(thrashing, healthy * 5.0);
}

TEST(Resources, LeakAccumulates) {
  ResourceModel model;
  model.leak_memory(100.0);
  model.leak_memory(250.0);
  EXPECT_DOUBLE_EQ(model.leaked_kb(), 350.0);
  model.leak_memory(-5.0);  // ignored
  EXPECT_DOUBLE_EQ(model.leaked_kb(), 350.0);
}

TEST(Resources, CpuSampleSumsToOneHundred) {
  ResourceModel model;
  util::Rng rng(1);
  model.add_cpu_user_seconds(0.5);
  model.add_cpu_system_seconds(0.2);
  model.add_cpu_iowait_seconds(0.1);
  data::RawDatapoint sample;
  model.sample_cpu(2.0, rng, sample);
  const double sum = sample[data::FeatureId::kCpuUser] +
                     sample[data::FeatureId::kCpuSystem] +
                     sample[data::FeatureId::kCpuIoWait] +
                     sample[data::FeatureId::kCpuSteal] +
                     sample[data::FeatureId::kCpuNice] +
                     sample[data::FeatureId::kCpuIdle];
  EXPECT_NEAR(sum, 100.0, 1e-9);
  // 0.5s of user work over 2s * 2 cores = 12.5%.
  EXPECT_NEAR(sample[data::FeatureId::kCpuUser], 12.5, 1e-9);
}

TEST(Resources, CpuSampleSaturatesProportionally) {
  ResourceModel model;
  util::Rng rng(2);
  // 10s of work in a 1s interval on 2 cores: must scale down to 100%.
  model.add_cpu_user_seconds(6.0);
  model.add_cpu_iowait_seconds(4.0);
  data::RawDatapoint sample;
  model.sample_cpu(1.0, rng, sample);
  const double busy = sample[data::FeatureId::kCpuUser] +
                      sample[data::FeatureId::kCpuSystem] +
                      sample[data::FeatureId::kCpuIoWait] +
                      sample[data::FeatureId::kCpuSteal] +
                      sample[data::FeatureId::kCpuNice];
  EXPECT_NEAR(busy, 100.0, 1e-9);
  EXPECT_NEAR(sample[data::FeatureId::kCpuIdle], 0.0, 1e-9);
  // user:iowait stays 6:4 after scaling.
  EXPECT_NEAR(sample[data::FeatureId::kCpuUser] /
                  sample[data::FeatureId::kCpuIoWait],
              1.5, 1e-6);
}

TEST(Resources, CpuAccumulatorsResetAfterSample) {
  ResourceModel model;
  util::Rng rng(3);
  model.add_cpu_user_seconds(1.0);
  data::RawDatapoint first;
  model.sample_cpu(1.0, rng, first);
  data::RawDatapoint second;
  model.sample_cpu(1.0, rng, second);
  EXPECT_DOUBLE_EQ(second[data::FeatureId::kCpuUser], 0.0);
}

}  // namespace
}  // namespace f2pm::sim
