#include "core/online.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include <memory>

#include "core/pipeline.hpp"
#include "ml/linear_regression.hpp"
#include "ml/registry.hpp"
#include "sim/campaign.hpp"

namespace f2pm::core {
namespace {

/// A stub regressor returning a constant, for plumbing tests.
class ConstantModel final : public ml::Regressor {
 public:
  explicit ConstantModel(double value, std::size_t width)
      : value_(value), width_(width) {}
  void fit(const linalg::Matrix&, std::span<const double>) override {}
  [[nodiscard]] double predict_row(std::span<const double>) const override {
    return value_;
  }
  [[nodiscard]] std::string name() const override { return "constant"; }
  [[nodiscard]] bool is_fitted() const override { return true; }
  [[nodiscard]] std::size_t num_inputs() const override { return width_; }
  void save(util::BinaryWriter&) const override {}

 private:
  double value_;
  std::size_t width_;
};

data::RawDatapoint sample_at(double tgen, double mem_used = 0.0) {
  data::RawDatapoint sample;
  sample.tgen = tgen;
  sample[data::FeatureId::kMemUsed] = mem_used;
  return sample;
}

TEST(OnlinePredictor, EmitsOncePerClosedWindow) {
  auto model = std::make_shared<ConstantModel>(500.0, data::kInputCount);
  data::AggregationOptions aggregation;
  aggregation.window_seconds = 10.0;
  OnlinePredictor predictor(model, aggregation);
  std::size_t emitted = 0;
  for (double t = 1.0; t <= 45.0; t += 1.0) {
    if (auto prediction = predictor.observe(sample_at(t))) {
      ++emitted;
      EXPECT_DOUBLE_EQ(prediction->rttf, 500.0);
      EXPECT_NEAR(std::fmod(prediction->window_end, 10.0), 0.0, 1e-9);
    }
  }
  // Windows [0,10), [10,20), [20,30), [30,40) closed; [40,50) is open.
  EXPECT_EQ(emitted, 4u);
  EXPECT_EQ(predictor.windows_emitted(), 4u);
}

TEST(OnlinePredictor, SparseWindowsAreSkipped) {
  auto model = std::make_shared<ConstantModel>(1.0, data::kInputCount);
  data::AggregationOptions aggregation;
  aggregation.window_seconds = 10.0;
  aggregation.min_samples_per_window = 3;
  OnlinePredictor predictor(model, aggregation);
  // Two samples in the first window: below the minimum.
  EXPECT_FALSE(predictor.observe(sample_at(1.0)).has_value());
  EXPECT_FALSE(predictor.observe(sample_at(5.0)).has_value());
  EXPECT_FALSE(predictor.observe(sample_at(12.0)).has_value());
}

TEST(OnlinePredictor, FlushOnFreshPredictorEmitsNothing) {
  auto model = std::make_shared<ConstantModel>(1.0, data::kInputCount);
  OnlinePredictor predictor(model, data::AggregationOptions{});
  EXPECT_FALSE(predictor.flush().has_value());
}

TEST(OnlinePredictor, FlushBelowMinimumEmitsNothing) {
  auto model = std::make_shared<ConstantModel>(1.0, data::kInputCount);
  data::AggregationOptions aggregation;
  aggregation.window_seconds = 10.0;
  aggregation.min_samples_per_window = 3;
  OnlinePredictor predictor(model, aggregation);
  predictor.observe(sample_at(1.0));
  predictor.observe(sample_at(2.0));
  EXPECT_FALSE(predictor.flush().has_value());
  EXPECT_EQ(predictor.windows_emitted(), 0u);
}

TEST(OnlinePredictor, FlushEmitsOpenWindowAtExactMinimum) {
  // The stream ends mid-window with exactly min_samples collected: without
  // flush() this prediction was silently dropped.
  auto model = std::make_shared<ConstantModel>(500.0, data::kInputCount);
  data::AggregationOptions aggregation;
  aggregation.window_seconds = 10.0;
  aggregation.min_samples_per_window = 2;
  OnlinePredictor predictor(model, aggregation);
  EXPECT_FALSE(predictor.observe(sample_at(11.0)).has_value());
  EXPECT_FALSE(predictor.observe(sample_at(15.0)).has_value());
  const auto prediction = predictor.flush();
  ASSERT_TRUE(prediction.has_value());
  EXPECT_DOUBLE_EQ(prediction->window_end, 20.0);
  EXPECT_DOUBLE_EQ(prediction->rttf, 500.0);
  EXPECT_EQ(prediction->window_samples, 2u);
  EXPECT_EQ(predictor.windows_emitted(), 1u);
}

TEST(OnlinePredictor, DoubleFlushIsIdempotent) {
  auto model = std::make_shared<ConstantModel>(500.0, data::kInputCount);
  data::AggregationOptions aggregation;
  aggregation.window_seconds = 10.0;
  OnlinePredictor predictor(model, aggregation);
  predictor.observe(sample_at(1.0));
  predictor.observe(sample_at(5.0));
  ASSERT_TRUE(predictor.flush().has_value());
  // The window was consumed: a second flush must not re-emit it.
  EXPECT_FALSE(predictor.flush().has_value());
  EXPECT_EQ(predictor.windows_emitted(), 1u);
}

TEST(OnlinePredictor, ObserveAfterFlushDoesNotReEmit) {
  auto model = std::make_shared<ConstantModel>(500.0, data::kInputCount);
  data::AggregationOptions aggregation;
  aggregation.window_seconds = 10.0;
  aggregation.min_samples_per_window = 1;
  OnlinePredictor predictor(model, aggregation);
  predictor.observe(sample_at(1.0));
  predictor.observe(sample_at(5.0));
  ASSERT_TRUE(predictor.flush().has_value());
  // A later sample opens a new window; the flushed one stays consumed.
  EXPECT_FALSE(predictor.observe(sample_at(12.0)).has_value());
  const auto next = predictor.observe(sample_at(22.0));
  ASSERT_TRUE(next.has_value());
  EXPECT_DOUBLE_EQ(next->window_end, 20.0);
  EXPECT_EQ(predictor.windows_emitted(), 2u);
}

TEST(OnlinePredictor, RejectsOutOfOrderSamples) {
  auto model = std::make_shared<ConstantModel>(1.0, data::kInputCount);
  OnlinePredictor predictor(model, data::AggregationOptions{});
  predictor.observe(sample_at(5.0));
  EXPECT_THROW(predictor.observe(sample_at(4.0)), std::invalid_argument);
}

TEST(OnlinePredictor, ResetClearsState) {
  auto model = std::make_shared<ConstantModel>(1.0, data::kInputCount);
  data::AggregationOptions aggregation;
  aggregation.window_seconds = 10.0;
  OnlinePredictor predictor(model, aggregation);
  predictor.observe(sample_at(8.0));
  predictor.reset();
  // After reset, going "back in time" is legal (system restarted).
  EXPECT_NO_THROW(predictor.observe(sample_at(1.0)));
}

TEST(OnlinePredictor, ValidatesModelWidth) {
  auto narrow = std::make_shared<ConstantModel>(1.0, 3);
  EXPECT_THROW(OnlinePredictor(narrow, data::AggregationOptions{}),
               std::invalid_argument);
  // But a narrow model is fine when a matching column subset is given.
  EXPECT_NO_THROW(OnlinePredictor(narrow, data::AggregationOptions{},
                                  std::vector<std::size_t>{0, 1, 2}));
  EXPECT_THROW(OnlinePredictor(narrow, data::AggregationOptions{},
                               std::vector<std::size_t>{0, 1, 999}),
               std::invalid_argument);
}

TEST(OnlinePredictor, MatchesOfflineAggregationExactly) {
  // Stream a real simulated run through the online path and check the
  // predictions equal model->predict on the offline-aggregated rows.
  sim::CampaignConfig config;
  config.workload.num_browsers = 40;
  config.use_synthetic_injectors = true;
  const sim::RunResult run = sim::execute_run(config, 4321);
  ASSERT_TRUE(run.run.failed);

  data::DataHistory history;
  history.add_run(run.run);
  data::AggregationOptions aggregation;  // defaults: 30s windows
  const auto offline_points = data::aggregate(history, aggregation);
  const data::Dataset dataset = data::build_dataset(offline_points);

  auto model = std::make_shared<ml::LinearRegression>();
  model->fit(dataset.x, dataset.y);

  OnlinePredictor predictor(model, aggregation);
  std::vector<OnlinePrediction> online;
  for (const auto& sample : run.run.samples) {
    if (auto prediction = predictor.observe(sample)) {
      online.push_back(*prediction);
    }
  }
  // The online path closes a window only when a later sample arrives, so
  // it may emit one fewer than offline labeling produces; every emitted
  // window must match its offline twin exactly.
  ASSERT_GE(online.size(), offline_points.size() - 1);
  const auto offline_predicted = model->predict(dataset.x);
  for (std::size_t i = 0; i < online.size(); ++i) {
    ASSERT_DOUBLE_EQ(online[i].window_end, offline_points[i].window_end);
    EXPECT_NEAR(online[i].rttf, offline_predicted[i], 1e-9) << i;
  }
}

TEST(RejuvenationAdvisor, DebouncesAndLatches) {
  RejuvenationAdvisor advisor(AdvisorOptions{.lead_seconds = 100.0,
                                             .consecutive_windows = 2});
  OnlinePrediction low{.window_end = 10.0, .rttf = 50.0};
  OnlinePrediction high{.window_end = 20.0, .rttf = 500.0};
  EXPECT_FALSE(advisor.update(low));    // first low: not yet
  EXPECT_FALSE(advisor.update(high));   // reset by a high one
  EXPECT_FALSE(advisor.update(low));
  low.window_end = 30.0;
  EXPECT_TRUE(advisor.update(low));     // second consecutive low: fire
  EXPECT_TRUE(advisor.triggered());
  EXPECT_DOUBLE_EQ(advisor.trigger_time(), 30.0);
  // Latched: even a high prediction keeps it triggered.
  EXPECT_TRUE(advisor.update(high));
  advisor.reset();
  EXPECT_FALSE(advisor.triggered());
}

TEST(RejuvenationAdvisor, RejectsZeroDebounce) {
  EXPECT_THROW(
      RejuvenationAdvisor(AdvisorOptions{.consecutive_windows = 0}),
      std::invalid_argument);
}

TEST(OnlinePredictor, EndToEndCatchesACrashEarly) {
  // Train on a few runs, stream a fresh one, and check the advisor fires
  // before the crash but not absurdly early.
  sim::CampaignConfig config;
  config.num_runs = 6;
  config.seed = 777;
  config.workload.num_browsers = 40;
  const data::DataHistory history = sim::run_campaign(config);
  PipelineOptions options;
  options.models = {"reptree"};
  options.run_feature_selection = false;
  const PipelineResult trained = run_pipeline(history, options);
  auto model = std::shared_ptr<ml::Regressor>(ml::make_model("reptree"));
  model->fit(trained.train.x, trained.train.y);

  const sim::RunResult fresh = sim::execute_run(config, 31337);
  ASSERT_TRUE(fresh.run.failed);
  OnlinePredictor predictor(model, options.aggregation);
  RejuvenationAdvisor advisor(AdvisorOptions{.lead_seconds = 240.0,
                                             .consecutive_windows = 2});
  double fired_at = -1.0;
  for (const auto& sample : fresh.run.samples) {
    if (auto prediction = predictor.observe(sample)) {
      if (advisor.update(*prediction) && fired_at < 0.0) {
        fired_at = advisor.trigger_time();
      }
    }
  }
  ASSERT_GT(fired_at, 0.0) << "advisor never fired";
  EXPECT_LT(fired_at, fresh.run.fail_time);
  // Not more than ~6x the lead time early.
  EXPECT_GT(fired_at, fresh.run.fail_time - 6.0 * 240.0);
}

}  // namespace
}  // namespace f2pm::core
