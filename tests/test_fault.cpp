// Unit tests for the deterministic fault-injection layer: schedule
// determinism, scripted events, the zero-cost disarmed path, each
// transport gate (connect / accept / read / write), and the
// FeatureMonitorClient connect-retry/backoff built on top of it.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/fault.hpp"
#include "net/fmc.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace f2pm::net {
namespace {

FaultPlan rates_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.read_reset_rate = 0.2;
  plan.write_reset_rate = 0.2;
  plan.short_read_rate = 0.2;
  plan.read_eagain_rate = 0.2;
  plan.stall_rate = 0.1;
  plan.stall_ms = 0;  // decide "delay", but never actually sleep in tests
  return plan;
}

std::vector<FaultAction> decisions(FaultInjector& injector, std::uint64_t lane,
                                   FaultOp op, std::size_t count) {
  FaultLaneScope scope(lane);
  std::vector<FaultAction> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(injector.next(op).action);
  }
  return out;
}

TEST(FaultInjector, SameSeedSameLaneSameSchedule) {
  FaultInjector a(rates_plan(11));
  FaultInjector b(rates_plan(11));
  EXPECT_EQ(decisions(a, 3, FaultOp::kRead, 200),
            decisions(b, 3, FaultOp::kRead, 200));
  EXPECT_EQ(decisions(a, 3, FaultOp::kWrite, 200),
            decisions(b, 3, FaultOp::kWrite, 200));
  // Re-entering a lane restarts its ordinals: the schedule replays.
  EXPECT_EQ(decisions(a, 3, FaultOp::kRead, 200),
            decisions(b, 3, FaultOp::kRead, 200));
}

TEST(FaultInjector, DifferentSeedsOrLanesDiffer) {
  FaultInjector a(rates_plan(11));
  FaultInjector b(rates_plan(12));
  EXPECT_NE(decisions(a, 3, FaultOp::kRead, 200),
            decisions(b, 3, FaultOp::kRead, 200));
  EXPECT_NE(decisions(a, 3, FaultOp::kRead, 200),
            decisions(a, 4, FaultOp::kRead, 200));
}

TEST(FaultInjector, ScriptOverridesExactCoordinate) {
  FaultPlan plan;  // all rates zero
  plan.script.push_back({/*lane=*/7, FaultOp::kWrite, /*index=*/5,
                         FaultAction::kReset, 0});
  FaultInjector injector(plan);
  const auto lane7 = decisions(injector, 7, FaultOp::kWrite, 10);
  for (std::size_t i = 0; i < lane7.size(); ++i) {
    EXPECT_EQ(lane7[i], i == 5 ? FaultAction::kReset : FaultAction::kNone)
        << "index " << i;
  }
  // Neighbouring lanes and ops are untouched.
  for (const FaultAction action : decisions(injector, 8, FaultOp::kWrite, 10)) {
    EXPECT_EQ(action, FaultAction::kNone);
  }
  for (const FaultAction action : decisions(injector, 7, FaultOp::kRead, 10)) {
    EXPECT_EQ(action, FaultAction::kNone);
  }
  EXPECT_EQ(injector.injected(FaultAction::kReset), 1u);
  EXPECT_EQ(injector.total_injected(), 1u);
}

TEST(FaultInjector, EagainStormSwallowsOpsWithoutAdvancingSchedule) {
  FaultPlan plan;
  plan.script.push_back({/*lane=*/1, FaultOp::kRead, /*index=*/2,
                         FaultAction::kEagain, /*param=*/3});
  plan.script.push_back({/*lane=*/1, FaultOp::kRead, /*index=*/3,
                         FaultAction::kReset, 0});
  FaultInjector injector(plan);
  const auto lane1 = decisions(injector, 1, FaultOp::kRead, 8);
  // Index 2 starts a 3-long storm (the decision plus two swallowed ops);
  // the scripted reset at ordinal 3 still fires right after it ends.
  const std::vector<FaultAction> expected{
      FaultAction::kNone,   FaultAction::kNone,  FaultAction::kEagain,
      FaultAction::kEagain, FaultAction::kEagain, FaultAction::kReset,
      FaultAction::kNone,   FaultAction::kNone};
  EXPECT_EQ(lane1, expected);
  EXPECT_EQ(injector.injected(FaultAction::kEagain), 3u);
}

TEST(FaultInjector, EmptyPlanDecidesNothing) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.short_read_rate = 0.5;
  EXPECT_FALSE(plan.empty());

  FaultInjector injector(FaultPlan{});
  for (const FaultAction action :
       decisions(injector, 1, FaultOp::kRead, 100)) {
    EXPECT_EQ(action, FaultAction::kNone);
  }
  EXPECT_EQ(injector.total_injected(), 0u);
}

TEST(ScopedFaultInjection, InstallsAndExcludes) {
  EXPECT_EQ(FaultInjector::active(), nullptr);
  {
    ScopedFaultInjection injection{FaultPlan{}};
    EXPECT_EQ(FaultInjector::active(), &injection.injector());
    EXPECT_THROW(ScopedFaultInjection{FaultPlan{}}, std::logic_error);
  }
  EXPECT_EQ(FaultInjector::active(), nullptr);
}

TEST(FaultLaneScope, NestsAndRestores) {
  FaultInjector injector(rates_plan(5));
  FaultLaneScope outer(10);
  injector.next(FaultOp::kRead);  // lane 10 ordinal 0
  {
    FaultLaneScope inner(11);
    injector.next(FaultOp::kRead);  // lane 11 ordinal 0
  }
  // Back in lane 10 with its ordinal intact: next read is ordinal 1, and
  // it must match a fresh replay of lane 10's schedule.
  const FaultDecision got = injector.next(FaultOp::kRead);
  FaultInjector replay(rates_plan(5));
  const auto expected = decisions(replay, 10, FaultOp::kRead, 2);
  EXPECT_EQ(got.action, expected[1]);
}

// --- Transport gates, through real sockets -------------------------------

TEST(FaultGates, ScriptedConnectRefusalThenSuccess) {
  TcpListener listener(0);
  FaultPlan plan;
  plan.script.push_back({/*lane=*/1, FaultOp::kConnect, /*index=*/0,
                         FaultAction::kRefuse, 0});
  ScopedFaultInjection injection(plan);
  FaultLaneScope lane(1);
  try {
    TcpStream::connect("127.0.0.1", listener.port());
    FAIL() << "expected injected refusal";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected connection refused"),
              std::string::npos);
  }
  EXPECT_NO_THROW(TcpStream::connect("127.0.0.1", listener.port()));
  EXPECT_EQ(injection.injector().injected(FaultAction::kRefuse), 1u);
}

TEST(FaultGates, ShortWritesAndReadsAreTransparentToBlockingIo) {
  TcpListener listener(0);
  FaultPlan plan;
  plan.seed = 3;
  plan.short_write_rate = 1.0;
  plan.short_read_rate = 1.0;
  plan.short_io_bytes = 7;
  ScopedFaultInjection injection(plan);

  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  auto server = listener.accept();
  ASSERT_TRUE(server.has_value());

  std::vector<char> sent(1000);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<char>(i * 31 + 7);
  }
  std::thread writer([&] {
    FaultLaneScope lane(2);
    client.send_all(sent.data(), sent.size());
  });
  std::vector<char> received(sent.size());
  {
    FaultLaneScope lane(3);
    ASSERT_TRUE(server->recv_exact(received.data(), received.size()));
  }
  writer.join();
  EXPECT_EQ(std::memcmp(sent.data(), received.data(), sent.size()), 0);
  // Every 7-byte transfer was clamped: ~1000/7 short ops on each side.
  EXPECT_GE(injection.injector().injected(FaultAction::kShortIo), 250u);
}

TEST(FaultGates, InjectedResetSurfacesAsSendError) {
  TcpListener listener(0);
  FaultPlan plan;
  plan.script.push_back({/*lane=*/4, FaultOp::kWrite, /*index=*/0,
                         FaultAction::kReset, 0});
  ScopedFaultInjection injection(plan);
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  FaultLaneScope lane(4);
  const char byte = 'x';
  try {
    client.send_all(&byte, 1);
    FAIL() << "expected injected reset";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected connection reset"),
              std::string::npos);
  }
  // The fd itself stays open (like a real ECONNRESET): cleanup is ours.
  EXPECT_TRUE(client.valid());
}

TEST(FaultGates, EagainStormOnNonblockingRead) {
  TcpListener listener(0);
  FaultPlan plan;
  plan.script.push_back({/*lane=*/5, FaultOp::kRead, /*index=*/0,
                         FaultAction::kEagain, /*param=*/3});
  ScopedFaultInjection injection(plan);
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  auto server = listener.accept();
  ASSERT_TRUE(server.has_value());
  const char byte = 'y';
  server->send_all(&byte, 1);

  FaultLaneScope lane(5);
  char got = 0;
  std::size_t n = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.recv_some(&got, 1, n), IoResult::kWouldBlock);
  }
  EXPECT_EQ(client.recv_some(&got, 1, n), IoResult::kOk);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(got, 'y');
}

TEST(FaultGates, AcceptDropNeverDeliversTheConnection) {
  TcpListener listener(0);
  listener.set_nonblocking(true);
  FaultPlan plan;
  plan.accept_drop_rate = 1.0;
  ScopedFaultInjection injection(plan);
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  // The handshake completed via the backlog, but the accept gate drops
  // every connection on the floor.
  EXPECT_FALSE(listener.try_accept().has_value());
  EXPECT_GE(injection.injector().injected(FaultAction::kRefuse), 1u);
  // The dropped peer sees a reset on its next read.
  char got = 0;
  std::size_t n = 0;
  EXPECT_THROW(
      {
        while (client.recv_some(&got, 1, n) == IoResult::kOk) {
        }
      },
      std::runtime_error);
}

// --- FeatureMonitorClient retry machinery --------------------------------

ClientOptions retry_options(std::size_t attempts) {
  ClientOptions options;
  options.max_connect_attempts = attempts;
  options.backoff_initial_seconds = 0.001;
  options.backoff_max_seconds = 0.004;
  options.jitter_seed = 99;
  return options;
}

TEST(FmcRetry, ConnectRetriesThroughRefusalsThenSucceeds) {
  TcpListener listener(0);
  FaultPlan plan;
  plan.script.push_back({/*lane=*/6, FaultOp::kConnect, /*index=*/0,
                         FaultAction::kRefuse, 0});
  plan.script.push_back({/*lane=*/6, FaultOp::kConnect, /*index=*/1,
                         FaultAction::kRefuse, 0});
  ScopedFaultInjection injection(plan);
  FaultLaneScope lane(6);
  FeatureMonitorClient client("127.0.0.1", listener.port(),
                              retry_options(/*attempts=*/3));
  EXPECT_EQ(injection.injector().injected(FaultAction::kRefuse), 2u);
}

TEST(FmcRetry, ConnectGivesUpAfterMaxAttempts) {
  TcpListener listener(0);
  FaultPlan plan;
  plan.script.push_back({/*lane=*/6, FaultOp::kConnect, /*index=*/0,
                         FaultAction::kRefuse, 0});
  plan.script.push_back({/*lane=*/6, FaultOp::kConnect, /*index=*/1,
                         FaultAction::kRefuse, 0});
  ScopedFaultInjection injection(plan);
  FaultLaneScope lane(6);
  EXPECT_THROW(FeatureMonitorClient("127.0.0.1", listener.port(),
                                    retry_options(/*attempts=*/2)),
               std::runtime_error);
}

TEST(FmcRetry, WaitPredictionHonoursOpDeadline) {
  TcpListener listener(0);  // accepts via backlog, never replies
  ClientOptions options;
  options.op_deadline_seconds = 0.2;
  FeatureMonitorClient client("127.0.0.1", listener.port(), options);
  client.hello("deadline");
  const auto start = std::chrono::steady_clock::now();
  try {
    client.wait_prediction();
    FAIL() << "expected deadline error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("deadline exceeded"),
              std::string::npos);
  }
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(waited, 0.15);
  EXPECT_LT(waited, 5.0);
}

TEST(FmcRetry, LegacyTwoArgClientIsSingleShot) {
  // No server at all: the legacy constructor must fail immediately
  // rather than retry (port 1 is never bindable by tests).
  EXPECT_THROW(FeatureMonitorClient("127.0.0.1", 1), std::runtime_error);
}

}  // namespace
}  // namespace f2pm::net
