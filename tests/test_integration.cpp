// End-to-end integration tests: campaign -> pipeline -> paper-shaped
// conclusions. These encode the qualitative claims of the paper's §IV on a
// small (but real) simulated study.
#include <cmath>
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "ml/reptree.hpp"
#include "sim/campaign.hpp"

namespace f2pm {
namespace {

/// A mid-sized campaign shared by the integration assertions.
const core::PipelineResult& study() {
  static const core::PipelineResult result = [] {
    sim::CampaignConfig campaign;
    campaign.num_runs = 12;
    campaign.seed = 4242;
    campaign.workload.num_browsers = 50;
    const data::DataHistory history = sim::run_campaign(campaign);
    core::PipelineOptions options;
    options.models = {"linear", "m5p", "reptree", "lasso"};
    options.lasso_predictor_lambdas = {1e0, 1e9};
    return core::run_pipeline(history, options);
  }();
  return result;
}

double soft_mae_of(const std::vector<core::ModelOutcome>& outcomes,
                   const std::string& name) {
  for (const auto& outcome : outcomes) {
    if (outcome.display_name == name) return outcome.report.soft_mae;
  }
  throw std::out_of_range(name);
}

TEST(Integration, EveryModelBeatsTheMeanPredictorOnAllFeatures) {
  for (const auto& outcome : study().using_all_features) {
    if (outcome.display_name == "lasso-lambda-1000000000") continue;
    EXPECT_LT(outcome.report.rae, 1.0) << outcome.display_name;
  }
}

TEST(Integration, TreeMethodsBeatLinearRegression) {
  // The paper's headline: REP-Tree and M5P are the best methods.
  const auto& all = study().using_all_features;
  const double linear = soft_mae_of(all, "linear");
  EXPECT_LT(soft_mae_of(all, "m5p"), linear);
  EXPECT_LT(soft_mae_of(all, "reptree"), linear);
}

TEST(Integration, HeavilyShrunkLassoPredictorIsFarWorse) {
  // Table II: Lasso as a predictor at large λ trails everything.
  const auto& all = study().using_all_features;
  EXPECT_GT(soft_mae_of(all, "lasso-lambda-1000000000"),
            2.0 * soft_mae_of(all, "reptree"));
}

TEST(Integration, SelectedFeaturesTrainFasterButLoseAccuracy) {
  // Tables II-III: the Lasso-selected feature set cuts training time and
  // costs accuracy.
  const auto& result = study();
  ASSERT_FALSE(result.using_selected_features.empty());
  double all_time = 0.0;
  double selected_time = 0.0;
  double all_error = 0.0;
  double selected_error = 0.0;
  for (std::size_t i = 0; i < result.using_all_features.size(); ++i) {
    all_time += result.using_all_features[i].report.training_seconds;
    selected_time +=
        result.using_selected_features[i].report.training_seconds;
    all_error += result.using_all_features[i].report.soft_mae;
    selected_error += result.using_selected_features[i].report.soft_mae;
  }
  EXPECT_LT(selected_time, all_time);
  EXPECT_GE(selected_error, all_error);
}

TEST(Integration, SelectionKeepsMemoryRelatedFeatures) {
  // Table I: the surviving features are memory levels and slopes.
  const auto& result = study();
  ASSERT_TRUE(result.selection.has_value());
  const auto& entry =
      result.selection->at_lambda(1e8);
  ASSERT_FALSE(entry.names.empty());
  for (const auto& name : entry.names) {
    EXPECT_TRUE(name.find("mem") != std::string::npos ||
                name.find("swap") != std::string::npos)
        << "unexpected survivor: " << name;
  }
}

TEST(Integration, TreeImportancesAgreeWithLassoOnMemoryFeatures) {
  // Two independent feature-relevance views must agree: the Lasso
  // survivors (Table I) and the REP-Tree split gains should both be
  // dominated by memory/swap columns.
  const auto& result = study();
  ml::RepTree tree;
  tree.fit(result.train.x, result.train.y);
  const auto& importances = tree.feature_importances();
  double memory_mass = 0.0;
  double anomaly_mass = 0.0;  // + thread census and overload signals
  for (std::size_t c = 0; c < importances.size(); ++c) {
    const std::string& name = result.train.feature_names[c];
    const bool memory = name.find("mem") != std::string::npos ||
                        name.find("swap") != std::string::npos;
    // The testbed's other anomaly is unterminated threads, so the thread
    // census (and its slope, which tracks the anomaly arrival rate) is a
    // legitimate failure signal, as are the thrashing indicators.
    const bool anomaly = memory ||
                         name.find("n_threads") != std::string::npos ||
                         name.find("iowait") != std::string::npos ||
                         name.find("intergen") != std::string::npos;
    if (memory) memory_mass += importances[c];
    if (anomaly) anomaly_mass += importances[c];
  }
  EXPECT_GT(memory_mass, 0.3);
  EXPECT_GT(anomaly_mass, 0.8);
}

TEST(Integration, PredictionErrorShrinksNearTheFailurePoint) {
  // Fig. 5: models are accurate close to the failure, sloppier far away.
  const auto& result = study();
  const core::ModelOutcome* reptree = nullptr;
  for (const auto& outcome : result.using_all_features) {
    if (outcome.display_name == "reptree") reptree = &outcome;
  }
  ASSERT_NE(reptree, nullptr);
  double near_error = 0.0;
  std::size_t near_count = 0;
  double far_error = 0.0;
  std::size_t far_count = 0;
  for (std::size_t i = 0; i < reptree->predicted.size(); ++i) {
    const double actual = result.validation.y[i];
    const double error = std::abs(reptree->predicted[i] - actual);
    if (actual < 300.0) {
      near_error += error;
      ++near_count;
    } else if (actual > 900.0) {
      far_error += error;
      ++far_count;
    }
  }
  ASSERT_GT(near_count, 0u);
  ASSERT_GT(far_count, 0u);
  EXPECT_LT(near_error / static_cast<double>(near_count),
            far_error / static_cast<double>(far_count));
}

TEST(Integration, GenerationTimeCorrelatesWithResponseTime) {
  // Fig. 3: the datapoint inter-generation time tracks the client RT.
  sim::CampaignConfig campaign;
  campaign.workload.num_browsers = 50;
  const sim::RunResult run = sim::execute_run(campaign, 987654);
  ASSERT_TRUE(run.run.failed);
  const auto& samples = run.run.samples;
  double sum_xy = 0.0;
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_yy = 0.0;
  const std::size_t n = samples.size() - 1;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double gen = samples[i].tgen - samples[i - 1].tgen;
    const double rt = run.response_times[i];
    sum_x += gen;
    sum_y += rt;
    sum_xy += gen * rt;
    sum_xx += gen * gen;
    sum_yy += rt * rt;
  }
  const double nf = static_cast<double>(n);
  const double cov = sum_xy / nf - (sum_x / nf) * (sum_y / nf);
  const double var_x = sum_xx / nf - (sum_x / nf) * (sum_x / nf);
  const double var_y = sum_yy / nf - (sum_y / nf) * (sum_y / nf);
  const double correlation = cov / std::sqrt(var_x * var_y);
  EXPECT_GT(correlation, 0.5);
}

TEST(Integration, ReportsRenderForARealStudy) {
  const auto& result = study();
  EXPECT_FALSE(core::render_smae_table(result).empty());
  EXPECT_FALSE(core::render_training_time_table(result).empty());
  EXPECT_FALSE(core::render_validation_time_table(result).empty());
  EXPECT_FALSE(core::render_selection_curve(*result.selection).empty());
}

}  // namespace
}  // namespace f2pm
