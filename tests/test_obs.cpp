#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.hpp"

namespace f2pm::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Registry registry;
  Counter& counter = registry.counter("t_counter", "help");
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Counter, SameNameReturnsSameInstance) {
  Registry registry;
  Counter& a = registry.counter("t_counter", "help");
  Counter& b = registry.counter("t_counter", "other help ignored");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
}

TEST(Counter, LabelVariantsAreDistinct) {
  Registry registry;
  Counter& a = registry.counter("t_counter", "help", "model=\"linear\"");
  Counter& b = registry.counter("t_counter", "help", "model=\"m5p\"");
  EXPECT_NE(&a, &b);
  a.add(1);
  EXPECT_EQ(b.value(), 0u);
}

TEST(Gauge, SetAddSub) {
  Registry registry;
  Gauge& gauge = registry.gauge("t_gauge", "help");
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.set(10.0);
  gauge.add(2.5);
  gauge.sub(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 12.0);
  gauge.set(-3.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -3.0);
}

TEST(Registry, TypeMismatchThrows) {
  Registry registry;
  registry.counter("t_metric", "help");
  EXPECT_THROW(registry.gauge("t_metric", "help"), std::invalid_argument);
  EXPECT_THROW(
      registry.histogram("t_metric", "help", {1.0}),
      std::invalid_argument);
}

TEST(Histogram, RejectsBadBounds) {
  Registry registry;
  EXPECT_THROW(registry.histogram("t_h1", "help", {}),
               std::invalid_argument);
  EXPECT_THROW(registry.histogram("t_h2", "help", {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(registry.histogram("t_h3", "help", {2.0, 1.0}),
               std::invalid_argument);
}

TEST(Histogram, BucketsArePrometheusCumulative) {
  Registry registry;
  Histogram& hist = registry.histogram("t_hist", "help", {1.0, 5.0, 10.0});
  hist.observe(0.5);   // le=1
  hist.observe(1.0);   // boundary lands in le=1 (le means <=)
  hist.observe(3.0);   // le=5
  hist.observe(100.0); // +Inf only
  const HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.cumulative.size(), 4u);
  EXPECT_EQ(snap.cumulative[0], 2u);  // <= 1
  EXPECT_EQ(snap.cumulative[1], 3u);  // <= 5
  EXPECT_EQ(snap.cumulative[2], 3u);  // <= 10
  EXPECT_EQ(snap.cumulative[3], 4u);  // +Inf
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 104.5);
}

TEST(Histogram, ExponentialBounds) {
  const auto bounds = Histogram::exponential_bounds(0.001, 10.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.001);
  EXPECT_DOUBLE_EQ(bounds[3], 1.0);
  EXPECT_THROW(Histogram::exponential_bounds(0.0, 2.0, 3),
               std::invalid_argument);
  EXPECT_THROW(Histogram::exponential_bounds(1.0, 1.0, 3),
               std::invalid_argument);
}

TEST(Registry, SnapshotUnderConcurrentWriters) {
  // Hammer one counter, one gauge and one histogram from several threads
  // while snapshotting concurrently; the final totals must be exact and
  // every intermediate snapshot internally consistent. Run under TSan to
  // prove the write path is race-free.
  Registry registry;
  Counter& counter = registry.counter("t_conc_counter", "help");
  Gauge& gauge = registry.gauge("t_conc_gauge", "help");
  Histogram& hist = registry.histogram("t_conc_hist", "help", {0.5, 1.5});

  constexpr int kThreads = 8;
  constexpr int kIters = 10'000;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    std::uint64_t last_count = 0;
    while (!stop.load()) {
      const auto metrics = registry.snapshot();
      for (const MetricSnapshot& metric : metrics) {
        if (metric.name == "t_conc_counter") {
          // Counters must be monotonic across snapshots.
          const auto value = static_cast<std::uint64_t>(metric.value);
          EXPECT_GE(value, last_count);
          last_count = value;
        }
        if (metric.name == "t_conc_hist") {
          // Cumulative buckets must never decrease left to right.
          const auto& cumulative = metric.histogram.cumulative;
          for (std::size_t b = 1; b < cumulative.size(); ++b) {
            EXPECT_GE(cumulative[b], cumulative[b - 1]);
          }
          EXPECT_EQ(metric.histogram.count,
                    metric.histogram.cumulative.back());
        }
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        counter.add(1);
        gauge.add(1.0);
        hist.observe(1.0);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true);
  snapshotter.join();

  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kThreads) * kIters);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.cumulative[0], 0u);        // nothing <= 0.5
  EXPECT_EQ(snap.cumulative[1], snap.count);  // all <= 1.5
}

TEST(Exposition, GoldenOutput) {
  Registry registry;
  registry.counter("f2pm_test_requests_total", "Requests handled.").add(3);
  registry.gauge("f2pm_test_depth", "Queue depth.").set(2.5);
  Histogram& hist =
      registry.histogram("f2pm_test_latency_seconds", "Latency.", {0.1, 1.0});
  hist.observe(0.05);
  hist.observe(0.5);
  hist.observe(5.0);
  const std::string expected =
      "# HELP f2pm_test_depth Queue depth.\n"
      "# TYPE f2pm_test_depth gauge\n"
      "f2pm_test_depth 2.5\n"
      "# HELP f2pm_test_latency_seconds Latency.\n"
      "# TYPE f2pm_test_latency_seconds histogram\n"
      "f2pm_test_latency_seconds_bucket{le=\"0.1\"} 1\n"
      "f2pm_test_latency_seconds_bucket{le=\"1\"} 2\n"
      "f2pm_test_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "f2pm_test_latency_seconds_sum 5.55\n"
      "f2pm_test_latency_seconds_count 3\n"
      "# HELP f2pm_test_requests_total Requests handled.\n"
      "# TYPE f2pm_test_requests_total counter\n"
      "f2pm_test_requests_total 3\n";
  EXPECT_EQ(render_prometheus(registry), expected);
}

TEST(Exposition, LabeledFamiliesShareOneHeader) {
  Registry registry;
  registry.counter("f2pm_test_fits_total", "Fits.", "model=\"linear\"")
      .add(1);
  registry.counter("f2pm_test_fits_total", "Fits.", "model=\"m5p\"").add(2);
  const std::string text = render_prometheus(registry);
  EXPECT_EQ(text,
            "# HELP f2pm_test_fits_total Fits.\n"
            "# TYPE f2pm_test_fits_total counter\n"
            "f2pm_test_fits_total{model=\"linear\"} 1\n"
            "f2pm_test_fits_total{model=\"m5p\"} 2\n");
}

TEST(Exposition, HttpResponseFramesTheBody) {
  const std::string response = http_response("hello\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.find("Content-Length: 6\r\n"), std::string::npos);
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(response.substr(body_at + 4), "hello\n");
}

TEST(ScopedTimer, ObservesElapsedSeconds) {
  Registry registry;
  Histogram& hist =
      registry.histogram("t_timer", "help", {0.000001, 10.0});
  { ScopedTimer timer(hist); }
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.cumulative[1], 1u);  // well under 10 s
  EXPECT_GE(snap.sum, 0.0);
}

TEST(Registry, GlobalIsASingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace f2pm::obs
