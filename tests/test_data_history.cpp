#include "data/data_history.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace f2pm::data {
namespace {

Run make_run(std::initializer_list<double> times, double fail_time,
             bool failed = true) {
  f2pm::data::Run run;
  for (double t : times) {
    RawDatapoint sample;
    sample.tgen = t;
    sample[FeatureId::kMemUsed] = 100.0 * t;
    run.samples.push_back(sample);
  }
  run.fail_time = fail_time;
  run.failed = failed;
  return run;
}

TEST(DataHistory, AddRunAndStats) {
  DataHistory history;
  history.add_run(make_run({1.0, 2.0, 3.0}, 10.0));
  history.add_run(make_run({1.0, 2.0}, 20.0));
  history.add_run(make_run({1.0}, 5.0, /*failed=*/false));
  EXPECT_EQ(history.num_runs(), 3u);
  EXPECT_EQ(history.num_samples(), 6u);
  EXPECT_EQ(history.num_failures(), 2u);
  EXPECT_DOUBLE_EQ(history.mean_time_to_failure(), 15.0);
}

TEST(DataHistory, MeanTtfZeroWithoutFailures) {
  DataHistory history;
  history.add_run(make_run({1.0}, 1.0, /*failed=*/false));
  EXPECT_DOUBLE_EQ(history.mean_time_to_failure(), 0.0);
}

TEST(DataHistory, RejectsOutOfOrderSamples) {
  f2pm::data::Run run = make_run({3.0, 1.0}, 10.0);
  DataHistory history;
  EXPECT_THROW(history.add_run(std::move(run)), std::invalid_argument);
}

TEST(DataHistory, RejectsFailTimeBeforeLastSample) {
  f2pm::data::Run run = make_run({1.0, 5.0}, 4.0);
  DataHistory history;
  EXPECT_THROW(history.add_run(std::move(run)), std::invalid_argument);
}

TEST(DataHistory, CsvRoundTrip) {
  DataHistory history;
  history.add_run(make_run({1.5, 3.0}, 10.0));
  history.add_run(make_run({2.0}, 8.0, /*failed=*/false));
  std::stringstream buffer;
  history.save_csv(buffer);
  const DataHistory parsed = DataHistory::load_csv(buffer);
  ASSERT_EQ(parsed.num_runs(), 2u);
  EXPECT_EQ(parsed.runs()[0].samples, history.runs()[0].samples);
  EXPECT_DOUBLE_EQ(parsed.runs()[0].fail_time, 10.0);
  EXPECT_TRUE(parsed.runs()[0].failed);
  EXPECT_FALSE(parsed.runs()[1].failed);
}

TEST(DataHistory, BinaryRoundTrip) {
  DataHistory history;
  history.add_run(make_run({0.5, 1.25, 2.0, 2.75}, 99.0));
  std::stringstream buffer;
  history.save_binary(buffer);
  const DataHistory parsed = DataHistory::load_binary(buffer);
  ASSERT_EQ(parsed.num_runs(), 1u);
  EXPECT_EQ(parsed.runs()[0].samples, history.runs()[0].samples);
  EXPECT_DOUBLE_EQ(parsed.runs()[0].fail_time, 99.0);
}

TEST(DataHistory, BinaryRejectsGarbage) {
  std::stringstream buffer;
  buffer << "nonsense bytes here";
  EXPECT_THROW(DataHistory::load_binary(buffer), std::runtime_error);
}

TEST(DataHistory, EmptyHistoryRoundTrips) {
  DataHistory history;
  std::stringstream buffer;
  history.save_binary(buffer);
  EXPECT_EQ(DataHistory::load_binary(buffer).num_runs(), 0u);
}

}  // namespace
}  // namespace f2pm::data
