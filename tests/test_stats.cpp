#include "linalg/stats.hpp"

#include <gtest/gtest.h>

namespace f2pm::linalg {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> x{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(x), 5.0);
  EXPECT_DOUBLE_EQ(variance(x), 4.0);
  EXPECT_DOUBLE_EQ(stddev(x), 2.0);
}

TEST(Stats, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0, 1.0, 1.0}), 0.0);
}

TEST(Stats, CovarianceSignsAndMismatch) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> up{2.0, 4.0, 6.0};
  const std::vector<double> down{6.0, 4.0, 2.0};
  EXPECT_GT(covariance(x, up), 0.0);
  EXPECT_LT(covariance(x, down), 0.0);
  EXPECT_THROW(covariance(x, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{3.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg(y.rbegin(), y.rend());
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> constant{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(x, constant), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> x{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(x, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(x, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(x, 0.5), 25.0);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(Stats, MinMax) {
  const std::vector<double> x{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(x), -1.0);
  EXPECT_DOUBLE_EQ(max_value(x), 7.0);
  EXPECT_THROW(min_value({}), std::invalid_argument);
  EXPECT_THROW(max_value({}), std::invalid_argument);
}

TEST(FitLine, RecoversExactLine) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  std::vector<double> y;
  for (double v : x) y.push_back(2.5 * v - 1.0);
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(10.0), 24.0, 1e-12);
}

TEST(FitLine, ConstantXFallsBackToMean) {
  const std::vector<double> x{2.0, 2.0, 2.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  const LineFit fit = fit_line(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(FitLine, RequiresTwoPoints) {
  EXPECT_THROW(fit_line(std::vector<double>{1.0}, std::vector<double>{2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace f2pm::linalg
