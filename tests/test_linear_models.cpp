#include <gtest/gtest.h>

#include <sstream>

#include "ml/linear_regression.hpp"
#include "ml/ridge.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

/// y = 2*x0 - 3*x1 + 5 + noise.
void make_linear_data(std::size_t n, double noise_sd, util::Rng& rng,
                      linalg::Matrix& x, std::vector<double>& y) {
  x = linalg::Matrix(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-10.0, 10.0);
    x(i, 1) = rng.uniform(0.0, 5.0);
    y[i] = 2.0 * x(i, 0) - 3.0 * x(i, 1) + 5.0 + rng.normal(0.0, noise_sd);
  }
}

TEST(LinearRegression, RecoversCoefficientsNoiselessly) {
  util::Rng rng(1);
  linalg::Matrix x;
  std::vector<double> y;
  make_linear_data(100, 0.0, rng, x, y);
  LinearRegression model;
  model.fit(x, y);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 1e-9);
  EXPECT_NEAR(model.coefficients()[1], -3.0, 1e-9);
  EXPECT_NEAR(model.intercept(), 5.0, 1e-9);
  EXPECT_NEAR(model.predict_row(std::vector<double>{1.0, 1.0}), 4.0, 1e-9);
}

TEST(LinearRegression, RobustToNoise) {
  util::Rng rng(2);
  linalg::Matrix x;
  std::vector<double> y;
  make_linear_data(5000, 1.0, rng, x, y);
  LinearRegression model;
  model.fit(x, y);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 0.05);
  EXPECT_NEAR(model.coefficients()[1], -3.0, 0.05);
}

TEST(LinearRegression, HandlesCollinearColumnsViaRidgeFallback) {
  linalg::Matrix x(10, 2);
  std::vector<double> y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = 2.0 * static_cast<double>(i);  // exact duplicate direction
    y[i] = 4.0 * static_cast<double>(i);
  }
  LinearRegression model;
  ASSERT_NO_THROW(model.fit(x, y));
  // Predictions must still be right even if the split between the two
  // collinear coefficients is arbitrary.
  EXPECT_NEAR(model.predict_row(std::vector<double>{3.0, 6.0}), 12.0, 1e-4);
}

TEST(LinearRegression, GuardsApi) {
  LinearRegression model;
  EXPECT_THROW(model.predict_row(std::vector<double>{1.0}),
               std::logic_error);
  EXPECT_THROW(model.fit(linalg::Matrix(), {}), std::invalid_argument);
  linalg::Matrix x(3, 1, 1.0);
  EXPECT_THROW(model.fit(x, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(LinearRegression, SaveLoadRoundTrip) {
  util::Rng rng(3);
  linalg::Matrix x;
  std::vector<double> y;
  make_linear_data(50, 0.1, rng, x, y);
  LinearRegression model;
  model.fit(x, y);
  std::stringstream buffer;
  save_model(model, buffer);
  const auto loaded = load_model(buffer);
  EXPECT_EQ(loaded->name(), "linear");
  const std::vector<double> probe{1.5, 2.5};
  EXPECT_DOUBLE_EQ(loaded->predict_row(probe), model.predict_row(probe));
}

TEST(Ridge, ShrinksTowardZeroAsLambdaGrows) {
  util::Rng rng(4);
  linalg::Matrix x;
  std::vector<double> y;
  make_linear_data(200, 0.5, rng, x, y);
  double previous_norm = 1e18;
  for (double lambda : {0.0, 10.0, 1000.0, 1e6}) {
    RidgeRegression model(lambda);
    model.fit(x, y);
    const double norm = std::abs(model.coefficients()[0]) +
                        std::abs(model.coefficients()[1]);
    EXPECT_LE(norm, previous_norm + 1e-9);
    previous_norm = norm;
  }
}

TEST(Ridge, ZeroLambdaMatchesOls) {
  util::Rng rng(5);
  linalg::Matrix x;
  std::vector<double> y;
  make_linear_data(100, 0.0, rng, x, y);
  RidgeRegression ridge(0.0);
  ridge.fit(x, y);
  EXPECT_NEAR(ridge.coefficients()[0], 2.0, 1e-6);
  EXPECT_NEAR(ridge.coefficients()[1], -3.0, 1e-6);
  EXPECT_NEAR(ridge.intercept(), 5.0, 1e-6);
}

TEST(Ridge, NegativeLambdaRejected) {
  EXPECT_THROW(RidgeRegression(-1.0), std::invalid_argument);
}

TEST(Ridge, SaveLoadRoundTrip) {
  util::Rng rng(6);
  linalg::Matrix x;
  std::vector<double> y;
  make_linear_data(60, 0.2, rng, x, y);
  RidgeRegression model(3.0);
  model.fit(x, y);
  std::stringstream buffer;
  save_model(model, buffer);
  const auto loaded = load_model(buffer);
  EXPECT_EQ(loaded->name(), "ridge");
  const std::vector<double> probe{-2.0, 1.0};
  EXPECT_DOUBLE_EQ(loaded->predict_row(probe), model.predict_row(probe));
}

}  // namespace
}  // namespace f2pm::ml
