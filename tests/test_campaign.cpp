#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace f2pm::sim {
namespace {

CampaignConfig small_campaign() {
  CampaignConfig config;
  config.num_runs = 3;
  config.workload.num_browsers = 40;
  config.use_synthetic_injectors = true;  // crash fast
  config.synthetic_leak.size_min_kb = 1024.0;
  config.synthetic_leak.size_max_kb = 4096.0;
  config.synthetic_leak.mean_interval_min = 0.3;
  config.synthetic_leak.mean_interval_max = 1.0;
  return config;
}

TEST(Campaign, SingleRunCrashesAndRecordsEverything) {
  const RunResult result = execute_run(small_campaign(), 777);
  EXPECT_TRUE(result.run.failed);
  EXPECT_GT(result.run.fail_time, 0.0);
  EXPECT_GT(result.run.samples.size(), 10u);
  EXPECT_EQ(result.run.samples.size(), result.response_times.size());
  EXPECT_GT(result.leaks_injected, 0u);
  EXPECT_GT(result.requests_completed, 0u);
  // Samples never outlive the fail event.
  EXPECT_LE(result.run.samples.back().tgen, result.run.fail_time);
}

TEST(Campaign, RunIsDeterministicForAGivenSeed) {
  const RunResult a = execute_run(small_campaign(), 123);
  const RunResult b = execute_run(small_campaign(), 123);
  EXPECT_DOUBLE_EQ(a.run.fail_time, b.run.fail_time);
  ASSERT_EQ(a.run.samples.size(), b.run.samples.size());
  EXPECT_EQ(a.run.samples, b.run.samples);
  EXPECT_EQ(a.leaks_injected, b.leaks_injected);
}

TEST(Campaign, DifferentSeedsGiveDifferentRuns) {
  const RunResult a = execute_run(small_campaign(), 1);
  const RunResult b = execute_run(small_campaign(), 2);
  EXPECT_NE(a.run.fail_time, b.run.fail_time);
}

TEST(Campaign, IntensityDrawnFromConfiguredRange) {
  CampaignConfig config = small_campaign();
  config.intensity_min = 1.2;
  config.intensity_max = 1.3;
  const RunResult result = execute_run(config, 55);
  EXPECT_GE(result.intensity, 1.2);
  EXPECT_LE(result.intensity, 1.3);
}

TEST(Campaign, MemoryFeaturesTrendTowardExhaustion) {
  const RunResult result = execute_run(small_campaign(), 99);
  const auto& samples = result.run.samples;
  ASSERT_GT(samples.size(), 20u);
  // Early free memory must exceed late free memory; late swap must exceed
  // early swap — the §IV failure mode.
  const auto& early = samples[samples.size() / 10];
  const auto& late = samples[samples.size() - 2];
  EXPECT_GT(early[data::FeatureId::kMemFree] +
                early[data::FeatureId::kMemCached],
            late[data::FeatureId::kMemFree] +
                late[data::FeatureId::kMemCached]);
  EXPECT_GT(late[data::FeatureId::kSwapUsed],
            early[data::FeatureId::kSwapUsed]);
}

TEST(Campaign, MaxRunSecondsBoundsUnfailedRuns) {
  CampaignConfig config;
  config.num_runs = 1;
  config.max_run_seconds = 50.0;  // far too short to crash
  config.workload.num_browsers = 5;
  config.home_anomalies.leak_probability = 0.0;
  config.home_anomalies.thread_probability = 0.0;
  const RunResult result = execute_run(config, 3);
  EXPECT_FALSE(result.run.failed);
  EXPECT_LE(result.run.fail_time, 50.0);
}

TEST(Campaign, RunCampaignCollectsAllRunsAndReportsProgress) {
  CampaignConfig config = small_campaign();
  std::size_t callbacks = 0;
  const data::DataHistory history = run_campaign(
      config, [&callbacks](std::size_t run, const RunResult& result) {
        EXPECT_EQ(run, callbacks);
        EXPECT_TRUE(result.run.failed);
        ++callbacks;
      });
  EXPECT_EQ(history.num_runs(), config.num_runs);
  EXPECT_EQ(callbacks, config.num_runs);
  EXPECT_EQ(history.num_failures(), config.num_runs);
  EXPECT_GT(history.mean_time_to_failure(), 0.0);
}

TEST(Campaign, ParallelCampaignReportsProgressPerRun) {
  CampaignConfig config = small_campaign();
  config.num_runs = 4;
  config.parallel_runs = 4;
  // Progress must fire once per run as runs complete (completion order is
  // scheduling-dependent), with each index seen exactly once. The mutex in
  // run_campaign means no extra synchronization is needed here.
  std::vector<std::size_t> seen;
  const data::DataHistory history = run_campaign(
      config, [&seen](std::size_t run, const RunResult& result) {
        EXPECT_TRUE(result.run.failed);
        seen.push_back(run);
      });
  EXPECT_EQ(history.num_runs(), config.num_runs);
  ASSERT_EQ(seen.size(), config.num_runs);
  std::sort(seen.begin(), seen.end());
  for (std::size_t r = 0; r < config.num_runs; ++r) EXPECT_EQ(seen[r], r);
}

TEST(Campaign, ParallelCampaignMatchesSequential) {
  CampaignConfig sequential = small_campaign();
  CampaignConfig parallel = small_campaign();
  parallel.parallel_runs = 4;
  const data::DataHistory a = run_campaign(sequential);
  const data::DataHistory b = run_campaign(parallel);
  ASSERT_EQ(a.num_runs(), b.num_runs());
  for (std::size_t r = 0; r < a.num_runs(); ++r) {
    EXPECT_DOUBLE_EQ(a.runs()[r].fail_time, b.runs()[r].fail_time);
    EXPECT_EQ(a.runs()[r].samples, b.runs()[r].samples);
  }
}

TEST(Campaign, UserDefinedFailureConditionEndsRunEarly) {
  // §III: the user can declare the system failed before the hard crash,
  // e.g. once swap usage passes a budget.
  CampaignConfig hard_crash = small_campaign();
  const RunResult reference = execute_run(hard_crash, 42);
  ASSERT_TRUE(reference.run.failed);

  CampaignConfig early = hard_crash;
  const double swap_budget = 0.25 * early.resources.total_swap_kb;
  early.failure_condition = [swap_budget](const data::RawDatapoint& sample,
                                          double /*intergen*/) {
    return sample[data::FeatureId::kSwapUsed] > swap_budget;
  };
  const RunResult result = execute_run(early, 42);
  ASSERT_TRUE(result.run.failed);
  EXPECT_LT(result.run.fail_time, reference.run.fail_time);
  // The condition really was the trigger: the last sample is just past
  // the swap budget, nowhere near exhaustion.
  const auto& last = result.run.samples.back();
  EXPECT_GT(last[data::FeatureId::kSwapUsed], swap_budget);
  EXPECT_LT(last[data::FeatureId::kSwapUsed],
            0.9 * early.resources.total_swap_kb);
}

TEST(Campaign, IntergenFailureConditionWorks) {
  CampaignConfig config = small_campaign();
  // Declare the system failed once the monitor cadence stretches past 3s
  // (the §III-B overload signal).
  config.failure_condition = [](const data::RawDatapoint&,
                                double intergen) { return intergen > 3.0; };
  const RunResult result = execute_run(config, 7);
  ASSERT_TRUE(result.run.failed);
  // It must have fired before the hard crash would have.
  CampaignConfig hard = small_campaign();
  const RunResult reference = execute_run(hard, 7);
  EXPECT_LE(result.run.fail_time, reference.run.fail_time);
}

TEST(Campaign, HigherIntensityCrashesFaster) {
  CampaignConfig slow = small_campaign();
  slow.use_synthetic_injectors = false;
  slow.intensity_min = slow.intensity_max = 0.6;
  CampaignConfig fast = slow;
  fast.intensity_min = fast.intensity_max = 2.4;
  // Average over a few seeds to wash out run-level noise.
  double slow_ttf = 0.0;
  double fast_ttf = 0.0;
  for (std::uint64_t seed : {10ULL, 20ULL, 30ULL}) {
    slow_ttf += execute_run(slow, seed).run.fail_time;
    fast_ttf += execute_run(fast, seed).run.fail_time;
  }
  EXPECT_LT(fast_ttf, slow_ttf * 0.6);
}

}  // namespace
}  // namespace f2pm::sim
