#include <gtest/gtest.h>

#include <sstream>

#include "ml/cross_validation.hpp"
#include "ml/knn.hpp"
#include "ml/linear_regression.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

void make_linear_data(std::size_t n, util::Rng& rng, linalg::Matrix& x,
                      std::vector<double>& y) {
  x = linalg::Matrix(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-5.0, 5.0);
    x(i, 1) = rng.uniform(-5.0, 5.0);
    y[i] = 2.0 * x(i, 0) + x(i, 1) + rng.normal(0.0, 0.1);
  }
}

TEST(Knn, OneNeighbourReproducesTrainingPoints) {
  util::Rng rng(1);
  linalg::Matrix x;
  std::vector<double> y;
  make_linear_data(50, rng, x, y);
  KnnRegressor model(KnnOptions{.k = 1});
  model.fit(x, y);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(model.predict_row(x.row(i)), y[i], 1e-9);
  }
}

TEST(Knn, KLargerThanDataFallsBackToAll) {
  linalg::Matrix x(3, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  x(2, 0) = 2.0;
  const std::vector<double> y{1.0, 2.0, 3.0};
  KnnRegressor model(KnnOptions{.k = 100, .distance_weighted = false});
  model.fit(x, y);
  EXPECT_NEAR(model.predict_row(std::vector<double>{1.0}), 2.0, 1e-9);
}

TEST(Knn, DistanceWeightingPullsTowardNearest) {
  linalg::Matrix x(2, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 10.0;
  const std::vector<double> y{0.0, 100.0};
  KnnRegressor weighted(KnnOptions{.k = 2, .distance_weighted = true});
  KnnRegressor uniform(KnnOptions{.k = 2, .distance_weighted = false});
  weighted.fit(x, y);
  uniform.fit(x, y);
  // Query near the first point: weighting should land well below the
  // uniform average of 50.
  EXPECT_LT(weighted.predict_row(std::vector<double>{1.0}),
            uniform.predict_row(std::vector<double>{1.0}));
  EXPECT_NEAR(uniform.predict_row(std::vector<double>{1.0}), 50.0, 1e-9);
}

TEST(Knn, ZeroKRejected) {
  EXPECT_THROW(KnnRegressor(KnnOptions{.k = 0}), std::invalid_argument);
}

TEST(Knn, SaveLoadPreservesPredictions) {
  util::Rng rng(2);
  linalg::Matrix x;
  std::vector<double> y;
  make_linear_data(80, rng, x, y);
  KnnRegressor model(KnnOptions{.k = 3});
  model.fit(x, y);
  std::stringstream buffer;
  save_model(model, buffer);
  const auto loaded = load_model(buffer);
  EXPECT_EQ(loaded->name(), "knn");
  const std::vector<double> probe{0.5, -1.5};
  EXPECT_NEAR(loaded->predict_row(probe), model.predict_row(probe), 1e-9);
}

TEST(Knn, LoadAcceptsLegacyPerRowArchives) {
  // Archives written before the contiguous-matrix format stored one
  // double[] field per training row. Reconstruct such an archive by hand
  // and check load() still reads it, with identical predictions.
  util::Rng rng(6);
  linalg::Matrix x;
  std::vector<double> y;
  make_linear_data(40, rng, x, y);
  KnnRegressor model(KnnOptions{.k = 3});
  model.fit(x, y);

  const auto scaler = data::Standardizer::fit(x);
  const linalg::Matrix scaled = scaler.transform(x);
  std::stringstream buffer;
  {
    util::BinaryWriter writer(buffer);
    writer.write_u64(3);      // k
    writer.write_bool(true);  // distance_weighted
    writer.write_u64(x.cols());
    writer.write_u64(x.rows());
    for (std::size_t r = 0; r < scaled.rows(); ++r) {
      const auto row = scaled.row(r);
      writer.write_doubles(std::vector<double>(row.begin(), row.end()));
    }
    writer.write_doubles(y);
    writer.write_doubles(scaler.means());
    writer.write_doubles(scaler.scales());
  }
  util::BinaryReader reader(buffer);
  const auto loaded = KnnRegressor::load(reader);
  ASSERT_TRUE(loaded->is_fitted());
  EXPECT_EQ(loaded->num_inputs(), x.cols());
  for (const double probe : {-3.0, -0.5, 0.0, 1.5, 4.0}) {
    const std::vector<double> row{probe, -probe};
    EXPECT_DOUBLE_EQ(loaded->predict_row(row), model.predict_row(row));
  }
}

TEST(CrossValidation, FoldsPartitionTheData) {
  util::Rng rng(3);
  linalg::Matrix x;
  std::vector<double> y;
  make_linear_data(100, rng, x, y);
  util::Rng cv_rng(4);
  const auto result = k_fold_cross_validation(
      [] { return std::make_unique<LinearRegression>(); }, x, y, 5, cv_rng,
      1.0);
  ASSERT_EQ(result.folds.size(), 5u);
  std::size_t total_validation = 0;
  for (const auto& fold : result.folds) {
    EXPECT_EQ(fold.train_rows + fold.validation_rows, 100u);
    total_validation += fold.validation_rows;
  }
  EXPECT_EQ(total_validation, 100u);
}

TEST(CrossValidation, LinearModelOnLinearDataHasLowError) {
  util::Rng rng(5);
  linalg::Matrix x;
  std::vector<double> y;
  make_linear_data(200, rng, x, y);
  util::Rng cv_rng(6);
  const auto result = k_fold_cross_validation(
      [] { return std::make_unique<LinearRegression>(); }, x, y, 4, cv_rng,
      0.5);
  EXPECT_LT(result.mean_mae, 0.2);
  EXPECT_LT(result.mean_rae, 0.1);
  EXPECT_GE(result.std_mae, 0.0);
  EXPECT_GE(result.mean_training_seconds, 0.0);
}

TEST(CrossValidation, RejectsBadK) {
  util::Rng rng(7);
  linalg::Matrix x;
  std::vector<double> y;
  make_linear_data(10, rng, x, y);
  util::Rng cv_rng(8);
  const auto factory = [] { return std::make_unique<LinearRegression>(); };
  EXPECT_THROW(k_fold_cross_validation(factory, x, y, 1, cv_rng, 1.0),
               std::invalid_argument);
  EXPECT_THROW(k_fold_cross_validation(factory, x, y, 11, cv_rng, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace f2pm::ml
