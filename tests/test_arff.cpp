#include "data/arff.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace f2pm::data {
namespace {

Dataset small_dataset() {
  Dataset dataset;
  dataset.feature_names = {"mem_used", "swap_free"};
  dataset.x = linalg::Matrix{{100.5, 2048.0}, {200.25, 1024.0}};
  dataset.y = {1500.0, 750.0};
  dataset.run_index = {0, 0};
  dataset.window_end = {30.0, 60.0};
  return dataset;
}

TEST(Arff, WriteProducesWekaHeader) {
  std::ostringstream out;
  write_arff(out, small_dataset(), "tpcw");
  const std::string text = out.str();
  EXPECT_NE(text.find("@relation tpcw"), std::string::npos);
  EXPECT_NE(text.find("@attribute mem_used numeric"), std::string::npos);
  EXPECT_NE(text.find("@attribute rttf numeric"), std::string::npos);
  EXPECT_NE(text.find("@data"), std::string::npos);
  EXPECT_NE(text.find("100.5,2048,1500"), std::string::npos);
}

TEST(Arff, RoundTripPreservesEverything) {
  const Dataset original = small_dataset();
  std::stringstream buffer;
  write_arff(buffer, original);
  const Dataset parsed = read_arff(buffer);
  EXPECT_EQ(parsed.feature_names, original.feature_names);
  ASSERT_EQ(parsed.num_rows(), original.num_rows());
  EXPECT_LT(linalg::max_abs_diff(parsed.x, original.x), 1e-9);
  for (std::size_t i = 0; i < original.y.size(); ++i) {
    EXPECT_NEAR(parsed.y[i], original.y[i], 1e-9);
  }
}

TEST(Arff, ReaderSkipsCommentsAndBlankLines) {
  std::istringstream in(
      "% comment\n"
      "@relation r\n"
      "\n"
      "@attribute a numeric\n"
      "@attribute target real\n"
      "@data\n"
      "% another comment\n"
      "1.0,2.0\n");
  const Dataset dataset = read_arff(in);
  EXPECT_EQ(dataset.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(dataset.y[0], 2.0);
}

TEST(Arff, RejectsNominalAttributes) {
  std::istringstream in(
      "@relation r\n"
      "@attribute cls {a,b}\n"
      "@attribute target numeric\n"
      "@data\n");
  EXPECT_THROW(read_arff(in), std::invalid_argument);
}

TEST(Arff, RejectsMissingValuesAndSparseRows) {
  std::istringstream missing(
      "@relation r\n@attribute a numeric\n@attribute t numeric\n@data\n"
      "?,1\n");
  EXPECT_THROW(read_arff(missing), std::invalid_argument);
  std::istringstream sparse(
      "@relation r\n@attribute a numeric\n@attribute t numeric\n@data\n"
      "{0 1.0}\n");
  EXPECT_THROW(read_arff(sparse), std::invalid_argument);
}

TEST(Arff, RejectsRaggedRowsAndMissingData) {
  std::istringstream ragged(
      "@relation r\n@attribute a numeric\n@attribute t numeric\n@data\n"
      "1,2,3\n");
  EXPECT_THROW(read_arff(ragged), std::invalid_argument);
  std::istringstream headless("@relation r\n@attribute a numeric\n");
  EXPECT_THROW(read_arff(headless), std::invalid_argument);
}

TEST(Arff, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/f2pm_test.arff";
  write_arff_file(path, small_dataset());
  const Dataset parsed = read_arff_file(path);
  EXPECT_EQ(parsed.num_rows(), 2u);
  EXPECT_THROW(read_arff_file("/no/such/file.arff"), std::runtime_error);
}

}  // namespace
}  // namespace f2pm::data
