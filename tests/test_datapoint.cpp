#include "data/datapoint.hpp"

#include <gtest/gtest.h>

#include <set>

namespace f2pm::data {
namespace {

TEST(Datapoint, FeatureCountMatchesPaperSchema) {
  // §III-A lists 14 system features besides Tgen.
  EXPECT_EQ(kFeatureCount, 14u);
  EXPECT_EQ(all_feature_names().size(), kFeatureCount);
}

TEST(Datapoint, NamesAreUniqueAndNonEmpty) {
  const auto names = all_feature_names();
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  for (const auto& name : names) EXPECT_FALSE(name.empty());
}

TEST(Datapoint, NameRoundTrip) {
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    const auto id = static_cast<FeatureId>(i);
    EXPECT_EQ(feature_from_name(feature_name(id)), id);
  }
}

TEST(Datapoint, UnknownNameThrows) {
  EXPECT_THROW(feature_from_name("bogus_feature"), std::invalid_argument);
}

TEST(Datapoint, PaperTableINamesExist) {
  // The names the paper's Table I uses must be part of the vocabulary.
  EXPECT_NO_THROW(feature_from_name("mem_used"));
  EXPECT_NO_THROW(feature_from_name("mem_free"));
  EXPECT_NO_THROW(feature_from_name("mem_buffers"));
  EXPECT_NO_THROW(feature_from_name("swap_used"));
  EXPECT_NO_THROW(feature_from_name("swap_free"));
}

TEST(Datapoint, IndexOperatorReadsAndWrites) {
  RawDatapoint sample;
  sample[FeatureId::kSwapUsed] = 123.0;
  EXPECT_DOUBLE_EQ(sample[FeatureId::kSwapUsed], 123.0);
  EXPECT_DOUBLE_EQ(sample[FeatureId::kSwapFree], 0.0);
}

TEST(Datapoint, EqualityIsValueBased) {
  RawDatapoint a;
  a.tgen = 1.5;
  a[FeatureId::kMemUsed] = 10.0;
  RawDatapoint b = a;
  EXPECT_EQ(a, b);
  b[FeatureId::kMemUsed] = 11.0;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace f2pm::data
