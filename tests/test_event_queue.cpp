#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace f2pm::sim {
namespace {

TEST(Simulator, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&order] { order.push_back(3); });
  sim.schedule_at(1.0, [&order] { order.push_back(1); });
  sim.schedule_at(2.0, [&order] { order.push_back(2); });
  while (sim.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  while (sim.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  while (sim.step()) {
  }
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.step();
  double fired_at = -1.0;
  sim.schedule_at(3.0, [&] { fired_at = sim.now(); });  // in the past
  sim.step();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&fired] { ++fired; });
  sim.schedule_at(2.0, [&fired] { ++fired; });
  sim.schedule_at(2.5, [&fired] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilConditionStopsEarly) {
  Simulator sim;
  int counter = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(static_cast<double>(i), [&counter] { ++counter; });
  }
  const bool stopped = sim.run_until_condition(
      [&counter] { return counter >= 4; }, 100.0);
  EXPECT_TRUE(stopped);
  EXPECT_EQ(counter, 4);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, RunUntilConditionTimesOut) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  const bool stopped =
      sim.run_until_condition([] { return false; }, 50.0);
  EXPECT_FALSE(stopped);
  EXPECT_DOUBLE_EQ(sim.now(), 50.0);
}

TEST(Simulator, ClearDropsPendingEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&fired] { ++fired; });
  sim.clear();
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(1.0, [] {});
  sim.run_until(2.0);
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> next = [&]() {
    if (++chain < 5) sim.schedule_in(1.0, next);
  };
  sim.schedule_at(0.0, next);
  sim.run_until(100.0);
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

}  // namespace
}  // namespace f2pm::sim
