#include "ml/lasso.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include <sstream>

#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

/// y = 4*x0 - 2*x2 + 1, with x1 pure noise; mixed feature scales so the
/// raw-scale behaviour (bigger features survive longer) is exercised.
void make_sparse_data(std::size_t n, util::Rng& rng, linalg::Matrix& x,
                      std::vector<double>& y) {
  x = linalg::Matrix(n, 3);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-5.0, 5.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    x(i, 2) = rng.uniform(0.0, 100.0);
    y[i] = 4.0 * x(i, 0) - 2.0 * x(i, 2) + 1.0 + rng.normal(0.0, 0.01);
  }
}

TEST(Lasso, TinyLambdaApproachesLeastSquares) {
  util::Rng rng(1);
  linalg::Matrix x;
  std::vector<double> y;
  make_sparse_data(300, rng, x, y);
  Lasso model(LassoOptions{.lambda = 1e-8, .max_iterations = 5000});
  model.fit(x, y);
  EXPECT_NEAR(model.coefficients()[0], 4.0, 0.01);
  EXPECT_NEAR(model.coefficients()[2], -2.0, 0.01);
  EXPECT_NEAR(model.coefficients()[1], 0.0, 0.05);
}

TEST(Lasso, HugeLambdaZerosEverything) {
  util::Rng rng(2);
  linalg::Matrix x;
  std::vector<double> y;
  make_sparse_data(100, rng, x, y);
  const double lambda_max = lasso_lambda_max(x, y);
  Lasso model(LassoOptions{.lambda = lambda_max * 1.01});
  model.fit(x, y);
  EXPECT_TRUE(model.selected_features().empty());
  // With all-zero β the model predicts the mean of y.
  double mean_y = 0.0;
  for (double v : y) mean_y += v;
  mean_y /= static_cast<double>(y.size());
  EXPECT_NEAR(model.predict_row(std::vector<double>{0.0, 0.0, 0.0}), mean_y,
              1e-6);
}

TEST(Lasso, JustBelowLambdaMaxSelectsSomething) {
  util::Rng rng(3);
  linalg::Matrix x;
  std::vector<double> y;
  make_sparse_data(100, rng, x, y);
  const double lambda_max = lasso_lambda_max(x, y);
  Lasso model(LassoOptions{.lambda = lambda_max * 0.5,
                           .max_iterations = 5000});
  model.fit(x, y);
  EXPECT_FALSE(model.selected_features().empty());
}

TEST(Lasso, NoiseFeatureDiesBeforeSignalFeatures) {
  util::Rng rng(4);
  linalg::Matrix x;
  std::vector<double> y;
  make_sparse_data(500, rng, x, y);
  Lasso model(LassoOptions{.lambda = 50.0, .max_iterations = 5000});
  model.fit(x, y);
  const auto selected = model.selected_features();
  EXPECT_EQ(std::count(selected.begin(), selected.end(), 1u), 0);
  EXPECT_TRUE(std::count(selected.begin(), selected.end(), 2u) == 1);
}

TEST(Lasso, ConstantColumnNeverSelected) {
  linalg::Matrix x(20, 2);
  std::vector<double> y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = 7.0;  // constant
    y[i] = 3.0 * static_cast<double>(i);
  }
  Lasso model(LassoOptions{.lambda = 1e-6});
  model.fit(x, y);
  EXPECT_EQ(std::count(model.selected_features().begin(),
                       model.selected_features().end(), 1u),
            0);
}

TEST(Lasso, InvalidOptionsRejected) {
  EXPECT_THROW(Lasso(LassoOptions{.lambda = -1.0}), std::invalid_argument);
  EXPECT_THROW(Lasso(LassoOptions{.lambda = 1.0, .max_iterations = 0}),
               std::invalid_argument);
}

TEST(Lasso, SaveLoadRoundTrip) {
  util::Rng rng(5);
  linalg::Matrix x;
  std::vector<double> y;
  make_sparse_data(100, rng, x, y);
  Lasso model(LassoOptions{.lambda = 10.0});
  model.fit(x, y);
  std::stringstream buffer;
  save_model(model, buffer);
  const auto loaded = load_model(buffer);
  EXPECT_EQ(loaded->name(), "lasso");
  const std::vector<double> probe{1.0, 0.5, 50.0};
  EXPECT_DOUBLE_EQ(loaded->predict_row(probe), model.predict_row(probe));
}

/// Property: along a λ grid, the number of selected features is (weakly)
/// decreasing — the paper's Fig. 4 monotonicity.
class LassoPathMonotonicity
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LassoPathMonotonicity, SelectionShrinksAsLambdaGrows) {
  util::Rng rng(GetParam());
  linalg::Matrix x;
  std::vector<double> y;
  make_sparse_data(200, rng, x, y);
  std::vector<double> lambdas;
  for (int e = -4; e <= 6; ++e) lambdas.push_back(std::pow(10.0, e));
  const auto path = lasso_path(x, y, lambdas);
  ASSERT_EQ(path.size(), lambdas.size());
  // Allow one-off fluctuations from convergence tolerance, but the overall
  // trend must be decreasing and the extremes must be correct.
  EXPECT_GE(path.front().selected.size(), path.back().selected.size());
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_LE(path[i].selected.size(), path[i - 1].selected.size() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LassoPathMonotonicity,
                         ::testing::Values(11, 22, 33, 44));

TEST(LassoPath, EntriesAlignWithRequestedOrder) {
  util::Rng rng(7);
  linalg::Matrix x;
  std::vector<double> y;
  make_sparse_data(100, rng, x, y);
  const std::vector<double> lambdas{100.0, 0.001, 10.0};
  const auto path = lasso_path(x, y, lambdas);
  ASSERT_EQ(path.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(path[i].lambda, lambdas[i]);
  }
  EXPECT_GE(path[1].selected.size(), path[0].selected.size());
}

TEST(LassoPath, MatchesDirectFitAtEachLambda) {
  util::Rng rng(8);
  linalg::Matrix x;
  std::vector<double> y;
  make_sparse_data(150, rng, x, y);
  const std::vector<double> lambdas{1.0, 100.0};
  const auto path = lasso_path(x, y, lambdas);
  for (std::size_t k = 0; k < lambdas.size(); ++k) {
    Lasso direct(LassoOptions{.lambda = lambdas[k]});
    direct.fit(x, y);
    ASSERT_EQ(path[k].coefficients.size(), direct.coefficients().size());
    for (std::size_t j = 0; j < direct.coefficients().size(); ++j) {
      EXPECT_NEAR(path[k].coefficients[j], direct.coefficients()[j], 1e-3);
    }
  }
}

}  // namespace
}  // namespace f2pm::ml
