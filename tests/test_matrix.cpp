#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

namespace f2pm::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, FillConstructor) {
  const Matrix m(2, 2, 1.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 1.5);
}

TEST(Matrix, InitializerListLayout) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecks) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  m.at(1, 1) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 1), 5.0);
}

TEST(Matrix, RowSpanIsContiguousView) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  auto row = m.row(1);
  row[0] = 30.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 30.0);
  EXPECT_EQ(row.size(), 2u);
}

TEST(Matrix, ColumnCopies) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.column(1), (std::vector<double>{2.0, 4.0}));
  EXPECT_THROW(m.column(2), std::out_of_range);
}

TEST(Matrix, Transposed) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, SelectColumnsPreservesOrder) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix s = m.select_columns({2, 0});
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 4.0);
}

TEST(Matrix, SelectRowsWithRepeats) {
  const Matrix m{{1.0}, {2.0}, {3.0}};
  const Matrix s = m.select_rows({2, 2, 0});
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(2, 0), 1.0);
  EXPECT_THROW(m.select_rows({5}), std::out_of_range);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, EqualityAndMaxAbsDiff) {
  const Matrix a{{1.0, 2.0}};
  Matrix b = a;
  EXPECT_EQ(a, b);
  b(0, 1) = 2.5;
  EXPECT_NE(a, b);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  EXPECT_THROW(max_abs_diff(a, Matrix(2, 2)), std::invalid_argument);
}

TEST(Matrix, ToStringContainsValues) {
  const Matrix m{{1.25, -2.0}};
  const std::string text = m.to_string();
  EXPECT_NE(text.find("1.25"), std::string::npos);
  EXPECT_NE(text.find("-2"), std::string::npos);
}

}  // namespace
}  // namespace f2pm::linalg
