#include "sim/server.hpp"

#include <gtest/gtest.h>

namespace f2pm::sim {
namespace {

struct Fixture {
  Simulator sim;
  ResourceModel resources;
  util::Rng rng{1};
};

TEST(Server, CompletesARequestAndReportsResponseTime) {
  Fixture f;
  ServerConfig config;
  Server server(f.sim, f.resources, config, f.rng);
  double response_time = -1.0;
  server.submit(Interaction::kHome,
                [&response_time](double rt) { response_time = rt; });
  f.sim.run_until(10.0);
  EXPECT_GT(response_time, 0.0);
  EXPECT_LT(response_time, 1.0);
  EXPECT_EQ(server.total_completed(), 1u);
}

TEST(Server, QueuesBeyondWorkerLimit) {
  Fixture f;
  ServerConfig config;
  config.worker_threads = 2;
  Server server(f.sim, f.resources, config, f.rng);
  for (int i = 0; i < 6; ++i) {
    server.submit(Interaction::kBestSellers, {});
  }
  EXPECT_EQ(server.busy_workers(), 2);
  EXPECT_EQ(server.queue_length(), 4u);
  f.sim.run_until(10.0);
  EXPECT_EQ(server.total_completed(), 6u);
  EXPECT_EQ(server.busy_workers(), 0);
  EXPECT_EQ(server.queue_length(), 0u);
}

TEST(Server, QueuedRequestsWaitLonger) {
  Fixture f;
  ServerConfig config;
  config.worker_threads = 1;
  config.service_noise = 0.0;
  Server server(f.sim, f.resources, config, f.rng);
  std::vector<double> response_times;
  for (int i = 0; i < 3; ++i) {
    server.submit(Interaction::kHome, [&response_times](double rt) {
      response_times.push_back(rt);
    });
  }
  f.sim.run_until(10.0);
  ASSERT_EQ(response_times.size(), 3u);
  EXPECT_LT(response_times[0], response_times[1]);
  EXPECT_LT(response_times[1], response_times[2]);
}

TEST(Server, HomeHookFiresOnlyForHome) {
  Fixture f;
  Server server(f.sim, f.resources, ServerConfig{}, f.rng);
  int hook_calls = 0;
  server.set_home_hook([&hook_calls] { ++hook_calls; });
  server.submit(Interaction::kHome, {});
  server.submit(Interaction::kBestSellers, {});
  server.submit(Interaction::kHome, {});
  f.sim.run_until(10.0);
  EXPECT_EQ(hook_calls, 2);
}

TEST(Server, ResponseStatsDrainAndReset) {
  Fixture f;
  Server server(f.sim, f.resources, ServerConfig{}, f.rng);
  server.submit(Interaction::kHome, {});
  server.submit(Interaction::kHome, {});
  f.sim.run_until(10.0);
  const ResponseStats stats = server.drain_response_stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_GT(stats.mean(), 0.0);
  const ResponseStats empty = server.drain_response_stats();
  EXPECT_EQ(empty.completed, 0u);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST(Server, ServiceSlowsDownUnderMemoryPressure) {
  Fixture healthy;
  Fixture thrashing;
  thrashing.resources.leak_memory(
      thrashing.resources.config().total_memory_kb +
      0.8 * thrashing.resources.config().total_swap_kb);
  ServerConfig config;
  config.service_noise = 0.0;
  Server fast(healthy.sim, healthy.resources, config, healthy.rng);
  Server slow(thrashing.sim, thrashing.resources, config, thrashing.rng);
  double fast_rt = 0.0;
  double slow_rt = 0.0;
  fast.submit(Interaction::kBestSellers, [&](double rt) { fast_rt = rt; });
  slow.submit(Interaction::kBestSellers, [&](double rt) { slow_rt = rt; });
  healthy.sim.run_until(100.0);
  thrashing.sim.run_until(100.0);
  EXPECT_GT(slow_rt, fast_rt * 5.0);
}

TEST(Server, AccumulatesCpuTimeIntoResources) {
  Fixture f;
  ServerConfig config;
  config.service_noise = 0.0;
  Server server(f.sim, f.resources, config, f.rng);
  server.submit(Interaction::kHome, {});
  f.sim.run_until(10.0);
  data::RawDatapoint sample;
  f.resources.sample_cpu(10.0, f.rng, sample);
  EXPECT_GT(sample[data::FeatureId::kCpuUser], 0.0);
  EXPECT_GT(sample[data::FeatureId::kCpuSystem], 0.0);
  EXPECT_GT(sample[data::FeatureId::kCpuIoWait], 0.0);
}

TEST(Server, CensusReflectsLoad) {
  Fixture f;
  ServerConfig config;
  config.worker_threads = 1;
  Server server(f.sim, f.resources, config, f.rng);
  server.submit(Interaction::kHome, {});
  server.submit(Interaction::kHome, {});
  // One in service + one queued -> 2 active requests visible in memory.
  const MemorySnapshot snapshot = f.resources.memory();
  EXPECT_GT(snapshot.shared_kb, f.resources.config().base_shared_kb);
}

}  // namespace
}  // namespace f2pm::sim
