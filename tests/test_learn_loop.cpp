// The drift-storm chaos scenario: a live PredictionService wired to a
// ContinuousTrainer through run_sink, with a real FMC client streaming
// crash-labeled runs over TCP. Mid-campaign the workload's leak rate
// doubles (the anomaly-parameter shift); the service must bootstrap a
// model, notice the drift, retrain, and hot-swap — twice, without a
// restart, without the client ever reconnecting — and the rolling S-MAE
// on post-swap windows must return to within 10% of the pre-shift
// baseline.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>

#include "chaos_driver.hpp"
#include "learn/trainer.hpp"
#include "net/fmc.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"

namespace f2pm {
namespace {

/// Polls `condition` until it holds or `seconds` elapse.
bool wait_until(const std::function<bool()>& condition, double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return condition();
}

learn::TrainerOptions drift_storm_trainer_options(const std::string& archive) {
  learn::TrainerOptions options;
  options.model_name = "reptree";
  // Small deterministic corpus: grow the full tree, no held-out pruning.
  options.model_params.set("reptree.prune", "false");
  options.archive_path = archive;
  options.aggregation.window_seconds = chaos::kChaosWindowSeconds;
  options.aggregation.min_samples_per_window = 2;
  options.corpus.max_runs = 8;
  options.drift.horizon = 20;
  options.drift.degrade_ratio = 1.5;
  options.drift.min_smae_seconds = 1.0;
  options.drift.consecutive = 2;
  options.min_corpus_runs = 3;
  options.candidate_min_windows = 7;
  return options;
}

TEST(LearnLoop, DriftStormRetrainsAndHotSwapsWithoutRestart) {
  const std::string archive = testing::TempDir() + "/drift_storm_model.bin";
  std::remove(archive.c_str());

  auto store = std::make_shared<serve::ModelStore>();
  store->watch_file(archive);
  learn::ContinuousTrainer trainer(*store,
                                   drift_storm_trainer_options(archive));

  serve::ServiceOptions service_options = chaos::chaos_service_options();
  service_options.model_poll_seconds = 0.02;
  service_options.run_sink = trainer.sink();
  serve::PredictionService service(service_options, store);

  net::ClientOptions client_options;
  client_options.op_deadline_seconds = 30.0;
  net::FeatureMonitorClient client("127.0.0.1", service.port(),
                                   client_options);
  client.hello("drift-storm");

  std::size_t predictions = 0;
  std::uint64_t runs_streamed = 0;
  // One memory-ramp run over the wire: mem grows at `rate` KB/s sampled
  // once a second until it hits `fail_mem`, then the crash is reported.
  // The per-window mem slope separates the two rate regimes for the tree.
  // Run export is asynchronous (the shard processes the FailEvent after
  // report_failure() returns), so wait for the ingest before draining.
  const auto stream_run = [&](double rate, double fail_mem) {
    const double fail_time = fail_mem / rate;
    for (double t = 0.0; t <= fail_time + 1e-9; t += 1.0) {
      data::RawDatapoint sample;
      sample.tgen = t;
      sample[data::FeatureId::kMemUsed] = rate * t;
      sample[data::FeatureId::kCpuUser] = 10.0;
      client.send(sample);
      while (client.poll_prediction().has_value()) ++predictions;
    }
    client.report_failure(fail_time);
    ++runs_streamed;
    ASSERT_TRUE(wait_until(
        [&] {
          const learn::TrainerStats stats = trainer.stats();
          return stats.runs_ingested + stats.runs_rejected >= runs_streamed;
        },
        10.0))
        << "run " << runs_streamed << " was never exported to the trainer";
    trainer.drain();
  };

  // Phase 1 — bootstrap. The service starts model-less; the exported runs
  // alone must produce the first published model and the first hot swap.
  for (int i = 0; i < 10 && trainer.stats().publishes < 1; ++i) {
    stream_run(1.0, 60.0);
  }
  ASSERT_GE(trainer.stats().publishes, 1u) << "bootstrap never published";
  EXPECT_EQ(trainer.stats().last_publish_trigger, "bootstrap");
  ASSERT_TRUE(wait_until(
      [&] { return service.stats().model_version >= 1; }, 10.0))
      << "service never adopted the bootstrap archive";

  // Phase 2 — steady state. Establish the pre-shift rolling baseline.
  for (int i = 0; i < 4; ++i) stream_run(1.0, 60.0);
  const learn::TrainerStats pre = trainer.stats();
  ASSERT_EQ(pre.observed_model_version, 1u);
  ASSERT_GE(pre.live_window_count, 20u);
  EXPECT_FALSE(pre.drift_active);
  EXPECT_LT(pre.live_smae, 1.0);
  EXPECT_GT(predictions, 0u) << "no predictions flowed after the bootstrap";

  // Phase 3 — the storm. The anomaly parameter shifts mid-campaign: the
  // leak rate doubles, so the live model systematically over-predicts
  // RTTF. Accuracy must recover through retrain + hot swap alone.
  int shifted_runs = 0;
  for (int i = 0; i < 25 && trainer.stats().publishes < 2; ++i) {
    stream_run(2.0, 60.0);
    ++shifted_runs;
  }
  const learn::TrainerStats storm = trainer.stats();
  ASSERT_GE(storm.publishes, 2u)
      << "no drift publish after " << shifted_runs << " shifted runs";
  EXPECT_GE(storm.drift_verdicts, 1u);
  EXPECT_EQ(storm.last_publish_trigger, "drift");
  ASSERT_TRUE(wait_until(
      [&] { return service.stats().model_version >= 2; }, 10.0))
      << "service never adopted the retrained archive";

  // Phase 4 — recovery. Post-swap windows must score within 10% of the
  // pre-shift baseline (plus a small absolute allowance, as both sit at
  // ~0 under the Soft-MAE tolerance).
  const std::size_t predictions_before = predictions;
  for (int i = 0; i < 4; ++i) stream_run(2.0, 60.0);
  const learn::TrainerStats post = trainer.stats();
  EXPECT_EQ(post.observed_model_version, 2u);
  EXPECT_FALSE(post.drift_active);
  EXPECT_GE(post.live_window_count, 20u);
  EXPECT_LE(post.live_smae, pre.live_smae * 1.10 + 0.5);
  EXPECT_GT(predictions, predictions_before)
      << "no predictions flowed after the drift swap";

  // "Without restart": the same connection served the whole campaign.
  EXPECT_EQ(client.reconnects(), 0u);
  EXPECT_EQ(service.stats().sessions_evicted, 0u);
  EXPECT_EQ(service.stats().protocol_errors, 0u);

  client.finish();
  service.stop();
  trainer.stop();
  std::remove(archive.c_str());
}

}  // namespace
}  // namespace f2pm
