// Equivalence and invariance suite for the tree-growth engine:
//  - presort mode grows node-for-node identical trees to the retained
//    naive reference, across randomized datasets stacked with ties,
//    constant features and duplicated rows;
//  - the parallel split scan returns bitwise-identical splits to the
//    serial scan;
//  - BaggedTrees fits a bitwise-identical ensemble at any worker count;
//  - the batched predict() overrides match predict_row exactly (trees)
//    or to rounding (KNN's gram-identity distances);
//  - deep chain-shaped trees build without recursion (explicit stacks).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "ml/ensemble.hpp"
#include "ml/knn.hpp"
#include "ml/m5p.hpp"
#include "ml/reptree.hpp"
#include "ml/tree_common.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

/// Random dataset deliberately rich in the cases that expose tie-order or
/// threshold-placement divergence: features drawn from a small discrete
/// grid (many exact ties), one constant feature, and a block of duplicated
/// rows.
void make_adversarial_data(std::size_t n, std::size_t num_features,
                           util::Rng& rng, linalg::Matrix& x,
                           std::vector<double>& y) {
  x = linalg::Matrix(n, num_features);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < num_features; ++f) {
      if (f == num_features - 1) {
        x(i, f) = 42.0;  // constant feature: never splittable
      } else if (f % 2 == 0) {
        // Discrete grid -> massive tie groups within each feature.
        x(i, f) = static_cast<double>(rng.uniform_int(0, 7));
      } else {
        x(i, f) = rng.uniform(-1.0, 1.0);
      }
    }
    y[i] = x(i, 0) > 3.0 ? rng.uniform(5.0, 6.0) : rng.uniform(-1.0, 1.0);
  }
  // Duplicate a block of rows verbatim (identical rows, identical y).
  for (std::size_t i = 0; i + n / 4 < n; i += 7) {
    const std::size_t j = i + n / 4;
    for (std::size_t f = 0; f < num_features; ++f) x(j, f) = x(i, f);
    y[j] = y[i];
  }
}

/// Serializes any fitted model to bytes for archive-equality checks.
template <typename Model>
std::string archive_bytes(const Model& model) {
  std::ostringstream buffer;
  util::BinaryWriter writer(buffer);
  model.save(writer);
  return buffer.str();
}

TEST(TreeGrowthEngine, PresortGrowsIdenticalRepTreesToNaive) {
  util::Rng rng(101);
  for (int round = 0; round < 8; ++round) {
    linalg::Matrix x;
    std::vector<double> y;
    make_adversarial_data(200 + 50 * round, 5, rng, x, y);

    RepTreeOptions naive_options;
    naive_options.split_mode = SplitMode::kNaive;
    naive_options.seed = static_cast<std::uint64_t>(round + 1);
    RepTreeOptions presort_options = naive_options;
    presort_options.split_mode = SplitMode::kPresort;

    RepTree naive(naive_options);
    RepTree presort(presort_options);
    naive.fit(x, y);
    presort.fit(x, y);
    EXPECT_EQ(archive_bytes(naive), archive_bytes(presort))
        << "round " << round;
    EXPECT_EQ(naive.num_nodes(), presort.num_nodes());
    EXPECT_EQ(naive.depth(), presort.depth());
  }
}

TEST(TreeGrowthEngine, PresortGrowsIdenticalRepTreesAcrossOptionVariants) {
  util::Rng rng(77);
  linalg::Matrix x;
  std::vector<double> y;
  make_adversarial_data(300, 4, rng, x, y);

  const RepTreeOptions base;
  std::vector<RepTreeOptions> variants(5, base);
  variants[1].prune = false;
  variants[2].max_depth = 3;
  variants[3].min_instances_per_leaf = 10;
  variants[4].min_variance_proportion = 0.1;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    RepTreeOptions naive_options = variants[v];
    naive_options.split_mode = SplitMode::kNaive;
    RepTreeOptions presort_options = variants[v];
    presort_options.split_mode = SplitMode::kPresort;
    RepTree naive(naive_options);
    RepTree presort(presort_options);
    naive.fit(x, y);
    presort.fit(x, y);
    EXPECT_EQ(archive_bytes(naive), archive_bytes(presort)) << "variant " << v;
  }
}

TEST(TreeGrowthEngine, PresortGrowsIdenticalM5PTreesToNaive) {
  util::Rng rng(303);
  for (int round = 0; round < 4; ++round) {
    linalg::Matrix x;
    std::vector<double> y;
    make_adversarial_data(250, 4, rng, x, y);

    M5POptions naive_options;
    naive_options.split_mode = SplitMode::kNaive;
    M5POptions presort_options;
    presort_options.split_mode = SplitMode::kPresort;
    M5P naive(naive_options);
    M5P presort(presort_options);
    naive.fit(x, y);
    presort.fit(x, y);
    EXPECT_EQ(archive_bytes(naive), archive_bytes(presort))
        << "round " << round;
  }
}

TEST(TreeGrowthEngine, ParallelSplitScanMatchesSerial) {
  util::Rng rng(55);
  linalg::Matrix x;
  std::vector<double> y;
  make_adversarial_data(400, 6, rng, x, y);
  std::vector<std::size_t> rows(x.rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;

  TreeGrowthEngine::Config serial_config;
  serial_config.allow_parallel = false;
  TreeGrowthEngine::Config parallel_config;
  parallel_config.allow_parallel = true;
  parallel_config.parallel_min_work = 0;  // force the fan-out path

  TreeGrowthEngine serial(x, y, rows, serial_config);
  TreeGrowthEngine parallel_engine(x, y, rows, parallel_config);
  for (const auto criterion :
       {SplitCriterion::kVarianceReduction, SplitCriterion::kStdDevReduction}) {
    const BestSplit a = serial.find_best_split(serial.root(), 2, criterion);
    const BestSplit b =
        parallel_engine.find_best_split(parallel_engine.root(), 2, criterion);
    ASSERT_EQ(a.found, b.found);
    EXPECT_EQ(a.feature, b.feature);
    EXPECT_DOUBLE_EQ(a.threshold, b.threshold);
    EXPECT_DOUBLE_EQ(a.score, b.score);
    // Both must also match the free-function reference.
    const BestSplit ref = find_best_split(x, y, rows, 2, criterion);
    ASSERT_EQ(ref.found, a.found);
    EXPECT_EQ(ref.feature, a.feature);
    EXPECT_DOUBLE_EQ(ref.threshold, a.threshold);
    EXPECT_DOUBLE_EQ(ref.score, a.score);
  }
}

TEST(TreeGrowthEngine, EngineMomentsMatchComputeMoments) {
  util::Rng rng(31);
  linalg::Matrix x;
  std::vector<double> y;
  make_adversarial_data(150, 3, rng, x, y);
  std::vector<std::size_t> rows(x.rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;

  TreeGrowthEngine engine(x, y, rows);
  const Moments expected = compute_moments(y, rows);
  const Moments actual = engine.moments(engine.root());
  EXPECT_EQ(actual.count, expected.count);
  EXPECT_DOUBLE_EQ(actual.sum, expected.sum);
  EXPECT_DOUBLE_EQ(actual.sum_sq, expected.sum_sq);

  // After a split, child segments keep the original relative row order, so
  // child moments match compute_moments over partition_rows output exactly.
  const BestSplit split =
      engine.find_best_split(engine.root(), 2, SplitCriterion::kVarianceReduction);
  ASSERT_TRUE(split.found);
  const auto [left, right] = engine.apply_split(engine.root(), split);
  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  partition_rows(x, rows, split.feature, split.threshold, left_rows,
                 right_rows);
  const auto left_span = engine.rows(left);
  ASSERT_EQ(left_span.size(), left_rows.size());
  for (std::size_t i = 0; i < left_rows.size(); ++i) {
    EXPECT_EQ(left_span[i], left_rows[i]);
  }
  const auto right_span = engine.rows(right);
  ASSERT_EQ(right_span.size(), right_rows.size());
  for (std::size_t i = 0; i < right_rows.size(); ++i) {
    EXPECT_EQ(right_span[i], right_rows[i]);
  }
  const Moments left_expected = compute_moments(y, left_rows);
  const Moments left_actual = engine.moments(left);
  EXPECT_DOUBLE_EQ(left_actual.sum, left_expected.sum);
  EXPECT_DOUBLE_EQ(left_actual.sum_sq, left_expected.sum_sq);
  EXPECT_EQ(left_actual.count, left_expected.count);
}

TEST(TreeGrowthEngine, HistogramModeLearnsStepFunction) {
  util::Rng rng(17);
  const std::size_t n = 600;
  linalg::Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = (x(i, 0) < 0.0 ? 10.0 : -5.0) + rng.normal(0.0, 0.01);
  }
  RepTreeOptions options;
  options.split_mode = SplitMode::kHistogram;
  options.histogram_bins = 32;
  RepTree tree(options);
  tree.fit(x, y);
  EXPECT_GE(tree.num_leaves(), 2u);
  // Bin-boundary thresholds are approximate; a coarse step is still easy.
  EXPECT_NEAR(tree.predict_row(std::vector<double>{-0.5, 0.0}), 10.0, 0.75);
  EXPECT_NEAR(tree.predict_row(std::vector<double>{0.5, 0.0}), -5.0, 0.75);
}

TEST(TreeGrowthEngine, DeepChainTreeBuildsWithoutRecursion) {
  // Exponentially growing targets make the best variance-reduction split
  // peel one row off the top at every node, so the unpruned tree is a
  // chain of depth ~n. The explicit-stack build/prune/depth walks must
  // handle it without touching the call stack. n is capped so sum(y²)
  // (~1.5^(2n)) stays finite in double precision.
  const std::size_t n = 768;
  linalg::Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = std::pow(1.5, static_cast<double>(i));
  }
  RepTreeOptions options;
  options.prune = false;
  options.max_depth = 0;  // unlimited
  options.min_variance_proportion = 0.0;
  options.min_instances_per_leaf = 1;
  RepTree tree(options);
  tree.fit(x, y);
  EXPECT_GE(tree.depth(), n / 4);
  EXPECT_DOUBLE_EQ(tree.predict_row(std::vector<double>{0.0}), y[0]);
  EXPECT_DOUBLE_EQ(
      tree.predict_row(std::vector<double>{static_cast<double>(n - 1)}),
      y[n - 1]);
}

TEST(BaggedTrees, FitIsInvariantToWorkerCount) {
  util::Rng rng(909);
  linalg::Matrix x;
  std::vector<double> y;
  make_adversarial_data(300, 4, rng, x, y);

  BaggedTreesOptions serial_options;
  serial_options.num_trees = 12;
  serial_options.seed = 7;
  serial_options.fit_workers = 1;
  BaggedTreesOptions parallel_options = serial_options;
  parallel_options.fit_workers = 4;

  BaggedTrees serial(serial_options);
  BaggedTrees parallel_ensemble(parallel_options);
  serial.fit(x, y);
  parallel_ensemble.fit(x, y);
  EXPECT_EQ(archive_bytes(serial), archive_bytes(parallel_ensemble));
}

TEST(BatchedPredict, RepTreeMatchesRowByRowExactly) {
  util::Rng rng(21);
  linalg::Matrix x;
  std::vector<double> y;
  make_adversarial_data(400, 5, rng, x, y);
  RepTree tree;
  tree.fit(x, y);
  const std::vector<double> batched = tree.predict(x);
  ASSERT_EQ(batched.size(), x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    EXPECT_DOUBLE_EQ(batched[r], tree.predict_row(x.row(r))) << "row " << r;
  }
}

TEST(BatchedPredict, M5PMatchesRowByRowExactly) {
  util::Rng rng(22);
  const std::size_t n = 500;
  linalg::Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    x(i, 1) = rng.uniform(-2.0, 2.0);
    y[i] = (x(i, 0) < 0.0 ? 3.0 * x(i, 0) : -x(i, 0)) + 0.5 * x(i, 1) +
           rng.normal(0.0, 0.02);
  }
  for (const bool smoothing : {true, false}) {
    M5POptions options;
    options.smoothing = smoothing;
    M5P model(options);
    model.fit(x, y);
    const std::vector<double> batched = model.predict(x);
    ASSERT_EQ(batched.size(), x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
      EXPECT_DOUBLE_EQ(batched[r], model.predict_row(x.row(r)))
          << "row " << r << " smoothing " << smoothing;
    }
  }
}

TEST(BatchedPredict, BaggedTreesMatchesRowByRowExactly) {
  util::Rng rng(23);
  linalg::Matrix x;
  std::vector<double> y;
  make_adversarial_data(250, 4, rng, x, y);
  BaggedTreesOptions options;
  options.num_trees = 8;
  BaggedTrees model(options);
  model.fit(x, y);
  const std::vector<double> batched = model.predict(x);
  ASSERT_EQ(batched.size(), x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    EXPECT_DOUBLE_EQ(batched[r], model.predict_row(x.row(r))) << "row " << r;
  }
}

TEST(BatchedPredict, KnnMatchesRowByRowToRounding) {
  util::Rng rng(24);
  const std::size_t n = 300;
  linalg::Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < 3; ++f) x(i, f) = rng.uniform(-5.0, 5.0);
    y[i] = x(i, 0) + 2.0 * x(i, 1) - x(i, 2) + rng.normal(0.0, 0.1);
  }
  for (const bool weighted : {true, false}) {
    KnnOptions options;
    options.k = 5;
    options.distance_weighted = weighted;
    KnnRegressor model(options);
    model.fit(x, y);
    // Query count spans multiple blocks (block size 128).
    const std::vector<double> batched = model.predict(x);
    ASSERT_EQ(batched.size(), x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
      // Gram-identity distances differ from diff-squared distances by
      // rounding only; with well-separated random points the same
      // neighbours win and the weights agree to ~1e-9 relative.
      EXPECT_NEAR(batched[r], model.predict_row(x.row(r)),
                  1e-6 * (1.0 + std::abs(batched[r])))
          << "row " << r << " weighted " << weighted;
    }
  }
}

}  // namespace
}  // namespace f2pm::ml
