// Seeded mutation fuzzing of the FrameDecoder: valid frame streams are
// corrupted (bit flips, splices, length-field stomps) and fed back in
// arbitrary chunkings. The decoder must never crash, never buffer past
// its declared payload caps, and either keep producing frames or throw a
// ProtocolError — after which a reset() makes it fully usable again.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <variant>
#include <vector>

#include "data/datapoint.hpp"
#include "net/protocol.hpp"

namespace f2pm::net {
namespace {

/// splitmix64-based test RNG: cheap and fully deterministic per seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t x = state_;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::size_t below(std::size_t n) { return n == 0 ? 0 : next() % n; }

 private:
  std::uint64_t state_;
};

/// One of every frame type, back to back — the replayed corpus.
std::vector<std::uint8_t> valid_stream() {
  std::vector<std::uint8_t> bytes;
  Hello hello;
  hello.client_id = "fuzz-client";
  FrameEncoder::encode_hello(bytes, hello);
  data::RawDatapoint datapoint;
  datapoint.tgen = 1.5;
  for (std::size_t i = 0; i < datapoint.values.size(); ++i) {
    datapoint.values[i] = static_cast<double>(i) * 3.25;
  }
  FrameEncoder::encode_datapoint(bytes, datapoint);
  FrameEncoder::encode_fail_event(bytes, 42.0);
  Prediction prediction;
  prediction.window_end = 8.0;
  prediction.rttf = 123.0;
  prediction.alarm = true;
  prediction.model_version = 3;
  FrameEncoder::encode_prediction(bytes, prediction);
  FrameEncoder::encode_stats_request(bytes);
  StatsReply reply;
  reply.text = "# HELP f2pm_up 1 if alive\nf2pm_up 1\n";
  FrameEncoder::encode_stats_reply(bytes, reply);
  FrameEncoder::encode_bye(bytes);
  return bytes;
}

constexpr std::size_t kValidFrameCount = 7;

/// Applies 1–4 random corruptions: single-bit flips, range removal or
/// duplication (splices), and 4-byte stomps that statistically land on
/// magic, type and length fields.
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& original,
                                 Rng& rng) {
  std::vector<std::uint8_t> bytes = original;
  const std::size_t mutations = 1 + rng.below(4);
  for (std::size_t m = 0; m < mutations && !bytes.empty(); ++m) {
    switch (rng.below(4)) {
      case 0: {  // bit flip
        const std::size_t at = rng.below(bytes.size());
        bytes[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        break;
      }
      case 1: {  // splice out a range
        const std::size_t from = rng.below(bytes.size());
        const std::size_t len = 1 + rng.below(bytes.size() - from);
        bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(from),
                    bytes.begin() + static_cast<std::ptrdiff_t>(from + len));
        break;
      }
      case 2: {  // duplicate a range (reordered/replayed bytes)
        const std::size_t from = rng.below(bytes.size());
        const std::size_t len =
            1 + rng.below(std::min<std::size_t>(bytes.size() - from, 32));
        std::vector<std::uint8_t> dup(
            bytes.begin() + static_cast<std::ptrdiff_t>(from),
            bytes.begin() + static_cast<std::ptrdiff_t>(from + len));
        const std::size_t at = rng.below(bytes.size() + 1);
        bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                     dup.begin(), dup.end());
        break;
      }
      default: {  // stomp a 32-bit field (length/type/magic corruption)
        if (bytes.size() < 4) break;
        const std::size_t at = rng.below(bytes.size() - 3);
        // Half the stomps write huge values to specifically provoke the
        // oversized-length defence.
        const std::uint32_t value = (rng.next() & 1u) != 0
                                        ? 0xffffffffu - rng.below(1024)
                                        : static_cast<std::uint32_t>(rng.next());
        std::memcpy(bytes.data() + at, &value, sizeof(value));
        break;
      }
    }
  }
  return bytes;
}

/// Feeds `bytes` in random chunkings, draining after every feed. Returns
/// the number of complete frames decoded; ProtocolError is a valid
/// outcome. Asserts the buffering cap the whole way.
std::size_t feed_and_drain(FrameDecoder& decoder,
                           const std::vector<std::uint8_t>& bytes, Rng& rng) {
  // An incomplete frame can hold at most a header plus the largest capped
  // payload; anything above that means the decoder hoarded garbage.
  const std::size_t max_buffered = 8 + kMaxStatsBytes + 4 + 256;
  std::size_t frames = 0;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const std::size_t chunk = 1 + rng.below(64);
    const std::size_t take = std::min(chunk, bytes.size() - offset);
    decoder.feed(bytes.data() + offset, take);
    offset += take;
    while (decoder.next().has_value()) ++frames;
    EXPECT_LE(decoder.buffered_bytes(), max_buffered);
  }
  return frames;
}

/// After any outcome, a reset decoder must decode the pristine corpus.
void expect_full_recovery(FrameDecoder& decoder, Rng& rng) {
  decoder.reset();
  const std::vector<std::uint8_t> pristine = valid_stream();
  const std::size_t frames = feed_and_drain(decoder, pristine, rng);
  EXPECT_EQ(frames, kValidFrameCount);
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(FrameFuzz, ValidStreamSurvivesAnyChunking) {
  const std::vector<std::uint8_t> bytes = valid_stream();
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    FrameDecoder decoder;
    EXPECT_EQ(feed_and_drain(decoder, bytes, rng), kValidFrameCount);
    EXPECT_FALSE(decoder.mid_frame());
  }
}

TEST(FrameFuzz, MutatedStreamsNeverCrashAndAlwaysRecover) {
  const std::vector<std::uint8_t> corpus = valid_stream();
  std::size_t protocol_errors = 0;
  std::size_t survived = 0;
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(seed);
    const std::vector<std::uint8_t> mutated = mutate(corpus, rng);
    FrameDecoder decoder;
    try {
      feed_and_drain(decoder, mutated, rng);
      ++survived;
    } catch (const ProtocolError&) {
      ++protocol_errors;  // the only acceptable failure mode
    }
    expect_full_recovery(decoder, rng);
  }
  // The mutator is aggressive enough that both outcomes happen often; if
  // either count collapses to ~0 the fuzz lost its teeth.
  EXPECT_GT(protocol_errors, 100u);
  EXPECT_GT(survived, 50u);
}

TEST(FrameFuzz, OversizedLengthFieldsAreRejectedWithoutBuffering) {
  // A hello that declares a (capped-at-256) id length of 2^31: the
  // decoder must throw kOversized as soon as the header parses, not wait
  // for gigabytes that never come.
  std::vector<std::uint8_t> bytes;
  const std::uint32_t magic = kProtocolMagic;
  const std::uint32_t type = static_cast<std::uint32_t>(FrameType::kHello);
  const std::uint32_t version = kProtocolVersion;
  const std::uint32_t huge = 1u << 31;
  const auto put = [&bytes](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    bytes.insert(bytes.end(), b, b + n);
  };
  put(&magic, 4);
  put(&type, 4);
  put(&version, 4);
  put(&huge, 4);

  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  try {
    decoder.next();
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.kind(), ProtocolError::Kind::kOversized);
  }
  EXPECT_LE(decoder.buffered_bytes(), bytes.size());
}

}  // namespace
}  // namespace f2pm::net
