#include "util/string_util.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <string>

namespace f2pm::util {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Trim, RemovesSurroundingWhitespaceOnly) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StartsWith, Matches) {
  EXPECT_TRUE(starts_with("lasso-lambda-10", "lasso-"));
  EXPECT_FALSE(starts_with("las", "lasso"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, ","), "x,y,z");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
  EXPECT_EQ(join({}, ","), "");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("AbC-12"), "abc-12");
}

TEST(ParseDouble, AcceptsValidForms) {
  EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("  -1e3 "), -1000.0);
  EXPECT_DOUBLE_EQ(parse_double("0"), 0.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_THROW(parse_double(""), std::invalid_argument);
  EXPECT_THROW(parse_double("abc"), std::invalid_argument);
  EXPECT_THROW(parse_double("1.5x"), std::invalid_argument);
}

TEST(ParseInt, AcceptsValidForms) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
}

TEST(ParseInt, RejectsGarbageAndFractions) {
  EXPECT_THROW(parse_int(""), std::invalid_argument);
  EXPECT_THROW(parse_int("1.5"), std::invalid_argument);
  EXPECT_THROW(parse_int("seven"), std::invalid_argument);
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(3.14, 6), "3.14");
  EXPECT_EQ(format_double(2.0, 6), "2");
  EXPECT_EQ(format_double(0.5, 1), "0.5");
  EXPECT_EQ(format_double(1e9, 0), "1000000000");
}

TEST(FormatDouble, RoundTripThroughParse) {
  for (double v : {0.125, -17.5, 123456.75}) {
    EXPECT_DOUBLE_EQ(parse_double(format_double(v, 9)), v);
  }
}

TEST(FormatDouble, IgnoresNumericLocale) {
  // CSV/ARFF exports must always use '.' as the decimal separator; the old
  // ostringstream path honoured the global locale and wrote "3,14" under
  // e.g. de_DE, silently corrupting every exported dataset.
  const std::string previous = std::setlocale(LC_NUMERIC, nullptr);
  const char* locale = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
  if (locale == nullptr) locale = std::setlocale(LC_NUMERIC, "de_DE");
  if (locale == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale available on this system";
  }
  const std::string formatted = format_double(3.14, 6);
  std::setlocale(LC_NUMERIC, previous.c_str());
  EXPECT_EQ(formatted, "3.14");
}

}  // namespace
}  // namespace f2pm::util
