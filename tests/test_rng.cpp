#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace f2pm::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatelyCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversFullInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(13);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(0.5), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalNeverPicksZeroWeight) {
  Rng rng(29);
  const std::vector<double> weights{0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 10000; ++i) {
    const std::size_t pick = rng.categorical(weights);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(Rng, CategoricalFrequenciesMatchWeights) {
  Rng rng(31);
  const std::vector<double> weights{1.0, 3.0};
  int second = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) second += rng.categorical(weights) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(second) / n, 0.75, 0.01);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(37);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationEmptyAndSingle) {
  Rng rng(37);
  EXPECT_TRUE(rng.permutation(0).empty());
  EXPECT_EQ(rng.permutation(1), std::vector<std::size_t>{0});
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(41);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += child1() == child2() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(SplitMix64, KnownFirstOutputIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64_next(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(first, splitmix64_next(state2));
  EXPECT_NE(first, splitmix64_next(state2));
}

}  // namespace
}  // namespace f2pm::util
