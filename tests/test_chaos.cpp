// Chaos soak for the serve/net stack: a fleet of reconnecting clients
// survives a scripted storm of transport faults with bounded prediction
// loss and no duplicate or out-of-order predictions; a session survives a
// hard server bounce without losing its open aggregation window; and the
// service accounts disconnect kinds (clean / truncated / reset) without
// mislabelling dead peers as protocol violations.
//
// The seed matrix: each test derives its fault schedules from
// F2PM_CHAOS_SEED (default 1), so CI can sweep seeds without a rebuild
// and a failing seed reproduces locally with the same env var.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "chaos_driver.hpp"
#include "net/fault.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/model_store.hpp"

namespace f2pm {
namespace {

using namespace std::chrono_literals;

std::uint64_t chaos_base_seed() {
  const char* env = std::getenv("F2PM_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

template <typename Predicate>
bool eventually(Predicate predicate,
                std::chrono::milliseconds deadline = 5000ms) {
  const auto end = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < end) {
    if (predicate()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return predicate();
}

// The headline soak: 16 concurrent clients, 120 datapoints each, every
// fault class injected at once. Delivery contract under faults:
//   - every closed window's prediction arrives exactly once, in order;
//   - only the final flush prediction may be lost (bounded loss of 1);
//   - the service drains to zero sessions.
TEST(ChaosSoak, FleetSurvivesFaultStorm) {
  constexpr std::size_t kClients = 16;
  constexpr std::size_t kPoints = 120;
  const std::size_t guaranteed = chaos::closed_windows(kPoints);

  const std::uint64_t seed = chaos_base_seed();
  auto store = std::make_shared<serve::ModelStore>();
  store->swap(chaos::constant_model(1000.0));
  serve::PredictionService service(chaos::chaos_service_options(), store);

  std::size_t total_faults = 0;
  std::size_t total_reconnects = 0;
  {
    net::ScopedFaultInjection injection(chaos::chaos_plan(seed));
    const auto reports = chaos::run_chaos_fleet(service.port(), kClients,
                                                kPoints, 1000.0, seed * 1000);
    // Stop while the plan is still installed (the drain path runs through
    // the fault gates too), then uninstall only after the loop has joined
    // so no in-flight I/O can race the injector teardown.
    service.stop();
    total_faults = injection.injector().total_injected();

    for (std::size_t i = 0; i < reports.size(); ++i) {
      const chaos::ChaosClientReport& report = reports[i];
      SCOPED_TRACE("client " + std::to_string(i) + " seed " +
                   std::to_string(seed));
      EXPECT_EQ(report.error, "");
      EXPECT_EQ(report.sent, kPoints);
      EXPECT_TRUE(report.monotonic);
      EXPECT_TRUE(report.rttf_ok);
      EXPECT_GE(report.received, guaranteed);
      EXPECT_LE(report.received, guaranteed + 1);
      total_reconnects += report.reconnects;
    }
  }

  // The plan actually fired: with these rates a 16-client soak sees
  // hundreds of faults; a silently disarmed injector would void the test.
  EXPECT_GT(total_faults, 0u);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions_active, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);  // faults are not protocol bugs
  // Reconnected clients show up as extra accepted sessions; accept-gate
  // drops and failed replay rounds make the exact count seed-dependent.
  EXPECT_GE(stats.sessions_accepted, kClients);
  (void)total_reconnects;
}

// Scripted, surgical faults: exactly one mid-stream reset per client at a
// known operation index. Deterministic across runs — the fault schedule
// is part of the test, not a roll of the dice.
TEST(ChaosSoak, ScriptedMidStreamResetsRecover) {
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPoints = 60;
  const std::size_t guaranteed = chaos::closed_windows(kPoints);

  auto store = std::make_shared<serve::ModelStore>();
  store->swap(chaos::constant_model(250.0));
  serve::PredictionService service(chaos::chaos_service_options(), store);

  net::FaultPlan plan;  // rates all zero: only the script fires
  for (std::size_t c = 0; c < kClients; ++c) {
    net::ScriptedFault fault;
    fault.lane = c + 1;  // run_chaos_fleet names lanes 1..kClients
    fault.op = net::FaultOp::kWrite;
    fault.index = 20 + 3 * c;  // mid-frame for most frame sizes
    fault.action = net::FaultAction::kReset;
    plan.script.push_back(fault);
  }

  {
    net::ScopedFaultInjection injection(plan);
    const auto reports =
        chaos::run_chaos_fleet(service.port(), kClients, kPoints, 250.0, 7);
    service.stop();
    EXPECT_EQ(injection.injector().injected(net::FaultAction::kReset),
              kClients);
    for (std::size_t i = 0; i < reports.size(); ++i) {
      SCOPED_TRACE("client " + std::to_string(i));
      const chaos::ChaosClientReport& report = reports[i];
      EXPECT_EQ(report.error, "");
      EXPECT_EQ(report.reconnects, 1u);
      EXPECT_GT(report.replayed, 0u);
      EXPECT_TRUE(report.monotonic);
      EXPECT_TRUE(report.rttf_ok);
      EXPECT_GE(report.received, guaranteed);
      EXPECT_LE(report.received, guaranteed + 1);
    }
  }
  EXPECT_EQ(service.stats().sessions_active, 0u);
}

// A server bounce (hard stop, zero drain — the kill -9 case — then a
// restart on the same port) must not cost the client its open
// aggregation window: the replayed tail rebuilds it and the prediction
// for that window still arrives.
TEST(ChaosResume, OpenWindowSurvivesServerBounce) {
  auto store = std::make_shared<serve::ModelStore>();
  store->swap(chaos::constant_model(500.0));

  serve::ServiceOptions hard_kill = chaos::chaos_service_options();
  hard_kill.drain_timeout_seconds = 0.0;  // slam sessions, flush nothing
  auto service =
      std::make_unique<serve::PredictionService>(hard_kill, store);
  const std::uint16_t port = service->port();

  net::FeatureMonitorClient client("127.0.0.1", port,
                                   chaos::chaos_client_options(42));
  client.hello("bounce-survivor");

  // Windows [0,4) and [4,8) close; 8 and 9 sit in the open window [8,12).
  for (int t = 0; t <= 9; ++t) client.send(chaos::sample_at(t));
  for (int expected = 4; expected <= 8; expected += 4) {
    auto prediction = client.wait_prediction();
    ASSERT_TRUE(prediction.has_value());
    EXPECT_DOUBLE_EQ(prediction->window_end, expected);
  }

  // Bounce: the open window [8,12) dies with the server.
  service->stop();
  service.reset();
  serve::ServiceOptions same_port = chaos::chaos_service_options();
  same_port.port = port;
  service = std::make_unique<serve::PredictionService>(same_port, store);

  // The client notices the dead connection on its own (send failure or
  // read EOF), reconnects, re-hellos and replays 8 and 9 — so observing
  // 10..12 closes the very window the bounce destroyed.
  for (int t = 10; t <= 12; ++t) client.send(chaos::sample_at(t));
  auto prediction = client.wait_prediction();
  ASSERT_TRUE(prediction.has_value());
  EXPECT_DOUBLE_EQ(prediction->window_end, 12.0);
  EXPECT_NEAR(prediction->rttf, 500.0, 1e-6);
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_GE(client.replayed_datapoints(), 2u);  // at least 8 and 9

  client.finish();
  while (client.wait_prediction()) {
  }
  service->stop();
  EXPECT_EQ(service->stats().sessions_active, 0u);
}

// Disconnect taxonomy: a peer that dies mid-frame is a truncated
// disconnect, a reset peer is a reset disconnect, and neither is a
// protocol error; a polite Bye is a clean disconnect.
TEST(ChaosAccounting, DisconnectKindsAreDistinguished) {
  auto store = std::make_shared<serve::ModelStore>();
  serve::PredictionService service(chaos::chaos_service_options(), store);

  {  // Clean: hello + bye.
    net::FeatureMonitorClient client("127.0.0.1", service.port());
    client.hello("polite");
    client.finish();
    while (client.wait_prediction()) {
    }
  }
  ASSERT_TRUE(eventually(
      [&] { return service.stats().disconnects_clean == 1; }));

  {  // Truncated: half a datapoint frame, then FIN.
    net::TcpStream stream = net::TcpStream::connect("127.0.0.1",
                                                    service.port());
    std::vector<std::uint8_t> bytes;
    net::FrameEncoder::encode_datapoint(bytes, chaos::sample_at(1.0));
    stream.send_all(bytes.data(), bytes.size() / 2);
    stream.close();
  }
  ASSERT_TRUE(eventually(
      [&] { return service.stats().disconnects_truncated == 1; }));

  {  // Reset: a valid frame, then an RST (SO_LINGER hard close).
    net::TcpStream stream = net::TcpStream::connect("127.0.0.1",
                                                    service.port());
    std::vector<std::uint8_t> bytes;
    net::FrameEncoder::encode_datapoint(bytes, chaos::sample_at(1.0));
    stream.send_all(bytes.data(), bytes.size());
    stream.abort_connection();
  }
  ASSERT_TRUE(eventually(
      [&] { return service.stats().disconnects_reset == 1; }));

  service.stop();
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.disconnects_clean, 1u);
  EXPECT_EQ(stats.disconnects_truncated, 1u);
  EXPECT_EQ(stats.disconnects_reset, 1u);
  EXPECT_EQ(stats.sessions_active, 0u);
}

// The fault-storm soak against a sharded service: reconnecting clients
// land on whichever shard the kernel (SO_REUSEPORT) picks, so a client's
// replacement session routinely lives on a different shard than its
// predecessor — the exactly-once/in-order contract must hold anyway
// because recovery state (replay buffer, watermark) is client-side.
// Forced to 2 shards even without F2PM_CHAOS_SHARDS so the cross-shard
// reconnect path is always covered.
TEST(ChaosSharded, FleetSurvivesFaultStormAcrossShards) {
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPoints = 80;
  const std::size_t guaranteed = chaos::closed_windows(kPoints);

  const std::uint64_t seed = chaos_base_seed();
  auto store = std::make_shared<serve::ModelStore>();
  store->swap(chaos::constant_model(1000.0));
  serve::ServiceOptions options = chaos::chaos_service_options();
  options.shards = std::max<std::size_t>(2, options.shards);
  serve::PredictionService service(options, store);
  ASSERT_GE(service.shards(), 2u);

  std::size_t total_faults = 0;
  {
    net::ScopedFaultInjection injection(chaos::chaos_plan(seed ^ 0x5a5a));
    const auto reports = chaos::run_chaos_fleet(
        service.port(), kClients, kPoints, 1000.0, seed * 2000);
    service.stop();
    total_faults = injection.injector().total_injected();

    for (std::size_t i = 0; i < reports.size(); ++i) {
      const chaos::ChaosClientReport& report = reports[i];
      SCOPED_TRACE("client " + std::to_string(i) + " seed " +
                   std::to_string(seed));
      EXPECT_EQ(report.error, "");
      EXPECT_EQ(report.sent, kPoints);
      EXPECT_TRUE(report.monotonic);
      EXPECT_TRUE(report.rttf_ok);
      EXPECT_GE(report.received, guaranteed);
      EXPECT_LE(report.received, guaranteed + 1);
    }
  }
  EXPECT_GT(total_faults, 0u);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions_active, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// Bounce a sharded service (hard kill, restart on the same port, still
// sharded): replay must rebuild the open window even though the
// replacement session may land on any shard of the new instance.
TEST(ChaosSharded, OpenWindowSurvivesShardedServerBounce) {
  auto store = std::make_shared<serve::ModelStore>();
  store->swap(chaos::constant_model(500.0));

  serve::ServiceOptions hard_kill = chaos::chaos_service_options();
  hard_kill.shards = std::max<std::size_t>(2, hard_kill.shards);
  hard_kill.drain_timeout_seconds = 0.0;
  auto service =
      std::make_unique<serve::PredictionService>(hard_kill, store);
  const std::uint16_t port = service->port();

  net::FeatureMonitorClient client("127.0.0.1", port,
                                   chaos::chaos_client_options(43));
  client.hello("sharded-bounce-survivor");
  for (int t = 0; t <= 9; ++t) client.send(chaos::sample_at(t));
  for (int expected = 4; expected <= 8; expected += 4) {
    auto prediction = client.wait_prediction();
    ASSERT_TRUE(prediction.has_value());
    EXPECT_DOUBLE_EQ(prediction->window_end, expected);
  }

  service->stop();
  service.reset();
  serve::ServiceOptions same_port = hard_kill;
  same_port.port = port;
  service = std::make_unique<serve::PredictionService>(same_port, store);

  for (int t = 10; t <= 12; ++t) client.send(chaos::sample_at(t));
  auto prediction = client.wait_prediction();
  ASSERT_TRUE(prediction.has_value());
  EXPECT_DOUBLE_EQ(prediction->window_end, 12.0);
  EXPECT_NEAR(prediction->rttf, 500.0, 1e-6);
  EXPECT_GE(client.reconnects(), 1u);

  client.finish();
  while (client.wait_prediction()) {
  }
  service->stop();
  EXPECT_EQ(service->stats().sessions_active, 0u);
}

}  // namespace
}  // namespace f2pm
