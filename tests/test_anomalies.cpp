#include "sim/anomalies.hpp"

#include <gtest/gtest.h>

namespace f2pm::sim {
namespace {

TEST(HomeInjector, LeakFrequencyMatchesProbability) {
  ResourceModel resources;
  util::Rng rng(1);
  HomeAnomalyConfig config;
  config.leak_probability = 0.25;
  config.thread_probability = 0.0;
  HomeAnomalyInjector injector(resources, config, rng);
  const int visits = 40000;
  for (int i = 0; i < visits; ++i) injector.on_home();
  EXPECT_NEAR(static_cast<double>(injector.leaks_injected()) / visits, 0.25,
              0.01);
  EXPECT_EQ(injector.threads_injected(), 0u);
}

TEST(HomeInjector, LeakSizesInConfiguredRange) {
  ResourceModel resources;
  util::Rng rng(2);
  HomeAnomalyConfig config;
  config.leak_probability = 1.0;
  config.leak_min_kb = 100.0;
  config.leak_max_kb = 200.0;
  config.thread_probability = 0.0;
  HomeAnomalyInjector injector(resources, config, rng);
  for (int i = 0; i < 1000; ++i) injector.on_home();
  const double mean_leak = resources.leaked_kb() / 1000.0;
  EXPECT_GT(mean_leak, 100.0);
  EXPECT_LT(mean_leak, 200.0);
  EXPECT_NEAR(mean_leak, 150.0, 10.0);
}

TEST(HomeInjector, SpawnsThreads) {
  ResourceModel resources;
  util::Rng rng(3);
  HomeAnomalyConfig config;
  config.leak_probability = 0.0;
  config.thread_probability = 1.0;
  HomeAnomalyInjector injector(resources, config, rng);
  for (int i = 0; i < 10; ++i) injector.on_home();
  EXPECT_EQ(resources.leaked_threads(), 10);
}

TEST(SyntheticLeaker, MeanIntervalDrawnFromConfiguredRange) {
  Simulator sim;
  ResourceModel resources;
  util::Rng rng(4);
  SyntheticLeakConfig config;
  config.mean_interval_min = 2.0;
  config.mean_interval_max = 5.0;
  SyntheticMemoryLeaker leaker(sim, resources, config, rng);
  leaker.start();
  EXPECT_GE(leaker.chosen_mean_interval(), 2.0);
  EXPECT_LE(leaker.chosen_mean_interval(), 5.0);
}

TEST(SyntheticLeaker, LeakRateMatchesChosenMean) {
  Simulator sim;
  ResourceModel resources;
  util::Rng rng(5);
  SyntheticLeakConfig config;
  config.mean_interval_min = 1.0;
  config.mean_interval_max = 1.0;  // pin the mean for a tight check
  SyntheticMemoryLeaker leaker(sim, resources, config, rng);
  leaker.start();
  sim.run_until(10000.0);
  EXPECT_NEAR(static_cast<double>(leaker.leaks_injected()), 10000.0, 400.0);
  EXPECT_GT(resources.leaked_kb(), 0.0);
}

TEST(SyntheticLeaker, StopHaltsInjection) {
  Simulator sim;
  ResourceModel resources;
  util::Rng rng(6);
  SyntheticLeakConfig config;
  config.mean_interval_min = 0.5;
  config.mean_interval_max = 0.5;
  SyntheticMemoryLeaker leaker(sim, resources, config, rng);
  leaker.start();
  sim.run_until(100.0);
  leaker.stop();
  const std::size_t at_stop = leaker.leaks_injected();
  sim.run_until(1000.0);
  EXPECT_EQ(leaker.leaks_injected(), at_stop);
}

TEST(SyntheticThreader, SpawnsAtExpectedRate) {
  Simulator sim;
  ResourceModel resources;
  util::Rng rng(7);
  SyntheticThreadConfig config;
  config.mean_interval_min = 2.0;
  config.mean_interval_max = 2.0;
  SyntheticThreadLeaker threader(sim, resources, config, rng);
  threader.start();
  sim.run_until(4000.0);
  EXPECT_NEAR(static_cast<double>(threader.threads_injected()), 2000.0,
              150.0);
  EXPECT_EQ(resources.leaked_threads(),
            static_cast<int>(threader.threads_injected()));
}

TEST(SyntheticInjectors, DriveTheSystemToCrashWithoutWorkload) {
  // §III-E: the utilities alone can stress the system to failure.
  Simulator sim;
  ResourceModel resources;
  util::Rng rng(8);
  SyntheticLeakConfig config;
  config.size_min_kb = 4096.0;
  config.size_max_kb = 8192.0;
  config.mean_interval_min = 0.2;
  config.mean_interval_max = 0.5;
  SyntheticMemoryLeaker leaker(sim, resources, config, rng);
  leaker.start();
  const bool crashed = sim.run_until_condition(
      [&resources] { return resources.crashed(); }, 100000.0);
  EXPECT_TRUE(crashed);
}

}  // namespace
}  // namespace f2pm::sim
