#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "sim/campaign.hpp"

namespace f2pm::core {
namespace {

/// One small shared campaign for all pipeline tests (built once: the
/// simulator is deterministic, and reuse keeps the suite fast).
const data::DataHistory& shared_history() {
  static const data::DataHistory history = [] {
    sim::CampaignConfig config;
    config.num_runs = 6;
    config.seed = 101;
    config.workload.num_browsers = 40;
    config.use_synthetic_injectors = true;
    config.synthetic_leak.size_min_kb = 1024.0;
    config.synthetic_leak.size_max_kb = 3072.0;
    config.synthetic_leak.mean_interval_min = 0.3;
    config.synthetic_leak.mean_interval_max = 1.0;
    return sim::run_campaign(config);
  }();
  return history;
}

PipelineOptions fast_options() {
  PipelineOptions options;
  options.models = {"linear", "reptree", "lasso"};
  options.lasso_predictor_lambdas = {1e0, 1e9};
  return options;
}

TEST(Pipeline, ProducesConsistentShapes) {
  const PipelineResult result =
      run_pipeline(shared_history(), fast_options());
  EXPECT_EQ(result.dataset.num_features(), data::kInputCount);
  EXPECT_EQ(result.train.num_rows() + result.validation.num_rows(),
            result.dataset.num_rows());
  EXPECT_GT(result.soft_threshold, 0.0);
  // "lasso" expands into one outcome per λ: linear + reptree + 2 lassos.
  ASSERT_EQ(result.using_all_features.size(), 4u);
  EXPECT_EQ(result.using_all_features[0].display_name, "linear");
  EXPECT_EQ(result.using_all_features[2].display_name, "lasso-lambda-1");
  EXPECT_EQ(result.using_all_features[3].display_name,
            "lasso-lambda-1000000000");
  for (const auto& outcome : result.using_all_features) {
    EXPECT_EQ(outcome.predicted.size(), result.validation.num_rows());
    EXPECT_GE(outcome.report.mae, 0.0);
    EXPECT_GE(outcome.report.soft_mae, 0.0);
    EXPECT_LE(outcome.report.soft_mae, outcome.report.mae + 1e-9);
  }
}

TEST(Pipeline, FeatureSelectionPhasePopulatesSubset) {
  const PipelineResult result =
      run_pipeline(shared_history(), fast_options());
  ASSERT_TRUE(result.selection.has_value());
  EXPECT_EQ(result.selection->entries.size(), paper_lambda_grid().size());
  EXPECT_FALSE(result.selected_columns.empty());
  EXPECT_LT(result.selected_columns.size(), data::kInputCount);
  // Reduced models trained on the subset exist and used fewer features.
  ASSERT_EQ(result.using_selected_features.size(),
            result.using_all_features.size());
  EXPECT_EQ(result.using_selected_features[0].report.num_features,
            result.selected_columns.size());
}

TEST(Pipeline, FeatureSelectionCanBeDisabled) {
  PipelineOptions options = fast_options();
  options.run_feature_selection = false;
  const PipelineResult result = run_pipeline(shared_history(), options);
  EXPECT_FALSE(result.selection.has_value());
  EXPECT_TRUE(result.selected_columns.empty());
  EXPECT_TRUE(result.using_selected_features.empty());
}

TEST(Pipeline, SoftThresholdIsFractionOfMaxRttf) {
  PipelineOptions options = fast_options();
  options.soft_mae_fraction = 0.2;
  const PipelineResult result = run_pipeline(shared_history(), options);
  double max_rttf = 0.0;
  for (double y : result.dataset.y) max_rttf = std::max(max_rttf, y);
  EXPECT_NEAR(result.soft_threshold, 0.2 * max_rttf, 1e-9);
}

TEST(Pipeline, SplitByRunKeepsRunsTogether) {
  PipelineOptions options = fast_options();
  options.split_by_run = true;
  const PipelineResult result = run_pipeline(shared_history(), options);
  for (std::size_t train_run : result.train.run_index) {
    for (std::size_t val_run : result.validation.run_index) {
      EXPECT_NE(train_run, val_run);
    }
  }
}

TEST(Pipeline, DeterministicForFixedSeed) {
  const PipelineResult a = run_pipeline(shared_history(), fast_options());
  const PipelineResult b = run_pipeline(shared_history(), fast_options());
  ASSERT_EQ(a.using_all_features.size(), b.using_all_features.size());
  for (std::size_t i = 0; i < a.using_all_features.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.using_all_features[i].report.mae,
                     b.using_all_features[i].report.mae);
  }
}

TEST(Pipeline, ParallelTrainingMatchesSequentialMetrics) {
  PipelineOptions sequential = fast_options();
  PipelineOptions parallel = fast_options();
  parallel.parallel_training = true;
  parallel.parallel_threads = 4;
  const PipelineResult a = run_pipeline(shared_history(), sequential);
  const PipelineResult b = run_pipeline(shared_history(), parallel);
  ASSERT_EQ(a.using_all_features.size(), b.using_all_features.size());
  for (std::size_t i = 0; i < a.using_all_features.size(); ++i) {
    // Error metrics are deterministic; only the timings may differ.
    EXPECT_DOUBLE_EQ(a.using_all_features[i].report.mae,
                     b.using_all_features[i].report.mae);
    EXPECT_DOUBLE_EQ(a.using_all_features[i].report.soft_mae,
                     b.using_all_features[i].report.soft_mae);
  }
}

TEST(Pipeline, EmptyHistoryThrows) {
  data::DataHistory empty;
  EXPECT_THROW(run_pipeline(empty, fast_options()), std::invalid_argument);
}

TEST(Pipeline, WindowLargerThanRunsThrows) {
  PipelineOptions options = fast_options();
  options.aggregation.window_seconds = 1e9;
  EXPECT_THROW(run_pipeline(shared_history(), options),
               std::invalid_argument);
}

TEST(EvaluateModels, HonoursModelParams) {
  const PipelineResult base = run_pipeline(shared_history(), fast_options());
  util::Config params;
  params.set("reptree.max_depth", "1");
  const auto outcomes =
      evaluate_models(base.train, base.validation, {"reptree"}, {},
                      base.soft_threshold, params);
  ASSERT_EQ(outcomes.size(), 1u);
  // A depth-1 stump must be worse than the default deep tree.
  double default_mae = 0.0;
  for (const auto& outcome : base.using_all_features) {
    if (outcome.display_name == "reptree") default_mae = outcome.report.mae;
  }
  EXPECT_GT(outcomes[0].report.mae, default_mae);
}

}  // namespace
}  // namespace f2pm::core
