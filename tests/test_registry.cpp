#include "ml/registry.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ml/lasso.hpp"
#include "ml/reptree.hpp"
#include "ml/svr.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

TEST(Registry, PaperModelSetMatchesSectionIIID) {
  // §III-D: Linear Regression, M5P, REP-Tree, Lasso, SVM, LS-SVM.
  EXPECT_EQ(paper_model_names(),
            (std::vector<std::string>{"linear", "m5p", "reptree", "lasso",
                                      "svm", "svm2"}));
}

TEST(Registry, AllNamesConstruct) {
  for (const auto& name : all_model_names()) {
    const auto model = make_model(name);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->name(), name);
    EXPECT_FALSE(model->is_fitted());
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_model("gradient_boosting"), std::invalid_argument);
}

TEST(Registry, HyperparametersAreForwarded) {
  util::Config params;
  params.set("lasso.lambda", "123.5");
  params.set("reptree.max_depth", "3");
  params.set("svm.c", "2.5");
  params.set("svm.kernel", "linear");
  const auto lasso = make_model("lasso", params);
  EXPECT_DOUBLE_EQ(dynamic_cast<Lasso&>(*lasso).options().lambda, 123.5);
  const auto tree = make_model("reptree", params);
  EXPECT_EQ(dynamic_cast<RepTree&>(*tree).options().max_depth, 3u);
  const auto svr = make_model("svm", params);
  EXPECT_DOUBLE_EQ(dynamic_cast<KernelSvr&>(*svr).options().c, 2.5);
  EXPECT_EQ(dynamic_cast<KernelSvr&>(*svr).options().kernel.type,
            KernelType::kLinear);
}

TEST(Registry, BadKernelNameThrows) {
  util::Config params;
  params.set("svm.kernel", "sigmoid");
  EXPECT_THROW(make_model("svm", params), std::invalid_argument);
}

TEST(Registry, LoadModelRejectsUnknownTag) {
  std::stringstream buffer;
  {
    util::BinaryWriter writer(buffer);
    writer.write_string("mystery_model");
  }
  EXPECT_THROW(load_model(buffer), std::runtime_error);
}

/// Every registered model must round-trip through save_model/load_model
/// with identical predictions — the property the model store relies on.
class RegistryRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryRoundTrip, SaveLoadPreservesPredictions) {
  util::Rng rng(42);
  linalg::Matrix x(80, 3);
  std::vector<double> y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    x(i, 1) = rng.uniform(0.0, 10.0);
    x(i, 2) = rng.uniform(-1.0, 1.0);
    y[i] = 3.0 * x(i, 0) + x(i, 1) * x(i, 1) * 0.2 + rng.normal(0.0, 0.05);
  }
  const auto model = make_model(GetParam());
  model->fit(x, y);
  std::stringstream buffer;
  save_model(*model, buffer);
  const auto loaded = load_model(buffer);
  EXPECT_EQ(loaded->name(), GetParam());
  EXPECT_TRUE(loaded->is_fitted());
  EXPECT_EQ(loaded->num_inputs(), 3u);
  util::Rng probe_rng(7);
  for (int probe = 0; probe < 20; ++probe) {
    const std::vector<double> row{probe_rng.uniform(-2.0, 2.0),
                                  probe_rng.uniform(0.0, 10.0),
                                  probe_rng.uniform(-1.0, 1.0)};
    EXPECT_NEAR(loaded->predict_row(row), model->predict_row(row), 1e-9)
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, RegistryRoundTrip,
                         ::testing::Values("linear", "ridge", "lasso",
                                           "reptree", "m5p", "svm", "svm2",
                                           "knn", "bagging"));

}  // namespace
}  // namespace f2pm::ml
