#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace f2pm::parallel {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 7; });
  EXPECT_EQ(future.get(), 7);
}

TEST(ThreadPool, DeliversExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, CompletesAllTasksBeforeShutdown) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareDefault) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ParallelFor, TouchesEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&calls](std::size_t) { ++calls; });
  parallel_for(pool, 7, 3, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesBodyExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::logic_error("bad");
                            }),
               std::logic_error);
}

TEST(ParallelForChunked, ChunksCoverRangeWithoutOverlap) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for_chunked(pool, 10, 500,
                       [&](std::size_t lo, std::size_t hi) {
                         std::lock_guard<std::mutex> lock(mutex);
                         chunks.emplace_back(lo, hi);
                       });
  std::sort(chunks.begin(), chunks.end());
  EXPECT_EQ(chunks.front().first, 10u);
  EXPECT_EQ(chunks.back().second, 500u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
  }
}

TEST(ParallelReduceSum, MatchesSerialSum) {
  ThreadPool pool(4);
  const double total = parallel_reduce_sum(
      pool, 1, 1001, [](std::size_t i) { return static_cast<double>(i); });
  EXPECT_DOUBLE_EQ(total, 500500.0);
}

TEST(ParallelReduceSum, EmptyRangeIsZero) {
  ThreadPool pool(2);
  EXPECT_DOUBLE_EQ(
      parallel_reduce_sum(pool, 3, 3, [](std::size_t) { return 1.0; }), 0.0);
}

TEST(GlobalPool, IsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ParallelFor, NestedRegionsOnOnePoolComplete) {
  // Outer iterations block on inner parallel_for barriers while every
  // worker may itself be an outer iteration: without help-while-waiting
  // this deadlocks. Oversubscribe a tiny pool to force the situation.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(8 * 64);
  parallel_for(pool, 0, 8, [&](std::size_t outer) {
    parallel_for(pool, 0, 64, [&, outer](std::size_t inner) {
      hits[outer * 64 + inner].fetch_add(1);
    });
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, TryRunOneDrainsQueue) {
  // With no workers contending (tasks held back by a slow pool), the
  // caller can execute queued work itself.
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> gate_future = gate.get_future().share();
  // Occupy the single worker so submitted tasks stay queued. Wait until
  // the worker has actually started the blocker, else this thread could
  // pop it below and deadlock on its own gate.
  std::atomic<bool> blocker_started{false};
  auto blocker = pool.submit([gate_future, &blocker_started] {
    blocker_started.store(true);
    gate_future.wait();
  });
  while (!blocker_started.load()) {
    std::this_thread::yield();
  }
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.submit([&ran] { ran.fetch_add(1); });
  while (pool.try_run_one()) {
  }
  EXPECT_EQ(ran.load(), 2);
  EXPECT_FALSE(pool.try_run_one());
  gate.set_value();
  blocker.get();
}

}  // namespace
}  // namespace f2pm::parallel
