#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/kernel_cache.hpp"
#include "ml/kernels.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

linalg::Matrix make_data(std::size_t n, std::size_t d, std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix x(n, d);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) x(r, c) = rng.uniform(-2.0, 2.0);
  }
  return x;
}

KernelParams rbf(double gamma = 0.5) {
  return KernelParams{.type = KernelType::kRbf, .gamma = gamma};
}

TEST(KernelRowCache, RowMatchesKernelValue) {
  const linalg::Matrix x = make_data(16, 3, 11);
  for (const KernelParams& params :
       {rbf(), KernelParams{.type = KernelType::kLinear},
        KernelParams{.type = KernelType::kPolynomial,
                     .gamma = 0.5,
                     .coef0 = 1.0,
                     .degree = 3}}) {
    KernelRowCache cache(params, x, 1 << 20);
    for (std::size_t i : {std::size_t{0}, std::size_t{7}, std::size_t{15}}) {
      const auto row = cache.row(i);
      ASSERT_EQ(row.size(), x.rows());
      for (std::size_t j = 0; j < x.rows(); ++j) {
        EXPECT_NEAR(row[j], kernel_value(params, x.row(i), x.row(j)), 1e-12);
      }
    }
  }
}

TEST(KernelRowCache, DiagonalMatchesKernelValue) {
  const linalg::Matrix x = make_data(10, 4, 12);
  KernelRowCache cache(rbf(0.25), x, 1 << 20);
  const auto diag = cache.diagonal();
  ASSERT_EQ(diag.size(), x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_DOUBLE_EQ(diag[i], kernel_value(rbf(0.25), x.row(i), x.row(i)));
  }
}

TEST(KernelRowCache, HitMissEvictionUnderTinyBudget) {
  const std::size_t n = 8;
  const linalg::Matrix x = make_data(n, 2, 13);
  // One row is n doubles = 64 bytes; 192 bytes -> exactly 3 resident rows.
  KernelRowCache cache(rbf(), x, 3 * n * sizeof(double));
  ASSERT_EQ(cache.max_rows(), 3u);

  cache.row(0);  // miss (0)
  cache.row(0);  // hit
  cache.row(1);  // miss (0 1)
  cache.row(2);  // miss (0 1 2)
  cache.row(3);  // miss, evicts 0 (1 2 3)
  cache.row(0);  // miss again, evicts 1 (2 3 0)
  cache.row(3);  // hit
  const KernelCacheStats& stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 5u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.peak_bytes, 3 * n * sizeof(double));

  // Re-fetched row content survives eviction/recomputation unchanged.
  const auto row0 = cache.row(0);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(row0[j], kernel_value(rbf(), x.row(0), x.row(j)), 1e-12);
  }
}

TEST(KernelRowCache, PairOfRowsStaysResident) {
  // The MRU row must never be reclaimed: an SMO pair update holds two row
  // spans at once, so fetching row j must not invalidate just-fetched row i.
  const std::size_t n = 6;
  const linalg::Matrix x = make_data(n, 2, 14);
  KernelRowCache cache(rbf(), x, 1);  // clamped up to the 2-row floor
  ASSERT_EQ(cache.max_rows(), 2u);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const auto ri = cache.row(i);
      const auto rj = cache.row(j);
      EXPECT_NEAR(ri[j], kernel_value(rbf(), x.row(i), x.row(j)), 1e-12);
      EXPECT_NEAR(rj[i], ri[j], 1e-12);
    }
  }
}

TEST(KernelRowCache, PeakBoundedByBudget) {
  const std::size_t n = 32;
  const linalg::Matrix x = make_data(n, 3, 15);
  const std::size_t budget = 10 * n * sizeof(double);
  KernelRowCache cache(rbf(), x, budget);
  util::Rng rng(99);
  for (int access = 0; access < 500; ++access) {
    cache.row(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
  }
  EXPECT_LE(cache.stats().peak_bytes, budget);
  EXPECT_LE(cache.max_rows(), 10u);
}

TEST(KernelRowCache, LargeBudgetCapsAtFullMatrix) {
  const linalg::Matrix x = make_data(5, 2, 16);
  KernelRowCache cache(rbf(), x, 1ull << 30);
  EXPECT_EQ(cache.max_rows(), 5u);
  for (std::size_t i = 0; i < 5; ++i) cache.row(i);
  for (std::size_t i = 0; i < 5; ++i) cache.row(i);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().hits, 5u);
}

TEST(KernelRowCache, OutOfRangeRowThrows) {
  const linalg::Matrix x = make_data(4, 2, 17);
  KernelRowCache cache(rbf(), x, 1 << 20);
  EXPECT_THROW(cache.row(4), std::invalid_argument);
}

}  // namespace
}  // namespace f2pm::ml
