// Offline/online aggregation parity: identical streams through
// data::aggregate and OnlinePredictor::observe/flush must produce
// BIT-IDENTICAL per-window model inputs — means, Eq. (1) slopes,
// inter-generation metrics including the boundary gap across dropped
// windows. Exact equality (IEEE-754 payload compare, not a tolerance) is
// the property the serve tier relies on: a model trained on offline
// aggregates scores streaming windows as the same function.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "core/online.hpp"
#include "data/aggregation.hpp"
#include "data/data_history.hpp"
#include "linalg/window_stats.hpp"
#include "util/rng.hpp"

namespace f2pm::core {
namespace {

/// A fitted stub that records every row it is asked to score.
class RecordingModel final : public ml::Regressor {
 public:
  void fit(const linalg::Matrix&, std::span<const double>) override {}
  [[nodiscard]] double predict_row(std::span<const double> row) const override {
    rows_.emplace_back(row.begin(), row.end());
    return 0.0;
  }
  [[nodiscard]] std::string name() const override { return "recording"; }
  [[nodiscard]] bool is_fitted() const override { return true; }
  [[nodiscard]] std::size_t num_inputs() const override {
    return data::kInputCount;
  }
  void save(util::BinaryWriter&) const override {}

  [[nodiscard]] const std::vector<std::vector<double>>& rows() const {
    return rows_;
  }

 private:
  mutable std::vector<std::vector<double>> rows_;
};

/// Draws a stream with irregular spacing, occasional whole-window gaps
/// (so boundary gaps cross dropped windows) and sparse windows that fall
/// under min_samples_per_window on one side only if the two paths ever
/// disagreed about bucketing.
data::Run random_run(util::Rng& rng, double width) {
  data::Run run;
  double tgen = rng.uniform(0.0, 2.0 * width);
  const std::size_t samples = 50 + static_cast<std::size_t>(
                                       rng.uniform_int(0, 250));
  for (std::size_t i = 0; i < samples; ++i) {
    data::RawDatapoint sample;
    sample.tgen = tgen;
    for (std::size_t f = 0; f < data::kFeatureCount; ++f) {
      sample.values[f] = rng.uniform(-1000.0, 1000.0);
    }
    run.samples.push_back(sample);
    // Mostly dense sampling; sometimes jump past one or more windows.
    tgen += rng.bernoulli(0.1) ? rng.uniform(width, 4.0 * width)
                               : rng.uniform(0.01, width / 3.0);
  }
  // Far-future fail time: every closed window is complete offline, so the
  // two paths emit the same window set.
  run.fail_time = run.samples.back().tgen + 10.0 * width;
  run.failed = true;
  return run;
}

class OfflineOnlineParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OfflineOnlineParity, IdenticalStreamsProduceBitIdenticalInputs) {
  util::Rng rng(GetParam());
  const double width = rng.uniform(0.5, 30.0);
  data::AggregationOptions aggregation;
  aggregation.window_seconds = width;
  aggregation.min_samples_per_window =
      static_cast<std::size_t>(rng.uniform_int(1, 3));

  data::DataHistory history;
  history.add_run(random_run(rng, width));
  const data::Run& run = history.runs().front();

  // Offline path.
  const auto points = data::aggregate(history, aggregation);
  ASSERT_FALSE(points.empty());

  // Online path: same stream, sample by sample, then flush the last
  // (still-open) window exactly like serve drain does.
  auto recorder = std::make_shared<RecordingModel>();
  OnlinePredictor predictor(recorder, aggregation);
  std::vector<OnlinePrediction> emitted;
  for (const data::RawDatapoint& sample : run.samples) {
    if (auto prediction = predictor.observe(sample)) {
      emitted.push_back(*prediction);
    }
  }
  if (auto prediction = predictor.flush()) emitted.push_back(*prediction);

  ASSERT_EQ(recorder->rows().size(), points.size());
  ASSERT_EQ(emitted.size(), points.size());
  for (std::size_t w = 0; w < points.size(); ++w) {
    SCOPED_TRACE("window " + std::to_string(w));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(emitted[w].window_end),
              std::bit_cast<std::uint64_t>(points[w].window_end));
    EXPECT_EQ(emitted[w].window_samples, points[w].count);
    const auto offline_row = data::to_input_vector(points[w]);
    const std::vector<double>& online_row = recorder->rows()[w];
    ASSERT_EQ(online_row.size(), offline_row.size());
    for (std::size_t c = 0; c < offline_row.size(); ++c) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(online_row[c]),
                std::bit_cast<std::uint64_t>(offline_row[c]))
          << "column " << c << ": " << online_row[c] << " vs "
          << offline_row[c];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OfflineOnlineParity,
                         ::testing::Range<std::uint64_t>(1, 25));

// ---------------------------------------------------------------------------
// Kernel-vs-reference parity: the blocked window-statistics kernel
// (linalg::window_mean_slope) must be bit-identical to the pinned-order
// scalar form, whatever F2PM_SIMD was at build time. The reference below
// IS the summation-order contract — per column, rows accumulate in index
// order into one scalar — so running this suite in both the SIMD=ON and
// SIMD=OFF CI legs proves the two builds agree bit for bit transitively.

/// The contract, written as naively as possible.
void reference_mean_slope(const data::RawDatapoint* samples,
                          std::size_t count, double* means, double* slopes) {
  for (std::size_t f = 0; f < data::kFeatureCount; ++f) {
    double sum = 0.0;
    for (std::size_t i = 0; i < count; ++i) sum += samples[i].values[f];
    means[f] = sum / static_cast<double>(count);
    slopes[f] = (samples[count - 1].values[f] - samples[0].values[f]) /
                static_cast<double>(count);
  }
}

void expect_kernel_matches_reference(
    const std::vector<data::RawDatapoint>& samples) {
  const std::size_t count = samples.size();
  std::array<double, data::kFeatureCount> ref_means{}, ref_slopes{};
  reference_mean_slope(samples.data(), count, ref_means.data(),
                       ref_slopes.data());
  std::array<double, data::kFeatureCount> means{}, slopes{};
  linalg::window_mean_slope(samples[0].values.data(), count,
                            sizeof(data::RawDatapoint) / sizeof(double),
                            data::kFeatureCount,
                            static_cast<double>(count), means.data(),
                            slopes.data());
  for (std::size_t f = 0; f < data::kFeatureCount; ++f) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(means[f]),
              std::bit_cast<std::uint64_t>(ref_means[f]))
        << "mean, feature " << f << ": " << means[f] << " vs "
        << ref_means[f];
    EXPECT_EQ(std::bit_cast<std::uint64_t>(slopes[f]),
              std::bit_cast<std::uint64_t>(ref_slopes[f]))
        << "slope, feature " << f << ": " << slopes[f] << " vs "
        << ref_slopes[f];
  }
}

class WindowKernelParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowKernelParity, MatchesPinnedScalarReferenceBitExactly) {
  util::Rng rng(GetParam());
  // Window sizes sweep the remainder-block dispatch (count < 8), the
  // blocked path and large windows; values mix magnitudes so the sums
  // exercise real rounding, plus IEEE specials (NaN, ±inf, -0.0,
  // denormals) that any reassociation or re-ordering would perturb.
  const std::size_t count =
      1 + static_cast<std::size_t>(rng.uniform_int(0, 300));
  std::vector<data::RawDatapoint> samples(count);
  for (auto& sample : samples) {
    sample.tgen = 0.0;
    for (std::size_t f = 0; f < data::kFeatureCount; ++f) {
      double value = rng.uniform(-1.0, 1.0) *
                     std::pow(10.0, rng.uniform(-12.0, 12.0));
      if (rng.bernoulli(0.02)) value = std::nan("");
      if (rng.bernoulli(0.02)) {
        value = rng.bernoulli(0.5) ? std::numeric_limits<double>::infinity()
                                   : -std::numeric_limits<double>::infinity();
      }
      if (rng.bernoulli(0.05)) value = -0.0;
      if (rng.bernoulli(0.02)) {
        value = std::numeric_limits<double>::denorm_min() *
                rng.uniform(1.0, 100.0);
      }
      sample.values[f] = value;
    }
  }
  expect_kernel_matches_reference(samples);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowKernelParity,
                         ::testing::Range<std::uint64_t>(100, 140));

TEST(WindowKernelParityDegenerate, SingleSampleWindow) {
  // slope = (last - first) / 1 = ±0.0 — the sign must match the reference.
  std::vector<data::RawDatapoint> samples(1);
  for (std::size_t f = 0; f < data::kFeatureCount; ++f) {
    samples[0].values[f] = (f % 2 == 0) ? -0.0 : 7.25;
  }
  expect_kernel_matches_reference(samples);
}

TEST(WindowKernelParityDegenerate, ConstantAndNegativeZeroColumns) {
  std::vector<data::RawDatapoint> samples(37);
  for (auto& sample : samples) {
    for (std::size_t f = 0; f < data::kFeatureCount; ++f) {
      sample.values[f] = (f % 3 == 0) ? -0.0 : 42.0;
    }
  }
  expect_kernel_matches_reference(samples);
}

TEST(WindowKernelParityDegenerate, NanWindowPropagatesIdentically) {
  std::vector<data::RawDatapoint> samples(19);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    for (std::size_t f = 0; f < data::kFeatureCount; ++f) {
      samples[i].values[f] = (i == 9) ? std::nan("") : double(i) * 0.5;
    }
  }
  expect_kernel_matches_reference(samples);
}

TEST(WindowKernelParityDegenerate, ReportsKernelMode) {
  // Not an assertion — just makes the CI log say which path this build
  // actually exercised (the SIMD=OFF leg must print false).
  std::cout << "simd_kernel_enabled: " << std::boolalpha
            << linalg::simd_kernel_enabled() << "\n";
}

}  // namespace
}  // namespace f2pm::core
