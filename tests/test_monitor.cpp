#include "sim/monitor.hpp"

#include <gtest/gtest.h>

namespace f2pm::sim {
namespace {

struct Fixture {
  Simulator sim;
  ResourceModel resources;
  util::Rng server_rng{1};
  util::Rng monitor_rng{2};
  ServerConfig server_config;
  Server server{sim, resources, server_config, server_rng};
};

TEST(Monitor, SamplesAtRoughlyBaseIntervalWhenHealthy) {
  Fixture f;
  MonitorConfig config;
  FeatureMonitor monitor(f.sim, f.resources, f.server, config,
                         f.monitor_rng);
  monitor.start();
  f.sim.run_until(300.0);
  const auto& samples = monitor.samples();
  ASSERT_GT(samples.size(), 150u);
  double mean_gap = 0.0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    mean_gap += samples[i].tgen - samples[i - 1].tgen;
  }
  mean_gap /= static_cast<double>(samples.size() - 1);
  EXPECT_NEAR(mean_gap, config.base_interval, 0.15);
}

TEST(Monitor, IntervalStretchesUnderThrashing) {
  Fixture f;
  f.resources.leak_memory(f.resources.config().total_memory_kb +
                          0.9 * f.resources.config().total_swap_kb);
  MonitorConfig config;
  FeatureMonitor monitor(f.sim, f.resources, f.server, config,
                         f.monitor_rng);
  monitor.start();
  f.sim.run_until(300.0);
  const auto& samples = monitor.samples();
  ASSERT_GT(samples.size(), 10u);
  const double mean_gap =
      samples.back().tgen / static_cast<double>(samples.size());
  EXPECT_GT(mean_gap, 2.0 * config.base_interval);
  EXPECT_LE(mean_gap,
            config.base_interval * config.max_skew * (1.0 + config.jitter));
}

TEST(Monitor, SamplesCarryMemoryAndThreadFeatures) {
  Fixture f;
  f.resources.leak_memory(123456.0);
  f.resources.leak_thread();
  MonitorConfig config;
  FeatureMonitor monitor(f.sim, f.resources, f.server, config,
                         f.monitor_rng);
  monitor.start();
  f.sim.run_until(10.0);
  ASSERT_FALSE(monitor.samples().empty());
  const auto& sample = monitor.samples().front();
  const MemorySnapshot expected = f.resources.memory();
  EXPECT_DOUBLE_EQ(sample[data::FeatureId::kMemUsed], expected.used_kb);
  EXPECT_DOUBLE_EQ(sample[data::FeatureId::kSwapFree],
                   expected.swap_free_kb);
  EXPECT_DOUBLE_EQ(sample[data::FeatureId::kNumThreads],
                   static_cast<double>(f.resources.num_threads()));
  EXPECT_GT(sample.tgen, 0.0);
}

TEST(Monitor, ResponseTimeSeriesAlignsWithSamples) {
  Fixture f;
  MonitorConfig config;
  FeatureMonitor monitor(f.sim, f.resources, f.server, config,
                         f.monitor_rng);
  monitor.start();
  // Complete some requests between samples.
  for (int i = 0; i < 50; ++i) {
    f.sim.schedule_at(static_cast<double>(i) * 0.5, [&f] {
      f.server.submit(Interaction::kHome, {});
    });
  }
  f.sim.run_until(60.0);
  EXPECT_EQ(monitor.samples().size(), monitor.response_time_series().size());
  bool any_positive = false;
  for (double rt : monitor.response_time_series()) any_positive |= rt > 0.0;
  EXPECT_TRUE(any_positive);
}

TEST(Monitor, EmptyWindowInheritsPreviousResponseTime) {
  Fixture f;
  MonitorConfig config;
  FeatureMonitor monitor(f.sim, f.resources, f.server, config,
                         f.monitor_rng);
  monitor.start();
  f.sim.schedule_at(0.1, [&f] { f.server.submit(Interaction::kHome, {}); });
  f.sim.run_until(30.0);  // plenty of empty windows afterwards
  const auto& series = monitor.response_time_series();
  ASSERT_GT(series.size(), 5u);
  const double last = series.back();
  EXPECT_GT(last, 0.0);  // inherited, not reset to zero
}

TEST(Monitor, StopEndsSampling) {
  Fixture f;
  MonitorConfig config;
  FeatureMonitor monitor(f.sim, f.resources, f.server, config,
                         f.monitor_rng);
  monitor.start();
  f.sim.run_until(30.0);
  monitor.stop();
  const std::size_t at_stop = monitor.samples().size();
  f.sim.run_until(300.0);
  EXPECT_EQ(monitor.samples().size(), at_stop);
}

}  // namespace
}  // namespace f2pm::sim
