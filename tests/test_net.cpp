#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/fmc.hpp"
#include "net/fms.hpp"
#include "net/poller.hpp"
#include "net/protocol.hpp"

namespace f2pm::net {
namespace {

data::RawDatapoint sample_at(double tgen) {
  data::RawDatapoint sample;
  sample.tgen = tgen;
  sample[data::FeatureId::kMemUsed] = 1000.0 * tgen;
  sample[data::FeatureId::kCpuUser] = 12.5;
  return sample;
}

TEST(Protocol, DatapointFrameRoundTrip) {
  TcpListener listener(0);
  std::thread client([port = listener.port()] {
    TcpStream stream = TcpStream::connect("127.0.0.1", port);
    send_datapoint(stream, sample_at(3.5));
    send_fail_event(stream, 99.0);
    send_bye(stream);
  });
  auto server_side = listener.accept();
  ASSERT_TRUE(server_side.has_value());

  auto frame = receive_frame(*server_side);
  ASSERT_TRUE(frame.has_value());
  const auto* datapoint = std::get_if<data::RawDatapoint>(&*frame);
  ASSERT_NE(datapoint, nullptr);
  EXPECT_EQ(*datapoint, sample_at(3.5));

  frame = receive_frame(*server_side);
  ASSERT_TRUE(frame.has_value());
  const auto* fail = std::get_if<FailEvent>(&*frame);
  ASSERT_NE(fail, nullptr);
  EXPECT_DOUBLE_EQ(fail->fail_time, 99.0);

  frame = receive_frame(*server_side);
  ASSERT_TRUE(frame.has_value());
  EXPECT_NE(std::get_if<Bye>(&*frame), nullptr);

  // After bye the peer closes: clean EOF.
  client.join();
  EXPECT_FALSE(receive_frame(*server_side).has_value());
}

TEST(Protocol, BadMagicThrows) {
  TcpListener listener(0);
  std::thread client([port = listener.port()] {
    TcpStream stream = TcpStream::connect("127.0.0.1", port);
    const char garbage[8] = {'g', 'a', 'r', 'b', 'a', 'g', 'e', '!'};
    stream.send_all(garbage, sizeof(garbage));
  });
  auto server_side = listener.accept();
  ASSERT_TRUE(server_side.has_value());
  EXPECT_THROW(receive_frame(*server_side), std::runtime_error);
  client.join();
}

TEST(Socket, ConnectToClosedPortFails) {
  // Grab a port, then close it: connecting afterwards must fail.
  std::uint16_t dead_port = 0;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.shutdown();
  }
  EXPECT_THROW(TcpStream::connect("127.0.0.1", dead_port),
               std::runtime_error);
}

TEST(Socket, BadAddressRejected) {
  EXPECT_THROW(TcpStream::connect("not-an-address", 80),
               std::runtime_error);
}

TEST(FmcFms, EndToEndHistoryTransfer) {
  FeatureMonitorServer fms;
  FeatureMonitorClient fmc("127.0.0.1", fms.port());
  // Run 1: two datapoints then a crash.
  fmc.send(sample_at(1.0));
  fmc.send(sample_at(2.0));
  fmc.report_failure(5.0);
  // Run 2: one datapoint, no crash (campaign stopped).
  fmc.send(sample_at(1.5));
  fmc.finish();
  EXPECT_EQ(fmc.datapoints_sent(), 3u);

  const data::DataHistory history = fms.wait_and_take_history();
  ASSERT_EQ(history.num_runs(), 2u);
  EXPECT_TRUE(history.runs()[0].failed);
  EXPECT_DOUBLE_EQ(history.runs()[0].fail_time, 5.0);
  ASSERT_EQ(history.runs()[0].samples.size(), 2u);
  EXPECT_EQ(history.runs()[0].samples[1], sample_at(2.0));
  EXPECT_FALSE(history.runs()[1].failed);
  EXPECT_EQ(history.runs()[1].samples.size(), 1u);
}

TEST(FmcFms, EmptySessionYieldsEmptyHistory) {
  FeatureMonitorServer fms;
  FeatureMonitorClient fmc("127.0.0.1", fms.port());
  fmc.finish();
  EXPECT_EQ(fms.wait_and_take_history().num_runs(), 0u);
}

TEST(FmcFms, HelloIsRecordedAndOptional) {
  FeatureMonitorServer fms;
  FeatureMonitorClient fmc("127.0.0.1", fms.port());
  EXPECT_EQ(fms.client_id(), "");
  fmc.hello("edge-node-3");
  fmc.send(sample_at(1.0));
  fmc.finish();
  EXPECT_EQ(fms.wait_and_take_history().num_runs(), 1u);
  EXPECT_EQ(fms.client_id(), "edge-node-3");
}

TEST(FmcFms, StopIsSafeAtAnyPointAndRepeatable) {
  // stop() before any client ever connects: must not hang or crash, and
  // must be callable any number of times.
  for (int i = 0; i < 20; ++i) {
    FeatureMonitorServer fms;
    fms.stop();
    fms.stop();
    EXPECT_EQ(fms.wait_and_take_history().num_runs(), 0u);
  }
  // stop() racing a connected client mid-stream.
  for (int i = 0; i < 20; ++i) {
    FeatureMonitorServer fms;
    FeatureMonitorClient fmc("127.0.0.1", fms.port());
    fmc.send(sample_at(1.0));
    fms.stop();
  }
}

TEST(FmcFms, BackToBackServersReusePorts) {
  // SO_REUSEADDR + proper teardown: rapid start/stop cycles never hit
  // "address already in use".
  for (int i = 0; i < 10; ++i) {
    FeatureMonitorServer fms;
    FeatureMonitorClient fmc("127.0.0.1", fms.port());
    fmc.send(sample_at(static_cast<double>(i)));
    fmc.finish();
    EXPECT_EQ(fms.wait_and_take_history().num_runs(), 1u);
  }
}

// A signal delivered to a thread blocked in Poller::wait must not surface
// as a spurious empty return (callers treat that as "timeout elapsed") —
// the wait retries the syscall and still reports the real event. The
// handler is installed without SA_RESTART so the syscall genuinely fails
// with EINTR instead of being restarted by the kernel.
void expect_wait_survives_eintr(Poller::Backend backend) {
  struct sigaction action {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: force EINTR out of the wait
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  Poller poller(backend);
  poller.add(fds[0], /*want_read=*/true, /*want_write=*/false);

  const pthread_t waiter_handle = ::pthread_self();
  std::atomic<bool> waiting{false};
  std::thread interrupter([&] {
    while (!waiting.load()) std::this_thread::yield();
    // Storm of signals while the waiter is blocked, then the real event.
    for (int i = 0; i < 20; ++i) {
      ::pthread_kill(waiter_handle, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const char byte = 'x';
    ASSERT_EQ(::write(fds[1], &byte, 1), 1);
  });

  waiting.store(true);
  const auto events = poller.wait(/*timeout_ms=*/-1);  // forever: only the
                                                       // pipe write may end it
  interrupter.join();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, fds[0]);
  EXPECT_TRUE(events[0].readable);

  poller.remove(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
  ASSERT_EQ(::sigaction(SIGUSR1, &previous, nullptr), 0);
}

TEST(PollerEintr, EpollWaitRetriesThroughSignals) {
  expect_wait_survives_eintr(Poller::Backend::kEpoll);
}

TEST(PollerEintr, PollWaitRetriesThroughSignals) {
  expect_wait_survives_eintr(Poller::Backend::kPoll);
}

TEST(PollerEintr, FiniteTimeoutStillExpiresUnderSignalStorm) {
  // The EINTR retry must not reset the clock: a 100 ms wait peppered with
  // signals still returns (empty) in bounded time instead of spinning on
  // a refreshed timeout forever.
  struct sigaction action {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  Poller poller;
  poller.add(fds[0], /*want_read=*/true, /*want_write=*/false);

  const pthread_t waiter_handle = ::pthread_self();
  std::atomic<bool> done{false};
  std::thread interrupter([&] {
    while (!done.load()) {
      ::pthread_kill(waiter_handle, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  const auto start = std::chrono::steady_clock::now();
  const auto events = poller.wait(/*timeout_ms=*/100);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  done.store(true);
  interrupter.join();

  EXPECT_TRUE(events.empty());
  EXPECT_GE(elapsed, std::chrono::milliseconds(90));
  EXPECT_LT(elapsed, std::chrono::seconds(10));

  poller.remove(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
  ASSERT_EQ(::sigaction(SIGUSR1, &previous, nullptr), 0);
}

// Wakeup: a cross-thread notify() must make a blocked Poller::wait()
// return well before its timeout, and drain() must clear the readiness so
// the next wait blocks again.
TEST(Wakeup, NotifyInterruptsBlockedPollerWait) {
  Poller poller;
  Wakeup wake;
  poller.add(wake.fd(), /*want_read=*/true, /*want_write=*/false);

  const auto start = std::chrono::steady_clock::now();
  std::thread notifier([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    wake.notify();
  });
  const auto events = poller.wait(/*timeout_ms=*/5000);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  notifier.join();

  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, wake.fd());
  EXPECT_TRUE(events[0].readable);
  // Poll timeout was 5 s; the notify must have cut the wait short.
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 2.0);

  // Coalescing + drain: any number of pending notifies clears in one
  // drain, after which the fd is quiet.
  wake.notify();
  wake.notify();
  wake.drain();
  EXPECT_TRUE(poller.wait(/*timeout_ms=*/10).empty());
}

// notify() is safe to call many times without a drain in between (the
// eventfd counter / pipe buffer must not fill up and block or error).
TEST(Wakeup, RepeatedNotifyWithoutDrainIsNonBlocking) {
  Wakeup wake;
  for (int i = 0; i < 100000; ++i) wake.notify();
  wake.drain();
  Poller poller;
  poller.add(wake.fd(), /*want_read=*/true, /*want_write=*/false);
  EXPECT_TRUE(poller.wait(/*timeout_ms=*/10).empty());
}

TEST(FmcFms, AbruptDisconnectKeepsReceivedData) {
  FeatureMonitorServer fms;
  {
    FeatureMonitorClient fmc("127.0.0.1", fms.port());
    fmc.send(sample_at(1.0));
    fmc.report_failure(2.0);
    // No bye: the client object goes away, closing the socket.
  }
  const data::DataHistory history = fms.wait_and_take_history();
  ASSERT_EQ(history.num_runs(), 1u);
  EXPECT_TRUE(history.runs()[0].failed);
}

}  // namespace
}  // namespace f2pm::net
