#include <gtest/gtest.h>

#include <thread>

#include "net/fmc.hpp"
#include "net/fms.hpp"
#include "net/protocol.hpp"

namespace f2pm::net {
namespace {

data::RawDatapoint sample_at(double tgen) {
  data::RawDatapoint sample;
  sample.tgen = tgen;
  sample[data::FeatureId::kMemUsed] = 1000.0 * tgen;
  sample[data::FeatureId::kCpuUser] = 12.5;
  return sample;
}

TEST(Protocol, DatapointFrameRoundTrip) {
  TcpListener listener(0);
  std::thread client([port = listener.port()] {
    TcpStream stream = TcpStream::connect("127.0.0.1", port);
    send_datapoint(stream, sample_at(3.5));
    send_fail_event(stream, 99.0);
    send_bye(stream);
  });
  auto server_side = listener.accept();
  ASSERT_TRUE(server_side.has_value());

  auto frame = receive_frame(*server_side);
  ASSERT_TRUE(frame.has_value());
  const auto* datapoint = std::get_if<data::RawDatapoint>(&*frame);
  ASSERT_NE(datapoint, nullptr);
  EXPECT_EQ(*datapoint, sample_at(3.5));

  frame = receive_frame(*server_side);
  ASSERT_TRUE(frame.has_value());
  const auto* fail = std::get_if<FailEvent>(&*frame);
  ASSERT_NE(fail, nullptr);
  EXPECT_DOUBLE_EQ(fail->fail_time, 99.0);

  frame = receive_frame(*server_side);
  ASSERT_TRUE(frame.has_value());
  EXPECT_NE(std::get_if<Bye>(&*frame), nullptr);

  // After bye the peer closes: clean EOF.
  client.join();
  EXPECT_FALSE(receive_frame(*server_side).has_value());
}

TEST(Protocol, BadMagicThrows) {
  TcpListener listener(0);
  std::thread client([port = listener.port()] {
    TcpStream stream = TcpStream::connect("127.0.0.1", port);
    const char garbage[8] = {'g', 'a', 'r', 'b', 'a', 'g', 'e', '!'};
    stream.send_all(garbage, sizeof(garbage));
  });
  auto server_side = listener.accept();
  ASSERT_TRUE(server_side.has_value());
  EXPECT_THROW(receive_frame(*server_side), std::runtime_error);
  client.join();
}

TEST(Socket, ConnectToClosedPortFails) {
  // Grab a port, then close it: connecting afterwards must fail.
  std::uint16_t dead_port = 0;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.shutdown();
  }
  EXPECT_THROW(TcpStream::connect("127.0.0.1", dead_port),
               std::runtime_error);
}

TEST(Socket, BadAddressRejected) {
  EXPECT_THROW(TcpStream::connect("not-an-address", 80),
               std::runtime_error);
}

TEST(FmcFms, EndToEndHistoryTransfer) {
  FeatureMonitorServer fms;
  FeatureMonitorClient fmc("127.0.0.1", fms.port());
  // Run 1: two datapoints then a crash.
  fmc.send(sample_at(1.0));
  fmc.send(sample_at(2.0));
  fmc.report_failure(5.0);
  // Run 2: one datapoint, no crash (campaign stopped).
  fmc.send(sample_at(1.5));
  fmc.finish();
  EXPECT_EQ(fmc.datapoints_sent(), 3u);

  const data::DataHistory history = fms.wait_and_take_history();
  ASSERT_EQ(history.num_runs(), 2u);
  EXPECT_TRUE(history.runs()[0].failed);
  EXPECT_DOUBLE_EQ(history.runs()[0].fail_time, 5.0);
  ASSERT_EQ(history.runs()[0].samples.size(), 2u);
  EXPECT_EQ(history.runs()[0].samples[1], sample_at(2.0));
  EXPECT_FALSE(history.runs()[1].failed);
  EXPECT_EQ(history.runs()[1].samples.size(), 1u);
}

TEST(FmcFms, EmptySessionYieldsEmptyHistory) {
  FeatureMonitorServer fms;
  FeatureMonitorClient fmc("127.0.0.1", fms.port());
  fmc.finish();
  EXPECT_EQ(fms.wait_and_take_history().num_runs(), 0u);
}

TEST(FmcFms, HelloIsRecordedAndOptional) {
  FeatureMonitorServer fms;
  FeatureMonitorClient fmc("127.0.0.1", fms.port());
  EXPECT_EQ(fms.client_id(), "");
  fmc.hello("edge-node-3");
  fmc.send(sample_at(1.0));
  fmc.finish();
  EXPECT_EQ(fms.wait_and_take_history().num_runs(), 1u);
  EXPECT_EQ(fms.client_id(), "edge-node-3");
}

TEST(FmcFms, StopIsSafeAtAnyPointAndRepeatable) {
  // stop() before any client ever connects: must not hang or crash, and
  // must be callable any number of times.
  for (int i = 0; i < 20; ++i) {
    FeatureMonitorServer fms;
    fms.stop();
    fms.stop();
    EXPECT_EQ(fms.wait_and_take_history().num_runs(), 0u);
  }
  // stop() racing a connected client mid-stream.
  for (int i = 0; i < 20; ++i) {
    FeatureMonitorServer fms;
    FeatureMonitorClient fmc("127.0.0.1", fms.port());
    fmc.send(sample_at(1.0));
    fms.stop();
  }
}

TEST(FmcFms, BackToBackServersReusePorts) {
  // SO_REUSEADDR + proper teardown: rapid start/stop cycles never hit
  // "address already in use".
  for (int i = 0; i < 10; ++i) {
    FeatureMonitorServer fms;
    FeatureMonitorClient fmc("127.0.0.1", fms.port());
    fmc.send(sample_at(static_cast<double>(i)));
    fmc.finish();
    EXPECT_EQ(fms.wait_and_take_history().num_runs(), 1u);
  }
}

TEST(FmcFms, AbruptDisconnectKeepsReceivedData) {
  FeatureMonitorServer fms;
  {
    FeatureMonitorClient fmc("127.0.0.1", fms.port());
    fmc.send(sample_at(1.0));
    fmc.report_failure(2.0);
    // No bye: the client object goes away, closing the socket.
  }
  const data::DataHistory history = fms.wait_and_take_history();
  ASSERT_EQ(history.num_runs(), 1u);
  EXPECT_TRUE(history.runs()[0].failed);
}

}  // namespace
}  // namespace f2pm::net
