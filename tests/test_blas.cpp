#include "linalg/blas.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace f2pm::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-2.0, 2.0);
  }
  return m;
}

TEST(Blas, DotAndNorms) {
  const std::vector<double> x{1.0, -2.0, 3.0};
  const std::vector<double> y{4.0, 5.0, -6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 - 18.0);
  EXPECT_DOUBLE_EQ(norm1(x), 6.0);
  EXPECT_DOUBLE_EQ(norm2({std::vector<double>{3.0, 4.0}}), 5.0);
}

TEST(Blas, AxpyAndScale) {
  const std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (std::vector<double>{12.0, 24.0}));
  scale(0.5, y);
  EXPECT_EQ(y, (std::vector<double>{6.0, 12.0}));
}

TEST(Blas, GemvMatchesManual) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<double> x{1.0, -1.0};
  EXPECT_EQ(gemv(a, x), (std::vector<double>{-1.0, -1.0, -1.0}));
}

TEST(Blas, GemvShapeMismatchThrows) {
  const Matrix a(2, 3);
  EXPECT_THROW(gemv(a, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Blas, GemvTransposedMatchesExplicitTranspose) {
  util::Rng rng(5);
  const Matrix a = random_matrix(17, 9, rng);
  std::vector<double> x(17);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  const auto direct = gemv_transposed(a, x);
  const auto via_transpose = gemv(a.transposed(), x);
  ASSERT_EQ(direct.size(), via_transpose.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], via_transpose[i], 1e-12);
  }
}

TEST(Blas, GemvTransposedLargeEnoughToTriggerParallelPath) {
  // 300 x 50 clears the size threshold, so this runs the chunked path with
  // per-chunk accumulators merged at the barrier.
  util::Rng rng(15);
  const Matrix a = random_matrix(300, 50, rng);
  std::vector<double> x(300);
  for (double& v : x) v = rng.uniform(-1.0, 1.0);
  const auto direct = gemv_transposed(a, x);
  const auto via_transpose = gemv(a.transposed(), x);
  ASSERT_EQ(direct.size(), via_transpose.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], via_transpose[i], 1e-9);
  }
}

TEST(Blas, GemmMatchesNaive) {
  util::Rng rng(6);
  const Matrix a = random_matrix(13, 7, rng);
  const Matrix b = random_matrix(7, 11, rng);
  const Matrix c = gemm(a, b);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double expected = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        expected += a(i, k) * b(k, j);
      }
      EXPECT_NEAR(c(i, j), expected, 1e-12);
    }
  }
}

TEST(Blas, GemmLargeEnoughToTriggerParallelPath) {
  util::Rng rng(7);
  const Matrix a = random_matrix(80, 40, rng);
  const Matrix b = random_matrix(40, 60, rng);
  const Matrix c = gemm(a, b);
  // Spot-check against naive on a few entries.
  for (std::size_t i : {0u, 40u, 79u}) {
    double expected = 0.0;
    for (std::size_t k = 0; k < a.cols(); ++k) expected += a(i, k) * b(k, 5);
    EXPECT_NEAR(c(i, 5), expected, 1e-10);
  }
}

TEST(Blas, GemmShapeMismatchThrows) {
  EXPECT_THROW(gemm(Matrix(2, 3), Matrix(2, 3)), std::invalid_argument);
}

TEST(Blas, GramIsSymmetricAndMatchesAtA) {
  util::Rng rng(8);
  const Matrix a = random_matrix(20, 6, rng);
  const Matrix g = gram(a);
  const Matrix expected = gemm(a.transposed(), a);
  EXPECT_LT(max_abs_diff(g, expected), 1e-10);
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < g.cols(); ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
    }
  }
}

TEST(Blas, GramLargeEnoughToTriggerParallelPath) {
  // 400 rows x 30 cols exceeds the flop threshold, exercising the
  // per-chunk partial matrices and their ordered merge.
  util::Rng rng(16);
  const Matrix a = random_matrix(400, 30, rng);
  const Matrix g = gram(a);
  const Matrix expected = gemm(a.transposed(), a);
  EXPECT_LT(max_abs_diff(g, expected), 1e-9);
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < g.cols(); ++j) {
      EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
    }
  }
}

}  // namespace
}  // namespace f2pm::linalg
