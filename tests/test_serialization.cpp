#include "util/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace f2pm::util {
namespace {

TEST(Serialization, RoundTripsAllTypes) {
  std::stringstream buffer;
  {
    BinaryWriter writer(buffer);
    writer.write_u64(42);
    writer.write_i64(-7);
    writer.write_double(3.25);
    writer.write_bool(true);
    writer.write_bool(false);
    writer.write_string("hello");
    writer.write_string("");
    writer.write_doubles({1.0, -2.5});
    writer.write_u64s({9, 8, 7});
  }
  BinaryReader reader(buffer);
  EXPECT_EQ(reader.read_u64(), 42u);
  EXPECT_EQ(reader.read_i64(), -7);
  EXPECT_DOUBLE_EQ(reader.read_double(), 3.25);
  EXPECT_TRUE(reader.read_bool());
  EXPECT_FALSE(reader.read_bool());
  EXPECT_EQ(reader.read_string(), "hello");
  EXPECT_EQ(reader.read_string(), "");
  EXPECT_EQ(reader.read_doubles(), (std::vector<double>{1.0, -2.5}));
  EXPECT_EQ(reader.read_u64s(), (std::vector<std::uint64_t>{9, 8, 7}));
}

TEST(Serialization, BadMagicThrows) {
  std::stringstream buffer;
  buffer << "this is definitely not an archive";
  EXPECT_THROW(BinaryReader reader(buffer), std::runtime_error);
}

TEST(Serialization, TruncatedStreamThrows) {
  std::stringstream buffer;
  {
    BinaryWriter writer(buffer);
    writer.write_doubles({1.0, 2.0, 3.0});
  }
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 4);  // chop mid-payload
  std::stringstream truncated(bytes);
  BinaryReader reader(truncated);
  EXPECT_THROW(reader.read_doubles(), std::runtime_error);
}

TEST(Serialization, OversizedFieldRejected) {
  std::stringstream buffer;
  {
    BinaryWriter writer(buffer);
    writer.write_u64(1ULL << 40);  // claims a 2^40-element vector
  }
  BinaryReader reader(buffer);
  EXPECT_THROW(reader.read_doubles(), std::runtime_error);
}

TEST(Serialization, EmptyStreamThrowsOnHeader) {
  std::stringstream buffer;
  EXPECT_THROW(BinaryReader reader(buffer), std::runtime_error);
}

}  // namespace
}  // namespace f2pm::util
