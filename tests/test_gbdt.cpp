// Property battery for the gradient-boosted trees on the histogram
// engine:
//  - a 1-round GBDT with shrinkage 1.0, no subsampling, fixed-width bins
//    and a zero base score predicts bit-identically to a single unpruned
//    histogram-mode REPTree with the same caps, across randomized
//    adversarial datasets;
//  - fits are bitwise identical at any worker count {1, 2, 8}, with and
//    without row/feature subsampling;
//  - the training loss decreases monotonically round over round;
//  - early stopping halts on a held-out plateau and truncates to the
//    best round;
//  - a grid search sweeping rounds/shrinkage bins each CV fold once, not
//    once per grid point (the shared binning cache);
//  - batched predict matches predict_row bitwise.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <vector>

#include "ml/gbdt.hpp"
#include "ml/grid_search.hpp"
#include "ml/registry.hpp"
#include "ml/reptree.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

/// Random dataset rich in the cases that expose tie-order or
/// threshold-placement divergence: discrete-grid features (massive tie
/// groups), one constant feature, and a block of duplicated rows.
void make_adversarial_data(std::size_t n, std::size_t num_features,
                           util::Rng& rng, linalg::Matrix& x,
                           std::vector<double>& y) {
  x = linalg::Matrix(n, num_features);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < num_features; ++f) {
      if (f == num_features - 1) {
        x(i, f) = 42.0;  // constant feature: never splittable
      } else if (f % 2 == 0) {
        x(i, f) = static_cast<double>(rng.uniform_int(0, 7));
      } else {
        x(i, f) = rng.uniform(-1.0, 1.0);
      }
    }
    y[i] = x(i, 0) > 3.0 ? rng.uniform(5.0, 6.0) : rng.uniform(-1.0, 1.0);
  }
  for (std::size_t i = 0; i + n / 4 < n; i += 7) {
    const std::size_t j = i + n / 4;
    for (std::size_t f = 0; f < num_features; ++f) x(j, f) = x(i, f);
    y[j] = y[i];
  }
}

std::string archive_bytes(const Regressor& model) {
  std::ostringstream buffer;
  util::BinaryWriter writer(buffer);
  model.save(writer);
  return buffer.str();
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

TEST(Gbdt, OneRoundShrinkageOneMatchesHistogramRepTree) {
  // Round-1 residuals equal the targets under a zero base score, leaf
  // values are the engine moment means un-scaled by shrinkage 1.0, and
  // leaf-wise growth without a leaf cap expands exactly the depth-first
  // split set — so the single boosted tree must be the unpruned
  // histogram REPTree, bit for bit.
  util::Rng rng(401);
  for (int round = 0; round < 6; ++round) {
    linalg::Matrix x;
    std::vector<double> y;
    make_adversarial_data(160 + 40 * round, 5, rng, x, y);
    const std::size_t max_depth = round % 2 == 0 ? 0 : 4;
    const std::size_t min_leaf = 1 + round % 3;

    GbdtOptions gbdt_options;
    gbdt_options.n_rounds = 1;
    gbdt_options.learning_rate = 1.0;
    gbdt_options.max_depth = max_depth;
    gbdt_options.max_leaves = 0;
    gbdt_options.min_instances_per_leaf = min_leaf;
    gbdt_options.row_subsample = 1.0;
    gbdt_options.feature_subsample = 1.0;
    gbdt_options.histogram_bins = 32;
    gbdt_options.bin_mode = BinningMode::kWidth;
    gbdt_options.base_score = GbdtOptions::BaseScore::kZero;
    GbdtRegressor gbdt(gbdt_options);
    gbdt.fit(x, y);
    ASSERT_EQ(gbdt.num_trees(), 1u);

    RepTreeOptions tree_options;
    tree_options.split_mode = SplitMode::kHistogram;
    tree_options.histogram_bins = 32;
    tree_options.max_depth = max_depth;
    tree_options.min_instances_per_leaf = min_leaf;
    tree_options.prune = false;
    tree_options.min_variance_proportion = 0.0;
    RepTree reference(tree_options);
    reference.fit(x, y);

    const auto gbdt_pred = gbdt.predict(x);
    const auto tree_pred = reference.predict(x);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      ASSERT_EQ(bits(gbdt_pred[r]), bits(tree_pred[r]))
          << "round " << round << " row " << r;
    }
    // Probe rows off the training grid exercise every threshold.
    linalg::Matrix probe(64, 5);
    for (std::size_t r = 0; r < probe.rows(); ++r) {
      for (std::size_t f = 0; f < 5; ++f) probe(r, f) = rng.uniform(-2.0, 9.0);
    }
    const auto gbdt_probe = gbdt.predict(probe);
    const auto tree_probe = reference.predict(probe);
    for (std::size_t r = 0; r < probe.rows(); ++r) {
      ASSERT_EQ(bits(gbdt_probe[r]), bits(tree_probe[r]));
    }
  }
}

TEST(Gbdt, FitIsBitIdenticalAcrossWorkerCounts) {
  // Row/feature samples come from seeds pre-drawn off the master stream
  // and sampled sets are kept in ascending row order, so the per-round
  // trees — and hence the archives — cannot depend on how many workers
  // the prediction-update fans out across.
  util::Rng rng(402);
  linalg::Matrix x;
  std::vector<double> y;
  make_adversarial_data(300, 5, rng, x, y);
  for (const bool subsample : {false, true}) {
    std::string reference;
    for (const std::size_t workers : {1u, 2u, 8u}) {
      GbdtOptions options;
      options.n_rounds = 12;
      options.learning_rate = 0.2;
      options.max_leaves = 8;
      options.min_instances_per_leaf = 2;
      options.histogram_bins = 16;
      options.seed = 7;
      options.fit_workers = workers;
      if (subsample) {
        options.row_subsample = 0.7;
        options.feature_subsample = 0.6;
      }
      GbdtRegressor model(options);
      model.fit(x, y);
      const std::string archive = archive_bytes(model);
      if (reference.empty()) {
        reference = archive;
      } else {
        EXPECT_EQ(archive, reference)
            << "workers=" << workers << " subsample=" << subsample;
      }
    }
  }
}

TEST(Gbdt, TrainingLossDecreasesMonotonically) {
  // Squared loss with lr in (0, 2] and full-sample rounds: each leaf
  // shifts its rows' residual means toward zero, so the training MSE can
  // only go down (or stay put once every tree degenerates to one leaf).
  util::Rng rng(403);
  linalg::Matrix x;
  std::vector<double> y;
  make_adversarial_data(240, 5, rng, x, y);
  GbdtOptions options;
  options.n_rounds = 40;
  options.learning_rate = 0.1;
  options.max_leaves = 8;
  options.min_instances_per_leaf = 2;
  options.histogram_bins = 32;
  GbdtRegressor model(options);
  model.fit(x, y);
  const auto& loss = model.loss_history();
  ASSERT_EQ(loss.size(), 40u);
  for (std::size_t t = 1; t < loss.size(); ++t) {
    EXPECT_LE(loss[t], loss[t - 1] + 1e-9 * loss[0]) << "round " << t;
  }
  EXPECT_LT(loss.back(), 0.5 * loss.front());
}

TEST(Gbdt, EarlyStoppingHaltsOnHeldOutPlateau) {
  // A coarse step function plus noise: the signal is learned in a few
  // rounds, after which the held-out MSE can only wander — the patience
  // window must trip long before the round budget and the kept ensemble
  // must truncate to the best round seen.
  util::Rng rng(404);
  linalg::Matrix x(400, 3);
  std::vector<double> y(400);
  for (std::size_t r = 0; r < 400; ++r) {
    for (std::size_t f = 0; f < 3; ++f) x(r, f) = rng.uniform(0.0, 1.0);
    y[r] = (x(r, 0) > 0.5 ? 10.0 : -10.0) + rng.normal(0.0, 0.5);
  }
  GbdtOptions options;
  options.n_rounds = 300;
  options.learning_rate = 0.3;
  options.max_leaves = 4;
  options.min_instances_per_leaf = 5;
  options.early_stopping_rounds = 8;
  options.validation_fraction = 0.25;
  GbdtRegressor model(options);
  model.fit(x, y);
  EXPECT_LT(model.loss_history().size(), 300u) << "patience never tripped";
  EXPECT_GE(model.num_trees(), 1u);
  EXPECT_LE(model.num_trees(), model.loss_history().size());
  // The fit must still have learned the step.
  std::vector<double> row(3, 0.25);
  row[0] = 0.9;
  EXPECT_GT(model.predict_row(row), 5.0);
  row[0] = 0.1;
  EXPECT_LT(model.predict_row(row), -5.0);
}

TEST(Gbdt, GridSearchBinsOncePerFoldNotOncePerGridPoint) {
  // CV rebuilds byte-identical fold matrices for every grid point, and
  // binning depends only on the matrix content — the shared cache must
  // collapse a rounds x shrinkage sweep to one binning per fold.
  util::Rng rng(405);
  linalg::Matrix x(90, 4);
  std::vector<double> y(90);
  for (std::size_t r = 0; r < 90; ++r) {
    for (std::size_t f = 0; f < 4; ++f) x(r, f) = rng.uniform(-3.0, 3.0);
    y[r] = 2.0 * x(r, 0) - x(r, 2) + rng.normal(0.0, 0.1);
  }
  ParameterGrid grid;
  grid["gbdt.n_rounds"] = {"2", "4"};
  grid["gbdt.learning_rate"] = {"0.1", "0.3"};
  util::Config base;
  base.set("gbdt.histogram_bins", "16");
  base.set("gbdt.min_instances", "2");
  constexpr std::size_t kFolds = 3;
  const BinningCacheStats before = GbdtRegressor::binning_cache_stats();
  util::Rng search_rng(77);
  const auto result =
      grid_search("gbdt", grid, x, y, kFolds, search_rng, 1.0, base);
  ASSERT_EQ(result.points.size(), 4u);
  const BinningCacheStats after = GbdtRegressor::binning_cache_stats();
  EXPECT_EQ(after.computed - before.computed, kFolds);
  EXPECT_EQ(after.hits - before.hits, (4 - 1) * kFolds);
}

TEST(Gbdt, BatchedPredictMatchesPredictRowBitwise) {
  util::Rng rng(406);
  linalg::Matrix x;
  std::vector<double> y;
  make_adversarial_data(200, 5, rng, x, y);
  GbdtOptions options;
  options.n_rounds = 10;
  options.max_leaves = 6;
  options.min_instances_per_leaf = 2;
  GbdtRegressor model(options);
  model.fit(x, y);
  const auto batched = model.predict(x);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    ASSERT_EQ(bits(batched[r]), bits(model.predict_row(x.row(r))));
  }
}

TEST(Gbdt, RegistryBuildsConfiguredModelAndRejectsBadOptions) {
  util::Config params;
  params.set("gbdt.n_rounds", "5");
  params.set("gbdt.learning_rate", "0.5");
  params.set("gbdt.bin_mode", "width");
  params.set("gbdt.base_score", "zero");
  const auto model = make_model("gbdt", params);
  EXPECT_EQ(model->name(), "gbdt");
  auto& gbdt = dynamic_cast<GbdtRegressor&>(*model);
  EXPECT_EQ(gbdt.options().n_rounds, 5u);
  EXPECT_EQ(gbdt.options().bin_mode, BinningMode::kWidth);
  EXPECT_EQ(gbdt.options().base_score, GbdtOptions::BaseScore::kZero);

  EXPECT_THROW(GbdtRegressor(GbdtOptions{.n_rounds = 0}),
               std::invalid_argument);
  EXPECT_THROW(GbdtRegressor(GbdtOptions{.learning_rate = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(GbdtRegressor(GbdtOptions{.row_subsample = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(GbdtRegressor(GbdtOptions{.histogram_bins = 1}),
               std::invalid_argument);
  util::Config bad;
  bad.set("gbdt.bin_mode", "log");
  EXPECT_THROW(make_model("gbdt", bad), std::invalid_argument);
}

}  // namespace
}  // namespace f2pm::ml
