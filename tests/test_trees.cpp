#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ml/m5p.hpp"
#include "ml/metrics.hpp"
#include "ml/reptree.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

/// Step function: y = 10 for x < 0, y = -5 for x >= 0 (plus tiny noise).
void make_step_data(std::size_t n, util::Rng& rng, linalg::Matrix& x,
                    std::vector<double>& y) {
  x = linalg::Matrix(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);  // irrelevant feature
    y[i] = (x(i, 0) < 0.0 ? 10.0 : -5.0) + rng.normal(0.0, 0.01);
  }
}

/// Piecewise-linear function in x0 with a kink at 0.
void make_piecewise_linear_data(std::size_t n, util::Rng& rng,
                                linalg::Matrix& x, std::vector<double>& y) {
  x = linalg::Matrix(n, 1);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    y[i] = x(i, 0) < 0.0 ? 3.0 * x(i, 0) : -1.0 * x(i, 0);
    y[i] += rng.normal(0.0, 0.02);
  }
}

TEST(RepTree, LearnsStepFunction) {
  util::Rng rng(1);
  linalg::Matrix x;
  std::vector<double> y;
  make_step_data(500, rng, x, y);
  RepTree tree;
  tree.fit(x, y);
  EXPECT_NEAR(tree.predict_row(std::vector<double>{-0.5, 0.0}), 10.0, 0.5);
  EXPECT_NEAR(tree.predict_row(std::vector<double>{0.5, 0.0}), -5.0, 0.5);
  EXPECT_GE(tree.num_leaves(), 2u);
}

TEST(RepTree, ConstantTargetYieldsSingleLeaf) {
  linalg::Matrix x(20, 1);
  for (std::size_t i = 0; i < 20; ++i) x(i, 0) = static_cast<double>(i);
  const std::vector<double> y(20, 3.5);
  RepTree tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_row(std::vector<double>{7.0}), 3.5);
}

TEST(RepTree, MaxDepthIsRespected) {
  util::Rng rng(2);
  linalg::Matrix x;
  std::vector<double> y;
  make_step_data(500, rng, x, y);
  RepTreeOptions options;
  options.max_depth = 2;
  options.prune = false;
  RepTree tree(options);
  tree.fit(x, y);
  EXPECT_LE(tree.depth(), 2u);
}

TEST(RepTree, PruningNeverHurtsLeafCount) {
  util::Rng rng(3);
  linalg::Matrix x(400, 2);
  std::vector<double> y(400);
  for (std::size_t i = 0; i < 400; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    // Pure noise target: an unpruned tree overfits wildly.
    y[i] = rng.normal(0.0, 1.0);
  }
  RepTreeOptions no_prune;
  no_prune.prune = false;
  RepTree unpruned(no_prune);
  unpruned.fit(x, y);
  RepTree pruned;
  pruned.fit(x, y);
  EXPECT_LT(pruned.num_leaves(), unpruned.num_leaves());
}

TEST(RepTree, DeterministicForFixedSeed) {
  util::Rng rng(4);
  linalg::Matrix x;
  std::vector<double> y;
  make_step_data(300, rng, x, y);
  RepTree a;
  RepTree b;
  a.fit(x, y);
  b.fit(x, y);
  for (double probe : {-0.7, -0.1, 0.3, 0.9}) {
    const std::vector<double> row{probe, 0.0};
    EXPECT_DOUBLE_EQ(a.predict_row(row), b.predict_row(row));
  }
}

TEST(RepTree, ImportancesIdentifyTheInformativeFeature) {
  util::Rng rng(15);
  linalg::Matrix x;
  std::vector<double> y;
  make_step_data(500, rng, x, y);  // feature 0 carries all the signal
  RepTree tree;
  tree.fit(x, y);
  const auto& importances = tree.feature_importances();
  ASSERT_EQ(importances.size(), 2u);
  EXPECT_GT(importances[0], 0.9);
  EXPECT_NEAR(importances[0] + importances[1], 1.0, 1e-9);
}

TEST(RepTree, ImportancesAllZeroForSingleLeaf) {
  linalg::Matrix x(20, 2);
  for (std::size_t i = 0; i < 20; ++i) x(i, 0) = static_cast<double>(i);
  const std::vector<double> y(20, 1.0);
  RepTree tree;
  tree.fit(x, y);
  for (double v : tree.feature_importances()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(RepTree, SaveLoadPreservesPredictions) {
  util::Rng rng(5);
  linalg::Matrix x;
  std::vector<double> y;
  make_step_data(300, rng, x, y);
  RepTree tree;
  tree.fit(x, y);
  std::stringstream buffer;
  save_model(tree, buffer);
  const auto loaded = load_model(buffer);
  EXPECT_EQ(loaded->name(), "reptree");
  for (double probe : {-0.9, -0.3, 0.2, 0.8}) {
    const std::vector<double> row{probe, 0.1};
    EXPECT_DOUBLE_EQ(loaded->predict_row(row), tree.predict_row(row));
  }
}

TEST(RepTree, InvalidOptionsRejected) {
  RepTreeOptions bad_leaf;
  bad_leaf.min_instances_per_leaf = 0;
  EXPECT_THROW(RepTree{bad_leaf}, std::invalid_argument);
  RepTreeOptions bad_folds;
  bad_folds.num_folds = 1;
  EXPECT_THROW(RepTree{bad_folds}, std::invalid_argument);
}

TEST(M5P, LearnsPiecewiseLinearExactly) {
  util::Rng rng(6);
  linalg::Matrix x;
  std::vector<double> y;
  make_piecewise_linear_data(800, rng, x, y);
  M5P model;
  model.fit(x, y);
  EXPECT_NEAR(model.predict_row(std::vector<double>{-1.5}), -4.5, 0.2);
  EXPECT_NEAR(model.predict_row(std::vector<double>{1.5}), -1.5, 0.2);
}

TEST(M5P, BeatsConstantTreeOnLinearSegments) {
  util::Rng rng(7);
  linalg::Matrix x;
  std::vector<double> y;
  make_piecewise_linear_data(600, rng, x, y);
  linalg::Matrix x_val;
  std::vector<double> y_val;
  make_piecewise_linear_data(200, rng, x_val, y_val);

  // Smoothing deliberately trades variance for bias; on clean piecewise
  // data the unsmoothed model tree is the right comparison point.
  M5POptions options;
  options.smoothing = false;
  M5P m5p(options);
  m5p.fit(x, y);
  RepTree rep;
  rep.fit(x, y);
  const double m5p_mae = mean_absolute_error(m5p.predict(x_val), y_val);
  const double rep_mae = mean_absolute_error(rep.predict(x_val), y_val);
  EXPECT_LT(m5p_mae, rep_mae);
}

TEST(M5P, SmoothingTogglesBehaviour) {
  util::Rng rng(8);
  linalg::Matrix x;
  std::vector<double> y;
  make_piecewise_linear_data(400, rng, x, y);
  M5POptions smooth;
  M5POptions raw;
  raw.smoothing = false;
  M5P a(smooth);
  M5P b(raw);
  a.fit(x, y);
  b.fit(x, y);
  // Near the kink the smoothed and unsmoothed predictions should differ
  // (unless the tree degenerated to a single leaf).
  if (a.num_leaves() > 1) {
    bool any_difference = false;
    for (double probe : {-0.1, -0.05, 0.05, 0.1}) {
      const std::vector<double> row{probe};
      any_difference |=
          std::abs(a.predict_row(row) - b.predict_row(row)) > 1e-9;
    }
    EXPECT_TRUE(any_difference);
  }
}

TEST(M5P, ConstantTargetIsExact) {
  linalg::Matrix x(30, 1);
  for (std::size_t i = 0; i < 30; ++i) x(i, 0) = static_cast<double>(i);
  const std::vector<double> y(30, -2.0);
  M5P model;
  model.fit(x, y);
  EXPECT_NEAR(model.predict_row(std::vector<double>{15.0}), -2.0, 1e-9);
}

TEST(M5P, SaveLoadPreservesPredictions) {
  util::Rng rng(9);
  linalg::Matrix x;
  std::vector<double> y;
  make_piecewise_linear_data(500, rng, x, y);
  M5P model;
  model.fit(x, y);
  std::stringstream buffer;
  save_model(model, buffer);
  const auto loaded = load_model(buffer);
  EXPECT_EQ(loaded->name(), "m5p");
  for (double probe : {-1.7, -0.4, 0.0, 0.6, 1.9}) {
    const std::vector<double> row{probe};
    EXPECT_NEAR(loaded->predict_row(row), model.predict_row(row), 1e-12);
  }
}

TEST(M5P, InvalidOptionsRejected) {
  M5POptions bad;
  bad.min_instances = 1;
  EXPECT_THROW(M5P{bad}, std::invalid_argument);
  M5POptions bad_k;
  bad_k.smoothing_k = -1.0;
  EXPECT_THROW(M5P{bad_k}, std::invalid_argument);
}

/// Property sweep over min-instances: larger leaves -> fewer leaves, and
/// every setting still produces a sane model.
class TreeMinInstancesSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeMinInstancesSweep, LeafCountDecreasesWithMinInstances) {
  util::Rng rng(10);
  linalg::Matrix x;
  std::vector<double> y;
  make_step_data(600, rng, x, y);
  RepTreeOptions options;
  options.min_instances_per_leaf = GetParam();
  options.prune = false;
  RepTree tree(options);
  tree.fit(x, y);
  EXPECT_GE(tree.num_leaves(), 1u);
  RepTreeOptions bigger = options;
  bigger.min_instances_per_leaf = GetParam() * 4;
  RepTree coarser(bigger);
  coarser.fit(x, y);
  EXPECT_LE(coarser.num_leaves(), tree.num_leaves());
}

INSTANTIATE_TEST_SUITE_P(MinInstances, TreeMinInstancesSweep,
                         ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace f2pm::ml
