#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "ml/ensemble.hpp"
#include "ml/grid_search.hpp"
#include "ml/metrics.hpp"
#include "ml/registry.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {
namespace {

/// Noisy step data where a single tree is high-variance.
void make_noisy_step(std::size_t n, util::Rng& rng, linalg::Matrix& x,
                     std::vector<double>& y) {
  x = linalg::Matrix(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    y[i] = (x(i, 0) < 0.0 ? 5.0 : -5.0) + rng.normal(0.0, 2.0);
  }
}

TEST(BaggedTrees, ReducesVarianceOverSingleTree) {
  util::Rng rng(1);
  linalg::Matrix x;
  std::vector<double> y;
  make_noisy_step(400, rng, x, y);
  linalg::Matrix x_val;
  std::vector<double> y_val;
  make_noisy_step(200, rng, x_val, y_val);

  // The classic bagging demonstration uses unpruned (high-variance) base
  // learners: a single unpruned tree overfits the noise, the bag averages
  // it away.
  RepTreeOptions unpruned;
  unpruned.prune = false;
  RepTree single(unpruned);
  single.fit(x, y);
  BaggedTreesOptions options;
  options.num_trees = 15;
  options.tree = unpruned;
  BaggedTrees ensemble(options);
  ensemble.fit(x, y);
  const double single_mae =
      mean_absolute_error(single.predict(x_val), y_val);
  const double bagged_mae =
      mean_absolute_error(ensemble.predict(x_val), y_val);
  EXPECT_LT(bagged_mae, single_mae);
}

TEST(BaggedTrees, PredictionIsMeanOfMembers) {
  util::Rng rng(2);
  linalg::Matrix x;
  std::vector<double> y;
  make_noisy_step(200, rng, x, y);
  BaggedTreesOptions options;
  options.num_trees = 1;  // a 1-tree bag is just that tree
  BaggedTrees ensemble(options);
  ensemble.fit(x, y);
  EXPECT_EQ(ensemble.num_trees(), 1u);
}

TEST(BaggedTrees, InvalidOptionsRejected) {
  EXPECT_THROW(BaggedTrees(BaggedTreesOptions{.num_trees = 0}),
               std::invalid_argument);
  EXPECT_THROW(BaggedTrees(BaggedTreesOptions{.sample_fraction = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(BaggedTrees(BaggedTreesOptions{.sample_fraction = 1.5}),
               std::invalid_argument);
}

TEST(BaggedTrees, DeterministicForFixedSeed) {
  util::Rng rng(3);
  linalg::Matrix x;
  std::vector<double> y;
  make_noisy_step(300, rng, x, y);
  BaggedTrees a(BaggedTreesOptions{.num_trees = 5, .seed = 9});
  BaggedTrees b(BaggedTreesOptions{.num_trees = 5, .seed = 9});
  a.fit(x, y);
  b.fit(x, y);
  const std::vector<double> probe{0.3, -0.2};
  EXPECT_DOUBLE_EQ(a.predict_row(probe), b.predict_row(probe));
}

TEST(BaggedTrees, SaveLoadRoundTrip) {
  util::Rng rng(4);
  linalg::Matrix x;
  std::vector<double> y;
  make_noisy_step(200, rng, x, y);
  BaggedTrees model(BaggedTreesOptions{.num_trees = 4});
  model.fit(x, y);
  std::stringstream buffer;
  save_model(model, buffer);
  const auto loaded = load_model(buffer);
  EXPECT_EQ(loaded->name(), "bagging");
  for (double probe : {-0.8, -0.1, 0.4, 0.9}) {
    const std::vector<double> row{probe, 0.0};
    EXPECT_DOUBLE_EQ(loaded->predict_row(row), model.predict_row(row));
  }
}

TEST(BaggedTrees, UncertaintyIsSpreadOfMembers) {
  util::Rng rng(11);
  linalg::Matrix x;
  std::vector<double> y;
  make_noisy_step(300, rng, x, y);
  BaggedTrees ensemble(BaggedTreesOptions{.num_trees = 12});
  ensemble.fit(x, y);
  // Mean of predict_with_uncertainty equals predict_row.
  const std::vector<double> probe{0.4, 0.0};
  const auto prediction = ensemble.predict_with_uncertainty(probe);
  EXPECT_DOUBLE_EQ(prediction.mean, ensemble.predict_row(probe));
  EXPECT_GE(prediction.stddev, 0.0);
  // Near the decision boundary the members disagree more than deep inside
  // a regime.
  const auto boundary =
      ensemble.predict_with_uncertainty(std::vector<double>{0.0, 0.0});
  const auto interior =
      ensemble.predict_with_uncertainty(std::vector<double>{0.9, 0.0});
  EXPECT_GE(boundary.stddev, interior.stddev * 0.5);
}

TEST(BaggedTrees, SingleTreeHasZeroUncertainty) {
  util::Rng rng(12);
  linalg::Matrix x;
  std::vector<double> y;
  make_noisy_step(100, rng, x, y);
  BaggedTrees ensemble(BaggedTreesOptions{.num_trees = 1});
  ensemble.fit(x, y);
  const auto prediction =
      ensemble.predict_with_uncertainty(std::vector<double>{0.5, 0.0});
  EXPECT_DOUBLE_EQ(prediction.stddev, 0.0);
}

TEST(BaggedTrees, AvailableThroughRegistry) {
  util::Config params;
  params.set("bagging.num_trees", "3");
  const auto model = make_model("bagging", params);
  EXPECT_EQ(model->name(), "bagging");
  EXPECT_EQ(dynamic_cast<BaggedTrees&>(*model).options().num_trees, 3u);
}

TEST(GridSearch, EnumerationIsCartesianProduct) {
  ParameterGrid grid;
  grid["a"] = {"1", "2", "3"};
  grid["b"] = {"x", "y"};
  const auto configs = enumerate_grid(grid, util::Config{});
  EXPECT_EQ(configs.size(), 6u);
  // Every combination appears exactly once.
  std::set<std::string> seen;
  for (const auto& config : configs) {
    seen.insert(config.get_string("a", "") + config.get_string("b", ""));
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(GridSearch, EmptyDimensionThrows) {
  ParameterGrid grid;
  grid["a"] = {};
  EXPECT_THROW(enumerate_grid(grid, util::Config{}), std::invalid_argument);
}

TEST(GridSearch, BaseValuesSurviveUnlessOverridden) {
  util::Config base;
  base.set("keep", "me");
  base.set("a", "original");
  ParameterGrid grid;
  grid["a"] = {"new"};
  const auto configs = enumerate_grid(grid, base);
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].get_string("keep", ""), "me");
  EXPECT_EQ(configs[0].get_string("a", ""), "new");
}

TEST(GridSearch, FindsTheBetterRidgeLambda) {
  // y is exactly linear: tiny ridge must beat an absurdly large one.
  util::Rng rng(5);
  linalg::Matrix x(150, 2);
  std::vector<double> y(150);
  for (std::size_t i = 0; i < 150; ++i) {
    x(i, 0) = rng.uniform(-5.0, 5.0);
    x(i, 1) = rng.uniform(-5.0, 5.0);
    y[i] = 3.0 * x(i, 0) - x(i, 1) + rng.normal(0.0, 0.1);
  }
  ParameterGrid grid;
  grid["ridge.lambda"] = {"0.001", "1000000"};
  util::Rng search_rng(6);
  const auto result =
      grid_search("ridge", grid, x, y, 4, search_rng, 1.0);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.best().params.get_string("ridge.lambda", ""), "0.001");
  EXPECT_LT(result.best().mean_mae, result.points[1].mean_mae);
}

TEST(GridSearch, PointsAreSortedByMeanMae) {
  util::Rng rng(7);
  linalg::Matrix x(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = 2.0 * static_cast<double>(i) + rng.normal(0.0, 1.0);
  }
  ParameterGrid grid;
  grid["knn.k"] = {"1", "3", "9", "27"};
  util::Rng search_rng(8);
  const auto result = grid_search("knn", grid, x, y, 3, search_rng, 0.5);
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    EXPECT_LE(result.points[i - 1].mean_mae, result.points[i].mean_mae);
  }
}

}  // namespace
}  // namespace f2pm::ml
