#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace f2pm::util {
namespace {

TEST(Csv, ParsesHeaderAndRows) {
  std::istringstream in("a,b\n1,2\n3.5,-4\n");
  const CsvTable table = read_csv(in);
  EXPECT_EQ(table.header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[1][0], 3.5);
  EXPECT_DOUBLE_EQ(table.rows[1][1], -4.0);
}

TEST(Csv, HandlesQuotedFieldsAndCrLf) {
  std::istringstream in("\"a\",\"b\"\r\n1,2\r\n");
  const CsvTable table = read_csv(in);
  EXPECT_EQ(table.header[0], "a");
  EXPECT_DOUBLE_EQ(table.rows[0][1], 2.0);
}

TEST(Csv, SkipsBlankLines) {
  std::istringstream in("a\n\n1\n\n2\n");
  const CsvTable table = read_csv(in);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(Csv, RejectsRaggedRows) {
  std::istringstream in("a,b\n1,2,3\n");
  EXPECT_THROW(read_csv(in), std::invalid_argument);
}

TEST(Csv, RejectsNonNumericCells) {
  std::istringstream in("a\nhello\n");
  EXPECT_THROW(read_csv(in), std::invalid_argument);
}

TEST(Csv, RejectsEmptyDocument) {
  std::istringstream in("");
  EXPECT_THROW(read_csv(in), std::invalid_argument);
}

TEST(Csv, ColumnLookup) {
  std::istringstream in("x,y\n1,10\n2,20\n");
  const CsvTable table = read_csv(in);
  EXPECT_EQ(table.column_index("y"), 1u);
  EXPECT_EQ(table.column("y"), (std::vector<double>{10.0, 20.0}));
  EXPECT_THROW(table.column_index("z"), std::out_of_range);
}

TEST(Csv, WriteReadRoundTrip) {
  CsvTable table;
  table.header = {"u", "v"};
  table.rows = {{1.5, -2.25}, {0.0, 1e6}};
  std::ostringstream out;
  write_csv(out, table);
  std::istringstream in(out.str());
  const CsvTable parsed = read_csv(in);
  EXPECT_EQ(parsed.header, table.header);
  ASSERT_EQ(parsed.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(parsed.rows[0][1], -2.25);
  EXPECT_DOUBLE_EQ(parsed.rows[1][1], 1e6);
}

TEST(Csv, FileRoundTrip) {
  CsvTable table;
  table.header = {"only"};
  table.rows = {{42.0}};
  const std::string path = testing::TempDir() + "/f2pm_csv_test.csv";
  write_csv_file(path, table);
  const CsvTable parsed = read_csv_file(path);
  EXPECT_DOUBLE_EQ(parsed.rows[0][0], 42.0);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/nope.csv"), std::runtime_error);
}

}  // namespace
}  // namespace f2pm::util
