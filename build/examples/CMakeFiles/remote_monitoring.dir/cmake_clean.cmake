file(REMOVE_RECURSE
  "CMakeFiles/remote_monitoring.dir/remote_monitoring.cpp.o"
  "CMakeFiles/remote_monitoring.dir/remote_monitoring.cpp.o.d"
  "remote_monitoring"
  "remote_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
