# Empty dependencies file for remote_monitoring.
# This may be replaced when dependencies are built.
