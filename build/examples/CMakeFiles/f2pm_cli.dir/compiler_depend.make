# Empty compiler generated dependencies file for f2pm_cli.
# This may be replaced when dependencies are built.
