file(REMOVE_RECURSE
  "CMakeFiles/f2pm_cli.dir/f2pm_cli.cpp.o"
  "CMakeFiles/f2pm_cli.dir/f2pm_cli.cpp.o.d"
  "f2pm_cli"
  "f2pm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2pm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
