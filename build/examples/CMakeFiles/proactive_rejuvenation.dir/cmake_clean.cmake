file(REMOVE_RECURSE
  "CMakeFiles/proactive_rejuvenation.dir/proactive_rejuvenation.cpp.o"
  "CMakeFiles/proactive_rejuvenation.dir/proactive_rejuvenation.cpp.o.d"
  "proactive_rejuvenation"
  "proactive_rejuvenation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proactive_rejuvenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
