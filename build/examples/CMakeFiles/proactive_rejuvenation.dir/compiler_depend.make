# Empty compiler generated dependencies file for proactive_rejuvenation.
# This may be replaced when dependencies are built.
