# Empty compiler generated dependencies file for tpcw_campaign.
# This may be replaced when dependencies are built.
