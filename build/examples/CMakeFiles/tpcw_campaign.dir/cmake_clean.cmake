file(REMOVE_RECURSE
  "CMakeFiles/tpcw_campaign.dir/tpcw_campaign.cpp.o"
  "CMakeFiles/tpcw_campaign.dir/tpcw_campaign.cpp.o.d"
  "tpcw_campaign"
  "tpcw_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcw_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
