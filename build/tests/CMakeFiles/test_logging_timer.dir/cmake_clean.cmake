file(REMOVE_RECURSE
  "CMakeFiles/test_logging_timer.dir/test_logging_timer.cpp.o"
  "CMakeFiles/test_logging_timer.dir/test_logging_timer.cpp.o.d"
  "test_logging_timer"
  "test_logging_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logging_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
