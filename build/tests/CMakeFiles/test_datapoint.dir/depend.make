# Empty dependencies file for test_datapoint.
# This may be replaced when dependencies are built.
