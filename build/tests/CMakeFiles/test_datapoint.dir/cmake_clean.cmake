file(REMOVE_RECURSE
  "CMakeFiles/test_datapoint.dir/test_datapoint.cpp.o"
  "CMakeFiles/test_datapoint.dir/test_datapoint.cpp.o.d"
  "test_datapoint"
  "test_datapoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datapoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
