file(REMOVE_RECURSE
  "CMakeFiles/test_sysmon.dir/test_sysmon.cpp.o"
  "CMakeFiles/test_sysmon.dir/test_sysmon.cpp.o.d"
  "test_sysmon"
  "test_sysmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sysmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
