# Empty compiler generated dependencies file for test_sysmon.
# This may be replaced when dependencies are built.
