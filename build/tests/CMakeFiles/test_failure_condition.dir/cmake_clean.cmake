file(REMOVE_RECURSE
  "CMakeFiles/test_failure_condition.dir/test_failure_condition.cpp.o"
  "CMakeFiles/test_failure_condition.dir/test_failure_condition.cpp.o.d"
  "test_failure_condition"
  "test_failure_condition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_condition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
