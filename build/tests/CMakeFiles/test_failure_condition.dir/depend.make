# Empty dependencies file for test_failure_condition.
# This may be replaced when dependencies are built.
