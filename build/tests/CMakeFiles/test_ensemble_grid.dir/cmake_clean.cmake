file(REMOVE_RECURSE
  "CMakeFiles/test_ensemble_grid.dir/test_ensemble_grid.cpp.o"
  "CMakeFiles/test_ensemble_grid.dir/test_ensemble_grid.cpp.o.d"
  "test_ensemble_grid"
  "test_ensemble_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ensemble_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
