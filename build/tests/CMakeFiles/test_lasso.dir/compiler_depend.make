# Empty compiler generated dependencies file for test_lasso.
# This may be replaced when dependencies are built.
