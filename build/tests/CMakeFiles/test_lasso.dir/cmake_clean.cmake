file(REMOVE_RECURSE
  "CMakeFiles/test_lasso.dir/test_lasso.cpp.o"
  "CMakeFiles/test_lasso.dir/test_lasso.cpp.o.d"
  "test_lasso"
  "test_lasso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lasso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
