file(REMOVE_RECURSE
  "CMakeFiles/test_linear_models.dir/test_linear_models.cpp.o"
  "CMakeFiles/test_linear_models.dir/test_linear_models.cpp.o.d"
  "test_linear_models"
  "test_linear_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linear_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
