# Empty dependencies file for test_linear_models.
# This may be replaced when dependencies are built.
