file(REMOVE_RECURSE
  "CMakeFiles/test_real_injectors.dir/test_real_injectors.cpp.o"
  "CMakeFiles/test_real_injectors.dir/test_real_injectors.cpp.o.d"
  "test_real_injectors"
  "test_real_injectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_real_injectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
