# Empty compiler generated dependencies file for test_real_injectors.
# This may be replaced when dependencies are built.
