file(REMOVE_RECURSE
  "CMakeFiles/test_anomalies.dir/test_anomalies.cpp.o"
  "CMakeFiles/test_anomalies.dir/test_anomalies.cpp.o.d"
  "test_anomalies"
  "test_anomalies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anomalies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
