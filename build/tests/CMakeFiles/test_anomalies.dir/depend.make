# Empty dependencies file for test_anomalies.
# This may be replaced when dependencies are built.
