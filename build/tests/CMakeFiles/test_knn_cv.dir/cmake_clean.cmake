file(REMOVE_RECURSE
  "CMakeFiles/test_knn_cv.dir/test_knn_cv.cpp.o"
  "CMakeFiles/test_knn_cv.dir/test_knn_cv.cpp.o.d"
  "test_knn_cv"
  "test_knn_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knn_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
