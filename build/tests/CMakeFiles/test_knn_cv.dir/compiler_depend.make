# Empty compiler generated dependencies file for test_knn_cv.
# This may be replaced when dependencies are built.
