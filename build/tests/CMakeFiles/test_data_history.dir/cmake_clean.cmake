file(REMOVE_RECURSE
  "CMakeFiles/test_data_history.dir/test_data_history.cpp.o"
  "CMakeFiles/test_data_history.dir/test_data_history.cpp.o.d"
  "test_data_history"
  "test_data_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
