# Empty dependencies file for test_data_history.
# This may be replaced when dependencies are built.
