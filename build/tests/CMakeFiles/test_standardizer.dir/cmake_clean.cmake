file(REMOVE_RECURSE
  "CMakeFiles/test_standardizer.dir/test_standardizer.cpp.o"
  "CMakeFiles/test_standardizer.dir/test_standardizer.cpp.o.d"
  "test_standardizer"
  "test_standardizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_standardizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
