# Empty compiler generated dependencies file for test_arff.
# This may be replaced when dependencies are built.
