
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/test_stats.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/f2pm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/f2pm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/f2pm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sysmon/CMakeFiles/f2pm_sysmon.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/f2pm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/f2pm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/f2pm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/f2pm_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/f2pm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
