file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_lasso_path.dir/fig4_lasso_path.cpp.o"
  "CMakeFiles/bench_fig4_lasso_path.dir/fig4_lasso_path.cpp.o.d"
  "fig4_lasso_path"
  "fig4_lasso_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_lasso_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
