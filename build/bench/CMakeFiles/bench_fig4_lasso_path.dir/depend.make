# Empty dependencies file for bench_fig4_lasso_path.
# This may be replaced when dependencies are built.
