file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_learning_curve.dir/ablation_learning_curve.cpp.o"
  "CMakeFiles/bench_ablation_learning_curve.dir/ablation_learning_curve.cpp.o.d"
  "ablation_learning_curve"
  "ablation_learning_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_learning_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
