file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_lasso_weights.dir/table1_lasso_weights.cpp.o"
  "CMakeFiles/bench_table1_lasso_weights.dir/table1_lasso_weights.cpp.o.d"
  "table1_lasso_weights"
  "table1_lasso_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lasso_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
