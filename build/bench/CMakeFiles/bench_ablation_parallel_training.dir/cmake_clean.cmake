file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_parallel_training.dir/ablation_parallel_training.cpp.o"
  "CMakeFiles/bench_ablation_parallel_training.dir/ablation_parallel_training.cpp.o.d"
  "ablation_parallel_training"
  "ablation_parallel_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parallel_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
