file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_validation_time.dir/table4_validation_time.cpp.o"
  "CMakeFiles/bench_table4_validation_time.dir/table4_validation_time.cpp.o.d"
  "table4_validation_time"
  "table4_validation_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_validation_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
