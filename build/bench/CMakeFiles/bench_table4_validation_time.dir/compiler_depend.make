# Empty compiler generated dependencies file for bench_table4_validation_time.
# This may be replaced when dependencies are built.
