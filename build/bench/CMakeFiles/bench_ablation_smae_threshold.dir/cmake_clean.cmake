file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_smae_threshold.dir/ablation_smae_threshold.cpp.o"
  "CMakeFiles/bench_ablation_smae_threshold.dir/ablation_smae_threshold.cpp.o.d"
  "ablation_smae_threshold"
  "ablation_smae_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_smae_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
