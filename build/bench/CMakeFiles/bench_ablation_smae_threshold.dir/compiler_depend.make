# Empty compiler generated dependencies file for bench_ablation_smae_threshold.
# This may be replaced when dependencies are built.
