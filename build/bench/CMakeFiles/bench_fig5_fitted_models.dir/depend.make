# Empty dependencies file for bench_fig5_fitted_models.
# This may be replaced when dependencies are built.
