file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fitted_models.dir/fig5_fitted_models.cpp.o"
  "CMakeFiles/bench_fig5_fitted_models.dir/fig5_fitted_models.cpp.o.d"
  "fig5_fitted_models"
  "fig5_fitted_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fitted_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
