file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_slope_features.dir/ablation_slope_features.cpp.o"
  "CMakeFiles/bench_ablation_slope_features.dir/ablation_slope_features.cpp.o.d"
  "ablation_slope_features"
  "ablation_slope_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slope_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
