file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_rt_correlation.dir/fig3_rt_correlation.cpp.o"
  "CMakeFiles/bench_fig3_rt_correlation.dir/fig3_rt_correlation.cpp.o.d"
  "fig3_rt_correlation"
  "fig3_rt_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_rt_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
