file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_smae.dir/table2_smae.cpp.o"
  "CMakeFiles/bench_table2_smae.dir/table2_smae.cpp.o.d"
  "table2_smae"
  "table2_smae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_smae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
