
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cross_validation.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/cross_validation.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/cross_validation.cpp.o.d"
  "/root/repo/src/ml/ensemble.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/ensemble.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/ensemble.cpp.o.d"
  "/root/repo/src/ml/exhaustion_heuristic.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/exhaustion_heuristic.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/exhaustion_heuristic.cpp.o.d"
  "/root/repo/src/ml/grid_search.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/grid_search.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/grid_search.cpp.o.d"
  "/root/repo/src/ml/kernels.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/kernels.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/kernels.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/lasso.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/lasso.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/lasso.cpp.o.d"
  "/root/repo/src/ml/linear_regression.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/linear_regression.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/linear_regression.cpp.o.d"
  "/root/repo/src/ml/lssvm.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/lssvm.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/lssvm.cpp.o.d"
  "/root/repo/src/ml/m5p.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/m5p.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/m5p.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/model.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/model.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/model.cpp.o.d"
  "/root/repo/src/ml/registry.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/registry.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/registry.cpp.o.d"
  "/root/repo/src/ml/reptree.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/reptree.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/reptree.cpp.o.d"
  "/root/repo/src/ml/ridge.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/ridge.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/ridge.cpp.o.d"
  "/root/repo/src/ml/state_classifier.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/state_classifier.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/state_classifier.cpp.o.d"
  "/root/repo/src/ml/svr.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/svr.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/svr.cpp.o.d"
  "/root/repo/src/ml/tree_common.cpp" "src/ml/CMakeFiles/f2pm_ml.dir/tree_common.cpp.o" "gcc" "src/ml/CMakeFiles/f2pm_ml.dir/tree_common.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/f2pm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/f2pm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/f2pm_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/f2pm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
