# Empty compiler generated dependencies file for f2pm_ml.
# This may be replaced when dependencies are built.
