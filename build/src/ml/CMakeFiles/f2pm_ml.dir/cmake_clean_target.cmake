file(REMOVE_RECURSE
  "libf2pm_ml.a"
)
