# Empty dependencies file for f2pm_core.
# This may be replaced when dependencies are built.
