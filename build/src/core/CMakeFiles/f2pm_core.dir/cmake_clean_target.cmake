file(REMOVE_RECURSE
  "libf2pm_core.a"
)
