file(REMOVE_RECURSE
  "CMakeFiles/f2pm_core.dir/failure_condition.cpp.o"
  "CMakeFiles/f2pm_core.dir/failure_condition.cpp.o.d"
  "CMakeFiles/f2pm_core.dir/feature_selection.cpp.o"
  "CMakeFiles/f2pm_core.dir/feature_selection.cpp.o.d"
  "CMakeFiles/f2pm_core.dir/online.cpp.o"
  "CMakeFiles/f2pm_core.dir/online.cpp.o.d"
  "CMakeFiles/f2pm_core.dir/pipeline.cpp.o"
  "CMakeFiles/f2pm_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/f2pm_core.dir/report.cpp.o"
  "CMakeFiles/f2pm_core.dir/report.cpp.o.d"
  "libf2pm_core.a"
  "libf2pm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2pm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
