
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/failure_condition.cpp" "src/core/CMakeFiles/f2pm_core.dir/failure_condition.cpp.o" "gcc" "src/core/CMakeFiles/f2pm_core.dir/failure_condition.cpp.o.d"
  "/root/repo/src/core/feature_selection.cpp" "src/core/CMakeFiles/f2pm_core.dir/feature_selection.cpp.o" "gcc" "src/core/CMakeFiles/f2pm_core.dir/feature_selection.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/f2pm_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/f2pm_core.dir/online.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/f2pm_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/f2pm_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/f2pm_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/f2pm_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/f2pm_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/f2pm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/f2pm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/f2pm_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/f2pm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
