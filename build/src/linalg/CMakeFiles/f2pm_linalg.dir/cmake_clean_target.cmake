file(REMOVE_RECURSE
  "libf2pm_linalg.a"
)
