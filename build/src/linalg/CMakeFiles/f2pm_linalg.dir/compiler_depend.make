# Empty compiler generated dependencies file for f2pm_linalg.
# This may be replaced when dependencies are built.
