file(REMOVE_RECURSE
  "CMakeFiles/f2pm_linalg.dir/blas.cpp.o"
  "CMakeFiles/f2pm_linalg.dir/blas.cpp.o.d"
  "CMakeFiles/f2pm_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/f2pm_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/f2pm_linalg.dir/matrix.cpp.o"
  "CMakeFiles/f2pm_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/f2pm_linalg.dir/qr.cpp.o"
  "CMakeFiles/f2pm_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/f2pm_linalg.dir/solve.cpp.o"
  "CMakeFiles/f2pm_linalg.dir/solve.cpp.o.d"
  "CMakeFiles/f2pm_linalg.dir/stats.cpp.o"
  "CMakeFiles/f2pm_linalg.dir/stats.cpp.o.d"
  "libf2pm_linalg.a"
  "libf2pm_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2pm_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
