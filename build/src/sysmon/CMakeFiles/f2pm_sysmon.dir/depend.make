# Empty dependencies file for f2pm_sysmon.
# This may be replaced when dependencies are built.
