file(REMOVE_RECURSE
  "CMakeFiles/f2pm_sysmon.dir/proc_parser.cpp.o"
  "CMakeFiles/f2pm_sysmon.dir/proc_parser.cpp.o.d"
  "CMakeFiles/f2pm_sysmon.dir/proc_source.cpp.o"
  "CMakeFiles/f2pm_sysmon.dir/proc_source.cpp.o.d"
  "CMakeFiles/f2pm_sysmon.dir/real_injectors.cpp.o"
  "CMakeFiles/f2pm_sysmon.dir/real_injectors.cpp.o.d"
  "libf2pm_sysmon.a"
  "libf2pm_sysmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2pm_sysmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
