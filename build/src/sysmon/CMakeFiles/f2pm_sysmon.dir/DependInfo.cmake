
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sysmon/proc_parser.cpp" "src/sysmon/CMakeFiles/f2pm_sysmon.dir/proc_parser.cpp.o" "gcc" "src/sysmon/CMakeFiles/f2pm_sysmon.dir/proc_parser.cpp.o.d"
  "/root/repo/src/sysmon/proc_source.cpp" "src/sysmon/CMakeFiles/f2pm_sysmon.dir/proc_source.cpp.o" "gcc" "src/sysmon/CMakeFiles/f2pm_sysmon.dir/proc_source.cpp.o.d"
  "/root/repo/src/sysmon/real_injectors.cpp" "src/sysmon/CMakeFiles/f2pm_sysmon.dir/real_injectors.cpp.o" "gcc" "src/sysmon/CMakeFiles/f2pm_sysmon.dir/real_injectors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/f2pm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/f2pm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/f2pm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/f2pm_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
