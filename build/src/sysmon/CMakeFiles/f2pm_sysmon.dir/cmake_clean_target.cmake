file(REMOVE_RECURSE
  "libf2pm_sysmon.a"
)
