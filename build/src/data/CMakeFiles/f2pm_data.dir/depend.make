# Empty dependencies file for f2pm_data.
# This may be replaced when dependencies are built.
