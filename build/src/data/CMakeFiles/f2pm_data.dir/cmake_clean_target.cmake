file(REMOVE_RECURSE
  "libf2pm_data.a"
)
