file(REMOVE_RECURSE
  "CMakeFiles/f2pm_data.dir/aggregation.cpp.o"
  "CMakeFiles/f2pm_data.dir/aggregation.cpp.o.d"
  "CMakeFiles/f2pm_data.dir/arff.cpp.o"
  "CMakeFiles/f2pm_data.dir/arff.cpp.o.d"
  "CMakeFiles/f2pm_data.dir/data_history.cpp.o"
  "CMakeFiles/f2pm_data.dir/data_history.cpp.o.d"
  "CMakeFiles/f2pm_data.dir/datapoint.cpp.o"
  "CMakeFiles/f2pm_data.dir/datapoint.cpp.o.d"
  "CMakeFiles/f2pm_data.dir/dataset.cpp.o"
  "CMakeFiles/f2pm_data.dir/dataset.cpp.o.d"
  "CMakeFiles/f2pm_data.dir/standardizer.cpp.o"
  "CMakeFiles/f2pm_data.dir/standardizer.cpp.o.d"
  "libf2pm_data.a"
  "libf2pm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2pm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
