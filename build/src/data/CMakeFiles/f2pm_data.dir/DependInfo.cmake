
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/aggregation.cpp" "src/data/CMakeFiles/f2pm_data.dir/aggregation.cpp.o" "gcc" "src/data/CMakeFiles/f2pm_data.dir/aggregation.cpp.o.d"
  "/root/repo/src/data/arff.cpp" "src/data/CMakeFiles/f2pm_data.dir/arff.cpp.o" "gcc" "src/data/CMakeFiles/f2pm_data.dir/arff.cpp.o.d"
  "/root/repo/src/data/data_history.cpp" "src/data/CMakeFiles/f2pm_data.dir/data_history.cpp.o" "gcc" "src/data/CMakeFiles/f2pm_data.dir/data_history.cpp.o.d"
  "/root/repo/src/data/datapoint.cpp" "src/data/CMakeFiles/f2pm_data.dir/datapoint.cpp.o" "gcc" "src/data/CMakeFiles/f2pm_data.dir/datapoint.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/f2pm_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/f2pm_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/standardizer.cpp" "src/data/CMakeFiles/f2pm_data.dir/standardizer.cpp.o" "gcc" "src/data/CMakeFiles/f2pm_data.dir/standardizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/f2pm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/f2pm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/f2pm_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
