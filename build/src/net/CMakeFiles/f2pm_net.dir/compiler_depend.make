# Empty compiler generated dependencies file for f2pm_net.
# This may be replaced when dependencies are built.
