file(REMOVE_RECURSE
  "CMakeFiles/f2pm_net.dir/fmc.cpp.o"
  "CMakeFiles/f2pm_net.dir/fmc.cpp.o.d"
  "CMakeFiles/f2pm_net.dir/fms.cpp.o"
  "CMakeFiles/f2pm_net.dir/fms.cpp.o.d"
  "CMakeFiles/f2pm_net.dir/protocol.cpp.o"
  "CMakeFiles/f2pm_net.dir/protocol.cpp.o.d"
  "CMakeFiles/f2pm_net.dir/socket.cpp.o"
  "CMakeFiles/f2pm_net.dir/socket.cpp.o.d"
  "libf2pm_net.a"
  "libf2pm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2pm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
