file(REMOVE_RECURSE
  "libf2pm_net.a"
)
