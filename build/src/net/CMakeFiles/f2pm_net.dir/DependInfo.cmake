
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/fmc.cpp" "src/net/CMakeFiles/f2pm_net.dir/fmc.cpp.o" "gcc" "src/net/CMakeFiles/f2pm_net.dir/fmc.cpp.o.d"
  "/root/repo/src/net/fms.cpp" "src/net/CMakeFiles/f2pm_net.dir/fms.cpp.o" "gcc" "src/net/CMakeFiles/f2pm_net.dir/fms.cpp.o.d"
  "/root/repo/src/net/protocol.cpp" "src/net/CMakeFiles/f2pm_net.dir/protocol.cpp.o" "gcc" "src/net/CMakeFiles/f2pm_net.dir/protocol.cpp.o.d"
  "/root/repo/src/net/socket.cpp" "src/net/CMakeFiles/f2pm_net.dir/socket.cpp.o" "gcc" "src/net/CMakeFiles/f2pm_net.dir/socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/f2pm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/f2pm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/f2pm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/f2pm_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
