file(REMOVE_RECURSE
  "libf2pm_util.a"
)
