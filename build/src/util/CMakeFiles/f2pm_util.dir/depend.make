# Empty dependencies file for f2pm_util.
# This may be replaced when dependencies are built.
