file(REMOVE_RECURSE
  "CMakeFiles/f2pm_util.dir/config.cpp.o"
  "CMakeFiles/f2pm_util.dir/config.cpp.o.d"
  "CMakeFiles/f2pm_util.dir/csv.cpp.o"
  "CMakeFiles/f2pm_util.dir/csv.cpp.o.d"
  "CMakeFiles/f2pm_util.dir/logging.cpp.o"
  "CMakeFiles/f2pm_util.dir/logging.cpp.o.d"
  "CMakeFiles/f2pm_util.dir/rng.cpp.o"
  "CMakeFiles/f2pm_util.dir/rng.cpp.o.d"
  "CMakeFiles/f2pm_util.dir/serialization.cpp.o"
  "CMakeFiles/f2pm_util.dir/serialization.cpp.o.d"
  "CMakeFiles/f2pm_util.dir/string_util.cpp.o"
  "CMakeFiles/f2pm_util.dir/string_util.cpp.o.d"
  "libf2pm_util.a"
  "libf2pm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2pm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
