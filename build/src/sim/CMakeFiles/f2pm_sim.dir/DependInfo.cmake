
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/anomalies.cpp" "src/sim/CMakeFiles/f2pm_sim.dir/anomalies.cpp.o" "gcc" "src/sim/CMakeFiles/f2pm_sim.dir/anomalies.cpp.o.d"
  "/root/repo/src/sim/campaign.cpp" "src/sim/CMakeFiles/f2pm_sim.dir/campaign.cpp.o" "gcc" "src/sim/CMakeFiles/f2pm_sim.dir/campaign.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/f2pm_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/f2pm_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/monitor.cpp" "src/sim/CMakeFiles/f2pm_sim.dir/monitor.cpp.o" "gcc" "src/sim/CMakeFiles/f2pm_sim.dir/monitor.cpp.o.d"
  "/root/repo/src/sim/resources.cpp" "src/sim/CMakeFiles/f2pm_sim.dir/resources.cpp.o" "gcc" "src/sim/CMakeFiles/f2pm_sim.dir/resources.cpp.o.d"
  "/root/repo/src/sim/server.cpp" "src/sim/CMakeFiles/f2pm_sim.dir/server.cpp.o" "gcc" "src/sim/CMakeFiles/f2pm_sim.dir/server.cpp.o.d"
  "/root/repo/src/sim/tpcw_workload.cpp" "src/sim/CMakeFiles/f2pm_sim.dir/tpcw_workload.cpp.o" "gcc" "src/sim/CMakeFiles/f2pm_sim.dir/tpcw_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/f2pm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/f2pm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/f2pm_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/f2pm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
