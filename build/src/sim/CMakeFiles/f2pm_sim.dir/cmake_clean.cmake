file(REMOVE_RECURSE
  "CMakeFiles/f2pm_sim.dir/anomalies.cpp.o"
  "CMakeFiles/f2pm_sim.dir/anomalies.cpp.o.d"
  "CMakeFiles/f2pm_sim.dir/campaign.cpp.o"
  "CMakeFiles/f2pm_sim.dir/campaign.cpp.o.d"
  "CMakeFiles/f2pm_sim.dir/event_queue.cpp.o"
  "CMakeFiles/f2pm_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/f2pm_sim.dir/monitor.cpp.o"
  "CMakeFiles/f2pm_sim.dir/monitor.cpp.o.d"
  "CMakeFiles/f2pm_sim.dir/resources.cpp.o"
  "CMakeFiles/f2pm_sim.dir/resources.cpp.o.d"
  "CMakeFiles/f2pm_sim.dir/server.cpp.o"
  "CMakeFiles/f2pm_sim.dir/server.cpp.o.d"
  "CMakeFiles/f2pm_sim.dir/tpcw_workload.cpp.o"
  "CMakeFiles/f2pm_sim.dir/tpcw_workload.cpp.o.d"
  "libf2pm_sim.a"
  "libf2pm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2pm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
