file(REMOVE_RECURSE
  "libf2pm_sim.a"
)
