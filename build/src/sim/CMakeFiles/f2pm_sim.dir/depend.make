# Empty dependencies file for f2pm_sim.
# This may be replaced when dependencies are built.
