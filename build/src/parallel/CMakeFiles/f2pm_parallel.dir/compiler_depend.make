# Empty compiler generated dependencies file for f2pm_parallel.
# This may be replaced when dependencies are built.
