file(REMOVE_RECURSE
  "CMakeFiles/f2pm_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/f2pm_parallel.dir/thread_pool.cpp.o.d"
  "libf2pm_parallel.a"
  "libf2pm_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2pm_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
