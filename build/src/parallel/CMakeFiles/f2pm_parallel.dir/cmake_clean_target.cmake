file(REMOVE_RECURSE
  "libf2pm_parallel.a"
)
