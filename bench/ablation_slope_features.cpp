// Ablation A2: the added metrics of §III-B.
//
// The paper argues the slope features (Eq. 1) and the inter-generation
// time are load-bearing: slopes expose accelerating resource exhaustion
// and the inter-generation time captures overload. This ablation retrains
// the main methods on four feature sets — levels only, levels+slopes,
// levels+intergen, everything — and reports S-MAE for each.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"

namespace {

using namespace f2pm;

struct FeatureSet {
  const char* label;
  std::vector<std::size_t> columns;
};

std::vector<FeatureSet> feature_sets() {
  std::vector<FeatureSet> sets;
  std::vector<std::size_t> levels;
  std::vector<std::size_t> slopes;
  for (std::size_t i = 0; i < data::kFeatureCount; ++i) {
    levels.push_back(i);
    slopes.push_back(data::kFeatureCount + i);
  }
  const std::size_t intergen = data::kInputCount - 2;
  const std::size_t intergen_slope = data::kInputCount - 1;

  FeatureSet only_levels{"levels only", levels};
  FeatureSet with_slopes{"levels + slopes", levels};
  with_slopes.columns.insert(with_slopes.columns.end(), slopes.begin(),
                             slopes.end());
  FeatureSet with_intergen{"levels + intergen", levels};
  with_intergen.columns.push_back(intergen);
  with_intergen.columns.push_back(intergen_slope);
  FeatureSet everything{"levels + slopes + intergen", with_slopes.columns};
  everything.columns.push_back(intergen);
  everything.columns.push_back(intergen_slope);
  return {only_levels, with_slopes, with_intergen, everything};
}

void print_table() {
  bench::print_banner("Ablation A2 - added metrics (slopes, intergen)");
  const auto& s = bench::study();
  std::printf("%-30s%-10s%-16s%-16s%-16s\n", "feature set", "cols",
              "linear_smae_s", "reptree_smae_s", "m5p_smae_s");
  std::printf("%s\n", std::string(88, '-').c_str());
  for (const auto& set : feature_sets()) {
    const data::Dataset train = s.train.select_features(set.columns);
    const data::Dataset validation =
        s.validation.select_features(set.columns);
    double smae[3] = {};
    const char* names[3] = {"linear", "reptree", "m5p"};
    for (int m = 0; m < 3; ++m) {
      auto model = ml::make_model(names[m]);
      smae[m] = ml::evaluate_model(*model, train.x, train.y, validation.x,
                                   validation.y, s.soft_threshold)
                    .soft_mae;
    }
    std::printf("%-30s%-10zu%-16.3f%-16.3f%-16.3f\n", set.label,
                set.columns.size(), smae[0], smae[1], smae[2]);
  }
  std::printf("\n");
}

void BM_TrainRepTreeLevelsOnly(benchmark::State& state) {
  const auto& s = bench::study();
  const auto set = feature_sets()[0];
  const data::Dataset train = s.train.select_features(set.columns);
  for (auto _ : state) {
    auto model = ml::make_model("reptree");
    model->fit(train.x, train.y);
    benchmark::DoNotOptimize(model->is_fitted());
  }
}
BENCHMARK(BM_TrainRepTreeLevelsOnly)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
