// Fig. 3 reproduction: Response Time Correlation.
//
// One simulated run to failure; for each monitoring datapoint we print the
// inter-generation time ("Generation time"), the measured mean client
// response time ("Response Time", the paper's instrumented-browser ground
// truth), and the RT predicted from the generation time alone by a linear
// regression ("Correlated RT"). The paper's claim is that both series rise
// together as the system degrades, so the cheap generation-time signal is a
// usable proxy for the client-visible RT.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"
#include "linalg/stats.hpp"

namespace {

using namespace f2pm;

struct Fig3Data {
  std::vector<double> time;      ///< Execution time of each datapoint.
  std::vector<double> gen_time;  ///< Inter-generation time.
  std::vector<double> rt;        ///< Measured client mean RT.
  linalg::LineFit fit;           ///< RT ~ gen_time correlation model.
};

Fig3Data build_series() {
  sim::CampaignConfig config = bench::campaign_config();
  const sim::RunResult run = sim::execute_run(config, 987654);
  Fig3Data data;
  const auto& samples = run.run.samples;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    data.time.push_back(samples[i].tgen);
    data.gen_time.push_back(samples[i].tgen - samples[i - 1].tgen);
    data.rt.push_back(run.response_times[i]);
  }
  data.fit = linalg::fit_line(data.gen_time, data.rt);
  return data;
}

void print_figure() {
  const Fig3Data data = build_series();
  std::printf("FIG. 3-equivalent: Response Time Correlation (one run)\n");
  std::printf("linear correlation model: rt = %.4f * gen_time + %.4f "
              "(r = %.3f, R2 = %.3f)\n\n",
              data.fit.slope, data.fit.intercept,
              linalg::pearson(data.gen_time, data.rt), data.fit.r2);
  std::printf("%-14s%-18s%-18s%-18s\n", "exec_time_s", "generation_time_s",
              "response_time_s", "correlated_rt_s");
  const std::size_t stride = std::max<std::size_t>(1, data.time.size() / 40);
  for (std::size_t i = 0; i < data.time.size(); i += stride) {
    std::printf("%-14.1f%-18.3f%-18.4f%-18.4f\n", data.time[i],
                data.gen_time[i], data.rt[i],
                data.fit.predict(data.gen_time[i]));
  }
  std::printf("\n");
}

void BM_ExecuteRunToFailure(benchmark::State& state) {
  sim::CampaignConfig config = bench::campaign_config();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const sim::RunResult run = sim::execute_run(config, seed++);
    benchmark::DoNotOptimize(run.run.fail_time);
    state.counters["samples"] =
        static_cast<double>(run.run.samples.size());
  }
}
BENCHMARK(BM_ExecuteRunToFailure)->Unit(benchmark::kMillisecond);

void BM_CorrelationFit(benchmark::State& state) {
  const Fig3Data data = build_series();
  for (auto _ : state) {
    const auto fit = linalg::fit_line(data.gen_time, data.rt);
    benchmark::DoNotOptimize(fit.slope);
  }
}
BENCHMARK(BM_CorrelationFit);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
