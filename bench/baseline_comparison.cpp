// Baseline comparison (paper §II): F2PM's RTTF regression vs. the
// three-state classifier of Alonso et al. [12] vs. the naive
// time-to-exhaustion heuristic.
//
// The paper's argument against [12] is that predicting {all-ok, warning,
// danger} is strictly weaker than estimating the RTTF: a regression model
// can always be thresholded into states, but not vice versa. This bench
// measures both directions on the same validation data:
//   * state accuracy / danger recall of (a) the direct classifier,
//     (b) each F2PM regressor thresholded into states, (c) the heuristic;
//   * RTTF MAE for the regressors and the heuristic (the classifier has
//     no entry — it cannot produce one, which is the point).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"
#include "ml/exhaustion_heuristic.hpp"
#include "ml/state_classifier.hpp"

namespace {

using namespace f2pm;

const ml::StateThresholds kThresholds{.danger_seconds = 300.0,
                                      .warning_seconds = 900.0};

struct Row {
  std::string label;
  ml::ClassificationReport states;
  double mae = -1.0;  ///< < 0 = not applicable (classifier).
};

std::vector<Row> compute_rows() {
  const auto& s = bench::study();
  const auto actual_states = ml::states_from_rttf(s.validation.y, kThresholds);
  std::vector<Row> rows;

  // (a) the direct 3-state classifier of [12].
  {
    const auto train_states = ml::states_from_rttf(s.train.y, kThresholds);
    ml::StateClassifierTree classifier;
    classifier.fit(s.train.x, train_states);
    Row row;
    row.label = "state classifier [12]";
    row.states = ml::evaluate_classification(classifier.predict(s.validation.x),
                                             actual_states);
    rows.push_back(std::move(row));
  }

  // (b) F2PM regressors, thresholded into the same states.
  for (const char* name : {"reptree", "m5p", "linear"}) {
    auto model = ml::make_model(name);
    model->fit(s.train.x, s.train.y);
    const auto predicted = model->predict(s.validation.x);
    Row row;
    row.label = std::string("F2PM ") + core::display_model_name(name);
    row.states = ml::evaluate_classification(
        ml::states_from_rttf(predicted, kThresholds), actual_states);
    row.mae = ml::mean_absolute_error(predicted, s.validation.y);
    rows.push_back(std::move(row));
  }

  // (c) the calibrated time-to-exhaustion heuristic.
  {
    ml::ExhaustionHeuristic heuristic;
    heuristic.fit(s.train.x, s.train.y);
    const auto predicted = heuristic.predict(s.validation.x);
    Row row;
    row.label = "exhaustion heuristic";
    row.states = ml::evaluate_classification(
        ml::states_from_rttf(predicted, kThresholds), actual_states);
    row.mae = ml::mean_absolute_error(predicted, s.validation.y);
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_table() {
  bench::print_banner(
      "Baseline comparison - RTTF regression vs state classification vs "
      "heuristic");
  std::printf("state thresholds: danger < %.0fs, warning < %.0fs\n\n",
              kThresholds.danger_seconds, kThresholds.warning_seconds);
  std::printf("%-28s%-14s%-16s%-14s\n", "Approach", "state_acc",
              "danger_recall", "rttf_mae_s");
  std::printf("%s\n", std::string(72, '-').c_str());
  for (const auto& row : compute_rows()) {
    std::printf("%-28s%-14.3f%-16.3f", row.label.c_str(),
                row.states.accuracy, row.states.danger_recall);
    if (row.mae >= 0.0) {
      std::printf("%-14.1f\n", row.mae);
    } else {
      std::printf("%-14s\n", "n/a");
    }
  }
  std::printf(
      "\n(n/a: a state classifier cannot produce an RTTF estimate - the "
      "paper's core argument for regression models)\n\n");
}

void BM_TrainStateClassifier(benchmark::State& state) {
  const auto& s = bench::study();
  const auto train_states = ml::states_from_rttf(s.train.y, kThresholds);
  for (auto _ : state) {
    ml::StateClassifierTree classifier;
    classifier.fit(s.train.x, train_states);
    benchmark::DoNotOptimize(classifier.num_leaves());
  }
}
BENCHMARK(BM_TrainStateClassifier)->Unit(benchmark::kMillisecond);

void BM_HeuristicPredict(benchmark::State& state) {
  const auto& s = bench::study();
  ml::ExhaustionHeuristic heuristic;
  heuristic.fit(s.train.x, s.train.y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristic.predict(s.validation.x).size());
  }
}
BENCHMARK(BM_HeuristicPredict)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
