// GBDT training bench: (1) Soft-MAE on the canonical leak campaign for
// the gradient-boosted ensemble vs the single-tree and bagged baselines —
// the headline is the boosted model beating the single REP-Tree's S-MAE —
// and (2) fit-time scaling of the leaf-wise histogram booster against
// REP-Tree (histogram engine), M5P, and bagged trees on synthetic data.
//
// Emits BENCH_gbdt_training.json next to the binary: per-model S-MAE on
// the campaign, per-config fit timings (min over reps), and the headline
// S-MAE delta (reptree - gbdt, positive = GBDT wins). `--smoke` shrinks
// the synthetic sizes and the boosting schedule so CI exercises the full
// code path in seconds.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "ml/ensemble.hpp"
#include "ml/gbdt.hpp"
#include "ml/m5p.hpp"
#include "ml/metrics.hpp"
#include "ml/reptree.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace f2pm;

constexpr std::size_t kFeatures = 16;

/// Same piecewise response as the tree-scaling bench: realistic depth,
/// enough ties that histogram binning does real work.
void make_data(std::size_t n, util::Rng& rng, linalg::Matrix& x,
               std::vector<double>& y) {
  x = linalg::Matrix(n, kFeatures);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < kFeatures; ++c) {
      x(i, c) = c % 3 == 0 ? static_cast<double>(rng.uniform_int(0, 15))
                           : rng.uniform(-2.0, 2.0);
    }
    y[i] = std::sin(x(i, 1)) + 0.3 * x(i, 0) +
           (x(i, 2) > 0.5 ? 2.0 : -1.0) + 0.2 * x(i, 4) * x(i, 5) +
           rng.normal(0.0, 0.05);
  }
}

struct Result {
  std::string section;
  std::string impl;
  std::size_t n = 0;
  double seconds = 0.0;
  double metric = 0.0;  ///< S-MAE for campaign rows, MAE for scaling rows.
};

std::vector<Result> g_results;

void record(const Result& r) {
  std::printf("%-26s%-20s%-10zu%-14.4f%-10.5f\n", r.section.c_str(),
              r.impl.c_str(), r.n, r.seconds, r.metric);
  g_results.push_back(r);
}

template <typename Fn>
double timed_min(std::size_t reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < reps; ++i) {
    best = std::min(best, util::timed(fn));
  }
  return best;
}

/// The boosting schedule used for the campaign headline. Small leaves +
/// slow shrinkage + feature subsampling: the RTTF surface is dominated by
/// a few monotone resource counters, so many shallow corrective trees
/// beat one deep variance-greedy tree.
util::Config campaign_gbdt_config() {
  util::Config params;
  params.set("gbdt.n_rounds", "300");
  params.set("gbdt.learning_rate", "0.05");
  params.set("gbdt.max_leaves", "16");
  params.set("gbdt.min_instances", "5");
  params.set("gbdt.row_subsample", "0.8");
  params.set("gbdt.feature_subsample", "0.8");
  params.set("gbdt.histogram_bins", "64");
  params.set("gbdt.seed", "2015");
  return params;
}

/// Fits `name` on the campaign train split, scores the validation split,
/// and records S-MAE at the study threshold.
double campaign_row(const std::string& name, const util::Config& params) {
  const auto& s = bench::study();
  auto model = ml::make_model(name, params);
  const ml::EvaluationReport report =
      ml::evaluate_model(*model, s.train.x, s.train.y, s.validation.x,
                         s.validation.y, s.soft_threshold);
  Result r;
  r.section = "campaign_smae";
  r.impl = name;
  r.n = s.train.num_rows();
  r.seconds = report.training_seconds;
  r.metric = report.soft_mae;
  record(r);
  return report.soft_mae;
}

template <typename Model>
void scaling_row(const char* impl, Model& model, std::size_t reps,
                 const linalg::Matrix& x, const std::vector<double>& y,
                 const linalg::Matrix& x_val,
                 const std::vector<double>& y_val) {
  Result r;
  r.section = "fit_scaling";
  r.impl = impl;
  r.n = x.rows();
  r.seconds = timed_min(reps, [&] { model.fit(x, y); });
  r.metric = ml::mean_absolute_error(model.predict(x_val), y_val);
  record(r);
}

void write_json(double gbdt_smae, double reptree_smae) {
  std::FILE* out = std::fopen("BENCH_gbdt_training.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"bench\": \"gbdt_training\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < g_results.size(); ++i) {
    const Result& r = g_results[i];
    std::fprintf(out,
                 "    {\"section\": \"%s\", \"impl\": \"%s\", \"n\": %zu, "
                 "\"seconds\": %.6f, \"metric\": %.6f}%s\n",
                 r.section.c_str(), r.impl.c_str(), r.n, r.seconds, r.metric,
                 i + 1 < g_results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"gbdt_smae\": %.6f,\n", gbdt_smae);
  std::fprintf(out, "  \"reptree_smae\": %.6f,\n", reptree_smae);
  std::fprintf(out, "  \"smae_delta_vs_reptree\": %.6f,\n",
               reptree_smae - gbdt_smae);
  std::fprintf(out, "  \"hardware_threads\": %u\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "}\n");
  std::fclose(out);
}

void run_all(bool smoke) {
  bench::print_banner("GBDT on the histogram engine - S-MAE and fit scaling");
  std::printf("%-26s%-20s%-10s%-14s%-10s\n", "section", "impl", "n",
              "seconds", "smae/mae");
  std::printf("%s\n", std::string(80, '-').c_str());

  // Campaign S-MAE: the headline comparison. Baselines use the registry
  // defaults the other benches report.
  util::Config gbdt_params = campaign_gbdt_config();
  if (smoke) gbdt_params.set("gbdt.n_rounds", "40");
  const double gbdt_smae = campaign_row("gbdt", gbdt_params);
  const double reptree_smae = campaign_row("reptree", util::Config{});
  campaign_row("m5p", util::Config{});
  campaign_row("bagging", util::Config{});

  // Fit-time scaling on synthetic data, all tree learners at a matched
  // per-leaf floor; GBDT at two schedules to show round-count linearity.
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{500}
            : std::vector<std::size_t>{2000, 20000};
  const std::size_t reps = smoke ? 1 : 3;
  const std::size_t rounds_short = smoke ? 10 : 50;
  const std::size_t rounds_long = smoke ? 20 : 200;
  for (const std::size_t n : sizes) {
    util::Rng rng(4242);
    linalg::Matrix x;
    std::vector<double> y;
    make_data(n, rng, x, y);
    linalg::Matrix x_val;
    std::vector<double> y_val;
    make_data(500, rng, x_val, y_val);

    ml::RepTreeOptions tree_options;
    tree_options.split_mode = ml::SplitMode::kHistogram;
    tree_options.min_instances_per_leaf = 25;
    ml::RepTree reptree(tree_options);
    scaling_row("reptree_hist", reptree, reps, x, y, x_val, y_val);

    ml::M5P m5p;
    scaling_row("m5p", m5p, reps, x, y, x_val, y_val);

    ml::BaggedTreesOptions bag_options;
    bag_options.num_trees = rounds_short;
    ml::BaggedTrees bagging(bag_options);
    scaling_row(("bagging_" + std::to_string(rounds_short)).c_str(), bagging,
                reps, x, y, x_val, y_val);

    for (const std::size_t rounds : {rounds_short, rounds_long}) {
      ml::GbdtOptions options;
      options.n_rounds = rounds;
      options.learning_rate = 0.1;
      options.max_leaves = 31;
      options.min_instances_per_leaf = 25;
      ml::GbdtRegressor gbdt(options);
      scaling_row(("gbdt_" + std::to_string(rounds)).c_str(), gbdt, reps, x,
                  y, x_val, y_val);
    }
  }

  std::printf("\ncampaign S-MAE: gbdt %.3fs vs reptree %.3fs (delta %+.3fs, "
              "positive = gbdt wins)\n\n",
              gbdt_smae, reptree_smae, reptree_smae - gbdt_smae);
  write_json(gbdt_smae, reptree_smae);
}

/// Microbench: one boosted fit-and-score on the campaign split, the unit
/// CI tracks for regressions in the histogram booster.
void BM_TrainAndScoreGbdt(benchmark::State& state) {
  const auto& s = bench::study();
  ml::GbdtOptions options;
  options.n_rounds = 40;
  options.max_leaves = 16;
  for (auto _ : state) {
    ml::GbdtRegressor model(options);
    const auto report =
        ml::evaluate_model(model, s.train.x, s.train.y, s.validation.x,
                           s.validation.y, s.soft_threshold);
    benchmark::DoNotOptimize(report.soft_mae);
  }
}
BENCHMARK(BM_TrainAndScoreGbdt)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  run_all(smoke);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
