// SVR training scaling: seed dense-matrix SMO vs the kernel-row-cache
// solver, with and without shrinking. The seed solver (verbatim algorithm,
// compact copy below) precomputes the full n x n kernel matrix; the new
// solver computes rows on demand through an LRU cache, so its kernel
// storage is bounded by the budget while the dense baseline grows as n².
//
// Emits BENCH_svr_smo.json next to the binary: per-config training time,
// iterations, kernel storage and validation MAE, plus the speedup of the
// cached+shrinking solver over the seed at the largest n.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "data/standardizer.hpp"
#include "ml/kernels.hpp"
#include "ml/metrics.hpp"
#include "ml/svr.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace f2pm;

constexpr std::size_t kFeatures = 8;

void make_data(std::size_t n, util::Rng& rng, linalg::Matrix& x,
               std::vector<double>& y) {
  x = linalg::Matrix(n, kFeatures);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < kFeatures; ++c) {
      x(i, c) = rng.uniform(-2.0, 2.0);
    }
    y[i] = std::sin(x(i, 0)) + 0.4 * x(i, 1) * x(i, 1) - 0.6 * x(i, 2) +
           0.2 * x(i, 3) * x(i, 4) + rng.normal(0.0, 0.05);
  }
}

ml::SvrOptions bench_options() {
  ml::SvrOptions options;
  options.c = 5.0;
  options.epsilon = 0.05;
  options.kernel.gamma = 0.25;
  options.tolerance = 1e-3;
  return options;
}

/// The growth-seed SMO solver, kept verbatim as the baseline: precomputed
/// dense kernel matrix, WSS-1, no cache, no shrinking.
struct DenseSeedSvr {
  ml::KernelParams kernel;
  data::Standardizer input_scaler;
  data::TargetScaler target_scaler;
  linalg::Matrix support;
  std::vector<double> theta;
  double bias = 0.0;
  std::size_t iterations = 0;

  void fit(const linalg::Matrix& x_raw, const std::vector<double>& y_raw,
           const ml::SvrOptions& options) {
    input_scaler = data::Standardizer::fit(x_raw);
    target_scaler = data::TargetScaler::fit(y_raw);
    const linalg::Matrix x = input_scaler.transform(x_raw);
    const std::vector<double> y = target_scaler.transform(y_raw);
    kernel = options.kernel;
    kernel.gamma = ml::resolve_gamma(options.kernel, x.cols());
    const std::size_t n = x.rows();
    const double c = options.c;
    const double eps = options.epsilon;
    const linalg::Matrix k = ml::kernel_matrix(kernel, x);
    const std::size_t size = 2 * n;
    std::vector<double> alpha(size, 0.0);
    std::vector<double> grad(size);
    for (std::size_t i = 0; i < n; ++i) {
      grad[i] = eps - y[i];
      grad[n + i] = eps + y[i];
    }
    auto sign_of = [n](std::size_t t) { return t < n ? 1.0 : -1.0; };
    auto base_of = [n](std::size_t t) { return t < n ? t : t - n; };
    iterations = 0;
    while (iterations < options.max_iterations) {
      double m_up = -std::numeric_limits<double>::infinity();
      double m_low = std::numeric_limits<double>::infinity();
      std::size_t i = size;
      std::size_t j = size;
      for (std::size_t t = 0; t < size; ++t) {
        const double s = sign_of(t);
        const double score = -s * grad[t];
        const bool in_up =
            (s > 0.0 && alpha[t] < c) || (s < 0.0 && alpha[t] > 0.0);
        const bool in_low =
            (s < 0.0 && alpha[t] < c) || (s > 0.0 && alpha[t] > 0.0);
        if (in_up && score > m_up) {
          m_up = score;
          i = t;
        }
        if (in_low && score < m_low) {
          m_low = score;
          j = t;
        }
      }
      if (i == size || j == size || m_up - m_low < options.tolerance) break;
      const double si = sign_of(i);
      const double sj = sign_of(j);
      const std::size_t bi = base_of(i);
      const std::size_t bj = base_of(j);
      const double kii = k(bi, bi);
      const double kjj = k(bj, bj);
      const double kij = k(bi, bj);
      const double old_ai = alpha[i];
      const double old_aj = alpha[j];
      if (si != sj) {
        double quad = kii + kjj + 2.0 * kij;
        if (quad <= 0.0) quad = 1e-12;
        const double delta = (-grad[i] - grad[j]) / quad;
        const double diff = alpha[i] - alpha[j];
        alpha[i] += delta;
        alpha[j] += delta;
        if (diff > 0.0 && alpha[j] < 0.0) {
          alpha[j] = 0.0;
          alpha[i] = diff;
        } else if (diff <= 0.0 && alpha[i] < 0.0) {
          alpha[i] = 0.0;
          alpha[j] = -diff;
        }
        if (diff > 0.0 && alpha[i] > c) {
          alpha[i] = c;
          alpha[j] = c - diff;
        } else if (diff <= 0.0 && alpha[j] > c) {
          alpha[j] = c;
          alpha[i] = c + diff;
        }
      } else {
        double quad = kii + kjj - 2.0 * kij;
        if (quad <= 0.0) quad = 1e-12;
        const double delta = (grad[i] - grad[j]) / quad;
        const double sum = alpha[i] + alpha[j];
        alpha[i] -= delta;
        alpha[j] += delta;
        if (sum > c && alpha[i] > c) {
          alpha[i] = c;
          alpha[j] = sum - c;
        } else if (sum <= c && alpha[j] < 0.0) {
          alpha[j] = 0.0;
          alpha[i] = sum;
        }
        if (sum > c && alpha[j] > c) {
          alpha[j] = c;
          alpha[i] = sum - c;
        } else if (sum <= c && alpha[i] < 0.0) {
          alpha[i] = 0.0;
          alpha[j] = sum;
        }
      }
      const double delta_i = alpha[i] - old_ai;
      const double delta_j = alpha[j] - old_aj;
      if (delta_i == 0.0 && delta_j == 0.0) {
        ++iterations;
        continue;
      }
      for (std::size_t t = 0; t < size; ++t) {
        const std::size_t bt = base_of(t);
        grad[t] += sign_of(t) *
                   (si * k(bt, bi) * delta_i + sj * k(bt, bj) * delta_j);
      }
      ++iterations;
    }
    theta.resize(n);
    for (std::size_t t = 0; t < n; ++t) theta[t] = alpha[t] - alpha[n + t];
    std::vector<double> g(n, 0.0);
    for (std::size_t col = 0; col < n; ++col) {
      if (theta[col] == 0.0) continue;
      for (std::size_t row = 0; row < n; ++row) {
        g[row] += theta[col] * k(row, col);
      }
    }
    double free_sum = 0.0;
    std::size_t free_count = 0;
    for (std::size_t t = 0; t < n; ++t) {
      if (alpha[t] > 0.0 && alpha[t] < c) {
        free_sum += y[t] - eps - g[t];
        ++free_count;
      }
      if (alpha[n + t] > 0.0 && alpha[n + t] < c) {
        free_sum += y[t] + eps - g[t];
        ++free_count;
      }
    }
    bias = free_count > 0 ? free_sum / static_cast<double>(free_count) : 0.0;
    support = x;
  }

  [[nodiscard]] std::vector<double> predict(const linalg::Matrix& x) const {
    const linalg::Matrix scaled = input_scaler.transform(x);
    std::vector<double> out(scaled.rows());
    for (std::size_t r = 0; r < scaled.rows(); ++r) {
      double value = bias;
      for (std::size_t s = 0; s < support.rows(); ++s) {
        if (theta[s] == 0.0) continue;
        value +=
            theta[s] * ml::kernel_value(kernel, support.row(s), scaled.row(r));
      }
      out[r] = target_scaler.inverse(value);
    }
    return out;
  }
};

struct Result {
  std::size_t n = 0;
  std::string impl;
  double train_seconds = 0.0;
  std::size_t kernel_bytes = 0;
  std::size_t iterations = 0;
  double mae = 0.0;
};

Result run_seed(const linalg::Matrix& x, const std::vector<double>& y,
                const linalg::Matrix& x_val, const std::vector<double>& y_val) {
  Result r;
  r.n = x.rows();
  r.impl = "seed_dense";
  DenseSeedSvr model;
  r.train_seconds = util::timed([&] { model.fit(x, y, bench_options()); });
  r.kernel_bytes = x.rows() * x.rows() * sizeof(double);
  r.iterations = model.iterations;
  r.mae = ml::mean_absolute_error(model.predict(x_val), y_val);
  return r;
}

Result run_cached(const linalg::Matrix& x, const std::vector<double>& y,
                  const linalg::Matrix& x_val,
                  const std::vector<double>& y_val, bool shrinking,
                  std::size_t cache_bytes, const std::string& impl) {
  Result r;
  r.n = x.rows();
  r.impl = impl;
  ml::SvrOptions options = bench_options();
  options.shrinking = shrinking;
  options.cache_bytes = cache_bytes;
  ml::KernelSvr model(options);
  r.train_seconds = util::timed([&] { model.fit(x, y); });
  r.kernel_bytes = model.cache_stats().peak_bytes;
  r.iterations = model.iterations_used();
  r.mae = ml::mean_absolute_error(model.predict(x_val), y_val);
  return r;
}

void write_json(const std::vector<Result>& results, double speedup,
                std::size_t max_n) {
  std::FILE* out = std::fopen("BENCH_svr_smo.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"bench\": \"svr_smo_scaling\",\n");
  std::fprintf(out, "  \"tolerance\": %.1e,\n", bench_options().tolerance);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(out,
                 "    {\"n\": %zu, \"impl\": \"%s\", \"train_seconds\": %.6f, "
                 "\"kernel_bytes\": %zu, \"iterations\": %zu, \"mae\": %.6f}%s\n",
                 r.n, r.impl.c_str(), r.train_seconds, r.kernel_bytes,
                 r.iterations, r.mae, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"speedup_at_max_n\": {\"n\": %zu, \"value\": %.3f}\n",
               max_n, speedup);
  std::fprintf(out, "}\n");
  std::fclose(out);
}

void run_all() {
  // Synthetic fixture (not the shared campaign study): SVR scaling needs
  // controlled n, which the fixed 70/30 split cannot provide.
  std::printf(
      "== F2PM perf: SVR SMO scaling - dense seed vs kernel-row cache ==\n");
  std::printf(
      "synthetic regression, %zu features, validation on 400 held-out rows, "
      "tolerance %.0e\n\n",
      kFeatures, bench_options().tolerance);
  std::printf("%-8s%-16s%-16s%-16s%-14s%-10s\n", "n", "impl",
              "train (s)", "kernel (KB)", "iterations", "mae");
  std::printf("%s\n", std::string(80, '-').c_str());
  std::vector<Result> results;
  const std::vector<std::size_t> sizes{500, 1000, 2000};
  double seed_at_max = 0.0;
  double cached_at_max = 0.0;
  for (std::size_t n : sizes) {
    util::Rng rng(2015);
    linalg::Matrix x;
    std::vector<double> y;
    make_data(n, rng, x, y);
    linalg::Matrix x_val;
    std::vector<double> y_val;
    make_data(400, rng, x_val, y_val);
    // Tight budget: 1/8 of the dense matrix, so the cache is genuinely
    // partial and eviction/recompute churn shows up in the numbers.
    const std::size_t tight_budget = std::max<std::size_t>(
        2 * n * sizeof(double), n * n * sizeof(double) / 8);
    const std::size_t default_budget = ml::SvrOptions{}.cache_bytes;
    const Result seed = run_seed(x, y, x_val, y_val);
    const Result full =
        run_cached(x, y, x_val, y_val, false, default_budget, "cache_full");
    const Result shrink =
        run_cached(x, y, x_val, y_val, true, default_budget, "cache_shrink");
    const Result tight =
        run_cached(x, y, x_val, y_val, true, tight_budget, "cache_tight");
    for (const Result& r : {seed, full, shrink, tight}) {
      std::printf("%-8zu%-16s%-16.4f%-16.1f%-14zu%-10.5f\n", r.n,
                  r.impl.c_str(), r.train_seconds,
                  static_cast<double>(r.kernel_bytes) / 1024.0, r.iterations,
                  r.mae);
      results.push_back(r);
    }
    if (n == sizes.back()) {
      seed_at_max = seed.train_seconds;
      cached_at_max = shrink.train_seconds;
    }
  }
  const double speedup =
      cached_at_max > 0.0 ? seed_at_max / cached_at_max : 0.0;
  std::printf("\nspeedup at n=%zu (seed_dense / cache_shrink): %.2fx\n\n",
              sizes.back(), speedup);
  write_json(results, speedup, sizes.back());
}

}  // namespace

int main(int argc, char** argv) {
  run_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
