// Shared campaign/study fixture for the benchmark harness. Every bench
// binary reproduces one table or figure of the paper on the same simulated
// TPC-W study so numbers are comparable across binaries: 30 runs-to-crash,
// 60 emulated browsers, seed 2015, 30-second aggregation windows, 70/30
// split (seed 7), S-MAE threshold = 10% of the maximum observed RTTF.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/feature_selection.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "data/dataset.hpp"
#include "ml/metrics.hpp"
#include "ml/registry.hpp"
#include "sim/campaign.hpp"
#include "util/rng.hpp"

namespace f2pm::bench {

/// Canonical campaign configuration used by every bench binary.
inline sim::CampaignConfig campaign_config() {
  sim::CampaignConfig config;
  config.num_runs = 30;
  config.seed = 2015;
  config.workload.num_browsers = 60;
  return config;
}

/// Everything the benches need, built once per process.
struct Study {
  data::DataHistory history;
  data::Dataset dataset;
  data::Dataset train;
  data::Dataset validation;
  data::Dataset train_selected;       ///< Lasso-selected columns (λ = 1e9).
  data::Dataset validation_selected;
  core::FeatureSelectionResult selection;
  std::vector<std::size_t> selected_columns;
  double soft_threshold = 0.0;
};

inline const Study& study() {
  static const Study instance = [] {
    Study s;
    s.history = sim::run_campaign(campaign_config());
    data::AggregationOptions aggregation;
    aggregation.window_seconds = 30.0;
    s.dataset = data::build_dataset(data::aggregate(s.history, aggregation));
    util::Rng rng(7);
    auto split = data::split_dataset(s.dataset, 0.7, rng);
    s.train = std::move(split.train);
    s.validation = std::move(split.validation);
    double max_rttf = 0.0;
    for (double y : s.dataset.y) max_rttf = std::max(max_rttf, y);
    s.soft_threshold = 0.10 * max_rttf;
    s.selection = core::select_features(s.train, core::paper_lambda_grid());
    s.selected_columns = s.selection.at_lambda(1e9).selected;
    s.train_selected = s.train.select_features(s.selected_columns);
    s.validation_selected =
        s.validation.select_features(s.selected_columns);
    return s;
  }();
  return instance;
}

/// The λ grid used for "Lasso as a predictor" rows of Tables II-IV.
inline std::vector<double> lasso_row_lambdas() {
  return core::paper_lambda_grid();
}

/// Prints the standard fixture banner so every bench output is
/// self-describing.
inline void print_banner(const char* artifact) {
  const Study& s = study();
  std::printf("== F2PM reproduction: %s ==\n", artifact);
  std::printf(
      "study: %zu runs (mean TTF %.1fs), %zu raw datapoints, %zu aggregated "
      "(30s windows), train/validation %zu/%zu, S-MAE threshold %.1fs, "
      "selected features at lambda=1e9: %zu of %zu\n\n",
      s.history.num_runs(), s.history.mean_time_to_failure(),
      s.history.num_samples(), s.dataset.num_rows(), s.train.num_rows(),
      s.validation.num_rows(), s.soft_threshold, s.selected_columns.size(),
      s.dataset.num_features());
}

}  // namespace f2pm::bench
