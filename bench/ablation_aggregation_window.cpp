// Ablation A1: aggregation-window width.
//
// §III-B motivates aggregation with two claims: it de-skews the raw
// datapoint stream and it shrinks the training set "without affecting the
// accuracy of the model". This sweep quantifies both: for window widths
// from 5s to 120s it reports the aggregated row count, REP-Tree and
// Linear-Regression S-MAE, and REP-Tree training time.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"
#include "util/timer.hpp"

namespace {

using namespace f2pm;

const std::vector<double>& window_grid() {
  static const std::vector<double> grid{5.0, 10.0, 20.0, 30.0, 60.0, 120.0};
  return grid;
}

void print_table() {
  bench::print_banner("Ablation A1 - aggregation window width");
  const auto& history = bench::study().history;
  std::printf("%-12s%-12s%-18s%-18s%-18s\n", "window_s", "rows",
              "reptree_smae_s", "linear_smae_s", "reptree_train_s");
  std::printf("%s\n", std::string(78, '-').c_str());
  for (double window : window_grid()) {
    data::AggregationOptions aggregation;
    aggregation.window_seconds = window;
    const data::Dataset dataset =
        data::build_dataset(data::aggregate(history, aggregation));
    util::Rng rng(7);
    const auto split = data::split_dataset(dataset, 0.7, rng);
    double max_rttf = 0.0;
    for (double y : dataset.y) max_rttf = std::max(max_rttf, y);
    const double threshold = 0.10 * max_rttf;

    auto reptree = ml::make_model("reptree");
    const auto rep_report =
        ml::evaluate_model(*reptree, split.train.x, split.train.y,
                           split.validation.x, split.validation.y, threshold);
    auto linear = ml::make_model("linear");
    const auto lin_report =
        ml::evaluate_model(*linear, split.train.x, split.train.y,
                           split.validation.x, split.validation.y, threshold);
    std::printf("%-12.0f%-12zu%-18.3f%-18.3f%-18.4f\n", window,
                dataset.num_rows(), rep_report.soft_mae, lin_report.soft_mae,
                rep_report.training_seconds);
  }
  std::printf("\n");
}

void BM_Aggregate(benchmark::State& state) {
  const auto& history = bench::study().history;
  data::AggregationOptions aggregation;
  aggregation.window_seconds = static_cast<double>(state.range(0));
  for (auto _ : state) {
    const auto points = data::aggregate(history, aggregation);
    benchmark::DoNotOptimize(points.size());
  }
  state.counters["rows"] = static_cast<double>(
      data::aggregate(history, aggregation).size());
}
BENCHMARK(BM_Aggregate)->Arg(5)->Arg(30)->Arg(120)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
