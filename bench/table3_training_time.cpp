// Table III reproduction: training time per method, on all parameters and
// on the Lasso-selected subset.
//
// Shapes to check against the paper: the SVM family costs orders of
// magnitude more than LR/REP-Tree/M5P (417s vs 0.3s in the paper's WEKA
// setup), and the selected-feature column is uniformly cheaper than the
// all-parameters column. Each method is also registered as a
// google-benchmark case so the timings come with proper repetition.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"
#include "util/timer.hpp"

namespace {

using namespace f2pm;

const std::vector<std::string>& method_names() {
  static const std::vector<std::string> names{"linear", "m5p", "reptree",
                                              "lasso", "svm", "svm2"};
  return names;
}

void print_table() {
  bench::print_banner("Table III - training time");
  const auto& s = bench::study();
  std::printf("%-22s%-24s%-24s\n", "Algorithm", "All params train (s)",
              "Lasso-selected train (s)");
  std::printf("%s\n", std::string(70, '-').c_str());
  for (const auto& name : method_names()) {
    auto model_all = ml::make_model(name);
    const double all_seconds =
        util::timed([&] { model_all->fit(s.train.x, s.train.y); });
    auto model_selected = ml::make_model(name);
    const double selected_seconds = util::timed(
        [&] { model_selected->fit(s.train_selected.x, s.train_selected.y); });
    std::printf("%-22s%-24.4f%-24.4f\n",
                core::display_model_name(name).c_str(), all_seconds,
                selected_seconds);
  }
  std::printf("\n");
}

void BM_Train(benchmark::State& state, const std::string& name,
              bool selected) {
  const auto& s = bench::study();
  const data::Dataset& train = selected ? s.train_selected : s.train;
  for (auto _ : state) {
    auto model = ml::make_model(name);
    model->fit(train.x, train.y);
    benchmark::DoNotOptimize(model->is_fitted());
  }
}

void register_benchmarks() {
  for (const auto& name : method_names()) {
    for (bool selected : {false, true}) {
      const std::string label =
          "BM_Train/" + name + (selected ? "/selected" : "/all");
      auto* bench = benchmark::RegisterBenchmark(
          label.c_str(),
          [name, selected](benchmark::State& state) {
            BM_Train(state, name, selected);
          });
      bench->Unit(benchmark::kMillisecond);
      if (name == "svm" || name == "svm2") {
        // The heavyweights: one timed iteration is plenty.
        bench->Iterations(1);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
