// Per-datapoint hot-path microbench: isolates the three costs the serve
// tier pays per streamed sample — window aggregation (the vectorized
// column-sweep kernel vs the legacy per-feature scalar loop), the full
// observe -> aggregate -> score pipeline through OnlinePredictor, and the
// frame codec (zero-copy next_view() vs the materializing next()).
//
// The kernel comparison pits linalg::window_mean_slope against a faithful
// replica of the pre-vectorization form: one pass over the window PER
// FEATURE, walking the row-major sample matrix column-major. Both produce
// bit-identical results (asserted here on every window — this bench
// doubles as a parity smoke), so the delta is pure memory-order and
// vectorization, not arithmetic shortcuts.
//
// Emits BENCH_aggregate_score.json next to the binary. `--smoke` shrinks
// iteration counts (CI) with the same output schema.
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/online.hpp"
#include "data/aggregation.hpp"
#include "data/datapoint.hpp"
#include "linalg/matrix.hpp"
#include "linalg/window_stats.hpp"
#include "ml/linear_regression.hpp"
#include "net/protocol.hpp"
#include "serve/arena.hpp"
#include "util/rng.hpp"

namespace {

using namespace f2pm;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kStride = sizeof(data::RawDatapoint) / sizeof(double);

/// The pre-vectorization aggregation order: per feature, one scalar pass
/// down the window. Same pinned row-index summation, so results are
/// bit-identical to the kernel — only the traversal order differs.
void scalar_reference_mean_slope(const data::RawDatapoint* samples,
                                 std::size_t count, double divisor,
                                 double* means, double* slopes) {
  for (std::size_t f = 0; f < data::kFeatureCount; ++f) {
    double sum = 0.0;
    for (std::size_t i = 0; i < count; ++i) sum += samples[i].values[f];
    means[f] = sum / divisor;
    slopes[f] =
        (samples[count - 1].values[f] - samples[0].values[f]) / divisor;
  }
}

std::vector<data::RawDatapoint> make_window(util::Rng& rng,
                                            std::size_t count) {
  std::vector<data::RawDatapoint> window(count);
  double tgen = 0.0;
  for (auto& sample : window) {
    sample.tgen = tgen;
    tgen += 0.05;
    for (std::size_t f = 0; f < data::kFeatureCount; ++f) {
      sample.values[f] = rng.uniform(-1000.0, 1000.0);
    }
  }
  return window;
}

std::shared_ptr<const ml::Regressor> fitted_linear(util::Rng& rng) {
  const std::size_t rows = 4 * data::kInputCount;
  linalg::Matrix x(rows, data::kInputCount);
  std::vector<double> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < data::kInputCount; ++c) {
      x(r, c) = rng.uniform(-1.0, 1.0);
    }
    y[r] = rng.uniform(0.0, 1000.0);
  }
  auto model = std::make_shared<ml::LinearRegression>();
  model->fit(x, y);
  return model;
}

struct BenchResult {
  std::string name;
  std::size_t window_samples = 0;  ///< 0 when not window-shaped.
  double baseline_ns = 0.0;        ///< Per datapoint, legacy path.
  double optimized_ns = 0.0;       ///< Per datapoint, this PR's path.
  double speedup = 0.0;
};

/// Kernel vs scalar reference at one window size; also asserts
/// bit-identity between the two on the benched data.
BenchResult bench_kernel(util::Rng& rng, std::size_t window_samples,
                         std::size_t repeats) {
  const auto window = make_window(rng, window_samples);
  std::array<double, data::kFeatureCount> means{}, slopes{};
  std::array<double, data::kFeatureCount> ref_means{}, ref_slopes{};
  const auto divisor = static_cast<double>(window_samples);

  scalar_reference_mean_slope(window.data(), window_samples, divisor,
                              ref_means.data(), ref_slopes.data());
  linalg::window_mean_slope(window[0].values.data(), window_samples, kStride,
                            data::kFeatureCount, divisor, means.data(),
                            slopes.data());
  for (std::size_t f = 0; f < data::kFeatureCount; ++f) {
    if (std::memcmp(&means[f], &ref_means[f], sizeof(double)) != 0 ||
        std::memcmp(&slopes[f], &ref_slopes[f], sizeof(double)) != 0) {
      std::fprintf(stderr, "FATAL: kernel/reference bit mismatch at f=%zu\n",
                   f);
      std::abort();
    }
  }

  const auto time_loop = [&](auto&& body) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < repeats; ++i) body();
    const std::chrono::duration<double, std::nano> elapsed =
        Clock::now() - start;
    return elapsed.count() / static_cast<double>(repeats * window_samples);
  };

  BenchResult result;
  result.name = "window_mean_slope";
  result.window_samples = window_samples;
  result.baseline_ns = time_loop([&] {
    scalar_reference_mean_slope(window.data(), window_samples, divisor,
                                ref_means.data(), ref_slopes.data());
    benchmark::DoNotOptimize(ref_means);
    benchmark::DoNotOptimize(ref_slopes);
  });
  result.optimized_ns = time_loop([&] {
    linalg::window_mean_slope(window[0].values.data(), window_samples,
                              kStride, data::kFeatureCount, divisor,
                              means.data(), slopes.data());
    benchmark::DoNotOptimize(means);
    benchmark::DoNotOptimize(slopes);
  });
  result.speedup = result.baseline_ns / result.optimized_ns;
  return result;
}

/// Full observe -> aggregate -> score pipeline: arena-backed predictor,
/// steady state (buffers warm). There is no "legacy" build to race here,
/// so baseline_ns is left 0 and the JSON reports the absolute cost.
BenchResult bench_observe_pipeline(util::Rng& rng, std::size_t repeats) {
  auto model = fitted_linear(rng);
  data::AggregationOptions aggregation;
  aggregation.window_seconds = 1.0;
  aggregation.min_samples_per_window = 2;
  serve::SessionArena arena;
  core::OnlinePredictor predictor(model, aggregation, {}, &arena);
  predictor.reserve_window(256);

  data::RawDatapoint sample;
  for (std::size_t f = 0; f < data::kFeatureCount; ++f) {
    sample.values[f] = 0.5 * static_cast<double>(f);
  }
  double tgen = 0.0;
  const auto stream_one = [&] {
    sample.tgen = tgen;
    sample.values[0] = tgen;
    auto prediction = predictor.observe(sample);
    benchmark::DoNotOptimize(prediction);
    tgen += 0.01;  // 100 samples per window.
  };
  for (std::size_t i = 0; i < 500; ++i) stream_one();  // Warm-up.

  const auto start = Clock::now();
  for (std::size_t i = 0; i < repeats; ++i) stream_one();
  const std::chrono::duration<double, std::nano> elapsed =
      Clock::now() - start;

  BenchResult result;
  result.name = "observe_aggregate_score";
  result.window_samples = 100;
  result.optimized_ns = elapsed.count() / static_cast<double>(repeats);
  return result;
}

/// Frame decode per datapoint: zero-copy next_view() against the
/// materializing next() on an identical pre-encoded stream.
BenchResult bench_frame_decode(util::Rng& rng, std::size_t repeats) {
  constexpr std::size_t kFramesPerFeed = 64;
  std::vector<std::uint8_t> wire;
  for (std::size_t i = 0; i < kFramesPerFeed; ++i) {
    data::RawDatapoint sample;
    sample.tgen = static_cast<double>(i);
    for (std::size_t f = 0; f < data::kFeatureCount; ++f) {
      sample.values[f] = rng.uniform(-10.0, 10.0);
    }
    net::FrameEncoder::encode_datapoint(wire, sample);
  }

  const auto time_loop = [&](auto&& drain) {
    net::FrameDecoder decoder;
    decoder.feed(wire.data(), wire.size());  // Warm buffer capacity.
    drain(decoder);
    const auto start = Clock::now();
    for (std::size_t i = 0; i < repeats; ++i) {
      decoder.feed(wire.data(), wire.size());
      drain(decoder);
    }
    const std::chrono::duration<double, std::nano> elapsed =
        Clock::now() - start;
    return elapsed.count() / static_cast<double>(repeats * kFramesPerFeed);
  };

  BenchResult result;
  result.name = "frame_decode_datapoint";
  data::RawDatapoint scratch;
  result.baseline_ns = time_loop([&](net::FrameDecoder& decoder) {
    while (auto frame = decoder.next()) benchmark::DoNotOptimize(*frame);
  });
  result.optimized_ns = time_loop([&](net::FrameDecoder& decoder) {
    while (auto view = decoder.next_view()) {
      view->datapoint(scratch);
      benchmark::DoNotOptimize(scratch);
    }
  });
  result.speedup = result.baseline_ns / result.optimized_ns;
  return result;
}

void write_json(const std::vector<BenchResult>& results, bool smoke) {
  std::FILE* out = std::fopen("BENCH_aggregate_score.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"bench\": \"aggregate_score_latency\",\n");
  std::fprintf(out, "  \"simd_kernel\": %s,\n",
               linalg::simd_kernel_enabled() ? "true" : "false");
  std::fprintf(out, "  \"feature_count\": %zu,\n", data::kFeatureCount);
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"units\": \"ns_per_datapoint\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"window_samples\": %zu, "
                 "\"baseline_ns\": %.2f, \"optimized_ns\": %.2f, "
                 "\"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.window_samples, r.baseline_ns,
                 r.optimized_ns, r.speedup, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_aggregate_score.json\n");
}

void run_all(bool smoke) {
  util::Rng rng(2015);
  const std::size_t kernel_repeats = smoke ? 2'000 : 200'000;
  const std::size_t pipeline_repeats = smoke ? 20'000 : 2'000'000;
  const std::size_t decode_repeats = smoke ? 500 : 50'000;

  std::vector<BenchResult> results;
  for (std::size_t window : {32u, 100u, 300u}) {
    results.push_back(bench_kernel(rng, window, kernel_repeats));
  }
  results.push_back(bench_observe_pipeline(rng, pipeline_repeats));
  results.push_back(bench_frame_decode(rng, decode_repeats));

  std::printf("%-28s %8s %14s %14s %9s\n", "name", "window", "baseline_ns",
              "optimized_ns", "speedup");
  for (const BenchResult& r : results) {
    std::printf("%-28s %8zu %14.2f %14.2f %9.3f\n", r.name.c_str(),
                r.window_samples, r.baseline_ns, r.optimized_ns, r.speedup);
  }
  write_json(results, smoke);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  run_all(smoke);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
