// Table IV reproduction: validation time per method (batch prediction over
// the validation set plus computation of every §III-D error metric),
// comparing the all-parameters and Lasso-selected feature sets.
//
// Shape to check against the paper: validating on the reduced feature set
// is cheaper, and the kernel methods (whose prediction cost scales with
// the number of support vectors) dominate the column.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench/common.hpp"
#include "util/timer.hpp"

namespace {

using namespace f2pm;

const std::vector<std::string>& method_names() {
  static const std::vector<std::string> names{"linear", "m5p", "reptree",
                                              "lasso", "svm", "svm2"};
  return names;
}

/// Fitted models, one per (method, feature-set), trained once up front so
/// the benchmarks only time validation.
struct FittedModels {
  std::map<std::string, std::unique_ptr<ml::Regressor>> all;
  std::map<std::string, std::unique_ptr<ml::Regressor>> selected;
};

FittedModels& fitted() {
  static FittedModels models = [] {
    FittedModels m;
    const auto& s = bench::study();
    for (const auto& name : method_names()) {
      m.all[name] = ml::make_model(name);
      m.all[name]->fit(s.train.x, s.train.y);
      m.selected[name] = ml::make_model(name);
      m.selected[name]->fit(s.train_selected.x, s.train_selected.y);
    }
    return m;
  }();
  return models;
}

double validate_once(const ml::Regressor& model,
                     const data::Dataset& validation, double threshold) {
  const auto predicted = model.predict(validation.x);
  double sink = ml::mean_absolute_error(predicted, validation.y);
  sink += ml::relative_absolute_error(predicted, validation.y);
  sink += ml::max_absolute_error(predicted, validation.y);
  sink += ml::soft_mean_absolute_error(predicted, validation.y, threshold);
  return sink;
}

void print_table() {
  bench::print_banner("Table IV - validation time");
  const auto& s = bench::study();
  fitted();  // train everything up front so only validation is timed
  std::printf("%-22s%-24s%-24s\n", "Algorithm", "All params valid (s)",
              "Lasso-selected valid (s)");
  std::printf("%s\n", std::string(70, '-').c_str());
  for (const auto& name : method_names()) {
    double sink = 0.0;
    const double all_seconds = util::timed([&] {
      sink += validate_once(*fitted().all[name], s.validation,
                            s.soft_threshold);
    });
    const double selected_seconds = util::timed([&] {
      sink += validate_once(*fitted().selected[name], s.validation_selected,
                            s.soft_threshold);
    });
    benchmark::DoNotOptimize(sink);
    std::printf("%-22s%-24.5f%-24.5f\n",
                core::display_model_name(name).c_str(), all_seconds,
                selected_seconds);
  }
  std::printf("\n");
}

void register_benchmarks() {
  for (const auto& name : method_names()) {
    for (bool selected : {false, true}) {
      const std::string label =
          "BM_Validate/" + name + (selected ? "/selected" : "/all");
      benchmark::RegisterBenchmark(
          label.c_str(),
          [name, selected](benchmark::State& state) {
            const auto& s = bench::study();
            const auto& model = selected ? *fitted().selected[name]
                                         : *fitted().all[name];
            const auto& validation =
                selected ? s.validation_selected : s.validation;
            for (auto _ : state) {
              benchmark::DoNotOptimize(
                  validate_once(model, validation, s.soft_threshold));
            }
          })
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
