// Fault-tolerance bench for the f2pm_serve prediction service: the chaos
// harness (tests/chaos_driver.hpp) drives a fleet of reconnecting clients
// through increasing fault intensities and measures what the faults cost —
// sustained datapoints/sec, reconnects, replayed datapoints and delivery
// completeness (closed windows received / guaranteed). Intensity 0 runs
// with NO injector installed, so the first row doubles as the zero-cost
// baseline for the fault hooks themselves.
//
// Emits BENCH_serve_fault.json next to the binary. `--smoke` shrinks the
// volume for CI.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"
#include "tests/chaos_driver.hpp"

namespace {

using namespace f2pm;
using Clock = std::chrono::steady_clock;

constexpr double kExpectedRttf = 1000.0;

/// Scales the standard chaos soak plan by `intensity` (the headline knob
/// is the connect-refusal rate; everything else scales with it).
net::FaultPlan plan_at(double intensity, std::uint64_t seed) {
  net::FaultPlan plan;
  plan.seed = seed;
  plan.refuse_connect_rate = intensity;
  plan.delay_connect_rate = intensity / 2.0;
  plan.connect_delay_ms = 1;
  plan.accept_drop_rate = intensity / 2.0;
  plan.read_reset_rate = intensity / 50.0;
  plan.write_reset_rate = intensity / 50.0;
  plan.short_read_rate = intensity / 2.0;
  plan.short_write_rate = intensity / 2.0;
  plan.short_io_bytes = 3;
  plan.read_eagain_rate = intensity / 5.0;
  plan.write_eagain_rate = intensity / 5.0;
  plan.eagain_burst = 2;
  plan.stall_rate = intensity / 50.0;
  plan.stall_ms = 1;
  return plan;
}

struct FaultBenchResult {
  double intensity = 0.0;
  std::size_t clients = 0;
  std::size_t datapoints = 0;
  std::size_t predictions = 0;
  std::size_t guaranteed = 0;  ///< Closed-window predictions owed in total.
  std::size_t reconnects = 0;
  std::size_t replayed = 0;
  std::size_t faults_injected = 0;
  std::size_t client_errors = 0;
  double wall_seconds = 0.0;
  double datapoints_per_second = 0.0;
  double delivery = 0.0;  ///< predictions owed that arrived, as a fraction.
};

FaultBenchResult run_intensity(double intensity, std::size_t num_clients,
                               std::size_t num_points) {
  auto store = std::make_shared<serve::ModelStore>();
  store->swap(chaos::constant_model(kExpectedRttf));
  serve::ServiceOptions options = chaos::chaos_service_options();
  options.max_sessions = std::max<std::size_t>(num_clients * 2, 64);
  serve::PredictionService service(options, store);

  FaultBenchResult result;
  result.intensity = intensity;
  result.clients = num_clients;
  result.guaranteed = num_clients * chaos::closed_windows(num_points);

  std::vector<chaos::ChaosClientReport> reports;
  const Clock::time_point start = Clock::now();
  if (intensity > 0.0) {
    net::ScopedFaultInjection injection(
        plan_at(intensity, 0xFA57 + static_cast<std::uint64_t>(
                               intensity * 1000.0)));
    reports = chaos::run_chaos_fleet(service.port(), num_clients, num_points,
                                     kExpectedRttf, /*jitter_seed_base=*/11);
    service.stop();  // drain through the gates, before injector teardown
    result.faults_injected = injection.injector().total_injected();
  } else {
    reports = chaos::run_chaos_fleet(service.port(), num_clients, num_points,
                                     kExpectedRttf, /*jitter_seed_base=*/11);
    service.stop();
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  for (const chaos::ChaosClientReport& report : reports) {
    result.datapoints += report.sent;
    result.predictions += report.received;
    result.reconnects += report.reconnects;
    result.replayed += report.replayed;
    if (!report.error.empty()) ++result.client_errors;
  }
  result.datapoints_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.datapoints) / result.wall_seconds
          : 0.0;
  result.delivery =
      result.guaranteed > 0
          ? static_cast<double>(result.predictions) /
                static_cast<double>(result.guaranteed)
          : 1.0;
  return result;
}

void write_json(const std::vector<FaultBenchResult>& results) {
  std::FILE* out = std::fopen("BENCH_serve_fault.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"bench\": \"serve_fault_tolerance\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FaultBenchResult& r = results[i];
    std::fprintf(
        out,
        "    {\"intensity\": %.3f, \"clients\": %zu, \"datapoints\": %zu, "
        "\"predictions\": %zu, \"guaranteed\": %zu, \"reconnects\": %zu, "
        "\"replayed\": %zu, \"faults_injected\": %zu, \"client_errors\": %zu, "
        "\"wall_seconds\": %.3f, \"datapoints_per_second\": %.0f, "
        "\"delivery\": %.4f}%s\n",
        r.intensity, r.clients, r.datapoints, r.predictions, r.guaranteed,
        r.reconnects, r.replayed, r.faults_injected, r.client_errors,
        r.wall_seconds, r.datapoints_per_second, r.delivery,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

void run_all(bool smoke) {
  const std::size_t num_clients = smoke ? 4 : 8;
  const std::size_t num_points = smoke ? 200 : 2000;
  std::printf("== F2PM serve: throughput under injected transport faults ==\n");
  std::printf(
      "%zu clients x %zu datapoints over loopback; intensity scales every "
      "fault class (connect refusal = intensity); intensity 0 has no "
      "injector installed (hook-cost baseline)\n\n",
      num_clients, num_points);
  std::printf("%-12s%-12s%-12s%-13s%-12s%-10s%-10s%-10s%-10s\n", "intensity",
              "dp/sec", "wall (s)", "predictions", "delivery", "reconn",
              "replayed", "faults", "errors");
  std::printf("%s\n", std::string(99, '-').c_str());
  std::vector<FaultBenchResult> results;
  for (const double intensity : {0.0, 0.01, 0.05, 0.1}) {
    const FaultBenchResult r =
        run_intensity(intensity, num_clients, num_points);
    std::printf("%-12.2f%-12.0f%-12.3f%-13zu%-12.4f%-10zu%-10zu%-10zu%-10zu\n",
                r.intensity, r.datapoints_per_second, r.wall_seconds,
                r.predictions, r.delivery, r.reconnects, r.replayed,
                r.faults_injected, r.client_errors);
    results.push_back(r);
  }
  write_json(results);
  std::printf("\nwrote BENCH_serve_fault.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  // Strip --smoke before handing the remaining flags to the benchmark
  // library (it rejects flags it does not know).
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  run_all(smoke);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
