// Ablation A4: thread-pool scaling of the model-generation phase.
//
// F2PM trains many models (6 methods x 2 feature sets x 10 Lasso λs); the
// phase parallelizes naturally across models. This bench times the
// model-generation phase sequentially and on pools of 1/2/4 workers. On a
// single-core host the parallel numbers document the dispatch overhead;
// on a multi-core box they show the scaling headroom.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "bench/common.hpp"
#include "util/timer.hpp"

namespace {

using namespace f2pm;

const std::vector<std::string>& cheap_methods() {
  // The sweep uses the non-SVM methods so a single measurement stays in
  // milliseconds; the SVMs would dominate every configuration equally.
  static const std::vector<std::string> names{"linear", "m5p", "reptree",
                                              "lasso"};
  return names;
}

double time_generation(bool parallel, std::size_t threads) {
  const auto& s = bench::study();
  return util::timed([&] {
    const auto outcomes = core::evaluate_models(
        s.train, s.validation, cheap_methods(), core::paper_lambda_grid(),
        s.soft_threshold, util::Config{}, parallel, threads);
    benchmark::DoNotOptimize(outcomes.size());
  });
}

void print_table() {
  bench::print_banner("Ablation A4 - parallel model generation");
  std::printf("host hardware concurrency: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-26s%-16s\n", "configuration", "wall time (s)");
  std::printf("%s\n", std::string(42, '-').c_str());
  std::printf("%-26s%-16.4f\n", "sequential", time_generation(false, 0));
  for (std::size_t threads : {1u, 2u, 4u}) {
    const std::string label =
        "pool with " + std::to_string(threads) + " worker(s)";
    std::printf("%-26s%-16.4f\n", label.c_str(),
                time_generation(true, threads));
  }
  std::printf("\n");
}

void BM_ModelGeneration(benchmark::State& state) {
  const bool parallel = state.range(0) > 0;
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(time_generation(parallel, threads));
  }
}
BENCHMARK(BM_ModelGeneration)->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
