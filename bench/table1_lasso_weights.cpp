// Table I reproduction: weights assigned by Lasso Regularization at the
// top of the λ grid.
//
// The paper reports the six survivors at λ = 1e9 — memory/swap slopes plus
// mem_free and mem_buffers. On this study's feature scales the equivalent
// "handful of memory features and slopes" point falls at λ = 1e8 (one
// decade lower, see EXPERIMENTS.md), so both entries are printed.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"
#include "ml/lasso.hpp"

namespace {

using namespace f2pm;

void print_entry(double lambda) {
  const auto& entry = bench::study().selection.at_lambda(lambda);
  std::printf("weights assigned when lambda = %.0f (%zu selected)\n", lambda,
              entry.selected.size());
  std::printf("%-26s%s\n", "Parameter", "Weight");
  std::printf("--------------------------------------------\n");
  for (std::size_t i = 0; i < entry.names.size(); ++i) {
    std::printf("%-26s%.15f\n", entry.names[i].c_str(), entry.weights[i]);
  }
  std::printf("\n");
}

void print_table() {
  bench::print_banner("Table I - Lasso weights at the top of the grid");
  print_entry(1e8);
  print_entry(1e9);
}

void BM_LassoFitAtLambda1e9(benchmark::State& state) {
  const auto& s = bench::study();
  for (auto _ : state) {
    ml::Lasso model(ml::LassoOptions{.lambda = 1e9});
    model.fit(s.train.x, s.train.y);
    benchmark::DoNotOptimize(model.selected_features().size());
  }
}
BENCHMARK(BM_LassoFitAtLambda1e9)->Unit(benchmark::kMillisecond);

void BM_LassoFitAtLambda1e8(benchmark::State& state) {
  const auto& s = bench::study();
  for (auto _ : state) {
    ml::Lasso model(ml::LassoOptions{.lambda = 1e8});
    model.fit(s.train.x, s.train.y);
    benchmark::DoNotOptimize(model.selected_features().size());
  }
}
BENCHMARK(BM_LassoFitAtLambda1e8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
