// Fig. 4 reproduction: number of parameters selected by Lasso vs λ.
//
// The regularization path runs over the paper's grid λ = 10^0 .. 10^9 on
// the full 30-input training set; the printed curve must decrease from
// "almost everything" to a handful of memory-related features.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench/common.hpp"

namespace {

using namespace f2pm;

void print_figure() {
  bench::print_banner("Fig. 4 - parameters selected by Lasso vs lambda");
  const auto& selection = bench::study().selection;
  std::printf("%-16s%s\n", "lambda", "selected_parameters");
  for (const auto& entry : selection.entries) {
    std::printf("%-16.0f%zu\n", entry.lambda, entry.selected.size());
  }
  std::printf("\n");
}

void BM_LassoPathFullGrid(benchmark::State& state) {
  const auto& s = bench::study();
  for (auto _ : state) {
    const auto result =
        core::select_features(s.train, core::paper_lambda_grid());
    benchmark::DoNotOptimize(result.entries.size());
  }
}
BENCHMARK(BM_LassoPathFullGrid)->Unit(benchmark::kMillisecond);

void BM_LassoSingleLambda(benchmark::State& state) {
  const auto& s = bench::study();
  const double lambda = std::pow(10.0, static_cast<double>(state.range(0)));
  for (auto _ : state) {
    const auto result = core::select_features(s.train, {lambda});
    benchmark::DoNotOptimize(result.entries.front().selected.size());
  }
  state.counters["selected"] = static_cast<double>(
      core::select_features(s.train, {lambda}).entries.front().selected.size());
}
BENCHMARK(BM_LassoSingleLambda)->DenseRange(0, 9, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
