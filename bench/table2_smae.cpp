// Table II reproduction: Soft Mean Absolute Error at the 10% threshold for
// all six methods (Lasso expanded over the 10-decade λ grid), trained on
// all parameters and on the Lasso-selected subset.
//
// The shapes to check against the paper: the tree methods (REP-Tree, M5P)
// lead; Linear Regression and the SVMs trail them; Lasso-as-a-predictor at
// large λ is far worse than everything; and the selected-feature column is
// uniformly less accurate than the all-parameters column.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"

namespace {

using namespace f2pm;

std::vector<core::ModelOutcome> evaluate(const data::Dataset& train,
                                         const data::Dataset& validation) {
  return core::evaluate_models(
      train, validation, {"linear", "m5p", "reptree", "lasso", "svm", "svm2"},
      bench::lasso_row_lambdas(), bench::study().soft_threshold,
      util::Config{});
}

void print_table() {
  bench::print_banner("Table II - Soft Mean Absolute Error, 10% threshold");
  const auto& s = bench::study();
  const auto all = evaluate(s.train, s.validation);
  const auto selected = evaluate(s.train_selected, s.validation_selected);
  std::printf("%-34s%-22s%-22s\n", "Algorithm", "All params S-MAE (s)",
              "Lasso-selected S-MAE (s)");
  std::printf("%s\n", std::string(78, '-').c_str());
  for (std::size_t i = 0; i < all.size(); ++i) {
    std::printf("%-34s%-22.3f%-22.3f\n",
                core::display_model_name(all[i].display_name).c_str(),
                all[i].report.soft_mae, selected[i].report.soft_mae);
  }
  std::printf("\n");
}

/// Benchmarks the error-metric computation itself (the "soft" pass over a
/// validation set), which Table II's numbers are built from.
void BM_SoftMaeMetric(benchmark::State& state) {
  const auto& s = bench::study();
  std::vector<double> predicted = s.validation.y;
  for (double& v : predicted) v *= 1.05;  // 5% systematic error
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::soft_mean_absolute_error(
        predicted, s.validation.y, s.soft_threshold));
  }
}
BENCHMARK(BM_SoftMaeMetric);

void BM_TrainAndScoreRepTree(benchmark::State& state) {
  const auto& s = bench::study();
  for (auto _ : state) {
    auto model = ml::make_model("reptree");
    const auto report =
        ml::evaluate_model(*model, s.train.x, s.train.y, s.validation.x,
                           s.validation.y, s.soft_threshold);
    benchmark::DoNotOptimize(report.soft_mae);
  }
}
BENCHMARK(BM_TrainAndScoreRepTree)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
