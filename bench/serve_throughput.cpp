// Load bench for the f2pm_serve prediction service: N concurrent
// simulated FMC clients replay TPC-W campaign traces over loopback while
// the service scores every closed aggregation window and streams the RTTF
// predictions back. For N in {1, 8, 64, 256} it reports sustained
// datapoints/sec, prediction round-trip latency (p50/p99, measured from
// the send of the window-closing datapoint to the receipt of its
// prediction), sessions held and the dropped/garbled-frame count (must be
// zero).
//
// Emits BENCH_serve_throughput.json next to the binary.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/aggregation.hpp"
#include "data/dataset.hpp"
#include "ml/linear_regression.hpp"
#include "net/fmc.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"
#include "sim/campaign.hpp"

namespace {

using namespace f2pm;
using Clock = std::chrono::steady_clock;

constexpr double kWindowSeconds = 30.0;

struct Trace {
  data::DataHistory history;
  std::size_t total_samples = 0;
};

Trace make_trace() {
  sim::CampaignConfig config;
  config.num_runs = 6;
  config.seed = 2015;
  config.workload.num_browsers = 60;
  Trace trace;
  trace.history = sim::run_campaign(config);
  trace.total_samples = trace.history.num_samples();
  return trace;
}

std::shared_ptr<const ml::Regressor> train_model(
    const data::DataHistory& history) {
  data::AggregationOptions aggregation;
  aggregation.window_seconds = kWindowSeconds;
  const data::Dataset dataset =
      data::build_dataset(data::aggregate(history, aggregation));
  auto model = std::make_shared<ml::LinearRegression>();
  model->fit(dataset.x, dataset.y);
  return model;
}

struct ClientResult {
  std::size_t sent = 0;
  std::size_t predictions = 0;
  std::size_t unmatched = 0;  ///< Predictions with no recorded datapoint.
  std::vector<double> latencies_ms;
  bool failed = false;
};

/// Replays campaign runs (datapoints + fail events, tgen restarting per
/// run) until `budget` datapoints were sent, recording per-datapoint send
/// times to measure prediction round-trip latency.
ClientResult run_client(std::uint16_t port, const data::DataHistory& history,
                        std::size_t budget, int id) {
  ClientResult result;
  // Send-time record per run; predictions arrive in window order, so one
  // run index that advances when window_end restarts is enough to match.
  std::vector<std::vector<std::pair<double, Clock::time_point>>> sent_runs(1);
  std::size_t prediction_run = 0;
  double last_window_end = -1.0;
  bool finishing = false;

  const auto on_prediction = [&](const net::Prediction& prediction) {
    const Clock::time_point now = Clock::now();
    ++result.predictions;
    if (prediction.window_end <= last_window_end &&
        prediction_run + 1 < sent_runs.size()) {
      ++prediction_run;  // the stream restarted: next run's windows
    }
    last_window_end = prediction.window_end;
    const auto& run = sent_runs[prediction_run];
    const auto it = std::lower_bound(
        run.begin(), run.end(), prediction.window_end,
        [](const auto& entry, double t) { return entry.first < t; });
    if (it == run.end()) {
      // After finish() the server flushes the open window; that final
      // prediction has no window-closing datapoint to match against.
      if (!finishing) ++result.unmatched;
      return;
    }
    result.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(now - it->second).count());
  };

  try {
    net::FeatureMonitorClient client("127.0.0.1", port);
    client.hello("bench-client-" + std::to_string(id));
    while (result.sent < budget) {
      for (const data::Run& run : history.runs()) {
        if (result.sent >= budget) break;
        for (const data::RawDatapoint& sample : run.samples) {
          if (result.sent >= budget) break;
          sent_runs.back().emplace_back(sample.tgen, Clock::now());
          client.send(sample);
          ++result.sent;
          while (auto prediction = client.poll_prediction()) {
            on_prediction(*prediction);
          }
        }
        client.report_failure(run.fail_time);
        sent_runs.emplace_back();
      }
    }
    finishing = true;
    client.finish();
    while (auto prediction = client.wait_prediction()) {
      on_prediction(*prediction);
    }
  } catch (const std::exception&) {
    result.failed = true;
  }
  return result;
}

struct BenchResult {
  std::size_t clients = 0;
  std::size_t datapoints = 0;
  std::size_t predictions = 0;
  double wall_seconds = 0.0;
  double datapoints_per_second = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t sessions_held = 0;   ///< Accepted and served to completion.
  std::size_t dropped_frames = 0;  ///< Protocol errors + failed clients.
};

double percentile(std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(rank),
                   values.end());
  return values[rank];
}

BenchResult run_load(std::size_t num_clients, const Trace& trace,
                     const std::shared_ptr<const ml::Regressor>& model) {
  auto store = std::make_shared<serve::ModelStore>();
  store->swap(model);
  serve::ServiceOptions options;
  options.aggregation.window_seconds = kWindowSeconds;
  options.max_sessions = std::max<std::size_t>(num_clients, 256);
  // The bench measures the instrumented configuration: metrics registry
  // hot (it always is) plus a live scrape endpoint on an ephemeral port.
  options.metrics_port = 0;
  serve::PredictionService service(options, store);

  // Fixed total volume across configurations so every N is comparable;
  // each client replays at least 500 datapoints.
  const std::size_t budget =
      std::max<std::size_t>(500, 96'000 / num_clients);

  std::vector<ClientResult> results(num_clients);
  std::vector<std::thread> threads;
  threads.reserve(num_clients);
  const Clock::time_point start = Clock::now();
  for (std::size_t c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      results[c] = run_client(service.port(), trace.history, budget,
                              static_cast<int>(c));
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  service.stop();
  const serve::ServiceStats stats = service.stats();

  BenchResult bench;
  bench.clients = num_clients;
  bench.wall_seconds = wall;
  std::vector<double> latencies;
  for (const ClientResult& r : results) {
    bench.datapoints += r.sent;
    bench.predictions += r.predictions;
    bench.dropped_frames += r.unmatched + (r.failed ? 1 : 0);
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
  }
  bench.dropped_frames += stats.protocol_errors;
  bench.datapoints_per_second =
      wall > 0.0 ? static_cast<double>(bench.datapoints) / wall : 0.0;
  bench.p50_ms = percentile(latencies, 0.50);
  bench.p99_ms = percentile(latencies, 0.99);
  bench.sessions_held = stats.sessions_accepted;
  return bench;
}

void write_json(const std::vector<BenchResult>& results) {
  std::FILE* out = std::fopen("BENCH_serve_throughput.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"bench\": \"serve_throughput\",\n");
  std::fprintf(out, "  \"window_seconds\": %.1f,\n", kWindowSeconds);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(
        out,
        "    {\"clients\": %zu, \"datapoints\": %zu, \"predictions\": %zu, "
        "\"wall_seconds\": %.3f, \"datapoints_per_second\": %.0f, "
        "\"latency_p50_ms\": %.3f, \"latency_p99_ms\": %.3f, "
        "\"sessions_held\": %zu, \"dropped_frames\": %zu}%s\n",
        r.clients, r.datapoints, r.predictions, r.wall_seconds,
        r.datapoints_per_second, r.p50_ms, r.p99_ms, r.sessions_held,
        r.dropped_frames, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

void run_all() {
  std::printf("== F2PM serve: multi-session prediction service load ==\n");
  const Trace trace = make_trace();
  const auto model = train_model(trace.history);
  std::printf(
      "trace: %zu campaign runs, %zu raw datapoints; linear model on %.0fs "
      "windows; loopback TCP, one event loop + scoring pool\n\n",
      trace.history.num_runs(), trace.total_samples, kWindowSeconds);
  std::printf("%-10s%-14s%-14s%-16s%-12s%-12s%-12s%-10s\n", "clients",
              "datapoints", "dp/sec", "predictions", "p50 (ms)", "p99 (ms)",
              "sessions", "dropped");
  std::printf("%s\n", std::string(100, '-').c_str());
  std::vector<BenchResult> results;
  for (std::size_t n : {1u, 8u, 64u, 256u}) {
    const BenchResult r = run_load(n, trace, model);
    std::printf("%-10zu%-14zu%-14.0f%-16zu%-12.3f%-12.3f%-12zu%-10zu\n",
                r.clients, r.datapoints, r.datapoints_per_second,
                r.predictions, r.p50_ms, r.p99_ms, r.sessions_held,
                r.dropped_frames);
    results.push_back(r);
  }
  write_json(results);
  std::printf("\nwrote BENCH_serve_throughput.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  run_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
