// Load bench for the f2pm_serve prediction service: N concurrent load
// generators replay TPC-W campaign traces over loopback while the service
// scores every closed aggregation window and streams the RTTF predictions
// back. The sweep crosses reactor shard counts {1, 2, 4, 8} with client
// counts and reports sustained datapoints/sec, scaling efficiency vs the
// 1-shard baseline at the same client count, prediction round-trip
// latency (p50/p99), sessions held and the dropped/garbled-frame count
// (must be zero).
//
// Load generator: each client runs a dedicated SENDER thread (raw frame
// encoding straight onto the socket, timestamping every datapoint) and a
// dedicated RECEIVER thread (blocking frame decode, timestamping every
// prediction), so reading predictions never throttles the send path —
// the classic single-threaded poll-between-sends loop understates a
// sharded server because the generator itself becomes the bottleneck.
// Latencies are matched post-hoc: per-session predictions are exactly
// once and in order, so prediction k of run r pairs with the datapoint
// whose send closed that window.
//
// Emits BENCH_serve_throughput.json next to the binary. `--smoke` runs a
// seconds-scale subset (CI) with the same output schema.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/aggregation.hpp"
#include "data/dataset.hpp"
#include "ml/linear_regression.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"
#include "sim/campaign.hpp"

namespace {

using namespace f2pm;
using Clock = std::chrono::steady_clock;

constexpr double kWindowSeconds = 30.0;

struct Trace {
  data::DataHistory history;
  std::size_t total_samples = 0;
};

Trace make_trace() {
  sim::CampaignConfig config;
  config.num_runs = 6;
  config.seed = 2015;
  config.workload.num_browsers = 60;
  Trace trace;
  trace.history = sim::run_campaign(config);
  trace.total_samples = trace.history.num_samples();
  return trace;
}

std::shared_ptr<const ml::Regressor> train_model(
    const data::DataHistory& history) {
  data::AggregationOptions aggregation;
  aggregation.window_seconds = kWindowSeconds;
  const data::Dataset dataset =
      data::build_dataset(data::aggregate(history, aggregation));
  auto model = std::make_shared<ml::LinearRegression>();
  model->fit(dataset.x, dataset.y);
  return model;
}

struct ClientResult {
  std::size_t sent = 0;
  std::size_t predictions = 0;
  std::size_t unmatched = 0;  ///< Predictions with no recorded datapoint.
  std::vector<double> latencies_ms;
  bool failed = false;
};

/// One client: a sender thread replaying campaign runs (datapoints + fail
/// events, tgen restarting per run) until `budget` datapoints are on the
/// wire, and a receiver thread draining predictions until server EOF.
/// Timestamps from both sides are joined after the threads finish.
ClientResult run_client(std::uint16_t port, const data::DataHistory& history,
                        std::size_t budget, int id) {
  ClientResult result;
  // Send log: per run, (tgen, send time) per datapoint. Receive log:
  // (window_end, arrival time) in arrival order.
  std::vector<std::vector<std::pair<double, Clock::time_point>>> sent_runs(1);
  std::vector<std::pair<double, Clock::time_point>> received;
  bool receiver_failed = false;

  try {
    net::TcpStream stream = net::TcpStream::connect("127.0.0.1", port);
    net::send_hello(stream,
                    net::Hello{net::kProtocolVersion,
                               "bench-client-" + std::to_string(id)});

    std::thread receiver([&stream, &received, &receiver_failed] {
      try {
        net::FrameDecoder decoder;
        while (auto frame = net::receive_frame(stream, decoder)) {
          if (const auto* p = std::get_if<net::Prediction>(&*frame)) {
            received.emplace_back(p->window_end, Clock::now());
          }
        }
      } catch (const std::exception&) {
        receiver_failed = true;
      }
    });

    std::vector<std::uint8_t> wire;
    while (result.sent < budget) {
      for (const data::Run& run : history.runs()) {
        if (result.sent >= budget) break;
        for (const data::RawDatapoint& sample : run.samples) {
          if (result.sent >= budget) break;
          wire.clear();
          net::FrameEncoder::encode_datapoint(wire, sample);
          stream.send_all(wire.data(), wire.size());
          sent_runs.back().emplace_back(sample.tgen, Clock::now());
          ++result.sent;
        }
        net::send_fail_event(stream, run.fail_time);
        sent_runs.emplace_back();
      }
    }
    net::send_bye(stream);
    stream.shutdown_write();
    receiver.join();
    result.failed = receiver_failed;
  } catch (const std::exception&) {
    result.failed = true;
    return result;
  }

  // Post-hoc latency join. Window ends restart at run boundaries; one run
  // cursor that advances whenever window_end stops increasing re-creates
  // the per-run pairing (predictions are in order and exactly once).
  std::size_t prediction_run = 0;
  double last_window_end = -1.0;
  for (std::size_t k = 0; k < received.size(); ++k) {
    const auto& [window_end, arrival] = received[k];
    ++result.predictions;
    if (window_end <= last_window_end &&
        prediction_run + 1 < sent_runs.size()) {
      ++prediction_run;
    }
    last_window_end = window_end;
    const auto& run = sent_runs[prediction_run];
    // The window-closing datapoint is the first with tgen >= window_end.
    const auto it = std::lower_bound(
        run.begin(), run.end(), window_end,
        [](const auto& entry, double t) { return entry.first < t; });
    if (it == run.end()) {
      // The final flush prediction (open window, emitted on Bye) has no
      // closing datapoint; anything else unmatched is a real loss.
      if (k + 1 != received.size()) ++result.unmatched;
      continue;
    }
    result.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(arrival - it->second)
            .count());
  }
  return result;
}

struct BenchResult {
  std::size_t shards = 0;
  std::size_t clients = 0;
  std::size_t datapoints = 0;
  std::size_t predictions = 0;
  double wall_seconds = 0.0;
  double datapoints_per_second = 0.0;
  double speedup_vs_1shard = 0.0;     ///< dp/s over 1-shard, same clients.
  double scaling_efficiency = 0.0;    ///< speedup / shards.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t sessions_held = 0;   ///< Accepted and served to completion.
  std::size_t dropped_frames = 0;  ///< Protocol errors + failed clients.
};

double percentile(std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(rank),
                   values.end());
  return values[rank];
}

BenchResult run_load(std::size_t num_shards, std::size_t num_clients,
                     std::size_t total_budget, const Trace& trace,
                     const std::shared_ptr<const ml::Regressor>& model) {
  auto store = std::make_shared<serve::ModelStore>();
  store->swap(model);
  serve::ServiceOptions options;
  options.aggregation.window_seconds = kWindowSeconds;
  options.shards = num_shards;
  options.max_sessions = std::max<std::size_t>(num_clients, 256);
  // The bench measures the instrumented configuration: metrics registry
  // hot (it always is) plus a live scrape endpoint on an ephemeral port.
  options.metrics_port = 0;
  serve::PredictionService service(options, store);

  // Fixed total volume per configuration so every (shards, clients) cell
  // is comparable; each client replays at least 500 datapoints.
  const std::size_t budget =
      std::max<std::size_t>(500, total_budget / num_clients);

  std::vector<ClientResult> results(num_clients);
  std::vector<std::thread> threads;
  threads.reserve(num_clients);
  const Clock::time_point start = Clock::now();
  for (std::size_t c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      results[c] = run_client(service.port(), trace.history, budget,
                              static_cast<int>(c));
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  service.stop();
  const serve::ServiceStats stats = service.stats();

  BenchResult bench;
  bench.shards = service.shards();
  bench.clients = num_clients;
  bench.wall_seconds = wall;
  std::vector<double> latencies;
  for (const ClientResult& r : results) {
    bench.datapoints += r.sent;
    bench.predictions += r.predictions;
    bench.dropped_frames += r.unmatched + (r.failed ? 1 : 0);
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
  }
  bench.dropped_frames += stats.protocol_errors;
  bench.datapoints_per_second =
      wall > 0.0 ? static_cast<double>(bench.datapoints) / wall : 0.0;
  bench.p50_ms = percentile(latencies, 0.50);
  bench.p99_ms = percentile(latencies, 0.99);
  bench.sessions_held = stats.sessions_accepted;
  return bench;
}

void write_json(const std::vector<BenchResult>& results, bool smoke) {
  std::FILE* out = std::fopen("BENCH_serve_throughput.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"bench\": \"serve_throughput\",\n");
  std::fprintf(out, "  \"window_seconds\": %.1f,\n", kWindowSeconds);
  std::fprintf(out, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"accept_mode\": \"reuse_port\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(
        out,
        "    {\"shards\": %zu, \"clients\": %zu, \"datapoints\": %zu, "
        "\"predictions\": %zu, \"wall_seconds\": %.3f, "
        "\"datapoints_per_second\": %.0f, \"speedup_vs_1shard\": %.3f, "
        "\"scaling_efficiency\": %.3f, \"latency_p50_ms\": %.3f, "
        "\"latency_p99_ms\": %.3f, \"sessions_held\": %zu, "
        "\"dropped_frames\": %zu}%s\n",
        r.shards, r.clients, r.datapoints, r.predictions, r.wall_seconds,
        r.datapoints_per_second, r.speedup_vs_1shard, r.scaling_efficiency,
        r.p50_ms, r.p99_ms, r.sessions_held, r.dropped_frames,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

void run_all(bool smoke) {
  std::printf("== F2PM serve: sharded prediction service load ==\n");
  const Trace trace = make_trace();
  const auto model = train_model(trace.history);
  std::printf(
      "trace: %zu campaign runs, %zu raw datapoints; linear model on %.0fs "
      "windows; loopback TCP, SO_REUSEPORT shard sweep; %u host cores\n\n",
      trace.history.num_runs(), trace.total_samples, kWindowSeconds,
      std::thread::hardware_concurrency());
  std::printf("%-8s%-10s%-13s%-12s%-9s%-8s%-11s%-11s%-10s%-9s\n", "shards",
              "clients", "datapoints", "dp/sec", "speedup", "eff", "p50 (ms)",
              "p99 (ms)", "sessions", "dropped");
  std::printf("%s\n", std::string(101, '-').c_str());

  const std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::vector<std::size_t> client_counts =
      smoke ? std::vector<std::size_t>{4} : std::vector<std::size_t>{8, 32};
  const std::size_t total_budget = smoke ? 4'000 : 48'000;

  std::vector<BenchResult> results;
  for (std::size_t clients : client_counts) {
    double baseline_dps = 0.0;
    for (std::size_t shards : shard_counts) {
      BenchResult r = run_load(shards, clients, total_budget, trace, model);
      if (shards == 1) baseline_dps = r.datapoints_per_second;
      r.speedup_vs_1shard =
          baseline_dps > 0.0 ? r.datapoints_per_second / baseline_dps : 0.0;
      r.scaling_efficiency =
          r.speedup_vs_1shard / static_cast<double>(r.shards);
      std::printf(
          "%-8zu%-10zu%-13zu%-12.0f%-9.2f%-8.2f%-11.3f%-11.3f%-10zu%-9zu\n",
          r.shards, r.clients, r.datapoints, r.datapoints_per_second,
          r.speedup_vs_1shard, r.scaling_efficiency, r.p50_ms, r.p99_ms,
          r.sessions_held, r.dropped_frames);
      results.push_back(r);
    }
  }
  write_json(results, smoke);
  std::printf("\nwrote BENCH_serve_throughput.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  // Strip --smoke before handing the remaining flags to the benchmark
  // library (it rejects flags it does not know).
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  run_all(smoke);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
