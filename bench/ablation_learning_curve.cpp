// Ablation A5: learning curve over campaign size.
//
// §III-A says the monitoring phase can proceed incrementally: "if the
// estimated accuracy is not sufficient, further system runs can be
// executed to collect new data". This bench quantifies that loop: S-MAE
// of REP-Tree, M5P and the bagged-tree extension as the training campaign
// grows from 4 to 30 runs (validation is always the final 30-run split's
// hold-out, so numbers are comparable down the column).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "bench/common.hpp"

namespace {

using namespace f2pm;

/// Restricts the training side to datapoints from the first `num_runs`
/// runs of the campaign.
data::Dataset train_prefix(std::size_t num_runs) {
  const auto& train = bench::study().train;
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < train.num_rows(); ++i) {
    if (train.run_index[i] < num_runs) rows.push_back(i);
  }
  return train.select_rows(rows);
}

void print_table() {
  bench::print_banner("Ablation A5 - learning curve over campaign size");
  const auto& s = bench::study();
  std::printf("%-12s%-12s%-16s%-16s%-16s\n", "runs", "train_rows",
              "reptree_smae_s", "m5p_smae_s", "bagging_smae_s");
  std::printf("%s\n", std::string(72, '-').c_str());
  for (std::size_t runs : {4u, 8u, 15u, 22u, 30u}) {
    const data::Dataset train = train_prefix(runs);
    std::printf("%-12zu%-12zu", runs, train.num_rows());
    for (const char* name : {"reptree", "m5p", "bagging"}) {
      auto model = ml::make_model(name);
      const auto report =
          ml::evaluate_model(*model, train.x, train.y, s.validation.x,
                             s.validation.y, s.soft_threshold);
      std::printf("%-16.3f", report.soft_mae);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void BM_TrainBaggingFullCampaign(benchmark::State& state) {
  const auto& s = bench::study();
  for (auto _ : state) {
    auto model = ml::make_model("bagging");
    model->fit(s.train.x, s.train.y);
    benchmark::DoNotOptimize(model->is_fitted());
  }
}
BENCHMARK(BM_TrainBaggingFullCampaign)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
