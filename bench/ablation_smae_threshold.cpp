// Ablation A3: sensitivity of the S-MAE metric to its threshold.
//
// The paper fixes the threshold at 10% of the maximum RTTF; this sweep
// shows how the metric (and the resulting model ranking) moves as the
// tolerance goes from 0% (plain MAE) to 25%. The interesting check is
// whether the paper's model ranking is an artifact of the 10% choice — in
// a faithful reproduction the tree methods stay on top across the sweep.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"

namespace {

using namespace f2pm;

const std::vector<double>& fractions() {
  static const std::vector<double> grid{0.0, 0.025, 0.05, 0.10, 0.20, 0.25};
  return grid;
}

void print_table() {
  bench::print_banner("Ablation A3 - S-MAE threshold sweep");
  const auto& s = bench::study();
  // Train once; the sweep only re-scores.
  const char* names[4] = {"linear", "reptree", "m5p", "svm2"};
  std::vector<std::vector<double>> predictions;
  for (const char* name : names) {
    auto model = ml::make_model(name);
    model->fit(s.train.x, s.train.y);
    predictions.push_back(model->predict(s.validation.x));
  }
  double max_rttf = 0.0;
  for (double y : s.dataset.y) max_rttf = std::max(max_rttf, y);

  std::printf("%-16s%-12s%-16s%-16s%-16s%-16s\n", "threshold_pct",
              "thresh_s", "linear", "reptree", "m5p", "svm2");
  std::printf("%s\n", std::string(92, '-').c_str());
  for (double fraction : fractions()) {
    const double threshold = fraction * max_rttf;
    std::printf("%-16.1f%-12.1f", fraction * 100.0, threshold);
    for (const auto& predicted : predictions) {
      std::printf("%-16.3f", ml::soft_mean_absolute_error(
                                 predicted, s.validation.y, threshold));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void BM_SoftMaeSweep(benchmark::State& state) {
  const auto& s = bench::study();
  auto model = ml::make_model("reptree");
  model->fit(s.train.x, s.train.y);
  const auto predicted = model->predict(s.validation.x);
  double max_rttf = 0.0;
  for (double y : s.dataset.y) max_rttf = std::max(max_rttf, y);
  for (auto _ : state) {
    double total = 0.0;
    for (double fraction : fractions()) {
      total += ml::soft_mean_absolute_error(predicted, s.validation.y,
                                            fraction * max_rttf);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_SoftMaeSweep);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
