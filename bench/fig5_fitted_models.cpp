// Fig. 5 reproduction: predicted RTTF vs real RTTF for the six models
// trained on all parameters.
//
// Instead of six scatter plots this prints (a) a subsampled
// predicted-vs-real listing per model (the plotted points), and (b) a
// binned |error| profile over the RTTF axis. The paper's observations to
// check: predictions hug the diagonal near the failure point (small RTTF)
// and under-predict far from it, and the error profile is much flatter for
// the tree methods than for Lasso-as-a-predictor.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"

namespace {

using namespace f2pm;

std::vector<core::ModelOutcome> outcomes() {
  static const std::vector<core::ModelOutcome> result = [] {
    const auto& s = bench::study();
    return core::evaluate_models(
        s.train, s.validation,
        {"lasso", "linear", "m5p", "reptree", "svm", "svm2"}, {1e9},
        s.soft_threshold, util::Config{});
  }();
  return result;
}

void print_scatter(const core::ModelOutcome& outcome) {
  const auto& s = bench::study();
  std::printf("--- %s: predicted vs real RTTF (subsampled) ---\n",
              core::display_model_name(outcome.display_name).c_str());
  std::printf("%-16s%-16s\n", "real_rttf_s", "predicted_rttf_s");
  const std::size_t stride =
      std::max<std::size_t>(1, outcome.predicted.size() / 20);
  for (std::size_t i = 0; i < outcome.predicted.size(); i += stride) {
    std::printf("%-16.1f%-16.1f\n", s.validation.y[i], outcome.predicted[i]);
  }
  std::printf("\n");
}

void print_error_profile() {
  const auto& s = bench::study();
  // |error| binned by the real RTTF, 6 bins across the observed range.
  double max_rttf = 0.0;
  for (double y : s.validation.y) max_rttf = std::max(max_rttf, y);
  constexpr int kBins = 6;
  std::printf("--- mean |error| (s) binned by real RTTF ---\n");
  std::printf("%-34s", "Algorithm");
  for (int b = 0; b < kBins; ++b) {
    std::printf("%7.0f-%-7.0f", max_rttf * b / kBins,
                max_rttf * (b + 1) / kBins);
  }
  std::printf("\n");
  for (const auto& outcome : outcomes()) {
    double error_sum[kBins] = {};
    int counts[kBins] = {};
    for (std::size_t i = 0; i < outcome.predicted.size(); ++i) {
      int bin = static_cast<int>(s.validation.y[i] / max_rttf * kBins);
      bin = std::min(bin, kBins - 1);
      error_sum[bin] += std::abs(outcome.predicted[i] - s.validation.y[i]);
      ++counts[bin];
    }
    std::printf("%-34s",
                core::display_model_name(outcome.display_name).c_str());
    for (int b = 0; b < kBins; ++b) {
      std::printf("%-15.1f",
                  counts[b] == 0 ? 0.0 : error_sum[b] / counts[b]);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void BM_PredictValidationSet(benchmark::State& state) {
  const auto& s = bench::study();
  auto model = ml::make_model("reptree");
  model->fit(s.train.x, s.train.y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->predict(s.validation.x).size());
  }
}
BENCHMARK(BM_PredictValidationSet)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner("Fig. 5 - fitted models, predicted vs real RTTF");
  for (const auto& outcome : outcomes()) print_scatter(outcome);
  print_error_profile();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
