// Prescoring-cascade serving bench: the same traffic scored by the full
// model alone vs a two-stage cascade (linear screen, ε-SVR full stage)
// through the real TCP prediction service. The sweep varies the at-risk
// fraction of the stream — the share of windows whose true RTTF is below
// the promotion horizon — by replaying synthetic leak runs of different
// lengths: a run that fails at time L with horizon H puts H/L of its
// windows at risk. Reports sustained datapoints/sec per service core for
// each (fraction, archive) cell plus the cascade's promotion rate.
//
// Both archives come from ONE fit: the cascade is trained, then its full
// stage is serialized on its own as the baseline archive, so the two
// services score promoted windows with the very same fitted model. The
// bench verifies that property offline before measuring: on every
// evaluation matrix, cascade predictions on promoted rows must be
// bit-identical to the full model's, and the near-failure (RTTF < H)
// S-MAE of the cascade must match the full model's within noise.
//
// Emits BENCH_serve_prescoring.json next to the binary. `--smoke` runs a
// seconds-scale subset (CI) with the same output schema.
#include <benchmark/benchmark.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/aggregation.hpp"
#include "data/data_history.hpp"
#include "data/dataset.hpp"
#include "ml/cascade.hpp"
#include "ml/linear_regression.hpp"
#include "ml/metrics.hpp"
#include "ml/svr.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace f2pm;
using Clock = std::chrono::steady_clock;

constexpr double kWindowSeconds = 30.0;
constexpr double kHorizonSeconds = 600.0;
constexpr double kSampleSpacing = 7.5;  ///< 4 samples per window.
// The measured service: one reactor shard plus one scoring worker, so
// "per core" divides by exactly two busy service threads and the
// full-only/cascade cells differ in nothing but the archive.
constexpr std::size_t kServiceCores = 2;

/// A leak run failing at `length`: feature 0 carries a noisy linear RTTF
/// signal (what the screen learns), feature 1 a noisy square-root of it
/// (headroom for the kernel stage), the rest is uniform noise.
data::Run make_run(double length, util::Rng& rng) {
  data::Run run;
  for (double tgen = rng.uniform(0.0, kSampleSpacing); tgen < length;
       tgen += kSampleSpacing) {
    data::RawDatapoint sample;
    sample.tgen = tgen;
    const double remaining = length - tgen;
    sample.values[0] = remaining / 100.0 + rng.uniform(-0.5, 0.5);
    sample.values[1] = std::sqrt(remaining) / 10.0 + rng.uniform(-0.2, 0.2);
    for (std::size_t f = 2; f < data::kFeatureCount; ++f) {
      sample.values[f] = rng.uniform(0.0, 1.0);
    }
    run.samples.push_back(sample);
  }
  run.fail_time = length;
  run.failed = true;
  return run;
}

data::DataHistory make_history(std::size_t runs, double length,
                               std::uint64_t seed) {
  util::Rng rng(seed);
  data::DataHistory history;
  for (std::size_t r = 0; r < runs; ++r) {
    history.add_run(make_run(length, rng));
  }
  return history;
}

data::AggregationOptions aggregation_options() {
  data::AggregationOptions aggregation;
  aggregation.window_seconds = kWindowSeconds;
  return aggregation;
}

/// Fits the cascade once on a corpus mixing short (at-risk-rich) and long
/// runs, so the margin calibration sees the full RTTF range it will serve.
std::shared_ptr<const ml::CascadeRegressor> train_cascade(bool smoke) {
  util::Rng rng(7);
  data::DataHistory corpus;
  const std::size_t short_runs = smoke ? 2 : 8;
  const std::size_t long_runs = smoke ? 1 : 2;
  for (std::size_t r = 0; r < short_runs; ++r) {
    corpus.add_run(make_run(3'000.0, rng));
  }
  for (std::size_t r = 0; r < long_runs; ++r) {
    corpus.add_run(make_run(12'000.0, rng));
  }
  const data::Dataset dataset =
      data::build_dataset(data::aggregate(corpus, aggregation_options()));

  ml::CascadeOptions options;
  options.horizon_seconds = kHorizonSeconds;
  options.band_quantile = 1.0;
  ml::SvrOptions svr;
  svr.c = 10.0;
  svr.epsilon = 0.001;  // Near-interpolating fit: most rows become SVs.
  auto cascade = std::make_shared<ml::CascadeRegressor>(
      std::make_unique<ml::LinearRegression>(),
      std::make_unique<ml::KernelSvr>(svr), options);
  cascade->fit(dataset.x, dataset.y);
  return cascade;
}

/// Serializes the cascade and, separately, its already-fitted full stage —
/// the baseline archive scores with the identical model object state.
void write_archives(const ml::CascadeRegressor& cascade,
                    const std::string& cascade_path,
                    const std::string& full_path) {
  {
    std::ofstream out(cascade_path, std::ios::binary);
    ml::save_model(cascade, out);
  }
  {
    std::ofstream out(full_path, std::ios::binary);
    ml::save_model(cascade.full(), out);
  }
}

struct Verification {
  std::size_t rows = 0;
  std::size_t promoted_rows = 0;
  std::size_t near_failure_rows = 0;
  std::size_t bit_mismatches = 0;  ///< Promoted rows differing from full.
  double smae_full = 0.0;          ///< Near-failure S-MAE, full model.
  double smae_cascade = 0.0;       ///< Near-failure S-MAE, cascade.
};

/// Offline check on one serving history: promoted-window bit-identity and
/// near-failure soft-MAE parity between the two archives' predictions.
Verification verify(const ml::CascadeRegressor& cascade,
                    const data::DataHistory& history) {
  const data::Dataset dataset =
      data::build_dataset(data::aggregate(history, aggregation_options()));
  std::vector<std::uint8_t> promoted;
  const std::vector<double> cascade_pred =
      cascade.predict_traced(dataset.x, &promoted);
  const std::vector<double> full_pred = cascade.full().predict(dataset.x);

  Verification v;
  v.rows = dataset.y.size();
  std::vector<double> near_full;
  std::vector<double> near_cascade;
  std::vector<double> near_actual;
  for (std::size_t r = 0; r < v.rows; ++r) {
    if (promoted[r] != 0) {
      ++v.promoted_rows;
      if (std::bit_cast<std::uint64_t>(cascade_pred[r]) !=
          std::bit_cast<std::uint64_t>(full_pred[r])) {
        ++v.bit_mismatches;
      }
    }
    if (dataset.y[r] < kHorizonSeconds) {
      ++v.near_failure_rows;
      near_full.push_back(full_pred[r]);
      near_cascade.push_back(cascade_pred[r]);
      near_actual.push_back(dataset.y[r]);
    }
  }
  // The paper's S-MAE tolerance: 10% of the horizon's lead time.
  const double threshold = 0.1 * kHorizonSeconds;
  v.smae_full =
      ml::soft_mean_absolute_error(near_full, near_actual, threshold);
  v.smae_cascade =
      ml::soft_mean_absolute_error(near_cascade, near_actual, threshold);
  return v;
}

/// One load client: a sender thread replaying the history's runs (with
/// fail events) until `budget` datapoints are sent, and a receiver thread
/// draining predictions until server EOF.
struct ClientResult {
  std::size_t sent = 0;
  std::size_t predictions = 0;
  bool failed = false;
};

ClientResult run_client(std::uint16_t port, const data::DataHistory& history,
                        std::size_t budget, int id) {
  ClientResult result;
  try {
    net::TcpStream stream = net::TcpStream::connect("127.0.0.1", port);
    net::send_hello(stream,
                    net::Hello{net::kProtocolVersion,
                               "prescoring-client-" + std::to_string(id)});
    bool receiver_failed = false;
    std::thread receiver([&stream, &result, &receiver_failed] {
      try {
        net::FrameDecoder decoder;
        while (auto frame = net::receive_frame(stream, decoder)) {
          if (std::holds_alternative<net::Prediction>(*frame)) {
            ++result.predictions;
          }
        }
      } catch (const std::exception&) {
        receiver_failed = true;
      }
    });
    std::vector<std::uint8_t> wire;
    while (result.sent < budget) {
      for (const data::Run& run : history.runs()) {
        if (result.sent >= budget) break;
        for (const data::RawDatapoint& sample : run.samples) {
          if (result.sent >= budget) break;
          wire.clear();
          net::FrameEncoder::encode_datapoint(wire, sample);
          stream.send_all(wire.data(), wire.size());
          ++result.sent;
        }
        net::send_fail_event(stream, run.fail_time);
      }
    }
    net::send_bye(stream);
    stream.shutdown_write();
    receiver.join();
    result.failed = receiver_failed;
  } catch (const std::exception&) {
    result.failed = true;
  }
  return result;
}

struct BenchResult {
  double at_risk_percent = 0.0;
  std::string archive;  ///< "full" or "cascade".
  std::size_t datapoints = 0;
  std::size_t predictions = 0;
  std::uint64_t windows_promoted = 0;
  double wall_seconds = 0.0;
  double datapoints_per_second = 0.0;
  double dps_per_core = 0.0;
  double promotion_rate = 0.0;
  double speedup_vs_full = 0.0;  ///< Filled on cascade rows.
  std::size_t errors = 0;
};

BenchResult run_load(const std::string& archive_path,
                     const std::string& archive_name, double at_risk_percent,
                     const data::DataHistory& history, std::size_t budget) {
  auto store = std::make_shared<serve::ModelStore>();
  store->load_file(archive_path);
  serve::ServiceOptions options;
  options.aggregation = aggregation_options();
  options.shards = 1;
  options.scoring_threads = 1;
  serve::PredictionService service(options, store);

  constexpr std::size_t kClients = 2;
  std::vector<ClientResult> results(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  const Clock::time_point start = Clock::now();
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      results[c] = run_client(service.port(), history, budget / kClients,
                              static_cast<int>(c));
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  service.stop();
  const serve::ServiceStats stats = service.stats();

  BenchResult bench;
  bench.at_risk_percent = at_risk_percent;
  bench.archive = archive_name;
  bench.wall_seconds = wall;
  for (const ClientResult& r : results) {
    bench.datapoints += r.sent;
    bench.predictions += r.predictions;
    bench.errors += r.failed ? 1 : 0;
  }
  bench.errors += stats.protocol_errors;
  bench.windows_promoted = stats.windows_promoted;
  bench.datapoints_per_second =
      wall > 0.0 ? static_cast<double>(bench.datapoints) / wall : 0.0;
  bench.dps_per_core =
      bench.datapoints_per_second / static_cast<double>(kServiceCores);
  bench.promotion_rate =
      stats.predictions_sent > 0
          ? static_cast<double>(stats.windows_promoted) /
                static_cast<double>(stats.predictions_sent)
          : 0.0;
  return bench;
}

void write_json(const std::vector<BenchResult>& results,
                const std::vector<Verification>& checks,
                const std::vector<double>& fractions, bool smoke) {
  std::FILE* out = std::fopen("BENCH_serve_prescoring.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"bench\": \"serve_prescoring\",\n");
  std::fprintf(out, "  \"window_seconds\": %.1f,\n", kWindowSeconds);
  std::fprintf(out, "  \"horizon_seconds\": %.1f,\n", kHorizonSeconds);
  std::fprintf(out, "  \"service_cores\": %zu,\n", kServiceCores);
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"verification\": [\n");
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const Verification& v = checks[i];
    std::fprintf(out,
                 "    {\"at_risk_percent\": %.1f, \"rows\": %zu, "
                 "\"promoted_rows\": %zu, \"bit_mismatches\": %zu, "
                 "\"near_failure_rows\": %zu, \"smae_full\": %.3f, "
                 "\"smae_cascade\": %.3f}%s\n",
                 fractions[i] * 100.0, v.rows, v.promoted_rows,
                 v.bit_mismatches, v.near_failure_rows, v.smae_full,
                 v.smae_cascade, i + 1 < checks.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(
        out,
        "    {\"at_risk_percent\": %.1f, \"archive\": \"%s\", "
        "\"datapoints\": %zu, \"predictions\": %zu, \"wall_seconds\": %.3f, "
        "\"datapoints_per_second\": %.0f, \"dps_per_core\": %.0f, "
        "\"promotion_rate\": %.4f, \"speedup_vs_full\": %.3f, "
        "\"errors\": %zu}%s\n",
        r.at_risk_percent, r.archive.c_str(), r.datapoints, r.predictions,
        r.wall_seconds, r.datapoints_per_second, r.dps_per_core,
        r.promotion_rate, r.speedup_vs_full, r.errors,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

void run_all(bool smoke) {
  std::printf("== F2PM serve: two-stage prescoring cascade ==\n");
  const auto cascade = train_cascade(smoke);
  std::printf(
      "cascade: screen=%s full=%s, horizon %.0fs, calibrated margin %.2fs; "
      "%.0fs windows, %zu service cores\n\n",
      cascade->screen().name().c_str(), cascade->full().name().c_str(),
      kHorizonSeconds, cascade->margin(), kWindowSeconds, kServiceCores);

  const std::string cascade_path = "bench_prescoring_cascade.f2pm";
  const std::string full_path = "bench_prescoring_full.f2pm";
  write_archives(*cascade, cascade_path, full_path);

  // At-risk fraction H/L via the run length L; one serving history each.
  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.05} : std::vector<double>{0.01, 0.05, 0.20};
  const std::size_t budget = smoke ? 4'000 : 40'000;

  std::vector<Verification> checks;
  std::vector<data::DataHistory> histories;
  bool verified = true;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const double length = kHorizonSeconds / fractions[i];
    histories.push_back(make_history(2, length, 100 + i));
    const Verification v = verify(*cascade, histories.back());
    checks.push_back(v);
    std::printf(
        "verify %4.1f%% at risk: %zu windows, %zu promoted, %zu bit "
        "mismatches, near-failure S-MAE full %.1fs vs cascade %.1fs\n",
        fractions[i] * 100.0, v.rows, v.promoted_rows, v.bit_mismatches,
        v.near_failure_rows > 0 ? v.smae_full : 0.0,
        v.near_failure_rows > 0 ? v.smae_cascade : 0.0);
    if (v.bit_mismatches > 0) verified = false;
  }
  std::printf("promoted-window bit-identity: %s\n\n",
              verified ? "PASS" : "FAIL");

  std::printf("%-10s%-10s%-13s%-12s%-14s%-12s%-10s%-8s\n", "at-risk",
              "archive", "datapoints", "dp/sec", "dp/sec/core", "promoted",
              "speedup", "errors");
  std::printf("%s\n", std::string(89, '-').c_str());
  std::vector<BenchResult> results;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    BenchResult full = run_load(full_path, "full", fractions[i] * 100.0,
                                histories[i], budget);
    BenchResult casc = run_load(cascade_path, "cascade", fractions[i] * 100.0,
                                histories[i], budget);
    casc.speedup_vs_full = full.datapoints_per_second > 0.0
                               ? casc.datapoints_per_second /
                                     full.datapoints_per_second
                               : 0.0;
    for (const BenchResult& r : {full, casc}) {
      std::printf("%-10.1f%-10s%-13zu%-12.0f%-14.0f%-12.4f%-10.2f%-8zu\n",
                  r.at_risk_percent, r.archive.c_str(), r.datapoints,
                  r.datapoints_per_second, r.dps_per_core, r.promotion_rate,
                  r.speedup_vs_full, r.errors);
      results.push_back(r);
    }
  }
  write_json(results, checks, fractions, smoke);
  std::printf("\nwrote BENCH_serve_prescoring.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  // Strip --smoke before handing the remaining flags to the benchmark
  // library (it rejects flags it does not know).
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  run_all(smoke);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
