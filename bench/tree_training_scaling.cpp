// Tree-training scaling: the v0 growth-seed REP-Tree fit (recursive build
// with a fresh per-node gather-sort split search, per-node row-vector
// allocations, recursive prune/backfit/importances — replicated verbatim
// below) vs the presorted and histogram engines, plus the in-tree kNaive
// engine mode, bagged-ensemble fit at several worker counts, and batched
// vs row-by-row prediction for the tree family and KNN.
//
// Emits BENCH_tree_training.json next to the binary: per-config fit and
// predict timings (min over reps) plus headline speedups (presort over
// the v0 seed at the largest n, parallel bagging over serial). `--smoke`
// shrinks every size so CI can execute the full code path in seconds.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "ml/ensemble.hpp"
#include "ml/knn.hpp"
#include "ml/m5p.hpp"
#include "ml/metrics.hpp"
#include "ml/reptree.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace f2pm;

// Telemetry-style width: failure-prediction feature sets (resource and
// error metrics before model-specific selection) run tens of columns.
constexpr std::size_t kFeatures = 16;

// WEKA's -M: minimum instances per leaf. 25 is a typical setting for
// noisy telemetry regressions at n in the tens of thousands; both the
// seed replica and the engines run with the same value.
constexpr std::size_t kMinLeaf = 25;

/// Piecewise response over mixed continuous/discrete features — enough
/// structure that the trees grow to realistic depth, enough ties that the
/// split search does real work on duplicate values.
void make_data(std::size_t n, util::Rng& rng, linalg::Matrix& x,
               std::vector<double>& y) {
  x = linalg::Matrix(n, kFeatures);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < kFeatures; ++c) {
      x(i, c) = c % 3 == 0 ? static_cast<double>(rng.uniform_int(0, 15))
                           : rng.uniform(-2.0, 2.0);
    }
    y[i] = std::sin(x(i, 1)) + 0.3 * x(i, 0) +
           (x(i, 2) > 0.5 ? 2.0 : -1.0) + 0.2 * x(i, 4) * x(i, 5) +
           rng.normal(0.0, 0.05);
  }
}

// ---------------------------------------------------------------------------
// Verbatim replica of the v0 growth-seed REP-Tree fit. The split search is
// the seed's exact code: one carried sort buffer per node, plain std::sort
// with a gather comparator (tie order unspecified), moments recomputed from
// scratch; grow/prune/backfit/importances all recurse with fresh row-vector
// allocations at every node. This is the honest pre-engine baseline.

ml::BestSplit seed_find_best_split(const linalg::Matrix& x,
                                   std::span<const double> y,
                                   const std::vector<std::size_t>& rows,
                                   std::size_t min_leaf,
                                   ml::SplitCriterion criterion) {
  ml::BestSplit best;
  if (rows.size() < 2 * min_leaf) return best;
  const ml::Moments total = ml::compute_moments(y, rows);
  if (total.sse() <= 0.0) return best;
  const double total_sd = total.sd();
  const double inv_count = 1.0 / static_cast<double>(total.count);
  std::vector<std::size_t> sorted(rows);
  for (std::size_t feature = 0; feature < x.cols(); ++feature) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) {
                return x(a, feature) < x(b, feature);
              });
    ml::Moments left;
    ml::Moments right = total;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double value = y[sorted[i]];
      left.add(value);
      right.sum -= value;
      right.sum_sq -= value * value;
      --right.count;
      const double v_here = x(sorted[i], feature);
      const double v_next = x(sorted[i + 1], feature);
      if (v_here == v_next) continue;
      if (left.count < min_leaf || right.count < min_leaf) continue;
      double score = 0.0;
      if (criterion == ml::SplitCriterion::kVarianceReduction) {
        score = total.sse() - (left.sse() + right.sse());
      } else {
        const double weighted_sd =
            (static_cast<double>(left.count) * left.sd() +
             static_cast<double>(right.count) * right.sd()) *
            inv_count;
        score = total_sd - weighted_sd;
      }
      if (score > best.score || !best.found) {
        if (score <= 0.0) continue;
        best.found = true;
        best.feature = feature;
        best.threshold = v_here + (v_next - v_here) / 2.0;
        best.score = score;
      }
    }
  }
  return best;
}

struct SeedTree {
  struct N {
    std::size_t f = 0;
    double t = 0.0;
    double v = 0.0;
    std::size_t l = ml::kNoNode;
    std::size_t r = ml::kNoNode;
    [[nodiscard]] bool leaf() const { return l == ml::kNoNode; }
  };
  std::vector<N> nodes;
  std::vector<double> imps;
  std::size_t root = ml::kNoNode;
  ml::RepTreeOptions opt;

  std::size_t build(const linalg::Matrix& x, std::span<const double> y,
                    const std::vector<std::size_t>& rows, std::size_t depth,
                    double root_var) {
    const ml::Moments m = ml::compute_moments(y, rows);
    N node;
    node.v = m.mean();
    const bool depth_ok = opt.max_depth == 0 || depth < opt.max_depth;
    const double var =
        m.count == 0 ? 0.0 : m.sse() / static_cast<double>(m.count);
    ml::BestSplit split;
    if (depth_ok && var > opt.min_variance_proportion * root_var) {
      split = seed_find_best_split(x, y, rows, opt.min_instances_per_leaf,
                                   ml::SplitCriterion::kVarianceReduction);
    }
    const std::size_t id = nodes.size();
    nodes.push_back(node);
    if (!split.found) return id;
    std::vector<std::size_t> lr;
    std::vector<std::size_t> rr;
    ml::partition_rows(x, rows, split.feature, split.threshold, lr, rr);
    const std::size_t li = build(x, y, lr, depth + 1, root_var);
    const std::size_t ri = build(x, y, rr, depth + 1, root_var);
    nodes[id].f = split.feature;
    nodes[id].t = split.threshold;
    nodes[id].l = li;
    nodes[id].r = ri;
    return id;
  }

  double prune(std::size_t id, const linalg::Matrix& x,
               std::span<const double> y,
               const std::vector<std::size_t>& rows) {
    N& node = nodes[id];
    double leaf_sse = 0.0;
    for (std::size_t r : rows) {
      const double e = y[r] - node.v;
      leaf_sse += e * e;
    }
    if (node.leaf()) return leaf_sse;
    std::vector<std::size_t> lr;
    std::vector<std::size_t> rr;
    ml::partition_rows(x, rows, node.f, node.t, lr, rr);
    const double sub = prune(node.l, x, y, lr) + prune(node.r, x, y, rr);
    if (leaf_sse <= sub) {
      node.l = ml::kNoNode;
      node.r = ml::kNoNode;
      return leaf_sse;
    }
    return sub;
  }

  void backfit(std::size_t id, const linalg::Matrix& x,
               std::span<const double> y,
               const std::vector<std::size_t>& rows) {
    N& node = nodes[id];
    if (!rows.empty()) node.v = ml::compute_moments(y, rows).mean();
    if (node.leaf()) return;
    std::vector<std::size_t> lr;
    std::vector<std::size_t> rr;
    ml::partition_rows(x, rows, node.f, node.t, lr, rr);
    backfit(node.l, x, y, lr);
    backfit(node.r, x, y, rr);
  }

  double accimp(std::size_t id, const linalg::Matrix& x,
                std::span<const double> y,
                const std::vector<std::size_t>& rows) {
    const double sse = ml::compute_moments(y, rows).sse();
    N& node = nodes[id];
    if (node.leaf()) return sse;
    std::vector<std::size_t> lr;
    std::vector<std::size_t> rr;
    ml::partition_rows(x, rows, node.f, node.t, lr, rr);
    const double child = accimp(node.l, x, y, lr) + accimp(node.r, x, y, rr);
    imps[node.f] += std::max(sse - child, 0.0);
    return child;
  }

  void fit(const linalg::Matrix& x, std::span<const double> y) {
    nodes.clear();
    const std::size_t n = x.rows();
    std::vector<std::size_t> gr;
    std::vector<std::size_t> pr;
    const bool can_prune = opt.prune && n >= 2 * opt.num_folds;
    if (can_prune) {
      util::Rng rng(opt.seed);
      const auto perm = rng.permutation(n);
      const std::size_t pc = n / opt.num_folds;
      pr.assign(perm.begin(), perm.begin() + pc);
      gr.assign(perm.begin() + pc, perm.end());
      std::sort(gr.begin(), gr.end());
      std::sort(pr.begin(), pr.end());
    } else {
      gr.resize(n);
      for (std::size_t i = 0; i < n; ++i) gr[i] = i;
    }
    const ml::Moments rm = ml::compute_moments(y, gr);
    const double rv =
        rm.count == 0 ? 0.0 : rm.sse() / static_cast<double>(rm.count);
    root = build(x, y, gr, 0, rv);
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    if (can_prune) {
      prune(root, x, y, pr);
      backfit(root, x, y, all);
    }
    imps.assign(x.cols(), 0.0);
    accimp(root, x, y, all);
  }

  [[nodiscard]] double predict(std::span<const double> row) const {
    std::size_t id = root;
    while (!nodes[id].leaf()) {
      id = row[nodes[id].f] <= nodes[id].t ? nodes[id].l : nodes[id].r;
    }
    return nodes[id].v;
  }
};

// ---------------------------------------------------------------------------

struct Result {
  std::string section;
  std::string impl;
  std::size_t n = 0;
  double seconds = 0.0;
  double mae = 0.0;
};

std::vector<Result> g_results;

void record(const Result& r) {
  std::printf("%-24s%-20s%-10zu%-14.4f%-10.5f\n", r.section.c_str(),
              r.impl.c_str(), r.n, r.seconds, r.mae);
  g_results.push_back(r);
}

/// Minimum wall-clock over `reps` runs of `fn` (re-fitting each time).
template <typename Fn>
double timed_min(std::size_t reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < reps; ++i) {
    best = std::min(best, util::timed(fn));
  }
  return best;
}

ml::RepTreeOptions bench_tree_options(ml::SplitMode mode) {
  ml::RepTreeOptions options;
  options.split_mode = mode;
  options.min_instances_per_leaf = kMinLeaf;
  return options;
}

double fit_seed(std::size_t reps, const linalg::Matrix& x,
                const std::vector<double>& y, const linalg::Matrix& x_val,
                const std::vector<double>& y_val) {
  SeedTree tree;
  tree.opt.min_instances_per_leaf = kMinLeaf;
  Result r;
  r.section = "reptree_fit";
  r.impl = "seed_v0";
  r.n = x.rows();
  r.seconds = timed_min(reps, [&] { tree.fit(x, y); });
  std::vector<double> pred(x_val.rows());
  for (std::size_t i = 0; i < x_val.rows(); ++i) {
    pred[i] = tree.predict(x_val.row(i));
  }
  r.mae = ml::mean_absolute_error(pred, y_val);
  record(r);
  return r.seconds;
}

double fit_reptree(std::size_t reps, ml::SplitMode mode,
                   const linalg::Matrix& x, const std::vector<double>& y,
                   const linalg::Matrix& x_val,
                   const std::vector<double>& y_val, const char* impl) {
  ml::RepTree tree(bench_tree_options(mode));
  Result r;
  r.section = "reptree_fit";
  r.impl = impl;
  r.n = x.rows();
  r.seconds = timed_min(reps, [&] { tree.fit(x, y); });
  r.mae = ml::mean_absolute_error(tree.predict(x_val), y_val);
  record(r);
  return r.seconds;
}

double fit_m5p(std::size_t reps, ml::SplitMode mode, const linalg::Matrix& x,
               const std::vector<double>& y, const linalg::Matrix& x_val,
               const std::vector<double>& y_val, const char* impl) {
  ml::M5POptions options;
  options.split_mode = mode;
  ml::M5P model(options);
  Result r;
  r.section = "m5p_fit";
  r.impl = impl;
  r.n = x.rows();
  r.seconds = timed_min(reps, [&] { model.fit(x, y); });
  r.mae = ml::mean_absolute_error(model.predict(x_val), y_val);
  record(r);
  return r.seconds;
}

double fit_bagging(std::size_t workers, std::size_t num_trees,
                   const linalg::Matrix& x, const std::vector<double>& y,
                   const linalg::Matrix& x_val,
                   const std::vector<double>& y_val) {
  ml::BaggedTreesOptions options;
  options.num_trees = num_trees;
  options.fit_workers = workers;
  ml::BaggedTrees model(options);
  Result r;
  r.section = "bagging_fit";
  r.impl = "workers_" + std::to_string(workers);
  r.n = x.rows();
  r.seconds = util::timed([&] { model.fit(x, y); });
  r.mae = ml::mean_absolute_error(model.predict(x_val), y_val);
  record(r);
  return r.seconds;
}

/// Times model.predict(x) against the row-by-row loop it replaces.
template <typename Model>
void predict_pair(const char* section, const Model& model,
                  const linalg::Matrix& queries) {
  std::vector<double> batched;
  std::vector<double> rowwise(queries.rows());
  Result batch;
  batch.section = section;
  batch.impl = "batched";
  batch.n = queries.rows();
  batch.seconds = util::timed([&] { batched = model.predict(queries); });
  Result loop;
  loop.section = section;
  loop.impl = "row_by_row";
  loop.n = queries.rows();
  loop.seconds = util::timed([&] {
    for (std::size_t r = 0; r < queries.rows(); ++r) {
      rowwise[r] = model.predict_row(queries.row(r));
    }
  });
  batch.mae = ml::mean_absolute_error(batched, rowwise);  // ~0: same model
  loop.mae = batch.mae;
  record(batch);
  record(loop);
}

void write_json(double presort_speedup, std::size_t presort_n,
                double bagging_speedup, std::size_t bagging_workers) {
  std::FILE* out = std::fopen("BENCH_tree_training.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"bench\": \"tree_training_scaling\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < g_results.size(); ++i) {
    const Result& r = g_results[i];
    std::fprintf(out,
                 "    {\"section\": \"%s\", \"impl\": \"%s\", \"n\": %zu, "
                 "\"seconds\": %.6f, \"mae\": %.6f}%s\n",
                 r.section.c_str(), r.impl.c_str(), r.n, r.seconds, r.mae,
                 i + 1 < g_results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"reptree_presort_speedup\": {\"n\": %zu, \"value\": "
               "%.3f},\n",
               presort_n, presort_speedup);
  std::fprintf(out,
               "  \"bagging_parallel_speedup\": {\"workers\": %zu, \"value\": "
               "%.3f},\n",
               bagging_workers, bagging_speedup);
  std::fprintf(out, "  \"hardware_threads\": %u\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "}\n");
  std::fclose(out);
}

void run_all(bool smoke) {
  std::printf("== F2PM perf: tree training - v0 seed vs presort/histogram "
              "engines ==\n");
  std::printf("synthetic regression, %zu features, min_leaf %zu; hardware "
              "threads: %u%s\n\n",
              kFeatures, kMinLeaf, std::thread::hardware_concurrency(),
              smoke ? " [smoke]" : "");
  std::printf("%-24s%-20s%-10s%-14s%-10s\n", "section", "impl", "n",
              "seconds", "mae");
  std::printf("%s\n", std::string(78, '-').c_str());

  const std::vector<std::size_t> tree_sizes =
      smoke ? std::vector<std::size_t>{500}
            : std::vector<std::size_t>{2000, 20000};
  const std::size_t reps = smoke ? 1 : 3;
  const std::size_t bagging_n = smoke ? 400 : 2000;
  const std::size_t bagging_trees = smoke ? 6 : 50;
  const std::size_t bagging_workers = 8;
  const std::size_t knn_n = smoke ? 400 : 4000;

  double seed_at_max = 0.0;
  double presort_at_max = 0.0;
  for (const std::size_t n : tree_sizes) {
    util::Rng rng(4242);
    linalg::Matrix x;
    std::vector<double> y;
    make_data(n, rng, x, y);
    linalg::Matrix x_val;
    std::vector<double> y_val;
    make_data(500, rng, x_val, y_val);

    const double seed = fit_seed(reps, x, y, x_val, y_val);
    fit_reptree(reps, ml::SplitMode::kNaive, x, y, x_val, y_val, "naive");
    const double presort = fit_reptree(reps, ml::SplitMode::kPresort, x, y,
                                       x_val, y_val, "presort");
    fit_reptree(reps, ml::SplitMode::kHistogram, x, y, x_val, y_val,
                "histogram");
    if (n == tree_sizes.back()) {
      seed_at_max = seed;
      presort_at_max = presort;
    }

    fit_m5p(reps, ml::SplitMode::kNaive, x, y, x_val, y_val, "naive");
    fit_m5p(reps, ml::SplitMode::kPresort, x, y, x_val, y_val, "presort");
  }

  // Bagged ensembles: identical models at every worker count, so the mae
  // column doubles as a sanity check.
  util::Rng rng(77);
  linalg::Matrix x;
  std::vector<double> y;
  make_data(bagging_n, rng, x, y);
  linalg::Matrix x_val;
  std::vector<double> y_val;
  make_data(500, rng, x_val, y_val);
  const double serial = fit_bagging(1, bagging_trees, x, y, x_val, y_val);
  const double parallel =
      fit_bagging(bagging_workers, bagging_trees, x, y, x_val, y_val);

  // Batched vs row-by-row prediction.
  {
    ml::RepTree tree;
    tree.fit(x, y);
    predict_pair("reptree_predict", tree, x);
    ml::BaggedTreesOptions bag_options;
    bag_options.num_trees = bagging_trees;
    ml::BaggedTrees bag(bag_options);
    bag.fit(x, y);
    predict_pair("bagging_predict", bag, x);
  }
  {
    util::Rng knn_rng(99);
    linalg::Matrix knn_x;
    std::vector<double> knn_y;
    make_data(knn_n, knn_rng, knn_x, knn_y);
    ml::KnnRegressor knn;
    knn.fit(knn_x, knn_y);
    predict_pair("knn_predict", knn, knn_x);
  }

  const double presort_speedup =
      presort_at_max > 0.0 ? seed_at_max / presort_at_max : 0.0;
  const double bagging_speedup = parallel > 0.0 ? serial / parallel : 0.0;
  std::printf("\nreptree presort speedup at n=%zu (seed_v0 / presort): "
              "%.2fx\n",
              tree_sizes.back(), presort_speedup);
  std::printf("bagging speedup at %zu workers (serial / parallel): %.2fx\n\n",
              bagging_workers, bagging_speedup);
  write_json(presort_speedup, tree_sizes.back(), bagging_speedup,
             bagging_workers);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  // Strip --smoke before handing the remaining flags to the benchmark
  // library (it rejects flags it does not know).
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  run_all(smoke);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
