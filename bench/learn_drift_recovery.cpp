// Drift-recovery bench for the continuous-learning loop (src/learn): a
// live PredictionService wired to a ContinuousTrainer serves one FMC
// client streaming memory-ramp runs; mid-campaign the leak rate doubles.
// Measured:
//
//   - windows-to-recovery: shadow-scored windows between the shift and
//     the drift-triggered hot swap landing in the serve tier,
//   - retrain latency: wall seconds of the drift retrain itself,
//   - serve throughput impact: client-observed datapoints/sec during the
//     storm (drift detection + retrain + publish in flight) vs the
//     pre-shift steady state — the retrain runs on the shared process
//     pool, not the shards' scoring pools, so this should be flat.
//
// Emits BENCH_learn_drift.json next to the binary. `--smoke` shrinks the
// volume for CI.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "learn/trainer.hpp"
#include "net/fmc.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"
#include "tests/chaos_driver.hpp"

namespace {

using namespace f2pm;
using Clock = std::chrono::steady_clock;

constexpr double kFailMem = 60.0;  ///< Crash threshold (ramp units).
/// Monitor cadence. Dense sampling (vs the tests' 1 s) so each run's send
/// loop moves enough packets for its throughput to be timeable; the drift
/// scenario itself is time-based and unchanged by it.
constexpr double kSampleInterval = 0.1;

struct DriftBenchResult {
  std::size_t runs_pre_shift = 0;
  std::size_t runs_to_recovery = 0;     ///< Shifted runs until the swap.
  std::size_t windows_to_recovery = 0;  ///< Shadow windows over the same.
  double retrain_latency_seconds = 0.0;
  std::uint64_t retrains_completed = 0;
  std::uint64_t drift_verdicts = 0;
  std::uint64_t publishes = 0;
  double baseline_dps = 0.0;  ///< Pre-shift steady state (longer runs).
  double storm_dps = 0.0;     ///< While drift detection + retrain ran.
  double recovery_dps = 0.0;  ///< Post-swap, same run shape as the storm.
  /// 1 - storm/recovery: the serve-side cost of the recovery machinery,
  /// measured against runs of identical shape after the swap landed
  /// (comparing against baseline_dps would mostly measure the shorter
  /// post-shift runs, not the retrain).
  double dps_impact_fraction = 0.0;
  double pre_shift_smae = 0.0;
  double recovered_smae = 0.0;
  bool recovered = false;
};

learn::TrainerOptions trainer_options(const std::string& archive) {
  learn::TrainerOptions options;
  options.model_name = "reptree";
  options.model_params.set("reptree.prune", "false");
  options.archive_path = archive;
  options.aggregation.window_seconds = chaos::kChaosWindowSeconds;
  options.aggregation.min_samples_per_window = 2;
  options.corpus.max_runs = 16;
  options.drift.horizon = 20;
  options.drift.degrade_ratio = 1.5;
  options.drift.min_smae_seconds = 1.0;
  options.drift.consecutive = 2;
  options.min_corpus_runs = 3;
  options.candidate_min_windows = 7;
  return options;
}

/// Median of per-run throughput samples (robust to the occasional
/// scheduler stall, which dominates a sum over runs this short).
double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return (values[mid - 1] + values[mid]) / 2.0;
}

bool wait_until(const std::function<bool()>& condition, double seconds) {
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return condition();
}

DriftBenchResult run_campaign(bool smoke) {
  const std::string archive = "BENCH_learn_drift_model.bin";
  std::remove(archive.c_str());

  auto store = std::make_shared<serve::ModelStore>();
  store->watch_file(archive);
  learn::ContinuousTrainer trainer(*store, trainer_options(archive));

  serve::ServiceOptions options = chaos::chaos_service_options();
  options.model_poll_seconds = 0.02;
  options.run_sink = trainer.sink();
  serve::PredictionService service(options, store);

  net::ClientOptions client_options;
  client_options.op_deadline_seconds = 30.0;
  net::FeatureMonitorClient client("127.0.0.1", service.port(),
                                   client_options);
  client.hello("drift-bench");

  std::uint64_t runs_streamed = 0;
  // One ramp run; returns the send loop's datapoints/sec. Sample times are
  // index * interval (never accumulated), so no sample's tgen can drift
  // past fail_time — the serve tier rightly refuses to export such a run.
  const auto stream_run = [&](double rate) {
    const double fail_time = kFailMem / rate;
    std::size_t sent = 0;
    const Clock::time_point start = Clock::now();
    for (std::size_t i = 0;; ++i) {
      const double t = static_cast<double>(i) * kSampleInterval;
      if (t > fail_time) break;
      data::RawDatapoint sample;
      sample.tgen = t;
      sample[data::FeatureId::kMemUsed] = rate * t;
      sample[data::FeatureId::kCpuUser] = 10.0;
      client.send(sample);
      ++sent;
      while (client.poll_prediction().has_value()) {
      }
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    client.report_failure(fail_time);
    ++runs_streamed;
    return elapsed > 0.0 ? static_cast<double>(sent) / elapsed : 0.0;
  };
  const auto wait_ingested = [&] {
    return wait_until(
        [&] {
          const learn::TrainerStats s = trainer.stats();
          return s.runs_ingested + s.runs_rejected >= runs_streamed;
        },
        10.0);
  };

  DriftBenchResult result;

  // Bootstrap: serve starts model-less; the exported runs produce the
  // first archive and hot swap. Unmeasured.
  for (int i = 0; i < 10 && trainer.stats().publishes < 1; ++i) {
    stream_run(1.0);
    wait_ingested();
    trainer.drain();
  }
  if (!wait_until([&] { return service.stats().model_version >= 1; }, 10.0)) {
    std::fprintf(stderr, "bootstrap swap never landed\n");
    return result;
  }

  // Steady state: the pre-shift throughput and accuracy baseline.
  const std::size_t steady_runs = smoke ? 4 : 12;
  std::vector<double> baseline_dps;
  for (std::size_t i = 0; i < steady_runs; ++i) {
    baseline_dps.push_back(stream_run(1.0));
  }
  wait_ingested();
  trainer.drain();
  result.runs_pre_shift = runs_streamed;
  result.baseline_dps = median(std::move(baseline_dps));
  result.pre_shift_smae = trainer.stats().live_smae;

  // The storm: the leak rate doubles. Stream shifted runs, measuring the
  // send loop only, until the drift retrain's archive lands in serve.
  const learn::TrainerStats at_shift = trainer.stats();
  std::vector<double> storm_dps;
  const int max_storm_runs = smoke ? 25 : 50;
  for (int i = 0; i < max_storm_runs; ++i) {
    storm_dps.push_back(stream_run(2.0));
    wait_ingested();
    trainer.drain();
    ++result.runs_to_recovery;
    if (trainer.stats().publishes >= 2) break;
  }
  result.recovered =
      trainer.stats().publishes >= 2 &&
      wait_until([&] { return service.stats().model_version >= 2; }, 10.0);
  const learn::TrainerStats at_recovery = trainer.stats();
  result.windows_to_recovery =
      at_recovery.windows_scored_live - at_shift.windows_scored_live;
  result.retrain_latency_seconds = at_recovery.last_retrain_seconds;
  result.retrains_completed = at_recovery.retrains_completed;
  result.drift_verdicts = at_recovery.drift_verdicts;
  result.publishes = at_recovery.publishes;
  result.storm_dps = median(std::move(storm_dps));

  // Post-swap: recovery runs refill the rolling window and provide the
  // like-for-like throughput reference — same run shape AND same cadence
  // (ingest-wait + drain between runs) as the storm, so the only
  // difference left is the recovery machinery itself.
  const std::size_t recovery_runs = smoke ? 4 : 8;
  std::vector<double> recovery_dps;
  for (std::size_t i = 0; i < recovery_runs; ++i) {
    recovery_dps.push_back(stream_run(2.0));
    wait_ingested();
    trainer.drain();
  }
  result.recovery_dps = median(std::move(recovery_dps));
  result.dps_impact_fraction =
      result.recovery_dps > 0.0
          ? 1.0 - result.storm_dps / result.recovery_dps
          : 0.0;
  result.recovered_smae = trainer.stats().live_smae;

  client.finish();
  service.stop();
  trainer.stop();
  std::remove(archive.c_str());
  return result;
}

void write_json(const DriftBenchResult& r, bool smoke) {
  std::FILE* out = std::fopen("BENCH_learn_drift.json", "w");
  if (out == nullptr) return;
  std::fprintf(out, "{\n  \"bench\": \"learn_drift_recovery\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"recovered\": %s,\n", r.recovered ? "true" : "false");
  std::fprintf(out, "  \"runs_pre_shift\": %zu,\n", r.runs_pre_shift);
  std::fprintf(out, "  \"runs_to_recovery\": %zu,\n", r.runs_to_recovery);
  std::fprintf(out, "  \"windows_to_recovery\": %zu,\n",
               r.windows_to_recovery);
  std::fprintf(out, "  \"retrain_latency_seconds\": %.6f,\n",
               r.retrain_latency_seconds);
  std::fprintf(out, "  \"retrains_completed\": %llu,\n",
               static_cast<unsigned long long>(r.retrains_completed));
  std::fprintf(out, "  \"drift_verdicts\": %llu,\n",
               static_cast<unsigned long long>(r.drift_verdicts));
  std::fprintf(out, "  \"publishes\": %llu,\n",
               static_cast<unsigned long long>(r.publishes));
  std::fprintf(out, "  \"baseline_datapoints_per_second\": %.0f,\n",
               r.baseline_dps);
  std::fprintf(out, "  \"storm_datapoints_per_second\": %.0f,\n",
               r.storm_dps);
  std::fprintf(out, "  \"recovery_datapoints_per_second\": %.0f,\n",
               r.recovery_dps);
  std::fprintf(out, "  \"dps_impact_fraction\": %.4f,\n",
               r.dps_impact_fraction);
  std::fprintf(out, "  \"pre_shift_smae_seconds\": %.4f,\n",
               r.pre_shift_smae);
  std::fprintf(out, "  \"recovered_smae_seconds\": %.4f\n",
               r.recovered_smae);
  std::fprintf(out, "}\n");
  std::fclose(out);
}

void run_all(bool smoke) {
  std::printf("== F2PM learn: drift-storm recovery over a live service ==\n");
  std::printf(
      "one FMC client streams memory-ramp runs over loopback; the leak "
      "rate doubles mid-campaign and the trainer must notice, retrain and "
      "hot-swap; the send loop is timed to expose any serve-side cost\n\n");
  const DriftBenchResult r = run_campaign(smoke);
  std::printf("%-22s%-22s%-14s%-16s%-14s%-12s\n", "windows-to-recovery",
              "retrain latency (s)", "storm dp/s", "recovery dp/s",
              "dp/s impact", "recovered");
  std::printf("%s\n", std::string(100, '-').c_str());
  std::printf("%-22zu%-22.6f%-14.0f%-16.0f%-14.4f%-12s\n",
              r.windows_to_recovery, r.retrain_latency_seconds, r.storm_dps,
              r.recovery_dps, r.dps_impact_fraction,
              r.recovered ? "yes" : "NO");
  std::printf("pre-shift S-MAE %.4fs -> recovered S-MAE %.4fs "
              "(%llu drift verdicts, %llu retrains, %llu publishes)\n",
              r.pre_shift_smae, r.recovered_smae,
              static_cast<unsigned long long>(r.drift_verdicts),
              static_cast<unsigned long long>(r.retrains_completed),
              static_cast<unsigned long long>(r.publishes));
  write_json(r, smoke);
  std::printf("\nwrote BENCH_learn_drift.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  // Strip --smoke before handing the remaining flags to the benchmark
  // library (it rejects flags it does not know).
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  run_all(smoke);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
