// General dense linear solves (LU with partial pivoting). Used for the
// LS-SVM bordered system, which is symmetric but indefinite, and anywhere a
// square non-SPD system shows up.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace f2pm::linalg {

/// LU factorization with partial pivoting of a square matrix.
class LuFactor {
 public:
  /// Factorizes `a`. Throws std::invalid_argument for non-square input and
  /// std::runtime_error for (numerically) singular matrices.
  explicit LuFactor(const Matrix& a);

  /// Solves A x = b.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// det(A) (sign from the permutation parity).
  [[nodiscard]] double determinant() const;

  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

 private:
  Matrix lu_;
  std::vector<std::size_t> pivots_;
  int pivot_sign_ = 1;
};

/// One-shot square solve A x = b.
std::vector<double> solve(const Matrix& a, std::span<const double> b);

/// Matrix inverse via LU (n solves). Intended for small matrices only.
Matrix inverse(const Matrix& a);

}  // namespace f2pm::linalg
