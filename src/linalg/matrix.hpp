// Dense row-major matrix and helpers. This is the numeric workhorse under
// every ML method in the framework: design matrices, kernel matrices,
// normal equations. Storage is a single contiguous buffer so row spans can
// be handed to BLAS-like kernels without copies.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace f2pm::linalg {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill);

  /// Constructs from nested initializer lists; all rows must have equal
  /// length (throws std::invalid_argument otherwise).
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  /// Unchecked element access (asserts in debug builds).
  double& operator()(std::size_t r, std::size_t c) noexcept;
  double operator()(std::size_t r, std::size_t c) const noexcept;

  /// Bounds-checked element access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Contiguous view of one row.
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept;
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept;

  /// Copies one column out (columns are strided, so no span).
  [[nodiscard]] std::vector<double> column(std::size_t c) const;

  /// Raw storage (row-major, rows()*cols() doubles).
  [[nodiscard]] std::span<double> data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }

  /// Returns the transpose as a new matrix.
  [[nodiscard]] Matrix transposed() const;

  /// Returns the sub-matrix made of the given column indices, in order.
  [[nodiscard]] Matrix select_columns(
      const std::vector<std::size_t>& columns) const;

  /// Returns the sub-matrix made of the given row indices, in order.
  [[nodiscard]] Matrix select_rows(const std::vector<std::size_t>& rows) const;

  /// n x n identity.
  static Matrix identity(std::size_t n);

  /// Multi-line human-readable dump (debugging / golden tests).
  [[nodiscard]] std::string to_string(int precision = 4) const;

  friend bool operator==(const Matrix& a, const Matrix& b) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Max absolute elementwise difference; matrices must be the same shape
/// (throws std::invalid_argument otherwise).
double max_abs_diff(const Matrix& a, const Matrix& b);

inline double& Matrix::operator()(std::size_t r, std::size_t c) noexcept {
  return data_[r * cols_ + c];
}

inline double Matrix::operator()(std::size_t r, std::size_t c) const noexcept {
  return data_[r * cols_ + c];
}

inline std::span<double> Matrix::row(std::size_t r) noexcept {
  return {data_.data() + r * cols_, cols_};
}

inline std::span<const double> Matrix::row(std::size_t r) const noexcept {
  return {data_.data() + r * cols_, cols_};
}

}  // namespace f2pm::linalg
