#include "linalg/window_stats.hpp"

namespace f2pm::linalg {

namespace {

#if defined(F2PM_SIMD_ENABLED)

/// One block of W independent column accumulators carried across the row
/// sweep. W is a compile-time constant so the inner loop unrolls and the
/// accumulators vectorize; each acc[j] still adds rows in index order, so
/// the result is bit-identical to the scalar per-column loop.
template <std::size_t W>
void block_sums(const double* data, std::size_t rows, std::size_t stride,
                double* sums) {
  double acc[W] = {};
  const double* row = data;
  for (std::size_t r = 0; r < rows; ++r, row += stride) {
    for (std::size_t j = 0; j < W; ++j) acc[j] += row[j];
  }
  for (std::size_t j = 0; j < W; ++j) sums[j] = acc[j];
}

#endif  // F2PM_SIMD_ENABLED

}  // namespace

bool simd_kernel_enabled() noexcept {
#if defined(F2PM_SIMD_ENABLED)
  return true;
#else
  return false;
#endif
}

void column_sums(const double* data, std::size_t rows, std::size_t stride,
                 std::size_t cols, double* sums) {
#if defined(F2PM_SIMD_ENABLED)
  std::size_t c = 0;
  for (; c + 8 <= cols; c += 8) {
    block_sums<8>(data + c, rows, stride, sums + c);
  }
  switch (cols - c) {
    case 7: block_sums<7>(data + c, rows, stride, sums + c); break;
    case 6: block_sums<6>(data + c, rows, stride, sums + c); break;
    case 5: block_sums<5>(data + c, rows, stride, sums + c); break;
    case 4: block_sums<4>(data + c, rows, stride, sums + c); break;
    case 3: block_sums<3>(data + c, rows, stride, sums + c); break;
    case 2: block_sums<2>(data + c, rows, stride, sums + c); break;
    case 1: block_sums<1>(data + c, rows, stride, sums + c); break;
    default: break;
  }
#else
  // F2PM_SIMD=OFF scalar fallback: per-column loops, each accumulating
  // rows in index order — the same pinned order the blocked kernel uses.
  for (std::size_t c = 0; c < cols; ++c) {
    double acc = 0.0;
    const double* p = data + c;
    for (std::size_t r = 0; r < rows; ++r, p += stride) acc += *p;
    sums[c] = acc;
  }
#endif
}

void window_mean_slope(const double* data, std::size_t rows,
                       std::size_t stride, std::size_t cols, double divisor,
                       double* means, double* slopes) {
  column_sums(data, rows, stride, cols, means);
  const double* first = data;
  const double* last = data + (rows - 1) * stride;
  for (std::size_t c = 0; c < cols; ++c) {
    means[c] = means[c] / divisor;
    slopes[c] = (last[c] - first[c]) / divisor;
  }
}

}  // namespace f2pm::linalg
