#include "linalg/matrix.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace f2pm::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix initializer rows differ in length");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at out of range");
  }
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at out of range");
  }
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::column(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::column out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::select_columns(const std::vector<std::size_t>& columns) const {
  Matrix out(rows_, columns.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t j = 0; j < columns.size(); ++j) {
      out(r, j) = at(r, columns[j]);
    }
  }
  return out;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& rows) const {
  Matrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= rows_) {
      throw std::out_of_range("Matrix::select_rows out of range");
    }
    const auto src = row(rows[i]);
    auto dst = out.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream out;
  for (std::size_t r = 0; r < rows_; ++r) {
    out << '[';
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c != 0) out << ", ";
      out << util::format_double((*this)(r, c), precision);
    }
    out << "]\n";
  }
  return out.str();
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double max_diff = 0.0;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(da[i] - db[i]));
  }
  return max_diff;
}

}  // namespace f2pm::linalg
