#include "linalg/qr.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace f2pm::linalg {

QrFactor::QrFactor(const Matrix& a) : qr_(a), tau_(a.cols(), 0.0) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  if (m < n) {
    throw std::invalid_argument("QrFactor: need rows >= cols");
  }
  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm_sq = 0.0;
    for (std::size_t i = k; i < m; ++i) norm_sq += qr_(i, k) * qr_(i, k);
    const double norm = std::sqrt(norm_sq);
    if (norm == 0.0) {
      tau_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0.0 ? -norm : norm;
    // v = x - alpha * e1, normalized so v[k] = 1 (stored implicitly).
    const double v0 = qr_(k, k) - alpha;
    tau_[k] = -v0 / alpha;  // tau = 2 / (v^T v) * v0^2 form, see below.
    // Store v / v0 below the diagonal; R gets alpha on the diagonal.
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= v0;
    qr_(k, k) = alpha;
    // Apply the reflector to the remaining columns:
    // A := (I - tau * v v^T) A with v = [1, qr_(k+1..m-1, k)].
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= tau_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

void QrFactor::apply_qt(std::span<double> v) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  if (v.size() != m) {
    throw std::invalid_argument("QrFactor::apply_qt: size mismatch");
  }
  for (std::size_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    double s = v[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * v[i];
    s *= tau_[k];
    v[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) v[i] -= s * qr_(i, k);
  }
}

bool QrFactor::full_rank() const {
  const std::size_t n = qr_.cols();
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_diag = std::max(max_diag, std::abs(qr_(i, i)));
  }
  const double tol = std::max<double>(qr_.rows(), n) *
                     std::numeric_limits<double>::epsilon() * max_diag;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(qr_(i, i)) <= tol) return false;
  }
  return true;
}

std::vector<double> QrFactor::solve(std::span<const double> b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  if (b.size() != m) {
    throw std::invalid_argument("QrFactor::solve: size mismatch");
  }
  std::vector<double> work(b.begin(), b.end());
  apply_qt(work);
  if (!full_rank()) {
    throw std::runtime_error("QrFactor::solve: rank-deficient system");
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = work[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= qr_(i, j) * x[j];
    x[i] = sum / qr_(i, i);
  }
  return x;
}

std::vector<double> least_squares(const Matrix& a, std::span<const double> b) {
  return QrFactor(a).solve(b);
}

}  // namespace f2pm::linalg
