#include "linalg/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace f2pm::linalg {

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size());
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double covariance(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("covariance: size mismatch");
  }
  if (x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += (x[i] - mx) * (y[i] - my);
  }
  return acc / static_cast<double>(x.size());
}

double pearson(std::span<const double> x, std::span<const double> y) {
  const double sx = stddev(x);
  const double sy = stddev(y);
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return covariance(x, y) / (sx * sy);
}

double quantile(std::span<const double> x, double q) {
  if (x.empty()) throw std::invalid_argument("quantile: empty input");
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min_value(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(x.begin(), x.end());
}

double max_value(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(x.begin(), x.end());
}

LineFit fit_line(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("fit_line: size mismatch");
  }
  if (x.size() < 2) throw std::invalid_argument("fit_line: need >= 2 points");
  const double vx = variance(x);
  const double mx = mean(x);
  const double my = mean(y);
  LineFit fit;
  if (vx == 0.0) {
    fit.slope = 0.0;
    fit.intercept = my;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = covariance(x, y) / vx;
  fit.intercept = my - fit.slope * mx;
  // R^2 = 1 - SS_res / SS_tot.
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double err = y[i] - fit.predict(x[i]);
    ss_res += err * err;
    ss_tot += (y[i] - my) * (y[i] - my);
  }
  fit.r2 = ss_tot == 0.0 ? 0.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace f2pm::linalg
