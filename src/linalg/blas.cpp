#include "linalg/blas.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace f2pm::linalg {

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double norm1(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += std::abs(v);
  return acc;
}

std::vector<double> gemv(const Matrix& a, std::span<const double> x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("gemv: dimension mismatch");
  }
  std::vector<double> y(a.rows(), 0.0);
  // Below this size the parallel dispatch costs more than the math.
  constexpr std::size_t kParallelThreshold = 512;
  auto row_block = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) y[r] = dot(a.row(r), x);
  };
  if (a.rows() * a.cols() < kParallelThreshold * 8) {
    row_block(0, a.rows());
  } else {
    parallel::parallel_for_chunked(parallel::ThreadPool::global(), 0,
                                   a.rows(), row_block);
  }
  return y;
}

std::vector<double> gemv_transposed(const Matrix& a,
                                    std::span<const double> x) {
  if (a.rows() != x.size()) {
    throw std::invalid_argument("gemv_transposed: dimension mismatch");
  }
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    axpy(x[r], a.row(r), y);
  }
  return y;
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("gemm: dimension mismatch");
  }
  Matrix c(a.rows(), b.cols());
  auto row_block = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      auto ci = c.row(i);
      const auto ai = a.row(i);
      for (std::size_t k = 0; k < a.cols(); ++k) {
        const double aik = ai[k];
        if (aik == 0.0) continue;
        axpy(aik, b.row(k), ci);
      }
    }
  };
  constexpr std::size_t kParallelFlops = 1u << 16;
  if (a.rows() * a.cols() * b.cols() < kParallelFlops) {
    row_block(0, a.rows());
  } else {
    parallel::parallel_for_chunked(parallel::ThreadPool::global(), 0,
                                   a.rows(), row_block);
  }
  return c;
}

Matrix gram(const Matrix& a) {
  const std::size_t n = a.cols();
  Matrix g(n, n);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    for (std::size_t i = 0; i < n; ++i) {
      const double v = row[i];
      if (v == 0.0) continue;
      for (std::size_t j = i; j < n; ++j) g(i, j) += v * row[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

}  // namespace f2pm::linalg
