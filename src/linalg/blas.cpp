#include "linalg/blas.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace f2pm::linalg {

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double norm1(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += std::abs(v);
  return acc;
}

std::vector<double> gemv(const Matrix& a, std::span<const double> x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("gemv: dimension mismatch");
  }
  std::vector<double> y(a.rows(), 0.0);
  // Below this size the parallel dispatch costs more than the math.
  constexpr std::size_t kParallelThreshold = 512;
  auto row_block = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) y[r] = dot(a.row(r), x);
  };
  if (a.rows() * a.cols() < kParallelThreshold * 8) {
    row_block(0, a.rows());
  } else {
    parallel::parallel_for_chunked(parallel::ThreadPool::global(), 0,
                                   a.rows(), row_block);
  }
  return y;
}

std::vector<double> gemv_transposed(const Matrix& a,
                                    std::span<const double> x) {
  if (a.rows() != x.size()) {
    throw std::invalid_argument("gemv_transposed: dimension mismatch");
  }
  std::vector<double> y(a.cols(), 0.0);
  constexpr std::size_t kParallelThreshold = 512;
  if (a.rows() * a.cols() < kParallelThreshold * 8) {
    for (std::size_t r = 0; r < a.rows(); ++r) {
      axpy(x[r], a.row(r), y);
    }
    return y;
  }
  // Aᵀx is a sum over rows, so concurrent chunks need private accumulators.
  // The partials are merged in chunk order, which keeps the result
  // independent of task scheduling (it depends only on the chunk layout).
  auto& pool = parallel::ThreadPool::global();
  const std::size_t num_chunks =
      std::min(a.rows(), pool.num_threads() * std::size_t{4});
  Matrix partials(num_chunks, a.cols());
  parallel::parallel_for(pool, 0, num_chunks, [&](std::size_t c) {
    const std::size_t lo = c * a.rows() / num_chunks;
    const std::size_t hi = (c + 1) * a.rows() / num_chunks;
    auto partial = partials.row(c);
    for (std::size_t r = lo; r < hi; ++r) {
      axpy(x[r], a.row(r), partial);
    }
  });
  for (std::size_t c = 0; c < num_chunks; ++c) {
    axpy(1.0, partials.row(c), y);
  }
  return y;
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("gemm: dimension mismatch");
  }
  Matrix c(a.rows(), b.cols());
  auto row_block = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      auto ci = c.row(i);
      const auto ai = a.row(i);
      for (std::size_t k = 0; k < a.cols(); ++k) {
        const double aik = ai[k];
        if (aik == 0.0) continue;
        axpy(aik, b.row(k), ci);
      }
    }
  };
  constexpr std::size_t kParallelFlops = 1u << 16;
  if (a.rows() * a.cols() * b.cols() < kParallelFlops) {
    row_block(0, a.rows());
  } else {
    parallel::parallel_for_chunked(parallel::ThreadPool::global(), 0,
                                   a.rows(), row_block);
  }
  return c;
}

void gemm_nt_block(const Matrix& a, std::size_t a_begin, std::size_t a_end,
                   const Matrix& b, Matrix& out) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("gemm_nt_block: dimension mismatch");
  }
  const std::size_t block = a_end - a_begin;
  if (a_end > a.rows() || out.rows() != block || out.cols() != b.rows()) {
    throw std::invalid_argument("gemm_nt_block: bad block shape");
  }
  // Loop order keeps both operands streaming: for each B row, dot it
  // against every A row of the block (block rows are typically few and
  // stay cache-resident).
  auto b_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      const auto bj = b.row(j);
      for (std::size_t i = 0; i < block; ++i) {
        out(i, j) = dot(a.row(a_begin + i), bj);
      }
    }
  };
  constexpr std::size_t kParallelFlops = 1u << 16;
  if (block * b.rows() * a.cols() < kParallelFlops) {
    b_rows(0, b.rows());
  } else {
    parallel::parallel_for_chunked(parallel::ThreadPool::global(), 0,
                                   b.rows(), b_rows);
  }
}

Matrix gram(const Matrix& a) {
  const std::size_t n = a.cols();
  Matrix g(n, n);
  auto accumulate_rows = [&a, n](std::size_t lo, std::size_t hi, Matrix& out) {
    for (std::size_t r = lo; r < hi; ++r) {
      const auto row = a.row(r);
      for (std::size_t i = 0; i < n; ++i) {
        const double v = row[i];
        if (v == 0.0) continue;
        for (std::size_t j = i; j < n; ++j) out(i, j) += v * row[j];
      }
    }
  };
  constexpr std::size_t kParallelFlops = 1u << 16;
  if (a.rows() * n * n < kParallelFlops) {
    accumulate_rows(0, a.rows(), g);
  } else {
    // AᵀA sums rank-1 contributions over rows; chunks accumulate into
    // private upper-triangular partials that are merged in chunk order, so
    // the result does not depend on task scheduling. Chunk count is capped
    // at the worker count to bound the n x n partial storage.
    auto& pool = parallel::ThreadPool::global();
    const std::size_t num_chunks = std::min(a.rows(), pool.num_threads());
    std::vector<Matrix> partials(num_chunks);
    parallel::parallel_for(pool, 0, num_chunks, [&](std::size_t c) {
      const std::size_t lo = c * a.rows() / num_chunks;
      const std::size_t hi = (c + 1) * a.rows() / num_chunks;
      partials[c] = Matrix(n, n);
      accumulate_rows(lo, hi, partials[c]);
    });
    for (const Matrix& partial : partials) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) g(i, j) += partial(i, j);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

}  // namespace f2pm::linalg
