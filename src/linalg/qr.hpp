// Householder QR factorization and least-squares solve. This is the
// numerically preferred path for Linear Regression: it avoids squaring the
// condition number the way the normal equations do.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace f2pm::linalg {

/// Compact Householder QR of an m x n matrix with m >= n. The factor
/// stores R in the upper triangle and the Householder vectors below it.
class QrFactor {
 public:
  /// Factorizes `a`. Throws std::invalid_argument if m < n.
  explicit QrFactor(const Matrix& a);

  /// Applies Q^T to a length-m vector in place.
  void apply_qt(std::span<double> v) const;

  /// Solves min ||A x - b||_2. Throws std::runtime_error if R is
  /// (numerically) rank deficient.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// True when all |R_ii| exceed a scaled epsilon (full column rank).
  [[nodiscard]] bool full_rank() const;

  [[nodiscard]] std::size_t rows() const { return qr_.rows(); }
  [[nodiscard]] std::size_t cols() const { return qr_.cols(); }

 private:
  Matrix qr_;
  std::vector<double> tau_;  // Householder scalar coefficients.
};

/// One-shot least-squares solve: min ||A x - b||_2 via Householder QR.
std::vector<double> least_squares(const Matrix& a, std::span<const double> b);

}  // namespace f2pm::linalg
