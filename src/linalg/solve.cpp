#include "linalg/solve.hpp"

#include <cmath>
#include <stdexcept>

namespace f2pm::linalg {

LuFactor::LuFactor(const Matrix& a) : lu_(a), pivots_(a.rows()) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuFactor: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  for (std::size_t i = 0; i < n; ++i) pivots_[i] = i;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(lu_(i, k));
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      throw std::runtime_error("LuFactor: singular matrix");
    }
    if (pivot != k) {
      auto rk = lu_.row(k);
      auto rp = lu_.row(pivot);
      for (std::size_t j = 0; j < n; ++j) std::swap(rk[j], rp[j]);
      std::swap(pivots_[k], pivots_[pivot]);
      pivot_sign_ = -pivot_sign_;
    }
    const double diag = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu_(i, k) / diag;
      lu_(i, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) {
        lu_(i, j) -= factor * lu_(k, j);
      }
    }
  }
}

std::vector<double> LuFactor::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("LuFactor::solve: size mismatch");
  }
  // Apply the permutation, then forward/back substitution.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[pivots_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double sum = x[i];
    for (std::size_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum;
  }
  for (std::size_t i = n; i-- > 0;) {
    double sum = x[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum / lu_(i, i);
  }
  return x;
}

double LuFactor::determinant() const {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

std::vector<double> solve(const Matrix& a, std::span<const double> b) {
  return LuFactor(a).solve(b);
}

Matrix inverse(const Matrix& a) {
  const LuFactor factor(a);
  const std::size_t n = a.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    const auto col = factor.solve(e);
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    e[j] = 0.0;
  }
  return inv;
}

}  // namespace f2pm::linalg
