// BLAS-like dense kernels (level 1-3) tuned for the sizes this framework
// sees: thousands of rows, tens of columns for design matrices, and up to a
// few thousand square for kernel matrices. gemm/gemv parallelize over row
// blocks via the thread pool.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace f2pm::linalg {

/// Dot product; spans must be the same length.
double dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x; spans must be the same length.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scale(double alpha, std::span<double> x);

/// Euclidean norm.
double norm2(std::span<const double> x);

/// L1 norm (used by the Lasso objective).
double norm1(std::span<const double> x);

/// y = A * x (A: m x n, x: n, result: m). Parallel over row blocks.
std::vector<double> gemv(const Matrix& a, std::span<const double> x);

/// y = A^T * x (A: m x n, x: m, result: n).
std::vector<double> gemv_transposed(const Matrix& a, std::span<const double> x);

/// C = A * B (A: m x k, B: k x n). Parallel over row blocks of A, with an
/// ikj loop order so the inner loop streams B rows.
Matrix gemm(const Matrix& a, const Matrix& b);

/// C = A^T * A (the Gram matrix of the design matrix); exploits symmetry.
Matrix gram(const Matrix& a);

/// out(i, j) = dot(a.row(a_begin + i), b.row(j)) for a row block of A
/// against all rows of B (i.e. a block of A * B^T). `out` must already be
/// (a_end - a_begin) x b.rows(); it is fully overwritten. Used by the
/// batched KNN distance computation ‖q−t‖² = ‖q‖² + ‖t‖² − 2·q·t, where the
/// cross terms for a query block are exactly such a block product.
/// Parallel over B rows for large blocks.
void gemm_nt_block(const Matrix& a, std::size_t a_begin, std::size_t a_end,
                   const Matrix& b, Matrix& out);

}  // namespace f2pm::linalg
