#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace f2pm::linalg {

std::optional<CholeskyFactor> cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky: matrix must be square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / ljj;
    }
  }
  return CholeskyFactor{std::move(l)};
}

std::vector<double> CholeskyFactor::solve(std::span<const double> b) const {
  const std::size_t n = l.rows();
  if (b.size() != n) {
    throw std::invalid_argument("CholeskyFactor::solve: size mismatch");
  }
  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

double CholeskyFactor::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
  return 2.0 * acc;
}

std::vector<double> solve_spd(const Matrix& a, std::span<const double> b,
                              double jitter) {
  Matrix work = a;
  double added = jitter;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (added > 0.0) {
      for (std::size_t i = 0; i < work.rows(); ++i) {
        work(i, i) = a(i, i) + added;
      }
    }
    if (auto factor = cholesky(work)) return factor->solve(b);
    added = (added == 0.0) ? 1e-10 : added * 100.0;
  }
  throw std::runtime_error("solve_spd: matrix is not positive definite");
}

}  // namespace f2pm::linalg
