// Vectorized per-window column statistics — the per-datapoint hot kernel.
//
// Every scaling layer of the serve tier multiplies the same inner loop:
// when an aggregation window closes, its per-feature means and Eq. (1)
// slopes must be computed over the buffered samples. The scalar form
// (one pass over the window per feature) traverses a row-major sample
// matrix column-major — kFeatureCount cache-hostile sweeps. The kernel
// here makes one row-major sweep with a block of independent per-column
// accumulators, which the compiler auto-vectorizes (the accumulators of
// a block live in vector registers across the whole sweep).
//
// Bit-exactness contract (the serve tier's hard invariant): for every
// column c, the sum is accumulated in row-index order,
//
//   sums[c] = (((m[0][c] + m[1][c]) + m[2][c]) + ... ) + m[rows-1][c]
//
// exactly as the scalar per-feature loop did. Vectorization happens
// ACROSS columns (independent accumulators), never across rows of one
// column, so no floating-point reassociation occurs and the blocked,
// plain-scalar (F2PM_SIMD=OFF) and legacy per-feature orders all produce
// bit-identical IEEE-754 results — including NaN propagation. Offline
// aggregation (data::aggregate) and the streaming OnlinePredictor share
// this kernel through data::compute_window_features, which is what keeps
// tests/test_parity.cpp exact.
#pragma once

#include <cstddef>

namespace f2pm::linalg {

/// Per-column sums over a strided row-major matrix: element (r, c) is
/// data[r * stride + c]. `cols <= stride`; `rows >= 1`. Summation order
/// is pinned per column (row-index order, see file comment).
void column_sums(const double* data, std::size_t rows, std::size_t stride,
                 std::size_t cols, double* sums);

/// Fused mean + Eq. (1) slope sweep over the same layout:
///   means[c]  = column_sum(c) / divisor
///   slopes[c] = (data[(rows-1) * stride + c] - data[c]) / divisor
/// `divisor` is passed in (the window's sample count as a double) so the
/// caller controls the exact operand the division uses.
void window_mean_slope(const double* data, std::size_t rows,
                       std::size_t stride, std::size_t cols, double divisor,
                       double* means, double* slopes);

/// True when this build selected the blocked (auto-vectorizable) kernel;
/// false for the F2PM_SIMD=OFF scalar fallback. Both orders are
/// bit-identical — this only reports which code path is compiled in.
bool simd_kernel_enabled() noexcept;

}  // namespace f2pm::linalg
