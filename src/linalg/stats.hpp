// Descriptive statistics over feature vectors: means, variances,
// correlation (Fig. 3's RT correlation study), quantiles, and simple
// 1-D linear fits.
#pragma once

#include <span>
#include <vector>

namespace f2pm::linalg {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> x);

/// Population variance (divides by n); 0 for fewer than 2 samples.
double variance(std::span<const double> x);

/// Sample standard deviation derived from variance().
double stddev(std::span<const double> x);

/// Covariance of two equal-length spans (population form).
double covariance(std::span<const double> x, std::span<const double> y);

/// Pearson correlation coefficient in [-1, 1]; 0 when either side is
/// constant.
double pearson(std::span<const double> x, std::span<const double> y);

/// Linear interpolated quantile, q in [0, 1]. Sorts a copy.
double quantile(std::span<const double> x, double q);

/// Minimum / maximum; throw std::invalid_argument on empty input.
double min_value(std::span<const double> x);
double max_value(std::span<const double> x);

/// Ordinary least squares fit y ~= slope * x + intercept for 1-D data.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< Coefficient of determination on the fit data.

  [[nodiscard]] double predict(double x) const {
    return slope * x + intercept;
  }
};

/// Fits a line by least squares; requires at least 2 points.
LineFit fit_line(std::span<const double> x, std::span<const double> y);

}  // namespace f2pm::linalg
