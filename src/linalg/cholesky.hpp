// Cholesky factorization and solves for symmetric positive-definite
// systems: normal equations (Linear Regression), the LS-SVM bordered
// system, and ridge-regularized Gram matrices.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace f2pm::linalg {

/// Lower-triangular Cholesky factor L with A = L L^T.
struct CholeskyFactor {
  Matrix l;

  /// Solves A x = b given the factor (forward + back substitution).
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// log(det(A)) = 2 * sum(log(L_ii)) — used by model-selection criteria.
  [[nodiscard]] double log_det() const;
};

/// Factorizes a symmetric positive-definite matrix. Returns std::nullopt if
/// the matrix is not (numerically) positive definite.
std::optional<CholeskyFactor> cholesky(const Matrix& a);

/// Solves A x = b for SPD A, adding `jitter` * I retries (up to a few
/// orders of magnitude) if A is semi-definite. Throws std::runtime_error if
/// the system cannot be stabilized.
std::vector<double> solve_spd(const Matrix& a, std::span<const double> b,
                              double jitter = 0.0);

}  // namespace f2pm::linalg
