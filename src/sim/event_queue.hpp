// Discrete-event simulation engine. This is the substrate that replaces
// the paper's physical testbed (TPC-W on Tomcat/MySQL inside VMware VMs):
// emulated browsers, server workers, anomaly injectors and the feature
// monitor all run as events on this queue, in simulated seconds.
//
// Events scheduled for the same timestamp fire in schedule order (a
// monotonically increasing sequence number breaks ties), which keeps whole
// campaigns bit-for-bit reproducible for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace f2pm::sim {

/// Event-driven simulator clock and scheduler.
class Simulator {
 public:
  using Handler = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedules `handler` to fire at absolute time `when` (>= now, clamped).
  void schedule_at(double when, Handler handler);

  /// Schedules `handler` to fire `delay` seconds from now (>= 0, clamped).
  void schedule_in(double delay, Handler handler);

  /// Fires the next event; returns false when the queue is empty.
  bool step();

  /// Runs events until the clock passes `end_time` or the queue drains.
  /// Events scheduled exactly at `end_time` still fire.
  void run_until(double end_time);

  /// Runs until `predicate()` becomes true (checked after every event),
  /// the clock passes `end_time`, or the queue drains. Returns true if the
  /// predicate stopped the run.
  bool run_until_condition(const std::function<bool()>& predicate,
                           double end_time);

  /// Drops every pending event (used between campaign runs).
  void clear();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
};

}  // namespace f2pm::sim
