#include "sim/server.hpp"

#include <algorithm>
#include <cmath>

namespace f2pm::sim {

Server::Server(Simulator& simulator, ResourceModel& resources,
               ServerConfig config, util::Rng& rng)
    : simulator_(simulator),
      resources_(resources),
      config_(config),
      rng_(rng) {
  update_census();
}

void Server::update_census() {
  resources_.set_active_requests(
      busy_workers_ + static_cast<int>(queue_.size()),
      config_.worker_threads);
}

void Server::submit(Interaction interaction,
                    std::function<void(double)> on_complete) {
  if (interaction == Interaction::kHome && home_hook_) home_hook_();
  PendingRequest request{interaction, simulator_.now(),
                         std::move(on_complete)};
  if (busy_workers_ < config_.worker_threads) {
    start_service(std::move(request));
  } else {
    queue_.push_back(std::move(request));
  }
  update_census();
}

void Server::start_service(PendingRequest request) {
  ++busy_workers_;
  const InteractionDemand demand = interaction_demand(request.interaction);
  // Multiplicative jitter around the nominal demand.
  const double noise =
      std::exp(rng_.normal(0.0, config_.service_noise));
  const double slowdown = resources_.slowdown_factor();
  const double user_cpu =
      demand.cpu_seconds * noise * (1.0 - config_.system_cpu_fraction);
  const double system_cpu =
      demand.cpu_seconds * noise * config_.system_cpu_fraction;
  // I/O time is where the slowdown lands: cache misses and swap thrashing
  // turn logical reads into disk waits.
  const double io_wait = demand.io_seconds * noise * slowdown;
  const double service_time = user_cpu + system_cpu + io_wait;
  simulator_.schedule_in(
      service_time,
      [this, arrival = request.arrival_time, user_cpu, system_cpu, io_wait,
       on_complete = std::move(request.on_complete)]() mutable {
        finish_service(arrival, user_cpu, system_cpu, io_wait,
                       std::move(on_complete));
      });
}

void Server::finish_service(double arrival_time, double user_cpu,
                            double system_cpu, double io_wait,
                            std::function<void(double)> on_complete) {
  --busy_workers_;
  resources_.add_cpu_user_seconds(user_cpu);
  resources_.add_cpu_system_seconds(system_cpu);
  resources_.add_cpu_iowait_seconds(io_wait);
  const double response_time = simulator_.now() - arrival_time;
  window_stats_.total_response_time += response_time;
  ++window_stats_.completed;
  ++total_completed_;
  if (!queue_.empty()) {
    PendingRequest next = std::move(queue_.front());
    queue_.pop_front();
    start_service(std::move(next));
  }
  update_census();
  if (on_complete) on_complete(response_time);
}

ResponseStats Server::drain_response_stats() {
  ResponseStats stats = window_stats_;
  window_stats_ = ResponseStats{};
  return stats;
}

}  // namespace f2pm::sim
