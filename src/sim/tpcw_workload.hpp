// TPC-W workload model (paper §IV-A): the 14 web interactions of the
// benchmark's on-line book store, their browsing-mix frequencies, nominal
// service demands, and the emulated-browser pool that drives the simulated
// server with think-time-separated requests.
//
// Fidelity note: the real benchmark specifies a full 14x14 transition
// matrix per mix; the stationary visit frequencies of the browsing mix are
// what matter for the load and anomaly-arrival processes, so browsers here
// draw interactions i.i.d. from those frequencies (documented substitution,
// see DESIGN.md).
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <string_view>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace f2pm::sim {

/// The 14 TPC-W web interactions.
enum class Interaction : std::size_t {
  kHome = 0,
  kNewProducts,
  kBestSellers,
  kProductDetail,
  kSearchRequest,
  kSearchResults,
  kShoppingCart,
  kCustomerRegistration,
  kBuyRequest,
  kBuyConfirm,
  kOrderInquiry,
  kOrderDisplay,
  kAdminRequest,
  kAdminConfirm,
};

inline constexpr std::size_t kInteractionCount = 14;

/// Human-readable interaction name.
std::string_view interaction_name(Interaction interaction) noexcept;

/// Nominal resource demand of one interaction on a healthy system.
struct InteractionDemand {
  double cpu_seconds = 0.0;  ///< Servlet + query CPU time.
  double io_seconds = 0.0;   ///< Disk/DB time (inflates under thrashing).
};

/// Demand table entry for an interaction.
InteractionDemand interaction_demand(Interaction interaction) noexcept;

/// The three standard TPC-W traffic mixes.
enum class TpcwMix {
  kBrowsing,  ///< WIPSb: ~95% browse / 5% order.
  kShopping,  ///< WIPS: ~80% browse / 20% order (the default mix).
  kOrdering,  ///< WIPSo: ~50% browse / 50% order.
};

/// TPC-W browsing-mix stationary frequencies (WIPSb), index-aligned with
/// Interaction. They sum to ~100.
const std::array<double, kInteractionCount>& browsing_mix_weights() noexcept;

/// Stationary frequencies of any of the three mixes (percent, sum ~100).
const std::array<double, kInteractionCount>& mix_weights(
    TpcwMix mix) noexcept;

/// Emulated-browser pool parameters.
struct WorkloadConfig {
  std::size_t num_browsers = 80;
  double think_time_mean = 7.0;  ///< TPC-W negative-exponential think time.
  TpcwMix mix = TpcwMix::kBrowsing;  ///< The paper's evaluation traffic.
};

/// Interface the browser pool drives (implemented by sim::Server).
class RequestSink {
 public:
  virtual ~RequestSink() = default;
  /// Submits one interaction; `on_complete(response_time)` fires when the
  /// (simulated) response is delivered.
  virtual void submit(Interaction interaction,
                      std::function<void(double)> on_complete) = 0;
};

/// A closed-loop population of emulated browsers: each browser repeats
/// think -> pick interaction from the mix -> request -> wait for response.
class BrowserPool {
 public:
  BrowserPool(Simulator& simulator, RequestSink& sink, WorkloadConfig config,
              util::Rng& rng);

  /// Schedules every browser's first request (staggered over one mean
  /// think time to avoid a synchronized thundering herd).
  void start();

  /// Stops issuing new requests (in-flight ones still complete).
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t requests_issued() const {
    return requests_issued_;
  }
  [[nodiscard]] std::size_t responses_received() const {
    return responses_received_;
  }

 private:
  void browser_think(std::size_t browser);
  void browser_request(std::size_t browser);

  Simulator& simulator_;
  RequestSink& sink_;
  WorkloadConfig config_;
  util::Rng& rng_;
  std::vector<double> mix_;
  bool stopped_ = false;
  std::size_t requests_issued_ = 0;
  std::size_t responses_received_ = 0;
};

}  // namespace f2pm::sim
