// The in-simulator Feature Monitor Client (paper §III-E): samples the 14
// system features roughly every 1.5 seconds of simulated time and emits
// RawDatapoints. Crucially, the sampling interval stretches with system
// load — exactly the fluctuation the paper attributes to "CPU scheduling
// variability and the current load of the system" — which is what makes
// the derived inter-generation-time metric track the client response time
// (Fig. 3).
#pragma once

#include <vector>

#include "data/datapoint.hpp"
#include "sim/event_queue.hpp"
#include "sim/resources.hpp"
#include "sim/server.hpp"
#include "util/rng.hpp"

namespace f2pm::sim {

/// Monitor sampling parameters.
struct MonitorConfig {
  double base_interval = 1.5;   ///< Nominal seconds between datapoints.
  double jitter = 0.08;         ///< Relative uniform jitter on the interval.
  /// Cap on the load-induced stretch factor (a fully thrashing system
  /// still produces a datapoint every base_interval * max_skew seconds).
  double max_skew = 4.0;
};

/// Feature monitor over the simulated VM.
class FeatureMonitor {
 public:
  FeatureMonitor(Simulator& simulator, ResourceModel& resources,
                 Server& server, MonitorConfig config, util::Rng& rng);

  /// Takes the first sample at t = base_interval and keeps sampling until
  /// stop().
  void start();
  void stop() { stopped_ = true; }

  /// Collected datapoints (tgen = simulated seconds since run start).
  [[nodiscard]] const std::vector<data::RawDatapoint>& samples() const {
    return samples_;
  }
  /// Mean client response time observed in each sampling window,
  /// index-aligned with samples(). This is the ground truth the paper's
  /// Fig. 3 obtains from instrumented emulated browsers.
  [[nodiscard]] const std::vector<double>& response_time_series() const {
    return response_times_;
  }

  std::vector<data::RawDatapoint> take_samples() {
    return std::move(samples_);
  }

 private:
  void sample_once();
  [[nodiscard]] double next_interval() const;

  Simulator& simulator_;
  ResourceModel& resources_;
  Server& server_;
  MonitorConfig config_;
  util::Rng& rng_;
  std::vector<data::RawDatapoint> samples_;
  std::vector<double> response_times_;
  double last_sample_time_ = 0.0;
  double last_rt_mean_ = 0.0;
  bool stopped_ = false;
};

}  // namespace f2pm::sim
