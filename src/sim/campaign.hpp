// The monitoring campaign (paper §IV): run the simulated TPC-W system to
// failure, restart it, repeat — producing the multi-run DataHistory the
// F2PM pipeline trains on. The paper ran one week of wall-clock time; the
// simulator produces the equivalent crash census in seconds.
//
// Per-run anomaly intensity is drawn uniformly at random so the campaign
// covers a spread of time-to-failure regimes ("a combination of different
// anomalies, also occurring at different rates").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/data_history.hpp"
#include "sim/anomalies.hpp"
#include "sim/monitor.hpp"
#include "sim/resources.hpp"
#include "sim/server.hpp"
#include "sim/tpcw_workload.hpp"

namespace f2pm::sim {

/// Full campaign parameterization.
struct CampaignConfig {
  std::size_t num_runs = 60;
  double max_run_seconds = 12'000.0;  ///< Abort threshold per run.
  std::uint64_t seed = 42;

  /// Optional user-defined failure condition (§III: "the condition can be
  /// defined by the user on the basis of the values of one or more
  /// selected system features"). Evaluated on every monitor datapoint
  /// with (sample, inter-generation time); when it returns true, the run
  /// is marked failed at that datapoint's timestamp, even though the VM
  /// has not hard-crashed yet. Wrap a core::FailureCondition like
  ///   config.failure_condition = [cond](const auto& s, double ig) {
  ///     return cond.evaluate({s, ig}); };
  /// When unset, only the hard crash (swap exhaustion) ends a run.
  std::function<bool(const data::RawDatapoint&, double)> failure_condition;

  WorkloadConfig workload;
  ServerConfig server;
  ResourceConfig resources;
  MonitorConfig monitor;
  HomeAnomalyConfig home_anomalies;

  /// Per-run multiplier on anomaly rates, drawn uniformly from this range
  /// (spreads the time-to-failure distribution across runs; the paper's
  /// anomalies occur "at different rates"). The wide default range is what
  /// breaks global-linear extrapolation and lets the tree methods win, as
  /// in the paper's Table II.
  double intensity_min = 0.5;
  double intensity_max = 2.5;

  /// When true, the §III-E synthetic injectors run alongside the workload
  /// (speeding up data collection, as the paper suggests).
  bool use_synthetic_injectors = false;
  SyntheticLeakConfig synthetic_leak;
  SyntheticThreadConfig synthetic_thread;

  /// Worker threads for executing runs concurrently (runs are fully
  /// independent simulations). 0 or 1 = sequential. Results are identical
  /// either way (per-run seeds are drawn up front); the progress callback
  /// fires once per run in both modes, in index order when sequential and
  /// in completion order when parallel.
  std::size_t parallel_runs = 0;
};

/// Everything one run-to-crash produced.
struct RunResult {
  data::Run run;                        ///< Samples + fail event.
  std::vector<double> response_times;   ///< Client mean RT per datapoint.
  std::size_t leaks_injected = 0;
  std::size_t threads_injected = 0;
  std::size_t requests_completed = 0;
  double intensity = 1.0;               ///< The run's anomaly multiplier.
};

/// Executes a single run-to-crash with the given per-run seed.
RunResult execute_run(const CampaignConfig& config, std::uint64_t run_seed);

/// Executes the whole campaign. `progress`, when set, is invoked as each
/// run completes with (run_index, result) — under parallel_runs > 1 the
/// calls come from worker threads in completion order, serialized by a
/// mutex (the callback itself need not be thread-safe).
data::DataHistory run_campaign(
    const CampaignConfig& config,
    const std::function<void(std::size_t, const RunResult&)>& progress = {});

}  // namespace f2pm::sim
