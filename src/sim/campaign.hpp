// The monitoring campaign (paper §IV): run the simulated TPC-W system to
// failure, restart it, repeat — producing the multi-run DataHistory the
// F2PM pipeline trains on. The paper ran one week of wall-clock time; the
// simulator produces the equivalent crash census in seconds.
//
// Per-run anomaly intensity is drawn uniformly at random so the campaign
// covers a spread of time-to-failure regimes ("a combination of different
// anomalies, also occurring at different rates").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "data/data_history.hpp"
#include "sim/anomalies.hpp"
#include "sim/monitor.hpp"
#include "sim/resources.hpp"
#include "sim/server.hpp"
#include "sim/tpcw_workload.hpp"

namespace f2pm::sim {

/// A mid-campaign regime change: from run index `after_run` onward, the
/// anomaly parameters and intensity range below replace the campaign's.
/// This is the drift generator for the continuous-learning loop — a model
/// trained on the pre-shift regime sees its error grow on post-shift runs
/// and must retrain to recover.
struct CampaignShift {
  std::size_t after_run = 0;  ///< First run index the shift applies to.
  HomeAnomalyConfig home_anomalies;
  double intensity_min = 0.5;
  double intensity_max = 2.5;
};

/// Full campaign parameterization.
struct CampaignConfig {
  std::size_t num_runs = 60;
  double max_run_seconds = 12'000.0;  ///< Abort threshold per run.
  std::uint64_t seed = 42;

  /// Optional user-defined failure condition (§III: "the condition can be
  /// defined by the user on the basis of the values of one or more
  /// selected system features"). Evaluated on every monitor datapoint
  /// with (sample, inter-generation time); when it returns true, the run
  /// is marked failed at that datapoint's timestamp, even though the VM
  /// has not hard-crashed yet. Wrap a core::FailureCondition like
  ///   config.failure_condition = [cond](const auto& s, double ig) {
  ///     return cond.evaluate({s, ig}); };
  /// When unset, only the hard crash (swap exhaustion) ends a run.
  std::function<bool(const data::RawDatapoint&, double)> failure_condition;

  WorkloadConfig workload;
  ServerConfig server;
  ResourceConfig resources;
  MonitorConfig monitor;
  HomeAnomalyConfig home_anomalies;

  /// Per-run multiplier on anomaly rates, drawn uniformly from this range
  /// (spreads the time-to-failure distribution across runs; the paper's
  /// anomalies occur "at different rates"). The wide default range is what
  /// breaks global-linear extrapolation and lets the tree methods win, as
  /// in the paper's Table II.
  double intensity_min = 0.5;
  double intensity_max = 2.5;

  /// Optional parameter shift applied to runs at index >= shift->after_run
  /// (run_campaign applies it automatically; drive execute_run through
  /// effective_config for index-aware single-run execution).
  std::optional<CampaignShift> shift;

  /// When true, the §III-E synthetic injectors run alongside the workload
  /// (speeding up data collection, as the paper suggests).
  bool use_synthetic_injectors = false;
  SyntheticLeakConfig synthetic_leak;
  SyntheticThreadConfig synthetic_thread;

  /// Worker threads for executing runs concurrently (runs are fully
  /// independent simulations). 0 or 1 = sequential. Results are identical
  /// either way (per-run seeds are drawn up front); the progress callback
  /// fires once per run in both modes, in index order when sequential and
  /// in completion order when parallel.
  std::size_t parallel_runs = 0;
};

/// Everything one run-to-crash produced.
struct RunResult {
  data::Run run;                        ///< Samples + fail event.
  std::vector<double> response_times;   ///< Client mean RT per datapoint.
  std::size_t leaks_injected = 0;
  std::size_t threads_injected = 0;
  std::size_t requests_completed = 0;
  double intensity = 1.0;               ///< The run's anomaly multiplier.
};

/// The campaign config as run `run_index` sees it: the base config with
/// the shift's anomaly parameters and intensity range substituted when
/// `config.shift` is set and run_index >= shift->after_run.
CampaignConfig effective_config(const CampaignConfig& config,
                                std::size_t run_index);

/// Executes a single run-to-crash with the given per-run seed. Ignores
/// config.shift (it has no run index); apply effective_config first.
RunResult execute_run(const CampaignConfig& config, std::uint64_t run_seed);

/// Executes the whole campaign. `progress`, when set, is invoked as each
/// run completes with (run_index, result) — under parallel_runs > 1 the
/// calls come from worker threads in completion order, serialized by a
/// mutex (the callback itself need not be thread-safe).
data::DataHistory run_campaign(
    const CampaignConfig& config,
    const std::function<void(std::size_t, const RunResult&)>& progress = {});

}  // namespace f2pm::sim
