#include "sim/campaign.hpp"

#include <algorithm>
#include <mutex>

#include "util/logging.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace f2pm::sim {

CampaignConfig effective_config(const CampaignConfig& config,
                                std::size_t run_index) {
  CampaignConfig effective = config;
  if (config.shift && run_index >= config.shift->after_run) {
    effective.home_anomalies = config.shift->home_anomalies;
    effective.intensity_min = config.shift->intensity_min;
    effective.intensity_max = config.shift->intensity_max;
  }
  return effective;
}

RunResult execute_run(const CampaignConfig& config, std::uint64_t run_seed) {
  util::Rng rng(run_seed);
  // Independent streams per component keep the workload trajectory stable
  // under config changes to unrelated components.
  util::Rng workload_rng = rng.split();
  util::Rng server_rng = rng.split();
  util::Rng anomaly_rng = rng.split();
  util::Rng monitor_rng = rng.split();

  Simulator simulator;
  ResourceModel resources(config.resources);
  Server server(simulator, resources, config.server, server_rng);
  BrowserPool browsers(simulator, server, config.workload, workload_rng);

  RunResult result;
  result.intensity =
      rng.uniform(config.intensity_min, config.intensity_max);
  HomeAnomalyConfig home = config.home_anomalies;
  home.leak_probability =
      std::min(1.0, home.leak_probability * result.intensity);
  home.leak_min_kb *= result.intensity;
  home.leak_max_kb *= result.intensity;
  home.thread_probability =
      std::min(1.0, home.thread_probability * result.intensity);
  HomeAnomalyInjector injector(resources, home, anomaly_rng);
  server.set_home_hook([&injector] { injector.on_home(); });

  SyntheticMemoryLeaker synthetic_leaker(simulator, resources,
                                         config.synthetic_leak, anomaly_rng);
  SyntheticThreadLeaker synthetic_threader(
      simulator, resources, config.synthetic_thread, anomaly_rng);
  if (config.use_synthetic_injectors) {
    synthetic_leaker.start();
    synthetic_threader.start();
  }

  FeatureMonitor monitor(simulator, resources, server, config.monitor,
                         monitor_rng);
  monitor.start();
  browsers.start();

  // The run ends on the hard crash (swap exhaustion) or, when the user
  // defined a failure condition, as soon as a monitor datapoint meets it.
  double previous_tgen = 0.0;
  std::size_t checked = 0;
  auto condition_met = [&]() {
    if (!config.failure_condition) return false;
    const auto& samples = monitor.samples();
    for (; checked < samples.size(); ++checked) {
      const double intergen =
          checked == 0 ? 0.0 : samples[checked].tgen - previous_tgen;
      previous_tgen = samples[checked].tgen;
      if (config.failure_condition(samples[checked], intergen)) return true;
    }
    return false;
  };
  const bool crashed = simulator.run_until_condition(
      [&resources, &condition_met] {
        return resources.crashed() || condition_met();
      },
      config.max_run_seconds);

  result.run.samples = monitor.take_samples();
  result.run.failed = crashed;
  result.run.fail_time =
      crashed ? simulator.now()
              : (result.run.samples.empty() ? 0.0
                                            : result.run.samples.back().tgen);
  result.response_times =
      std::vector<double>(monitor.response_time_series());
  result.leaks_injected =
      injector.leaks_injected() + synthetic_leaker.leaks_injected();
  result.threads_injected =
      injector.threads_injected() + synthetic_threader.threads_injected();
  result.requests_completed = server.total_completed();
  return result;
}

data::DataHistory run_campaign(
    const CampaignConfig& config,
    const std::function<void(std::size_t, const RunResult&)>& progress) {
  // Per-run seeds are drawn up front so the campaign is reproducible
  // regardless of execution order.
  util::Rng seed_rng(config.seed);
  std::vector<std::uint64_t> seeds(config.num_runs);
  for (auto& seed : seeds) seed = seed_rng();

  std::vector<RunResult> results(config.num_runs);
  if (config.parallel_runs > 1) {
    // Progress fires as each run completes (completion order, not index
    // order), serialized by a mutex so the callback never runs
    // concurrently with itself. Previously it only fired from the merge
    // loop after the whole campaign had finished, which made long
    // parallel campaigns look hung.
    std::mutex progress_mutex;
    parallel::ThreadPool pool(config.parallel_runs);
    parallel::parallel_for(pool, 0, config.num_runs, [&](std::size_t r) {
      results[r] = execute_run(effective_config(config, r), seeds[r]);
      if (progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        progress(r, results[r]);
      }
    });
  } else {
    for (std::size_t r = 0; r < config.num_runs; ++r) {
      results[r] = execute_run(effective_config(config, r), seeds[r]);
      if (progress) progress(r, results[r]);
    }
  }

  data::DataHistory history;
  for (std::size_t r = 0; r < config.num_runs; ++r) {
    RunResult& result = results[r];
    F2PM_LOG(kDebug, "campaign")
        << "run " << r << ": ttf=" << result.run.fail_time
        << "s failed=" << result.run.failed
        << " samples=" << result.run.samples.size()
        << " leaks=" << result.leaks_injected
        << " threads=" << result.threads_injected;
    history.add_run(std::move(result.run));
  }
  return history;
}

}  // namespace f2pm::sim
