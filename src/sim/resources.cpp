#include "sim/resources.hpp"

#include <algorithm>
#include <cmath>

namespace f2pm::sim {

ResourceModel::ResourceModel(ResourceConfig config) : config_(config) {}

void ResourceModel::leak_memory(double kb) {
  if (kb > 0.0) leaked_kb_ += kb;
}

void ResourceModel::leak_thread() { ++leaked_threads_; }

void ResourceModel::set_active_requests(int in_flight, int worker_threads) {
  active_requests_ = in_flight;
  worker_threads_ = worker_threads;
}

MemorySnapshot ResourceModel::memory() const {
  const ResourceConfig& c = config_;
  const double shared =
      c.base_shared_kb + active_requests_ * c.shared_per_session_kb;
  // Application-resident demand: baseline + leaks + thread stacks +
  // transient request buffers. Worker threads cost a quarter stack (they
  // are pooled and mostly warm).
  double demand = c.base_used_kb + leaked_kb_ +
                  leaked_threads_ * c.thread_stack_kb +
                  active_requests_ * c.request_footprint_kb +
                  worker_threads_ * c.thread_stack_kb * 0.25 + shared;

  double cached = c.base_cached_kb;
  double buffers = c.base_buffers_kb;
  double free_room = c.total_memory_kb - demand - cached - buffers;
  // Kernel reclaim order under pressure: page cache first, then buffers.
  if (free_room < 0.0) {
    const double reclaim = std::min(-free_room, cached - c.min_cached_kb);
    cached -= reclaim;
    free_room += reclaim;
  }
  if (free_room < 0.0) {
    const double reclaim = std::min(-free_room, buffers - c.min_buffers_kb);
    buffers -= reclaim;
    free_room += reclaim;
  }
  double swap_used = 0.0;
  double used = demand;
  if (free_room < 0.0) {
    // Overflow spills to swap; the resident share is what still fits.
    swap_used = std::min(-free_room, c.total_swap_kb);
    used = demand + free_room;  // free_room is negative
    free_room = 0.0;
  }
  MemorySnapshot snapshot;
  snapshot.used_kb = used;
  snapshot.free_kb = std::max(free_room, 0.0);
  snapshot.shared_kb = shared;
  snapshot.buffers_kb = buffers;
  snapshot.cached_kb = cached;
  snapshot.swap_used_kb = swap_used;
  snapshot.swap_free_kb = c.total_swap_kb - swap_used;
  return snapshot;
}

int ResourceModel::num_threads() const {
  return config_.base_threads + worker_threads_ + leaked_threads_;
}

double ResourceModel::swap_pressure() const {
  if (config_.total_swap_kb <= 0.0) return 0.0;
  return memory().swap_used_kb / config_.total_swap_kb;
}

double ResourceModel::slowdown_factor() const {
  const MemorySnapshot snapshot = memory();
  // Losing the page cache makes every DB access hit disk.
  const double cache_loss =
      1.0 - snapshot.cached_kb / config_.base_cached_kb;
  const double cache_factor = 1.0 + 0.8 * std::max(cache_loss, 0.0);
  // Swap thrashing dominates near the end and grows superlinearly.
  const double swap_frac = snapshot.swap_used_kb / config_.total_swap_kb;
  const double swap_factor = 1.0 + 60.0 * swap_frac * swap_frac;
  // Every leaked thread costs the scheduler a little.
  const double crowd_factor = 1.0 + 0.0015 * leaked_threads_;
  return cache_factor * swap_factor * crowd_factor;
}

bool ResourceModel::crashed() const {
  return swap_pressure() >= config_.crash_swap_fraction;
}

void ResourceModel::sample_cpu(double interval, util::Rng& rng,
                               data::RawDatapoint& out) {
  const double capacity = std::max(interval, 1e-9) * config_.cores;
  double user = 100.0 * cpu_user_acc_ / capacity;
  double system = 100.0 * cpu_system_acc_ / capacity;
  double iowait = 100.0 * cpu_iowait_acc_ / capacity;
  const double steal = rng.uniform(0.1, 1.5);
  const double nice = rng.uniform(0.0, 0.4);
  cpu_user_acc_ = 0.0;
  cpu_system_acc_ = 0.0;
  cpu_iowait_acc_ = 0.0;

  // The categories must add to 100%; if demand exceeds capacity the busy
  // categories saturate proportionally.
  double busy = user + system + iowait + steal + nice;
  if (busy > 100.0) {
    const double scale = 100.0 / busy;
    user *= scale;
    system *= scale;
    iowait *= scale;
    busy = 100.0 - steal * scale - nice * scale;
    out[data::FeatureId::kCpuSteal] = steal * scale;
    out[data::FeatureId::kCpuNice] = nice * scale;
  } else {
    out[data::FeatureId::kCpuSteal] = steal;
    out[data::FeatureId::kCpuNice] = nice;
  }
  out[data::FeatureId::kCpuUser] = user;
  out[data::FeatureId::kCpuSystem] = system;
  out[data::FeatureId::kCpuIoWait] = iowait;
  const double idle = 100.0 - user - system - iowait -
                      out[data::FeatureId::kCpuSteal] -
                      out[data::FeatureId::kCpuNice];
  out[data::FeatureId::kCpuIdle] = std::max(idle, 0.0);
}

}  // namespace f2pm::sim
