#include "sim/anomalies.hpp"

namespace f2pm::sim {

HomeAnomalyInjector::HomeAnomalyInjector(ResourceModel& resources,
                                         HomeAnomalyConfig config,
                                         util::Rng& rng)
    : resources_(resources), config_(config), rng_(rng) {}

void HomeAnomalyInjector::on_home() {
  if (rng_.bernoulli(config_.leak_probability)) {
    resources_.leak_memory(
        rng_.uniform(config_.leak_min_kb, config_.leak_max_kb));
    ++leaks_;
  }
  if (rng_.bernoulli(config_.thread_probability)) {
    resources_.leak_thread();
    ++threads_;
  }
}

SyntheticMemoryLeaker::SyntheticMemoryLeaker(Simulator& simulator,
                                             ResourceModel& resources,
                                             SyntheticLeakConfig config,
                                             util::Rng& rng)
    : simulator_(simulator),
      resources_(resources),
      config_(config),
      rng_(rng) {}

void SyntheticMemoryLeaker::start() {
  // The paper draws the exponential mean uniformly at startup, mimicking
  // "faulty portions" of code executed more or less often per run.
  mean_interval_ =
      rng_.uniform(config_.mean_interval_min, config_.mean_interval_max);
  stopped_ = false;
  simulator_.schedule_in(rng_.exponential(mean_interval_),
                         [this] { leak_once(); });
}

void SyntheticMemoryLeaker::leak_once() {
  if (stopped_) return;
  resources_.leak_memory(
      rng_.uniform(config_.size_min_kb, config_.size_max_kb));
  ++leaks_;
  simulator_.schedule_in(rng_.exponential(mean_interval_),
                         [this] { leak_once(); });
}

SyntheticThreadLeaker::SyntheticThreadLeaker(Simulator& simulator,
                                             ResourceModel& resources,
                                             SyntheticThreadConfig config,
                                             util::Rng& rng)
    : simulator_(simulator),
      resources_(resources),
      config_(config),
      rng_(rng) {}

void SyntheticThreadLeaker::start() {
  mean_interval_ =
      rng_.uniform(config_.mean_interval_min, config_.mean_interval_max);
  stopped_ = false;
  simulator_.schedule_in(rng_.exponential(mean_interval_),
                         [this] { spawn_once(); });
}

void SyntheticThreadLeaker::spawn_once() {
  if (stopped_) return;
  resources_.leak_thread();
  ++threads_;
  simulator_.schedule_in(rng_.exponential(mean_interval_),
                         [this] { spawn_once(); });
}

}  // namespace f2pm::sim
