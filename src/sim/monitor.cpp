#include "sim/monitor.hpp"

#include <algorithm>

namespace f2pm::sim {

FeatureMonitor::FeatureMonitor(Simulator& simulator, ResourceModel& resources,
                               Server& server, MonitorConfig config,
                               util::Rng& rng)
    : simulator_(simulator),
      resources_(resources),
      server_(server),
      config_(config),
      rng_(rng) {}

double FeatureMonitor::next_interval() const {
  // The monitor process gets delayed when the system is overloaded: its
  // wake-ups contend with the thrashing workload. The stretch follows the
  // same slowdown the requests experience, capped at max_skew.
  const double slowdown = resources_.slowdown_factor();
  const double skew = std::min(1.0 + 0.35 * (slowdown - 1.0),
                               config_.max_skew);
  return config_.base_interval * skew;
}

void FeatureMonitor::start() {
  stopped_ = false;
  simulator_.schedule_in(next_interval(), [this] { sample_once(); });
}

void FeatureMonitor::sample_once() {
  if (stopped_) return;
  const double now = simulator_.now();
  const double interval = now - last_sample_time_;
  data::RawDatapoint sample;
  sample.tgen = now;
  const MemorySnapshot memory = resources_.memory();
  sample[data::FeatureId::kNumThreads] =
      static_cast<double>(resources_.num_threads());
  sample[data::FeatureId::kMemUsed] = memory.used_kb;
  sample[data::FeatureId::kMemFree] = memory.free_kb;
  sample[data::FeatureId::kMemShared] = memory.shared_kb;
  sample[data::FeatureId::kMemBuffers] = memory.buffers_kb;
  sample[data::FeatureId::kMemCached] = memory.cached_kb;
  sample[data::FeatureId::kSwapUsed] = memory.swap_used_kb;
  sample[data::FeatureId::kSwapFree] = memory.swap_free_kb;
  resources_.sample_cpu(interval, rng_, sample);
  samples_.push_back(sample);

  const ResponseStats stats = server_.drain_response_stats();
  // Windows with no completed request inherit the previous mean: the
  // clients are stalled, not fast.
  if (stats.completed > 0) last_rt_mean_ = stats.mean();
  response_times_.push_back(last_rt_mean_);

  last_sample_time_ = now;
  const double jitter =
      1.0 + rng_.uniform(-config_.jitter, config_.jitter);
  simulator_.schedule_in(next_interval() * jitter,
                         [this] { sample_once(); });
}

}  // namespace f2pm::sim
