#include "sim/tpcw_workload.hpp"

namespace f2pm::sim {

namespace {

constexpr std::array<std::string_view, kInteractionCount> kNames = {
    "home",          "new_products",  "best_sellers",
    "product_detail", "search_request", "search_results",
    "shopping_cart", "customer_registration", "buy_request",
    "buy_confirm",   "order_inquiry", "order_display",
    "admin_request", "admin_confirm",
};

// TPC-W browsing mix (WIPSb) stationary frequencies, in percent.
constexpr std::array<double, kInteractionCount> kBrowsingMix = {
    29.00,  // home
    11.00,  // new products
    11.00,  // best sellers
    21.00,  // product detail
    12.00,  // search request
    11.00,  // search results
    2.00,   // shopping cart
    0.82,   // customer registration
    0.75,   // buy request
    0.69,   // buy confirm
    0.30,   // order inquiry
    0.25,   // order display
    0.10,   // admin request
    0.09,   // admin confirm
};

// TPC-W shopping mix (WIPS), the benchmark's primary metric mix.
constexpr std::array<double, kInteractionCount> kShoppingMix = {
    16.00,  // home
    5.00,   // new products
    5.00,   // best sellers
    17.00,  // product detail
    20.00,  // search request
    17.00,  // search results
    11.60,  // shopping cart
    3.00,   // customer registration
    2.60,   // buy request
    1.20,   // buy confirm
    0.75,   // order inquiry
    0.66,   // order display
    0.10,   // admin request
    0.09,   // admin confirm
};

// TPC-W ordering mix (WIPSo), order-heavy traffic.
constexpr std::array<double, kInteractionCount> kOrderingMix = {
    9.12,   // home
    0.46,   // new products
    0.46,   // best sellers
    12.35,  // product detail
    14.54,  // search request
    13.08,  // search results
    13.53,  // shopping cart
    12.86,  // customer registration
    12.73,  // buy request
    10.18,  // buy confirm
    0.25,   // order inquiry
    0.22,   // order display
    0.12,   // admin request
    0.10,   // admin confirm
};

// Nominal demands of a healthy Tomcat+MySQL stack (seconds). Heavy DB
// interactions (best sellers, buy confirm, search results) dominate.
constexpr std::array<InteractionDemand, kInteractionCount> kDemands = {{
    {0.010, 0.004},  // home
    {0.018, 0.010},  // new products
    {0.030, 0.022},  // best sellers
    {0.012, 0.006},  // product detail
    {0.006, 0.002},  // search request
    {0.022, 0.014},  // search results
    {0.014, 0.006},  // shopping cart
    {0.008, 0.004},  // customer registration
    {0.014, 0.008},  // buy request
    {0.026, 0.016},  // buy confirm
    {0.006, 0.004},  // order inquiry
    {0.016, 0.010},  // order display
    {0.010, 0.006},  // admin request
    {0.022, 0.012},  // admin confirm
}};

}  // namespace

std::string_view interaction_name(Interaction interaction) noexcept {
  return kNames[static_cast<std::size_t>(interaction)];
}

InteractionDemand interaction_demand(Interaction interaction) noexcept {
  return kDemands[static_cast<std::size_t>(interaction)];
}

const std::array<double, kInteractionCount>& browsing_mix_weights() noexcept {
  return kBrowsingMix;
}

const std::array<double, kInteractionCount>& mix_weights(
    TpcwMix mix) noexcept {
  switch (mix) {
    case TpcwMix::kBrowsing:
      return kBrowsingMix;
    case TpcwMix::kShopping:
      return kShoppingMix;
    case TpcwMix::kOrdering:
      return kOrderingMix;
  }
  return kBrowsingMix;
}

BrowserPool::BrowserPool(Simulator& simulator, RequestSink& sink,
                         WorkloadConfig config, util::Rng& rng)
    : simulator_(simulator),
      sink_(sink),
      config_(config),
      rng_(rng),
      mix_(mix_weights(config.mix).begin(), mix_weights(config.mix).end()) {}

void BrowserPool::start() {
  for (std::size_t b = 0; b < config_.num_browsers; ++b) {
    simulator_.schedule_in(rng_.uniform(0.0, config_.think_time_mean),
                           [this, b] { browser_request(b); });
  }
}

void BrowserPool::browser_think(std::size_t browser) {
  if (stopped_) return;
  simulator_.schedule_in(rng_.exponential(config_.think_time_mean),
                         [this, browser] { browser_request(browser); });
}

void BrowserPool::browser_request(std::size_t browser) {
  if (stopped_) return;
  const auto interaction = static_cast<Interaction>(rng_.categorical(mix_));
  ++requests_issued_;
  sink_.submit(interaction, [this, browser](double /*response_time*/) {
    ++responses_received_;
    browser_think(browser);
  });
}

}  // namespace f2pm::sim
