#include "sim/event_queue.hpp"

#include <algorithm>

namespace f2pm::sim {

void Simulator::schedule_at(double when, Handler handler) {
  queue_.push(Event{std::max(when, now_), next_seq_++, std::move(handler)});
}

void Simulator::schedule_in(double delay, Handler handler) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(handler));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the handler must be moved out
  // before pop, so copy the POD parts and steal the callable.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.time;
  ++events_processed_;
  event.handler();
  return true;
}

void Simulator::run_until(double end_time) {
  while (!queue_.empty() && queue_.top().time <= end_time) {
    step();
  }
  now_ = std::max(now_, end_time);
}

bool Simulator::run_until_condition(const std::function<bool()>& predicate,
                                    double end_time) {
  if (predicate()) return true;
  while (!queue_.empty() && queue_.top().time <= end_time) {
    step();
    if (predicate()) return true;
  }
  now_ = std::max(now_, end_time);
  return false;
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace f2pm::sim
