// Resource model of the monitored VM: memory / swap / cache accounting,
// thread census and CPU-time bookkeeping. This is where the anomaly
// phenomenology the paper relies on is produced:
//
//   * leaked memory and unterminated threads accumulate in `leaked_kb` /
//     `leaked_threads`;
//   * once application memory outgrows RAM, the kernel first reclaims page
//     cache and buffers, then spills to swap;
//   * swap pressure inflates service times (thrashing) and shows up as
//     CPU iowait — which is exactly the accelerating, slope-visible signal
//     the paper's Lasso selects (Table I);
//   * when swap is exhausted the VM is considered crashed (the paper's
//     user-defined failure condition for the TPC-W testbed).
#pragma once

#include <cstdint>

#include "data/datapoint.hpp"
#include "util/rng.hpp"

namespace f2pm::sim {

/// Static sizing of the simulated VM (KiB / counts / cores).
struct ResourceConfig {
  double total_memory_kb = 2.0 * 1024 * 1024;  ///< 2 GiB RAM.
  double total_swap_kb = 1.0 * 1024 * 1024;    ///< 1 GiB swap.
  double base_used_kb = 420.0 * 1024;          ///< OS + idle app footprint.
  double base_cached_kb = 520.0 * 1024;        ///< Page cache when healthy.
  double min_cached_kb = 40.0 * 1024;          ///< Cache floor under pressure.
  double base_buffers_kb = 96.0 * 1024;
  double min_buffers_kb = 8.0 * 1024;
  double base_shared_kb = 64.0 * 1024;
  double thread_stack_kb = 1024.0;     ///< Resident cost per leaked thread.
  double request_footprint_kb = 256.0; ///< Transient per in-flight request.
  double shared_per_session_kb = 24.0;
  int base_threads = 120;              ///< Kernel + Tomcat + MySQL baseline.
  int cores = 2;                       ///< vCPUs of the monitored VM.
  /// Swap fraction above which the VM counts as crashed (OOM killer
  /// territory); the paper restarts the VM at this point.
  double crash_swap_fraction = 0.98;
};

/// Instantaneous memory/swap picture derived from the accumulated state.
struct MemorySnapshot {
  double used_kb = 0.0;
  double free_kb = 0.0;
  double shared_kb = 0.0;
  double buffers_kb = 0.0;
  double cached_kb = 0.0;
  double swap_used_kb = 0.0;
  double swap_free_kb = 0.0;
};

/// Mutable resource state of one VM run.
class ResourceModel {
 public:
  explicit ResourceModel(ResourceConfig config = {});

  [[nodiscard]] const ResourceConfig& config() const { return config_; }

  /// Anomaly accrual.
  void leak_memory(double kb);
  void leak_thread();

  /// Workload census hooks (called by the server).
  void set_active_requests(int in_flight, int worker_threads);

  /// CPU accounting: seconds of user/system work and of I/O wait performed
  /// since the last monitor sample (the monitor consumes and resets them).
  void add_cpu_user_seconds(double seconds) { cpu_user_acc_ += seconds; }
  void add_cpu_system_seconds(double seconds) { cpu_system_acc_ += seconds; }
  void add_cpu_iowait_seconds(double seconds) { cpu_iowait_acc_ += seconds; }

  /// Current memory/swap picture.
  [[nodiscard]] MemorySnapshot memory() const;

  /// Total thread census (base + workload + leaked).
  [[nodiscard]] int num_threads() const;

  /// Service-time inflation factor >= 1: queue-free slowdown caused by
  /// cache starvation, swap thrashing and scheduler crowding.
  [[nodiscard]] double slowdown_factor() const;

  /// Fraction of swap in use, in [0, 1].
  [[nodiscard]] double swap_pressure() const;

  /// True once swap usage passes the crash threshold.
  [[nodiscard]] bool crashed() const;

  /// Fills the CPU block of a datapoint from the accumulated CPU seconds
  /// over `interval` seconds, adds hypervisor-steal and nice noise from
  /// `rng`, and resets the accumulators.
  void sample_cpu(double interval, util::Rng& rng, data::RawDatapoint& out);

  /// Raw anomaly state (diagnostics / tests).
  [[nodiscard]] double leaked_kb() const { return leaked_kb_; }
  [[nodiscard]] int leaked_threads() const { return leaked_threads_; }

 private:
  ResourceConfig config_;
  double leaked_kb_ = 0.0;
  int leaked_threads_ = 0;
  int active_requests_ = 0;
  int worker_threads_ = 0;
  double cpu_user_acc_ = 0.0;
  double cpu_system_acc_ = 0.0;
  double cpu_iowait_acc_ = 0.0;
};

}  // namespace f2pm::sim
