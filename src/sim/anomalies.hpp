// Anomaly injection, in the paper's two forms:
//
//  * the modified TPC-W Home servlet (§IV-A): every Home interaction leaks
//    memory / spawns an unterminated thread with per-run probabilities, so
//    the anomaly rate follows the server load;
//  * the standalone synthetic injectors (§III-E utilities): memory leaks
//    of uniformly distributed size arriving with exponential inter-arrival
//    times whose mean is itself drawn uniformly at startup, and thread
//    leaks with exponential inter-arrival times — independent of workload.
#pragma once

#include "sim/event_queue.hpp"
#include "sim/resources.hpp"
#include "util/rng.hpp"

namespace f2pm::sim {

/// Load-coupled injection parameters for the modified Home servlet.
struct HomeAnomalyConfig {
  double leak_probability = 0.9;   ///< P(leak) per Home interaction.
  double leak_min_kb = 192.0;      ///< Uniform leak size lower bound.
  double leak_max_kb = 768.0;      ///< Uniform leak size upper bound.
  double thread_probability = 0.05;  ///< P(unterminated thread) per Home.
};

/// Stateless per-Home injection: call on_home() from the server hook.
class HomeAnomalyInjector {
 public:
  HomeAnomalyInjector(ResourceModel& resources, HomeAnomalyConfig config,
                      util::Rng& rng);

  /// Applies the probabilistic leak / thread spawn for one Home visit.
  void on_home();

  [[nodiscard]] std::size_t leaks_injected() const { return leaks_; }
  [[nodiscard]] std::size_t threads_injected() const { return threads_; }

 private:
  ResourceModel& resources_;
  HomeAnomalyConfig config_;
  util::Rng& rng_;
  std::size_t leaks_ = 0;
  std::size_t threads_ = 0;
};

/// §III-E synthetic memory-leak utility.
struct SyntheticLeakConfig {
  double size_min_kb = 128.0;
  double size_max_kb = 1024.0;
  /// The exponential inter-arrival mean is drawn uniformly from this range
  /// at startup ("the mean of this exponential distribution is drawn
  /// uniformly at random").
  double mean_interval_min = 0.5;
  double mean_interval_max = 4.0;
};

/// Periodically allocates-and-dirties chunks per the paper's generator.
class SyntheticMemoryLeaker {
 public:
  SyntheticMemoryLeaker(Simulator& simulator, ResourceModel& resources,
                        SyntheticLeakConfig config, util::Rng& rng);

  /// Draws the run's inter-arrival mean and schedules the first leak.
  void start();
  void stop() { stopped_ = true; }

  [[nodiscard]] double chosen_mean_interval() const { return mean_interval_; }
  [[nodiscard]] std::size_t leaks_injected() const { return leaks_; }

 private:
  void leak_once();

  Simulator& simulator_;
  ResourceModel& resources_;
  SyntheticLeakConfig config_;
  util::Rng& rng_;
  double mean_interval_ = 0.0;
  bool stopped_ = false;
  std::size_t leaks_ = 0;
};

/// §III-E synthetic unterminated-thread utility.
struct SyntheticThreadConfig {
  double mean_interval_min = 4.0;
  double mean_interval_max = 30.0;
};

/// Periodically detaches never-terminating threads.
class SyntheticThreadLeaker {
 public:
  SyntheticThreadLeaker(Simulator& simulator, ResourceModel& resources,
                        SyntheticThreadConfig config, util::Rng& rng);

  void start();
  void stop() { stopped_ = true; }

  [[nodiscard]] double chosen_mean_interval() const { return mean_interval_; }
  [[nodiscard]] std::size_t threads_injected() const { return threads_; }

 private:
  void spawn_once();

  Simulator& simulator_;
  ResourceModel& resources_;
  SyntheticThreadConfig config_;
  util::Rng& rng_;
  double mean_interval_ = 0.0;
  bool stopped_ = false;
  std::size_t threads_ = 0;
};

}  // namespace f2pm::sim
