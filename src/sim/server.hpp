// The simulated application server (the paper's Tomcat + MySQL VM): a
// fixed worker pool serving TPC-W interactions from a FIFO queue, with
// service times inflated by the ResourceModel's slowdown factor. Home
// interactions fire the anomaly hook, reproducing the paper's modified
// Home Web Interaction servlet that leaks memory / spawns threads with
// load-dependent rates (§IV-A).
#pragma once

#include <deque>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/resources.hpp"
#include "sim/tpcw_workload.hpp"
#include "util/rng.hpp"

namespace f2pm::sim {

/// Server sizing and noise parameters.
struct ServerConfig {
  int worker_threads = 8;        ///< Tomcat-style request worker pool.
  double service_noise = 0.15;   ///< Lognormal-ish multiplicative jitter.
  double system_cpu_fraction = 0.18;  ///< Kernel share of CPU work.
};

/// Aggregate response-time statistics since the last drain (consumed by
/// the feature monitor, which samples once per datapoint).
struct ResponseStats {
  double total_response_time = 0.0;
  std::size_t completed = 0;

  [[nodiscard]] double mean() const {
    return completed == 0 ? 0.0
                          : total_response_time /
                                static_cast<double>(completed);
  }
};

/// FIFO multi-worker queueing server over the DES.
class Server final : public RequestSink {
 public:
  Server(Simulator& simulator, ResourceModel& resources, ServerConfig config,
         util::Rng& rng);

  void submit(Interaction interaction,
              std::function<void(double)> on_complete) override;

  /// Called on every Home interaction before service starts (anomaly
  /// injection point).
  void set_home_hook(std::function<void()> hook) {
    home_hook_ = std::move(hook);
  }

  /// Returns and resets the response-time statistics window.
  ResponseStats drain_response_stats();

  [[nodiscard]] int busy_workers() const { return busy_workers_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] std::size_t total_completed() const {
    return total_completed_;
  }

 private:
  struct PendingRequest {
    Interaction interaction;
    double arrival_time;
    std::function<void(double)> on_complete;
  };

  void start_service(PendingRequest request);
  void finish_service(double arrival_time, double user_cpu, double system_cpu,
                      double io_wait, std::function<void(double)> on_complete);
  void update_census();

  Simulator& simulator_;
  ResourceModel& resources_;
  ServerConfig config_;
  util::Rng& rng_;
  std::deque<PendingRequest> queue_;
  std::function<void()> home_hook_;
  int busy_workers_ = 0;
  std::size_t total_completed_ = 0;
  ResponseStats window_stats_;
};

}  // namespace f2pm::sim
