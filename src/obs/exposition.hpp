// Prometheus text exposition (format 0.0.4) for obs::Registry snapshots,
// plus the minimal HTTP/1.0 response wrapper the serve-side metrics
// listener and any embedding application can reply to a scraper with.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace f2pm::obs {

/// Renders `# HELP` / `# TYPE` headers and one series per metric.
/// Histograms expose the classic `_bucket{le=...}` / `_sum` / `_count`
/// triple; labelled metrics merge their label body into each series.
/// Numbers are locale-independent (std::to_chars shortest form).
std::string render_prometheus(const std::vector<MetricSnapshot>& snapshot);

/// Convenience: snapshot + render in one call.
std::string render_prometheus(const Registry& registry);

/// Wraps a rendered body in a complete `HTTP/1.0 200 OK` response with the
/// Prometheus text content type and Content-Length, connection-close.
std::string http_response(const std::string& body);

}  // namespace f2pm::obs
