#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace f2pm::obs {

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1])) {
      throw std::invalid_argument("Histogram: bounds must ascend strictly");
    }
  }
  shards_.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    // Trailing +Inf bucket.
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  Shard& shard = *shards_[detail::shard_index()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(shard.sum, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.bounds = bounds_;
  out.cumulative.assign(bounds_.size() + 1, 0);
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    for (std::size_t b = 0; b < out.cumulative.size(); ++b) {
      out.cumulative[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    out.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (std::size_t b = 1; b < out.cumulative.size(); ++b) {
    out.cumulative[b] += out.cumulative[b - 1];
  }
  out.count = out.cumulative.back();
  return out;
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  if (!(start > 0.0) || !(factor > 1.0) || count == 0) {
    throw std::invalid_argument("Histogram: bad exponential_bounds shape");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

const std::vector<double>& Histogram::default_latency_bounds() {
  static const std::vector<double> bounds = {
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
      0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
  return bounds;
}

Registry::Entry& Registry::find_or_create(const std::string& name,
                                          const std::string& labels,
                                          const std::string& help,
                                          MetricType type) {
  const auto key = std::make_pair(name, labels);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    entry.type = type;
    entry.help = help;
    it = entries_.emplace(key, std::move(entry)).first;
  } else if (it->second.type != type) {
    throw std::invalid_argument("Registry: metric '" + name +
                                "' already registered with another type");
  }
  return it->second;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, labels, help, MetricType::kCounter);
  if (!entry.counter) entry.counter.reset(new Counter());
  return *entry.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, labels, help, MetricType::kGauge);
  if (!entry.gauge) entry.gauge.reset(new Gauge());
  return *entry.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> bounds,
                               const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, labels, help, MetricType::kHistogram);
  if (!entry.histogram) {
    entry.histogram.reset(new Histogram(std::move(bounds)));
  }
  return *entry.histogram;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot snap;
    snap.name = key.first;
    snap.labels = key.second;
    snap.help = entry.help;
    snap.type = entry.type;
    switch (entry.type) {
      case MetricType::kCounter:
        snap.value = static_cast<double>(entry.counter->value());
        break;
      case MetricType::kGauge:
        snap.value = entry.gauge->value();
        break;
      case MetricType::kHistogram:
        snap.histogram = entry.histogram->snapshot();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::optional<MetricSnapshot> Registry::find(const std::string& name,
                                             const std::string& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(std::make_pair(name, labels));
  if (it == entries_.end()) return std::nullopt;
  const Entry& entry = it->second;
  MetricSnapshot snap;
  snap.name = name;
  snap.labels = labels;
  snap.help = entry.help;
  snap.type = entry.type;
  switch (entry.type) {
    case MetricType::kCounter:
      snap.value = static_cast<double>(entry.counter->value());
      break;
    case MetricType::kGauge:
      snap.value = entry.gauge->value();
      break;
    case MetricType::kHistogram:
      snap.histogram = entry.histogram->snapshot();
      break;
  }
  return snap;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace f2pm::obs
