// Process-wide observability primitives for the serving/training stack:
// monotonic counters, gauges and fixed-bucket latency histograms behind a
// named registry, plus a consistent snapshot API the Prometheus-style
// exposition (obs/exposition.hpp) renders from.
//
// Write-path design: counters and histograms are sharded across a small
// fixed set of cache-line-padded atomic slots, indexed by a thread-local
// shard id, so concurrent writers on the scoring pool never contend on one
// line and a hot-path update is a single relaxed fetch_add. Reads (the
// scrape path) sum the shards; they are racy only in the benign sense that
// a snapshot taken under concurrent writers lands between two serialized
// states — monotonicity of counters is preserved.
//
// Registry entries are created on first use and never removed, so the
// references handed out by counter()/gauge()/histogram() stay valid for
// the process lifetime and callers cache them in function-local statics.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace f2pm::obs {

/// Number of write shards per counter/histogram. A small power of two:
/// enough to keep a 16-thread scoring pool off each other's cache lines
/// without bloating every metric.
inline constexpr std::size_t kShards = 16;

namespace detail {

/// Stable per-thread shard slot in [0, kShards).
std::size_t shard_index() noexcept;

/// fetch_add for doubles via a CAS loop (portable; relaxed ordering).
void atomic_add(std::atomic<double>& target, double delta) noexcept;

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace detail

/// Monotonically increasing counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::shard_index()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over all shards.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class Registry;
  Counter() = default;
  std::array<detail::CounterShard, kShards> shards_;
};

/// A value that can go up and down (active sessions, queue depth).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept { detail::atomic_add(value_, delta); }
  void sub(double delta) noexcept { add(-delta); }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Point-in-time view of one histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;  ///< Upper bucket bounds (le), ascending.
  /// Cumulative counts per bound; the final entry is the +Inf bucket and
  /// equals `count`.
  std::vector<std::uint64_t> cumulative;
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Fixed-bucket histogram (Prometheus classic semantics: a sample lands in
/// every bucket whose upper bound is >= the value).
class Histogram {
 public:
  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// `count` bounds starting at `start`, each `factor` times the previous.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);

  /// 100 µs .. 10 s in 1-2.5-5 decade steps — fits both scoring batches
  /// and model fit/validation times.
  static const std::vector<double>& default_latency_bounds();

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);

  struct alignas(64) Shard {
    explicit Shard(std::size_t num_buckets) : buckets(num_buckets) {}
    std::vector<std::atomic<std::uint64_t>> buckets;  ///< Non-cumulative.
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  /// Heap-allocated: Shard holds atomics and cannot live in a resizable
  /// vector directly.
  std::vector<std::unique_ptr<Shard>> shards_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// Point-in-time view of one registered metric.
struct MetricSnapshot {
  std::string name;
  std::string labels;  ///< Prometheus label body, e.g. `model="svr"`; may
                       ///< be empty.
  std::string help;
  MetricType type = MetricType::kCounter;
  double value = 0.0;  ///< Counter/gauge value.
  HistogramSnapshot histogram;
};

/// Named metric registry. Lookup/creation takes a mutex (cache the
/// returned references); updates through the returned handles are
/// lock-free. The same (name, labels) pair always returns the same
/// instance; re-registering it as a different type throws
/// std::invalid_argument.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name, const std::string& help,
                   const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& help,
               const std::string& labels = "");
  /// `bounds` must be strictly ascending and non-empty; they are fixed at
  /// creation (later calls with different bounds return the original).
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds,
                       const std::string& labels = "");

  /// Consistent-enough view for exposition: every metric is read once,
  /// sorted by (name, labels). Counter values are monotonic across
  /// successive snapshots even under concurrent writers.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Snapshot of one (name, labels) entry, or nullopt when it was never
  /// registered. Lets an in-process consumer (the learn trainer reads the
  /// ml fit timers to estimate a retrain budget) query a single series
  /// without rendering the whole exposition.
  [[nodiscard]] std::optional<MetricSnapshot> find(
      const std::string& name, const std::string& labels = "") const;

  /// The process-wide registry every instrumented layer writes to.
  static Registry& global();

 private:
  struct Entry {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, const std::string& labels,
                        const std::string& help, MetricType type);

  mutable std::mutex mutex_;
  /// Keyed by (name, labels) so label variants of one family sort together.
  std::map<std::pair<std::string, std::string>, Entry> entries_;
};

/// Observes the wall-clock lifetime of a scope into a histogram (seconds).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    histogram_.observe(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace f2pm::obs
