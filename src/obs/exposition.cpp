#include "obs/exposition.hpp"

#include <charconv>
#include <cstdint>

namespace f2pm::obs {

namespace {

/// Shortest round-trip representation, locale-independent. (snprintf is
/// off-limits here: under LC_NUMERIC=de_DE it would emit `3,14`, which is
/// not a valid Prometheus sample value.)
std::string format_number(double value) {
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc{}) return "NaN";
  return std::string(buffer, ptr);
}

std::string format_count(std::uint64_t value) {
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc{}) return "0";
  return std::string(buffer, ptr);
}

void append_series(std::string& out, const std::string& name,
                   const std::string& labels, const std::string& value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

void append_histogram(std::string& out, const MetricSnapshot& metric) {
  const HistogramSnapshot& hist = metric.histogram;
  const std::string prefix =
      metric.labels.empty() ? std::string() : metric.labels + ",";
  for (std::size_t b = 0; b < hist.bounds.size(); ++b) {
    append_series(out, metric.name + "_bucket",
                  prefix + "le=\"" + format_number(hist.bounds[b]) + "\"",
                  format_count(hist.cumulative[b]));
  }
  append_series(out, metric.name + "_bucket", prefix + "le=\"+Inf\"",
                format_count(hist.count));
  append_series(out, metric.name + "_sum", metric.labels,
                format_number(hist.sum));
  append_series(out, metric.name + "_count", metric.labels,
                format_count(hist.count));
}

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string render_prometheus(const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  const std::string* previous_family = nullptr;
  for (const MetricSnapshot& metric : snapshot) {
    // Label variants of one family share a single HELP/TYPE header (the
    // snapshot arrives sorted by name, so variants are adjacent).
    if (previous_family == nullptr || *previous_family != metric.name) {
      if (!metric.help.empty()) {
        out += "# HELP " + metric.name + " " + metric.help + "\n";
      }
      out += "# TYPE " + metric.name + " ";
      out += type_name(metric.type);
      out += '\n';
      previous_family = &metric.name;
    }
    switch (metric.type) {
      case MetricType::kCounter:
        append_series(out, metric.name, metric.labels,
                      format_count(static_cast<std::uint64_t>(metric.value)));
        break;
      case MetricType::kGauge:
        append_series(out, metric.name, metric.labels,
                      format_number(metric.value));
        break;
      case MetricType::kHistogram:
        append_histogram(out, metric);
        break;
    }
  }
  return out;
}

std::string render_prometheus(const Registry& registry) {
  return render_prometheus(registry.snapshot());
}

std::string http_response(const std::string& body) {
  std::string out =
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: ";
  out += format_count(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace f2pm::obs
