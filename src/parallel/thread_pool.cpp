#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "obs/metrics.hpp"

namespace f2pm::parallel {

namespace {

struct PoolMetrics {
  obs::Gauge& queue_depth;
  obs::Histogram& wait_seconds;
  obs::Histogram& run_seconds;

  static PoolMetrics& get() {
    auto& registry = obs::Registry::global();
    static PoolMetrics metrics{
        registry.gauge("f2pm_pool_queue_depth",
                       "Tasks waiting in thread-pool queues."),
        registry.histogram("f2pm_pool_task_wait_seconds",
                           "Time tasks spent queued before a worker (or a "
                           "helping waiter) picked them up.",
                           obs::Histogram::default_latency_bounds()),
        registry.histogram("f2pm_pool_task_run_seconds",
                           "Task execution time on the pool.",
                           obs::Histogram::default_latency_bounds())};
    return metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(
        QueuedTask{std::move(fn), std::chrono::steady_clock::now()});
  }
  PoolMetrics::get().queue_depth.add(1.0);
  cv_.notify_one();
}

void ThreadPool::run_task(QueuedTask task) {
  PoolMetrics& metrics = PoolMetrics::get();
  metrics.queue_depth.sub(1.0);
  metrics.wait_seconds.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    task.enqueued)
          .count());
  obs::ScopedTimer run_timer(metrics.run_seconds);
  task.fn();
}

void ThreadPool::worker_loop() {
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task(std::move(task));
  }
}

bool ThreadPool::try_run_one() {
  QueuedTask task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  run_task(std::move(task));
  return true;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

namespace {

struct ChunkPlan {
  std::size_t chunk_size;
  std::size_t num_chunks;
};

ChunkPlan plan_chunks(std::size_t count, std::size_t num_threads) {
  if (count == 0) return {0, 0};
  const std::size_t target_chunks = std::max<std::size_t>(1, num_threads * 4);
  const std::size_t chunk_size =
      std::max<std::size_t>(1, (count + target_chunks - 1) / target_chunks);
  const std::size_t num_chunks = (count + chunk_size - 1) / chunk_size;
  return {chunk_size, num_chunks};
}

}  // namespace

void parallel_for_chunked(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const ChunkPlan plan = plan_chunks(count, pool.num_threads());
  if (plan.num_chunks <= 1 || pool.num_threads() == 1) {
    body(begin, end);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(plan.num_chunks);
  for (std::size_t c = 0; c < plan.num_chunks; ++c) {
    const std::size_t lo = begin + c * plan.chunk_size;
    const std::size_t hi = std::min(end, lo + plan.chunk_size);
    futures.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    // Help drain the queue while waiting so nested parallel regions on the
    // same pool cannot deadlock (a blocked chunk's sub-chunks are always
    // runnable by whichever thread is waiting on them).
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!pool.try_run_one()) {
        future.wait_for(std::chrono::microseconds(50));
      }
    }
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(pool, begin, end,
                       [&body](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) body(i);
                       });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(ThreadPool::global(), begin, end, body);
}

double parallel_reduce_sum(ThreadPool& pool, std::size_t begin,
                           std::size_t end,
                           const std::function<double(std::size_t)>& body) {
  std::mutex sum_mutex;
  double total = 0.0;
  parallel_for_chunked(pool, begin, end,
                       [&](std::size_t lo, std::size_t hi) {
                         double local = 0.0;
                         for (std::size_t i = lo; i < hi; ++i) {
                           local += body(i);
                         }
                         std::lock_guard<std::mutex> lock(sum_mutex);
                         total += local;
                       });
  return total;
}

}  // namespace f2pm::parallel
