#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace f2pm::parallel {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

namespace {

struct ChunkPlan {
  std::size_t chunk_size;
  std::size_t num_chunks;
};

ChunkPlan plan_chunks(std::size_t count, std::size_t num_threads) {
  if (count == 0) return {0, 0};
  const std::size_t target_chunks = std::max<std::size_t>(1, num_threads * 4);
  const std::size_t chunk_size =
      std::max<std::size_t>(1, (count + target_chunks - 1) / target_chunks);
  const std::size_t num_chunks = (count + chunk_size - 1) / chunk_size;
  return {chunk_size, num_chunks};
}

}  // namespace

void parallel_for_chunked(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const ChunkPlan plan = plan_chunks(count, pool.num_threads());
  if (plan.num_chunks <= 1 || pool.num_threads() == 1) {
    body(begin, end);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(plan.num_chunks);
  for (std::size_t c = 0; c < plan.num_chunks; ++c) {
    const std::size_t lo = begin + c * plan.chunk_size;
    const std::size_t hi = std::min(end, lo + plan.chunk_size);
    futures.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    // Help drain the queue while waiting so nested parallel regions on the
    // same pool cannot deadlock (a blocked chunk's sub-chunks are always
    // runnable by whichever thread is waiting on them).
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!pool.try_run_one()) {
        future.wait_for(std::chrono::microseconds(50));
      }
    }
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunked(pool, begin, end,
                       [&body](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) body(i);
                       });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(ThreadPool::global(), begin, end, body);
}

double parallel_reduce_sum(ThreadPool& pool, std::size_t begin,
                           std::size_t end,
                           const std::function<double(std::size_t)>& body) {
  std::mutex sum_mutex;
  double total = 0.0;
  parallel_for_chunked(pool, begin, end,
                       [&](std::size_t lo, std::size_t hi) {
                         double local = 0.0;
                         for (std::size_t i = lo; i < hi; ++i) {
                           local += body(i);
                         }
                         std::lock_guard<std::mutex> lock(sum_mutex);
                         total += local;
                       });
  return total;
}

}  // namespace f2pm::parallel
