// Fixed-size worker pool used by the model-generation phase (train many
// models concurrently), the Lasso regularization path (one λ per task) and
// the kernel-matrix / gemm row-block loops.
//
// Design follows the shared-memory fork/join model of the OpenMP examples:
// explicit decomposition into chunks, a barrier at the end of each parallel
// region, and no hidden global state. Exceptions thrown by tasks are
// captured and rethrown on the submitting thread.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace f2pm::parallel {

/// A fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 -> hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task and returns a future for its result. The callable may
  /// throw; the exception is delivered through the future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task]() { (*task)(); });
    return result;
  }

  /// Pops one queued task and runs it on the calling thread. Returns false
  /// when the queue is empty. This is the "helping" primitive that makes
  /// nested parallel regions on one pool deadlock-free: a thread blocked on
  /// a barrier drains the queue instead of sleeping, so queued sub-tasks
  /// always make progress even when every worker is itself waiting.
  bool try_run_one();

  /// Process-wide default pool, sized to the hardware.
  static ThreadPool& global();

 private:
  /// One queued task plus its enqueue timestamp, so the obs layer can
  /// report how long work sat in the queue before a worker picked it up.
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Locks, rejects after shutdown, records queue-depth/wait-time metrics
  /// and notifies one worker. (Out of line so the template above stays
  /// free of the obs dependency.)
  void enqueue(std::function<void()> fn);

  /// Pops `task` off the queue (caller holds no lock) and runs it,
  /// feeding the wait/run-time histograms.
  static void run_task(QueuedTask task);

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [begin, end) across the pool, blocking until all
/// iterations complete. Iterations are grouped into contiguous chunks
/// (roughly 4 per worker) to amortize scheduling overhead. The first
/// exception thrown by any iteration is rethrown here. While waiting, the
/// calling thread helps drain the pool's queue, so parallel regions may be
/// nested on the same pool (e.g. parallel CV folds whose model fits run
/// parallel kernel loops) without deadlocking.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Convenience overload using the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Chunked variant: body(chunk_begin, chunk_end) receives whole ranges, so
/// callers can keep per-chunk accumulators without false sharing.
void parallel_for_chunked(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body);

/// Parallel sum-reduction of body(i) over [begin, end).
double parallel_reduce_sum(ThreadPool& pool, std::size_t begin,
                           std::size_t end,
                           const std::function<double(std::size_t)>& body);

}  // namespace f2pm::parallel
