#include "util/csv.hpp"

#include <fstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace f2pm::util {

namespace {

/// Splits one CSV line honouring double-quoted fields with "" escapes.
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("csv column not found: " + name);
}

std::vector<double> CsvTable::column(const std::string& name) const {
  const std::size_t idx = column_index(name);
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row[idx]);
  return out;
}

CsvTable read_csv(std::istream& in) {
  CsvTable table;
  std::string line;
  bool have_header = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    auto fields = split_csv_line(line);
    if (!have_header) {
      table.header = std::move(fields);
      have_header = true;
      continue;
    }
    if (fields.size() != table.header.size()) {
      throw std::invalid_argument("csv row " + std::to_string(line_no) +
                                  " has " + std::to_string(fields.size()) +
                                  " fields, expected " +
                                  std::to_string(table.header.size()));
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const auto& field : fields) row.push_back(parse_double(field));
    table.rows.push_back(std::move(row));
  }
  if (!have_header) throw std::invalid_argument("csv document is empty");
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open csv file: " + path);
  return read_csv(in);
}

void write_csv(std::ostream& out, const CsvTable& table) {
  out << join(table.header, ",") << '\n';
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ',';
      out << format_double(row[i], 9);
    }
    out << '\n';
  }
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write csv file: " + path);
  write_csv(out, table);
}

}  // namespace f2pm::util
