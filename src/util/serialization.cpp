#include "util/serialization.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace f2pm::util {

namespace {

constexpr std::uint64_t kMagic = 0x4632504D'42494E01ULL;  // "F2PMBIN" v1
// Fields larger than this indicate a corrupt archive rather than real data.
constexpr std::uint64_t kMaxFieldElements = 1ULL << 32;

}  // namespace

BinaryWriter::BinaryWriter(std::ostream& out) : out_(out) {
  write_u64(kMagic);
}

void BinaryWriter::write_raw(const void* data, std::size_t size) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  if (!out_) throw std::runtime_error("binary archive write failed");
}

void BinaryWriter::write_u64(std::uint64_t value) {
  write_raw(&value, sizeof(value));
}

void BinaryWriter::write_i64(std::int64_t value) {
  write_raw(&value, sizeof(value));
}

void BinaryWriter::write_double(double value) {
  write_raw(&value, sizeof(value));
}

void BinaryWriter::write_bool(bool value) {
  const std::uint8_t byte = value ? 1 : 0;
  write_raw(&byte, 1);
}

void BinaryWriter::write_string(const std::string& value) {
  write_u64(value.size());
  if (!value.empty()) write_raw(value.data(), value.size());
}

void BinaryWriter::write_doubles(const std::vector<double>& values) {
  write_doubles(std::span<const double>(values));
}

void BinaryWriter::write_doubles(std::span<const double> values) {
  write_u64(values.size());
  if (!values.empty()) {
    write_raw(values.data(), values.size() * sizeof(double));
  }
}

void BinaryWriter::write_u64s(const std::vector<std::uint64_t>& values) {
  write_u64(values.size());
  if (!values.empty()) {
    write_raw(values.data(), values.size() * sizeof(std::uint64_t));
  }
}

BinaryReader::BinaryReader(std::istream& in) : in_(in) {
  if (read_u64() != kMagic) {
    throw std::runtime_error("binary archive: bad magic/version header");
  }
}

void BinaryReader::read_raw(void* data, std::size_t size) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(in_.gcount()) != size) {
    throw std::runtime_error("binary archive: truncated stream");
  }
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t value = 0;
  read_raw(&value, sizeof(value));
  return value;
}

std::int64_t BinaryReader::read_i64() {
  std::int64_t value = 0;
  read_raw(&value, sizeof(value));
  return value;
}

double BinaryReader::read_double() {
  double value = 0.0;
  read_raw(&value, sizeof(value));
  return value;
}

bool BinaryReader::read_bool() {
  std::uint8_t byte = 0;
  read_raw(&byte, 1);
  return byte != 0;
}

std::string BinaryReader::read_string() {
  const std::uint64_t size = read_u64();
  if (size > kMaxFieldElements) {
    throw std::runtime_error("binary archive: oversized string field");
  }
  std::string value(size, '\0');
  if (size > 0) read_raw(value.data(), size);
  return value;
}

std::vector<double> BinaryReader::read_doubles() {
  const std::uint64_t size = read_u64();
  if (size > kMaxFieldElements) {
    throw std::runtime_error("binary archive: oversized double[] field");
  }
  std::vector<double> values(size);
  if (size > 0) read_raw(values.data(), size * sizeof(double));
  return values;
}

std::vector<std::uint64_t> BinaryReader::read_u64s() {
  const std::uint64_t size = read_u64();
  if (size > kMaxFieldElements) {
    throw std::runtime_error("binary archive: oversized u64[] field");
  }
  std::vector<std::uint64_t> values(size);
  if (size > 0) read_raw(values.data(), size * sizeof(std::uint64_t));
  return values;
}

}  // namespace f2pm::util
