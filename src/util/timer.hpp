// Wall-clock timing helpers used to measure model training/validation time
// (Tables III/IV of the paper) and campaign progress.
#pragma once

#include <chrono>
#include <string>
#include <utility>

namespace f2pm::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Resets the epoch to now.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_millis() const {
    return elapsed_seconds() * 1e3;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Measures the wall-clock time of a callable and returns {result, seconds}.
template <typename F>
auto timed(F&& fn) {
  WallTimer t;
  if constexpr (std::is_void_v<std::invoke_result_t<F>>) {
    std::forward<F>(fn)();
    return t.elapsed_seconds();
  } else {
    auto result = std::forward<F>(fn)();
    return std::pair{std::move(result), t.elapsed_seconds()};
  }
}

}  // namespace f2pm::util
