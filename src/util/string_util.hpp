// Small string helpers shared across the framework (CSV parsing, config
// files, report formatting).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace f2pm::util {

/// Splits `text` on `delim`. Empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string> split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view text);

/// Parses a double; throws std::invalid_argument on malformed input or
/// trailing garbage.
double parse_double(std::string_view text);

/// Parses a signed 64-bit integer; throws std::invalid_argument on
/// malformed input or trailing garbage.
std::int64_t parse_int(std::string_view text);

/// Formats a double with `precision` significant-ish decimal digits after
/// the point, trimming trailing zeros ("3.1400" -> "3.14").
std::string format_double(double value, int precision = 6);

}  // namespace f2pm::util
