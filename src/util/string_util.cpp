#include "util/string_util.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace f2pm::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

double parse_double(std::string_view text) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) throw std::invalid_argument("empty number");
  double value = 0.0;
  const char* begin = trimmed.data();
  const char* end = begin + trimmed.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::invalid_argument("malformed double: '" + std::string(trimmed) +
                                "'");
  }
  return value;
}

std::int64_t parse_int(std::string_view text) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) throw std::invalid_argument("empty integer");
  std::int64_t value = 0;
  const char* begin = trimmed.data();
  const char* end = begin + trimmed.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::invalid_argument("malformed integer: '" + std::string(trimmed) +
                                "'");
  }
  return value;
}

std::string format_double(double value, int precision) {
  // std::to_chars, not snprintf("%.*f"): the latter honours LC_NUMERIC,
  // so an embedding application running under e.g. de_DE would write
  // "3,14" — which the strict from_chars in parse_double rejects,
  // breaking every CSV/archive round-trip. to_chars is locale-free.
  char buffer[512];  // fixed notation of a double can need ~330 chars
  auto result = std::to_chars(buffer, buffer + sizeof(buffer), value,
                              std::chars_format::fixed, precision);
  if (result.ec != std::errc{}) {
    result = std::to_chars(buffer, buffer + sizeof(buffer), value,
                           std::chars_format::general);
    if (result.ec != std::errc{}) return "0";
  }
  std::string out(buffer, result.ptr);
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  return out;
}

}  // namespace f2pm::util
