// Tiny binary archive used to persist trained models and datapoint
// histories. Little-endian, length-prefixed, with a magic/version header
// checked on load. Not a general-purpose format: both ends are this library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace f2pm::util {

/// Sequentially writes POD values, strings and vectors to a stream.
class BinaryWriter {
 public:
  /// Writes the archive header (magic + format version).
  explicit BinaryWriter(std::ostream& out);

  void write_u64(std::uint64_t value);
  void write_i64(std::int64_t value);
  void write_double(double value);
  void write_bool(bool value);
  void write_string(const std::string& value);
  void write_doubles(const std::vector<double>& values);
  /// Span overload: writes any contiguous double range (e.g. a whole
  /// matrix) without an intermediate vector copy. Wire-identical to the
  /// vector overload.
  void write_doubles(std::span<const double> values);
  void write_u64s(const std::vector<std::uint64_t>& values);

 private:
  void write_raw(const void* data, std::size_t size);
  std::ostream& out_;
};

/// Reads values in the exact order they were written. Throws
/// std::runtime_error on a bad header, truncated stream or oversized field.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in);

  std::uint64_t read_u64();
  std::int64_t read_i64();
  double read_double();
  bool read_bool();
  std::string read_string();
  std::vector<double> read_doubles();
  std::vector<std::uint64_t> read_u64s();

 private:
  void read_raw(void* data, std::size_t size);
  std::istream& in_;
};

}  // namespace f2pm::util
