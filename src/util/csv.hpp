// CSV reading/writing for datapoint histories, experiment outputs and plot
// series. The format is deliberately simple: comma-separated, one header
// row, numeric cells; quoting is supported on read for robustness.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace f2pm::util {

/// An in-memory CSV table: one header row plus numeric data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;

  [[nodiscard]] std::size_t num_rows() const { return rows.size(); }
  [[nodiscard]] std::size_t num_cols() const { return header.size(); }

  /// Index of a column by name; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t column_index(const std::string& name) const;

  /// Extracts a full column as a vector.
  [[nodiscard]] std::vector<double> column(const std::string& name) const;
};

/// Parses a CSV document from a stream. First row is the header. Every data
/// cell must parse as a double; throws std::invalid_argument otherwise or on
/// ragged rows.
CsvTable read_csv(std::istream& in);

/// Loads a CSV file from disk; throws std::runtime_error if unreadable.
CsvTable read_csv_file(const std::string& path);

/// Writes a CSV document (header + rows) to a stream.
void write_csv(std::ostream& out, const CsvTable& table);

/// Writes a CSV file to disk; throws std::runtime_error if unwritable.
void write_csv_file(const std::string& path, const CsvTable& table);

}  // namespace f2pm::util
