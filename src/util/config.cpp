#include "util/config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace f2pm::util {

Config Config::from_string(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("config line missing '=': " +
                                  std::string(trimmed));
    }
    config.set(std::string(trim(trimmed.substr(0, eq))),
               std::string(trim(trimmed.substr(eq + 1))));
  }
  return config;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_string(buffer.str());
}

void Config::apply_args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) continue;
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos) continue;
    set(std::string(arg.substr(2, eq - 2)), std::string(arg.substr(eq + 1)));
  }
}

void Config::set(const std::string& key, const std::string& value) {
  if (values_.find(key) == values_.end()) order_.push_back(key);
  values_[key] = value;
}

bool Config::contains(const std::string& key) const {
  return values_.find(key) != values_.end();
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  return parse_double(*value);
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  return parse_int(*value);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  const std::string lower = to_lower(trim(*value));
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  throw std::invalid_argument("malformed boolean for key '" + key + "': " +
                              *value);
}

std::vector<std::string> Config::keys() const { return order_; }

}  // namespace f2pm::util
