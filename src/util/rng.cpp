#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace f2pm::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64_next(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split() noexcept { return Rng{(*this)()}; }

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire's rejection-free-in-expectation bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = -span % span;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  double u = uniform();
  // Guard against log(0); uniform() can return exactly 0.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  // Floating-point slack: return the last positive-weight index.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return 0;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) noexcept {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace f2pm::util
