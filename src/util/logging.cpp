#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace f2pm::util {

namespace {

std::mutex g_log_mutex;
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<std::ostream*> g_sink{nullptr};

}  // namespace

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_min_level(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::min_level() const {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void Logger::set_sink(std::ostream* sink) {
  g_sink.store(sink, std::memory_order_release);
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::ostream* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) sink = &std::cerr;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  (*sink) << '[' << log_level_name(level) << "] " << component << ": "
          << message << '\n';
}

LogLine::~LogLine() {
  Logger::instance().write(level_, component_, stream_.str());
}

}  // namespace f2pm::util
