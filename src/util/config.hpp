// Key/value configuration used by the example binaries and the benchmark
// harness. Supports "key = value" files with '#' comments and
// "--key=value" command-line overrides, with typed accessors.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace f2pm::util {

/// An ordered key/value store with typed, defaulted accessors.
class Config {
 public:
  Config() = default;

  /// Parses "key = value" lines; '#' starts a comment; blank lines are
  /// ignored. Later keys override earlier ones.
  static Config from_string(const std::string& text);

  /// Loads a config file; throws std::runtime_error if unreadable.
  static Config from_file(const std::string& path);

  /// Applies "--key=value" arguments (other argv entries are ignored), on
  /// top of the current contents.
  void apply_args(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed accessors with defaults; throw std::invalid_argument when the
  /// stored text does not parse as the requested type.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// All keys in insertion order (for diagnostics / reproducibility logs).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
};

}  // namespace f2pm::util
