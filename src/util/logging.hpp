// Minimal leveled logger. Thread-safe, writes to stderr by default; the
// sink can be redirected (tests capture it, long campaigns tee it to a file).
#pragma once

#include <ostream>
#include <sstream>
#include <string>

namespace f2pm::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Returns the fixed-width tag used in log lines ("DEBUG", "INFO ", ...).
const char* log_level_name(LogLevel level) noexcept;

/// Global log configuration. All members are thread-safe.
class Logger {
 public:
  /// Process-wide singleton.
  static Logger& instance();

  /// Messages below this level are discarded. Default: kInfo.
  void set_min_level(LogLevel level);
  LogLevel min_level() const;

  /// Redirects output. The stream must outlive all logging calls.
  /// Passing nullptr restores the default (stderr).
  void set_sink(std::ostream* sink);

  /// Writes one formatted line: "[LEVEL] component: message".
  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger() = default;
};

/// Stream-style log statement builder:
///   F2PM_LOG(kInfo, "campaign") << "run " << i << " crashed";
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace f2pm::util

#define F2PM_LOG(level, component) \
  ::f2pm::util::LogLine(::f2pm::util::LogLevel::level, (component))
