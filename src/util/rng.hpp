// Deterministic pseudo-random number generation for the F2PM framework.
//
// Everything stochastic in F2PM (workload arrivals, anomaly injection,
// dataset shuffles, ...) draws from an explicitly seeded Rng so that whole
// campaigns are reproducible bit-for-bit. The generator is xoshiro256++,
// which is fast, passes BigCrush, and has a tiny state that can be cheaply
// split into independent streams (one per simulator entity / worker thread).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace f2pm::util {

/// SplitMix64 step: used to expand a single 64-bit seed into a full
/// xoshiro256++ state and to derive independent child seeds.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256++ pseudo-random generator.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions, though the member helpers below are the
/// idiomatic way to sample inside F2PM.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Derives an independent child generator. Uses the jump-free
  /// "seed a fresh generator from our output stream" construction, which is
  /// sound for xoshiro because outputs are themselves SplitMix-scrambled.
  Rng split() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Exponential variate with the given mean (mean = 1/rate). Requires
  /// mean > 0.
  double exponential(double mean) noexcept;

  /// Standard normal variate (Marsaglia polar method, cached spare).
  double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Zero-weight entries are never selected; requires a positive total.
  std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace f2pm::util
