#include "learn/corpus.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace f2pm::learn {

namespace {

/// Same validation data::DataHistory::add_run applies, done up front so a
/// malformed export is rejected before it displaces retained runs.
void validate_run(const data::Run& run) {
  if (run.samples.empty()) {
    throw std::invalid_argument("SlidingCorpus: empty run");
  }
  for (std::size_t i = 1; i < run.samples.size(); ++i) {
    if (run.samples[i].tgen < run.samples[i - 1].tgen) {
      throw std::invalid_argument("SlidingCorpus: samples out of order");
    }
  }
  if (run.fail_time < run.samples.back().tgen) {
    throw std::invalid_argument(
        "SlidingCorpus: fail time precedes the last sample");
  }
}

}  // namespace

SlidingCorpus::SlidingCorpus(CorpusOptions options) : options_(options) {
  if (options_.max_runs == 0) {
    throw std::invalid_argument("SlidingCorpus: max_runs must be >= 1");
  }
  if (options_.max_samples == 0) {
    throw std::invalid_argument("SlidingCorpus: max_samples must be >= 1");
  }
}

std::uint64_t SlidingCorpus::add(data::Run run, std::string client_id) {
  validate_run(run);
  CorpusRun record;
  record.sequence = next_sequence_++;
  record.client_id = std::move(client_id);
  max_fail_time_ = std::max(max_fail_time_, run.fail_time);
  total_samples_ += run.samples.size();
  record.run = std::move(run);
  runs_.push_back(std::move(record));

  std::size_t drop = 0;
  std::size_t dropped_samples = 0;
  // Never evict the newest run, however large: an over-budget run still
  // beats an empty corpus.
  while (runs_.size() - drop > 1 &&
         (runs_.size() - drop > options_.max_runs ||
          total_samples_ - dropped_samples > options_.max_samples)) {
    dropped_samples += runs_[drop].run.samples.size();
    ++drop;
  }
  if (drop > 0) {
    runs_.erase(runs_.begin(),
                runs_.begin() + static_cast<std::ptrdiff_t>(drop));
    total_samples_ -= dropped_samples;
    evicted_ += drop;
  }
  return runs_.back().sequence;
}

CorpusSpan SlidingCorpus::span() const {
  CorpusSpan span;
  if (runs_.empty()) return span;
  span.first_sequence = runs_.front().sequence;
  span.last_sequence = runs_.back().sequence;
  span.runs = runs_.size();
  span.samples = total_samples_;
  return span;
}

data::DataHistory SlidingCorpus::assemble(std::size_t sample_budget,
                                          CorpusSpan& used) const {
  used = CorpusSpan{};
  if (runs_.empty()) return {};
  // Walk newest -> oldest until the budget is spent, then emit in age
  // order (DataHistory has no ordering requirement across runs, but age
  // order keeps run indices meaningful in reports).
  std::size_t first = runs_.size();
  std::size_t samples = 0;
  while (first > 0) {
    const std::size_t next = samples + runs_[first - 1].run.samples.size();
    if (sample_budget != 0 && next > sample_budget && first != runs_.size()) {
      break;
    }
    samples = next;
    --first;
  }
  data::DataHistory history;
  for (std::size_t i = first; i < runs_.size(); ++i) {
    history.add_run(runs_[i].run);
  }
  used.first_sequence = runs_[first].sequence;
  used.last_sequence = runs_.back().sequence;
  used.runs = runs_.size() - first;
  used.samples = samples;
  return history;
}

}  // namespace f2pm::learn
