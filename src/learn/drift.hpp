// Drift detection for the continuous-learning loop (src/learn).
//
// The live model is evaluated the only way an RTTF model can be evaluated
// online: retroactively, when a crash-labeled run arrives and every one of
// its aggregation windows gains a ground-truth RTTF. RollingSmae keeps the
// last `horizon` per-window absolute errors and reports the paper's
// Soft-MAE (§III-D: errors below the rejuvenation lead time count as zero)
// over that horizon. DriftDetector turns the rolling series into a
// verdict: the lowest full-horizon evaluation since the last (re)baseline
// is the reference — the model is held to its best observed steady state —
// and the verdict fires after K consecutive evaluations degraded past
// `degrade_ratio` times that reference.
//
// Both classes are pure state machines — no clock, no threads, no model —
// so a deterministic window stream maps to an exact verdict sequence
// (tests/test_learn.cpp exercises exactly that).
#pragma once

#include <cstddef>
#include <vector>

namespace f2pm::learn {

/// Rolling Soft-MAE over the last `horizon` shadow-scored windows. Stores
/// raw absolute errors; the soft threshold is applied at read time so a
/// caller whose tolerance moves (it is a fraction of the largest observed
/// RTTF) never has to rebuild the window.
class RollingSmae {
 public:
  /// `horizon` must be >= 1; throws std::invalid_argument otherwise.
  explicit RollingSmae(std::size_t horizon);

  /// Records one shadow-scored window.
  void observe(double predicted, double actual);

  /// Soft-MAE over the retained window: mean of the absolute errors with
  /// errors <= soft_threshold counted as zero. 0 when empty.
  [[nodiscard]] double value(double soft_threshold) const;

  /// Windows currently retained (<= horizon).
  [[nodiscard]] std::size_t count() const { return count_; }

  /// True once `horizon` windows have been observed since the last reset.
  [[nodiscard]] bool full() const { return count_ == errors_.size(); }

  [[nodiscard]] std::size_t horizon() const { return errors_.size(); }

  /// Forgets everything (hot swap: the new model starts fresh).
  void reset();

 private:
  std::vector<double> errors_;  ///< Ring buffer of |predicted - actual|.
  std::size_t next_ = 0;
  std::size_t count_ = 0;
};

/// When the live model counts as drifted.
struct DriftPolicy {
  /// Windows in the rolling Soft-MAE (the evaluation horizon).
  std::size_t horizon = 32;
  /// Degraded when the rolling Soft-MAE exceeds baseline * degrade_ratio.
  double degrade_ratio = 1.5;
  /// ... and also exceeds this absolute floor (seconds). Guards against
  /// ratio triggers on a near-zero baseline, where tiny noise is a large
  /// multiple of nothing.
  double min_smae_seconds = 1.0;
  /// Consecutive degraded evaluations required before the verdict fires
  /// (debounce, mirroring the RejuvenationAdvisor's policy shape).
  std::size_t consecutive = 3;
};

/// Debounced threshold policy over a rolling Soft-MAE series. Feed one
/// evaluation per shadow-scored window once the rolling horizon is full;
/// the baseline is the lowest value seen since construction/reset().
class DriftDetector {
 public:
  explicit DriftDetector(DriftPolicy policy);

  /// Feeds one full-horizon evaluation. Returns true exactly when this
  /// evaluation fires the verdict (the transition into triggered state).
  bool evaluate(double rolling_smae);

  /// Latched: stays true until reset().
  [[nodiscard]] bool triggered() const { return triggered_; }

  /// The reference Soft-MAE: the lowest evaluation seen since reset()
  /// (frozen once triggered); 0 before any evaluation.
  [[nodiscard]] double baseline() const { return baseline_; }
  [[nodiscard]] bool has_baseline() const { return has_baseline_; }

  /// Current run of consecutive degraded evaluations.
  [[nodiscard]] std::size_t consecutive_degraded() const {
    return degraded_count_;
  }

  [[nodiscard]] const DriftPolicy& policy() const { return policy_; }

  /// Re-baselines from scratch (call after a model hot-swap).
  void reset();

 private:
  DriftPolicy policy_;
  double baseline_ = 0.0;
  bool has_baseline_ = false;
  std::size_t degraded_count_ = 0;
  bool triggered_ = false;
};

}  // namespace f2pm::learn
