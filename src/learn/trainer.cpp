#include "learn/trainer.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <span>
#include <stdexcept>
#include <utility>

#include "data/dataset.hpp"
#include "ml/registry.hpp"
#include "util/logging.hpp"

namespace f2pm::learn {

namespace {

using Clock = std::chrono::steady_clock;

/// Shadow-scores one aggregated window with a fitted model, applying the
/// model's column selection to the full input layout.
double predict_window(const ml::Regressor& model,
                      const std::vector<std::size_t>& columns,
                      const data::AggregatedDatapoint& window) {
  const auto input = data::to_input_vector(window);
  if (columns.empty()) {
    return model.predict_row(std::span<const double>(input.data(),
                                                     input.size()));
  }
  std::vector<double> row;
  row.reserve(columns.size());
  for (const std::size_t column : columns) row.push_back(input[column]);
  return model.predict_row(row);
}

}  // namespace

RetrainPlan plan_retrain(std::size_t corpus_samples, double budget_seconds,
                         double estimated_seconds,
                         double est_seconds_per_sample,
                         std::size_t min_samples) {
  RetrainPlan plan;
  plan.estimated_seconds = estimated_seconds;
  if (corpus_samples == 0) return plan;  // Nothing to train on.
  if (budget_seconds <= 0.0 || estimated_seconds <= budget_seconds) {
    plan.run = true;
    return plan;
  }
  if (est_seconds_per_sample > 0.0) {
    const auto affordable =
        static_cast<std::size_t>(budget_seconds / est_seconds_per_sample);
    if (affordable >= min_samples) {
      plan.run = true;
      plan.downscaled = true;
      plan.sample_budget = std::min(affordable, corpus_samples);
      plan.estimated_seconds =
          est_seconds_per_sample * static_cast<double>(plan.sample_budget);
      return plan;
    }
  }
  // Over budget with no per-sample rate to downscale by (or the
  // affordable set is below the floor): wait for a cheaper opportunity
  // rather than blow the budget.
  plan.skipped_budget = true;
  return plan;
}

ContinuousTrainer::Metrics::Metrics()
    : runs_ingested(obs::Registry::global().counter(
          "f2pm_learn_runs_ingested_total",
          "Completed runs accepted into the training corpus.")),
      runs_rejected(obs::Registry::global().counter(
          "f2pm_learn_runs_rejected_total",
          "Exported runs rejected as malformed.")),
      drift_verdicts(obs::Registry::global().counter(
          "f2pm_learn_drift_verdicts_total",
          "Drift verdicts fired against the live model.")),
      retrains_completed(obs::Registry::global().counter(
          "f2pm_learn_retrains_total", "Retrains by outcome.",
          "outcome=\"completed\"")),
      retrains_failed(obs::Registry::global().counter(
          "f2pm_learn_retrains_total", "Retrains by outcome.",
          "outcome=\"failed\"")),
      retrains_skipped(obs::Registry::global().counter(
          "f2pm_learn_retrains_total", "Retrains by outcome.",
          "outcome=\"skipped_budget\"")),
      publishes(obs::Registry::global().counter(
          "f2pm_learn_publishes_total",
          "Model archives published for hot swap.")),
      publish_failures(obs::Registry::global().counter(
          "f2pm_learn_publish_failures_total",
          "Archive writes/renames that failed.")),
      corpus_runs(obs::Registry::global().gauge(
          "f2pm_learn_corpus_runs", "Runs currently in the corpus.")),
      corpus_samples(obs::Registry::global().gauge(
          "f2pm_learn_corpus_samples",
          "Raw samples currently in the corpus.")),
      corpus_span_first(obs::Registry::global().gauge(
          "f2pm_learn_corpus_span_first_sequence",
          "Ingest sequence of the oldest retained run.")),
      corpus_span_last(obs::Registry::global().gauge(
          "f2pm_learn_corpus_span_last_sequence",
          "Ingest sequence of the newest retained run.")),
      live_smae(obs::Registry::global().gauge(
          "f2pm_learn_live_smae_seconds",
          "Rolling Soft-MAE of the live model over the drift horizon.")),
      candidate_smae(obs::Registry::global().gauge(
          "f2pm_learn_candidate_smae_seconds",
          "Rolling Soft-MAE of the candidate model (0 when none).")),
      baseline_smae(obs::Registry::global().gauge(
          "f2pm_learn_baseline_smae_seconds",
          "Drift baseline the live model is held to.")),
      drift_active(obs::Registry::global().gauge(
          "f2pm_learn_drift_active",
          "1 while a drift verdict is latched, 0 otherwise.")),
      published_version(obs::Registry::global().gauge(
          "f2pm_learn_published_version",
          "Store version of the last model the trainer saw go live.")),
      retrain_seconds(obs::Registry::global().histogram(
          "f2pm_learn_retrain_seconds",
          "Wall-clock time of one retrain (aggregate + fit).",
          obs::Histogram::default_latency_bounds())) {}

ContinuousTrainer::ContinuousTrainer(serve::ModelStore& store,
                                     TrainerOptions options)
    : store_(store),
      options_(std::move(options)),
      pool_(options_.pool != nullptr ? *options_.pool
                                     : parallel::ThreadPool::global()),
      corpus_(options_.corpus),
      live_rolling_(options_.drift.horizon),
      candidate_rolling_(options_.drift.horizon),
      detector_(options_.drift) {
  if (options_.archive_path.empty()) {
    throw std::invalid_argument("ContinuousTrainer: archive_path required");
  }
  if (options_.smae_fraction < 0.0) {
    throw std::invalid_argument(
        "ContinuousTrainer: smae_fraction must be >= 0");
  }
}

ContinuousTrainer::~ContinuousTrainer() { stop(); }

serve::RunSink ContinuousTrainer::sink() {
  return [this](serve::CompletedRun completed) {
    ingest(std::move(completed));
  };
}

void ContinuousTrainer::ingest(serve::CompletedRun completed) {
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    if (stopping_) return;
    pending_.push_back(std::move(completed));
    if (!process_scheduled_) {
      process_scheduled_ = true;
      schedule = true;
    }
  }
  if (schedule) submit_task([this] { process(); });
}

void ContinuousTrainer::submit_task(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    if (stopping_) return;
  }
  {
    std::lock_guard<std::mutex> lock(task_mutex_);
    ++outstanding_;
  }
  try {
    pool_.submit([this, fn = std::move(fn)] {
      try {
        fn();
      } catch (const std::exception& e) {
        F2PM_LOG(kWarn, "learn") << "task failed: " << e.what();
      }
      std::lock_guard<std::mutex> lock(task_mutex_);
      --outstanding_;
      task_cv_.notify_all();
    });
  } catch (...) {
    std::lock_guard<std::mutex> lock(task_mutex_);
    --outstanding_;
    task_cv_.notify_all();
    throw;
  }
}

void ContinuousTrainer::drain() {
  std::unique_lock<std::mutex> lock(task_mutex_);
  task_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ContinuousTrainer::stop() {
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    stopping_ = true;
    pending_.clear();
  }
  drain();
}

void ContinuousTrainer::process() {
  while (true) {
    std::vector<serve::CompletedRun> batch;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      if (pending_.empty()) {
        // The queue-empty check and the scheduled-flag clear are one
        // critical section, so a concurrent ingest either sees the flag
        // still set (this loop picks its run up) or schedules a new task.
        process_scheduled_ = false;
        return;
      }
      batch.swap(pending_);
    }
    try {
      std::lock_guard<std::mutex> lock(mutex_);
      check_store_version_locked();
      for (serve::CompletedRun& completed : batch) {
        handle_run_locked(std::move(completed));
      }
      maybe_schedule_retrain_locked();
    } catch (const std::exception& e) {
      // Never leave process_scheduled_ latched on an escaped exception —
      // that would silently stop all future ingestion.
      F2PM_LOG(kWarn, "learn") << "ingest batch failed: " << e.what();
    }
  }
}

void ContinuousTrainer::check_store_version_locked() {
  const std::uint32_t version = store_.version();
  if (version == last_seen_version_) return;
  last_seen_version_ = version;
  live_model_ = store_.current();
  ++stats_.swaps_observed;
  stats_.observed_model_version = version;
  publish_pending_ = false;
  // New live model: everything the rolling scores and the drift baseline
  // said was about the old one. Re-baseline from scratch; the candidate
  // (if any) is obsolete — it was racing the model that just won.
  live_rolling_.reset();
  detector_.reset();
  candidate_.reset();
  candidate_rolling_.reset();
  stats_.live_smae = 0.0;
  stats_.candidate_smae = 0.0;
  stats_.baseline_smae = 0.0;
  metrics_.live_smae.set(0.0);
  metrics_.candidate_smae.set(0.0);
  metrics_.baseline_smae.set(0.0);
  metrics_.drift_active.set(0.0);
  metrics_.published_version.set(static_cast<double>(version));
  F2PM_LOG(kInfo, "learn")
      << "adopted model version " << version << " ("
      << (live_model_ ? live_model_->source : std::string("none"))
      << "); rolling scores and drift baseline reset";
}

void ContinuousTrainer::handle_run_locked(serve::CompletedRun completed) {
  // Aggregating through a one-run DataHistory applies the exact contract
  // validation the corpus enforces, so a run that aggregates cleanly is
  // guaranteed to insert cleanly below.
  std::vector<data::AggregatedDatapoint> windows;
  try {
    data::DataHistory single;
    single.add_run(completed.run);
    windows = data::aggregate(single, options_.aggregation);
    // Same contract the one-run aggregation just checked, plus non-empty;
    // inside the try so a malformed export can never wedge the loop.
    corpus_.add(std::move(completed.run), std::move(completed.client_id));
  } catch (const std::exception& e) {
    ++stats_.runs_rejected;
    metrics_.runs_rejected.add(1);
    F2PM_LOG(kWarn, "learn")
        << "rejected exported run from '" << completed.client_id
        << "': " << e.what();
    return;
  }
  ++stats_.runs_ingested;
  ++runs_since_retrain_;
  metrics_.runs_ingested.add(1);
  const CorpusSpan span = corpus_.span();
  metrics_.corpus_runs.set(static_cast<double>(span.runs));
  metrics_.corpus_samples.set(static_cast<double>(span.samples));
  metrics_.corpus_span_first.set(static_cast<double>(span.first_sequence));
  metrics_.corpus_span_last.set(static_cast<double>(span.last_sequence));

  const double threshold = soft_threshold_locked();
  for (const data::AggregatedDatapoint& window : windows) {
    if (live_model_ && live_model_->regressor) {
      const double predicted = predict_window(
          *live_model_->regressor, live_model_->selected_columns, window);
      live_rolling_.observe(predicted, window.rttf);
      ++stats_.windows_scored_live;
    }
    if (candidate_) {
      const double predicted = predict_window(
          *candidate_->regressor, options_.selected_columns, window);
      candidate_rolling_.observe(predicted, window.rttf);
      ++stats_.windows_scored_candidate;
    }
  }

  if (live_model_ && live_rolling_.count() > 0) {
    const double smae = live_rolling_.value(threshold);
    stats_.live_smae = smae;
    metrics_.live_smae.set(smae);
    // One drift evaluation per ingested run, and only on a full horizon,
    // so `consecutive` counts whole runs of sustained degradation rather
    // than adjacent (heavily overlapping) window positions.
    if (live_rolling_.full() && detector_.evaluate(smae)) {
      ++stats_.drift_verdicts;
      metrics_.drift_verdicts.add(1);
      F2PM_LOG(kInfo, "learn")
          << "drift verdict: live S-MAE " << smae << "s > baseline "
          << detector_.baseline() << "s x " << options_.drift.degrade_ratio
          << " for " << options_.drift.consecutive
          << " consecutive runs; scheduling retrain";
    }
    stats_.baseline_smae = detector_.baseline();
    metrics_.baseline_smae.set(detector_.baseline());
    metrics_.drift_active.set(detector_.triggered() ? 1.0 : 0.0);
  }
  if (candidate_ && candidate_rolling_.count() > 0) {
    const double smae = candidate_rolling_.value(threshold);
    stats_.candidate_smae = smae;
    metrics_.candidate_smae.set(smae);
  }
  maybe_publish_candidate_locked();
}

void ContinuousTrainer::maybe_publish_candidate_locked() {
  if (!candidate_ || publish_pending_) return;
  if (candidate_rolling_.count() < options_.candidate_min_windows) return;
  const double threshold = soft_threshold_locked();
  const double candidate_smae = candidate_rolling_.value(threshold);
  const double live_smae = live_rolling_.value(threshold);
  if (candidate_smae < live_smae * (1.0 - options_.publish_margin)) {
    F2PM_LOG(kInfo, "learn")
        << "candidate wins shadow evaluation (S-MAE " << candidate_smae
        << "s vs live " << live_smae << "s over "
        << candidate_rolling_.count() << " windows)";
    if (publish_locked(candidate_->regressor, candidate_->trained_span,
                       "drift")) {
      candidate_.reset();
      candidate_rolling_.reset();
    }
  }
}

void ContinuousTrainer::maybe_schedule_retrain_locked() {
  if (retrain_in_flight_ || publish_pending_) return;
  const bool bootstrap = !live_model_ && !candidate_ &&
                         corpus_.num_runs() >= options_.min_corpus_runs;
  // With drift latched, retrain when there is no candidate yet — or the
  // current one has had its full evaluation window and still failed to
  // beat the live model (refresh it with the newer corpus). Each attempt
  // waits for at least one new run so a stagnant stream cannot spin.
  const bool candidate_exhausted =
      candidate_ &&
      candidate_rolling_.count() >= options_.candidate_min_windows;
  const bool drift = detector_.triggered() && runs_since_retrain_ > 0 &&
                     (!candidate_ || candidate_exhausted);
  if (!bootstrap && !drift) return;

  const RetrainPlan plan = plan_retrain(
      corpus_.num_samples(), options_.train_budget_seconds,
      estimate_full_fit_seconds_locked(), est_seconds_per_sample_,
      options_.min_train_samples);
  if (!plan.run) {
    if (plan.skipped_budget) {
      ++stats_.retrains_skipped_budget;
      metrics_.retrains_skipped.add(1);
      runs_since_retrain_ = 0;  // Re-plan once new (cheaper?) data arrives.
      F2PM_LOG(kWarn, "learn")
          << "retrain skipped: estimated " << plan.estimated_seconds
          << "s exceeds budget " << options_.train_budget_seconds << "s";
    }
    return;
  }
  CorpusSpan used;
  data::DataHistory history = corpus_.assemble(plan.sample_budget, used);
  retrain_in_flight_ = true;
  ++stats_.retrains_started;
  if (plan.downscaled) {
    ++stats_.retrains_downscaled;
    F2PM_LOG(kInfo, "learn")
        << "retrain downscaled to " << used.samples << "/"
        << corpus_.num_samples() << " samples to fit "
        << options_.train_budget_seconds << "s budget";
  }
  runs_since_retrain_ = 0;
  const bool publish_direct = !live_model_;
  submit_task([this, history = std::move(history), used, publish_direct,
               downscaled = plan.downscaled]() mutable {
    run_retrain(std::move(history), used, publish_direct, downscaled);
  });
}

void ContinuousTrainer::run_retrain(data::DataHistory history,
                                    CorpusSpan used, bool publish_direct,
                                    bool downscaled) {
  (void)downscaled;
  const Clock::time_point start = Clock::now();
  std::shared_ptr<const ml::Regressor> fitted;
  std::string error;
  try {
    const std::vector<data::AggregatedDatapoint> points =
        data::aggregate(history, options_.aggregation);
    data::Dataset dataset = data::build_dataset(points);
    if (!options_.selected_columns.empty()) {
      dataset = dataset.select_features(options_.selected_columns);
    }
    if (dataset.num_rows() == 0) {
      throw std::runtime_error("corpus aggregated to zero windows");
    }
    std::unique_ptr<ml::Regressor> model =
        ml::make_model(options_.model_name, options_.model_params);
    model->fit(dataset.x, dataset.y);
    fitted = std::move(model);
  } catch (const std::exception& e) {
    error = e.what();
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::lock_guard<std::mutex> lock(mutex_);
  retrain_in_flight_ = false;
  stats_.last_retrain_seconds = seconds;
  metrics_.retrain_seconds.observe(seconds);
  if (!fitted) {
    ++stats_.retrains_failed;
    metrics_.retrains_failed.add(1);
    F2PM_LOG(kWarn, "learn") << "retrain failed: " << error;
    return;
  }
  ++stats_.retrains_completed;
  metrics_.retrains_completed.add(1);
  if (used.samples > 0) {
    const double rate = seconds / static_cast<double>(used.samples);
    est_seconds_per_sample_ =
        est_seconds_per_sample_ <= 0.0
            ? rate
            : (1.0 - options_.est_smoothing) * est_seconds_per_sample_ +
                  options_.est_smoothing * rate;
    stats_.est_seconds_per_sample = est_seconds_per_sample_;
  }
  F2PM_LOG(kInfo, "learn")
      << "retrained " << options_.model_name << " on runs "
      << used.first_sequence << ".." << used.last_sequence << " ("
      << used.samples << " samples) in " << seconds << "s";
  if (publish_direct) {
    // Bootstrap: there is no live model to beat, so the first fit goes
    // straight out.
    publish_locked(fitted, used, "bootstrap");
    return;
  }
  candidate_ = Candidate{std::move(fitted), used};
  candidate_rolling_.reset();
  stats_.candidate_smae = 0.0;
  metrics_.candidate_smae.set(0.0);
}

bool ContinuousTrainer::publish_locked(
    const std::shared_ptr<const ml::Regressor>& model, const CorpusSpan& span,
    const std::string& trigger) {
  const std::string tmp_path = options_.archive_path + ".tmp";
  try {
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw std::runtime_error("cannot open " + tmp_path);
      }
      ml::save_model(*model, out);
      out.flush();
      if (!out) {
        throw std::runtime_error("write failed on " + tmp_path);
      }
    }
    // rename() is the atomicity guarantee the ModelStore watch relies on:
    // the watched path only ever names a complete archive.
    if (std::rename(tmp_path.c_str(), options_.archive_path.c_str()) != 0) {
      throw std::runtime_error("rename to " + options_.archive_path +
                               " failed");
    }
  } catch (const std::exception& e) {
    ++stats_.publish_failures;
    metrics_.publish_failures.add(1);
    std::remove(tmp_path.c_str());
    F2PM_LOG(kWarn, "learn") << "publish failed: " << e.what();
    return false;
  }
  publish_pending_ = true;
  ++stats_.publishes;
  metrics_.publishes.add(1);
  stats_.last_published_span = span;
  stats_.last_publish_trigger = trigger;
  F2PM_LOG(kInfo, "learn")
      << "published " << options_.model_name << " archive to "
      << options_.archive_path << " (trigger=" << trigger << ", runs "
      << span.first_sequence << ".." << span.last_sequence << ", "
      << span.samples << " samples); awaiting hot swap";
  return true;
}

double ContinuousTrainer::soft_threshold_locked() const {
  return options_.smae_fraction * corpus_.max_fail_time();
}

double ContinuousTrainer::estimate_full_fit_seconds_locked() const {
  if (est_seconds_per_sample_ > 0.0) {
    return est_seconds_per_sample_ *
           static_cast<double>(corpus_.num_samples());
  }
  // No measurement of our own yet: bootstrap from the obs fit-timer
  // history the offline pipeline (or earlier fits of this model family)
  // left behind. The mean is size-agnostic — good enough to decide
  // whether a first retrain plausibly fits the budget.
  const std::string label = "model=\"" + options_.model_name + "\"";
  for (const char* name :
       {"f2pm_ml_fit_seconds", "f2pm_ml_tree_fit_seconds"}) {
    const auto snap = obs::Registry::global().find(name, label);
    if (snap && snap->histogram.count > 0) {
      return snap->histogram.sum /
             static_cast<double>(snap->histogram.count);
    }
  }
  return 0.0;
}

TrainerStats ContinuousTrainer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TrainerStats out = stats_;
  out.corpus = corpus_.span();
  out.live_window_count = live_rolling_.count();
  out.candidate_window_count = candidate_rolling_.count();
  out.drift_active = detector_.triggered();
  out.publish_pending = publish_pending_;
  out.soft_threshold = soft_threshold_locked();
  return out;
}

}  // namespace f2pm::learn
