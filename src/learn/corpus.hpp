// The sliding training corpus of the continuous-learning loop: completed,
// crash-labeled runs exported by the serve tier, bounded by run count and
// total raw-sample count, with per-run provenance (which client produced
// it, and a monotonically increasing ingest sequence so a published model
// can record exactly which span of the stream it was trained on).
//
// Not thread-safe by itself — the ContinuousTrainer serializes access —
// so it stays trivially unit-testable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/data_history.hpp"

namespace f2pm::learn {

/// Corpus bounds. Oldest runs are evicted first when either bound is hit.
struct CorpusOptions {
  std::size_t max_runs = 64;
  std::size_t max_samples = 500'000;  ///< Raw datapoints across all runs.
};

/// One retained run with its provenance.
struct CorpusRun {
  data::Run run;
  std::string client_id;     ///< Serve session that produced the run.
  std::uint64_t sequence = 0;  ///< Ingest order, 1-based, never reused.
};

/// The ingest-sequence span a training set was assembled from.
struct CorpusSpan {
  std::uint64_t first_sequence = 0;  ///< 0 when the corpus is empty.
  std::uint64_t last_sequence = 0;
  std::size_t runs = 0;
  std::size_t samples = 0;
};

/// Bounded sliding window over the run stream.
class SlidingCorpus {
 public:
  explicit SlidingCorpus(CorpusOptions options);

  /// Appends a completed run (samples must be nondecreasing in tgen and
  /// fail_time must not precede the last sample — the same contract as
  /// data::DataHistory::add_run; throws std::invalid_argument otherwise).
  /// Evicts oldest runs until both bounds hold again. Returns the run's
  /// ingest sequence number.
  std::uint64_t add(data::Run run, std::string client_id);

  [[nodiscard]] std::size_t num_runs() const { return runs_.size(); }
  [[nodiscard]] std::size_t num_samples() const { return total_samples_; }
  [[nodiscard]] std::uint64_t runs_ingested() const { return next_sequence_ - 1; }
  [[nodiscard]] std::uint64_t runs_evicted() const { return evicted_; }

  /// Largest RTTF any retained-or-evicted run could label a window with
  /// (monotonic max of fail times, kept stable across evictions so the
  /// Soft-MAE tolerance derived from it never jumps downward mid-stream).
  [[nodiscard]] double max_fail_time() const { return max_fail_time_; }

  [[nodiscard]] const std::vector<CorpusRun>& runs() const { return runs_; }

  /// Provenance span of the current contents.
  [[nodiscard]] CorpusSpan span() const;

  /// Assembles the training history from the newest runs whose combined
  /// raw-sample count fits `sample_budget` (0 = everything). At least one
  /// run is always included when the corpus is non-empty, so a tiny budget
  /// degrades to "train on the newest run" rather than nothing. The span
  /// of what was actually included is written to `used`.
  [[nodiscard]] data::DataHistory assemble(std::size_t sample_budget,
                                           CorpusSpan& used) const;

 private:
  CorpusOptions options_;
  std::vector<CorpusRun> runs_;  ///< Oldest first.
  std::size_t total_samples_ = 0;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t evicted_ = 0;
  double max_fail_time_ = 0.0;
};

}  // namespace f2pm::learn
