#include "learn/drift.hpp"

#include <cmath>
#include <stdexcept>

namespace f2pm::learn {

RollingSmae::RollingSmae(std::size_t horizon) {
  if (horizon == 0) {
    throw std::invalid_argument("RollingSmae: horizon must be >= 1");
  }
  errors_.assign(horizon, 0.0);
}

void RollingSmae::observe(double predicted, double actual) {
  errors_[next_] = std::abs(predicted - actual);
  next_ = (next_ + 1) % errors_.size();
  if (count_ < errors_.size()) ++count_;
}

double RollingSmae::value(double soft_threshold) const {
  if (count_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < count_; ++i) {
    if (errors_[i] > soft_threshold) sum += errors_[i];
  }
  return sum / static_cast<double>(count_);
}

void RollingSmae::reset() {
  next_ = 0;
  count_ = 0;
}

DriftDetector::DriftDetector(DriftPolicy policy) : policy_(policy) {
  if (policy_.consecutive == 0) {
    throw std::invalid_argument("DriftDetector: consecutive must be >= 1");
  }
  if (policy_.degrade_ratio <= 0.0) {
    throw std::invalid_argument("DriftDetector: degrade_ratio must be > 0");
  }
}

bool DriftDetector::evaluate(double rolling_smae) {
  if (!has_baseline_) {
    // The first full-horizon evaluation after a (re)baseline seeds the
    // reference the live model is held to from now on.
    baseline_ = rolling_smae;
    has_baseline_ = true;
    return false;
  }
  // The baseline tracks the BEST steady state observed since the last
  // reset: the first evaluation after a hot swap is dominated by whatever
  // single run filled the rolling horizon and routinely overestimates;
  // holding the model to its best self keeps a lucky-high seed from
  // permanently raising the bar drift must clear. Frozen once triggered
  // (the latched verdict's reference should stay what it fired against).
  if (!triggered_ && rolling_smae < baseline_) baseline_ = rolling_smae;
  const bool degraded = rolling_smae > baseline_ * policy_.degrade_ratio &&
                        rolling_smae > policy_.min_smae_seconds;
  if (!degraded) {
    degraded_count_ = 0;
    return false;
  }
  ++degraded_count_;
  if (triggered_ || degraded_count_ < policy_.consecutive) return false;
  triggered_ = true;
  return true;
}

void DriftDetector::reset() {
  baseline_ = 0.0;
  has_baseline_ = false;
  degraded_count_ = 0;
  triggered_ = false;
}

}  // namespace f2pm::learn
