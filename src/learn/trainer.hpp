// The continuous-learning trainer daemon (ROADMAP: "Continuous-learning
// loop: drift, retrain, hot-swap").
//
// The trainer closes the loop around the serve tier:
//
//   serve run_sink ──> ingest() ──> SlidingCorpus (bounded, provenanced)
//                          │
//                          ├──> shadow scoring: every window of every
//                          │    completed run is re-scored by the live
//                          │    model (and the candidate, when one is
//                          │    installed) against the now-known RTTF
//                          │    ground truth, feeding rolling S-MAE
//                          │
//                          ├──> DriftDetector: a drift verdict fires when
//                          │    the live model degrades past the policy
//                          │    for K consecutive run evaluations
//                          │
//                          └──> retrain (budgeted, on the shared pool)
//                               ──> candidate shadow-scored out-of-sample
//                               ──> publish: archive tmp-write + rename
//                                   into the path the serve ModelStore
//                                   watches ──> hot swap, no restart
//
// Ground truth is retroactive by nature: a window's real RTTF exists only
// once its run has crashed, so shadow scoring happens at run completion,
// not at serve time. That also makes candidate evaluation honestly
// out-of-sample — a candidate is only ever scored on runs that arrived
// after it was trained.
//
// Threading: ingest() is called on serve shard loop threads and only
// queues (one mutex push) + schedules; all real work happens in
// single-flight tasks on the configured thread pool. stop() (and the
// destructor) block until every outstanding task has finished.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "data/aggregation.hpp"
#include "learn/corpus.hpp"
#include "learn/drift.hpp"
#include "ml/model.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/model_store.hpp"
#include "serve/options.hpp"
#include "util/config.hpp"

namespace f2pm::learn {

/// Outcome of budget planning for one retrain attempt.
struct RetrainPlan {
  bool run = false;           ///< Train (possibly on a reduced corpus).
  bool downscaled = false;    ///< The corpus was cut to fit the budget.
  bool skipped_budget = false;  ///< Even the minimum set would not fit.
  std::size_t sample_budget = 0;  ///< Raw-sample cap passed to assemble()
                                  ///< (0 = the whole corpus).
  double estimated_seconds = 0.0;  ///< Estimate for what will be trained.
};

/// Pure budget planner (Marzi et al.: bound model-building time so the
/// loop keeps up with the stream). `estimated_seconds` is the projected
/// cost of training on the full corpus; `est_seconds_per_sample` is the
/// per-sample rate when one is known (0 = unknown — the plan then cannot
/// downscale, only run or skip). A zero/negative `budget_seconds` means
/// unbudgeted: always train on everything.
RetrainPlan plan_retrain(std::size_t corpus_samples, double budget_seconds,
                         double estimated_seconds,
                         double est_seconds_per_sample,
                         std::size_t min_samples);

/// Trainer parameterization.
struct TrainerOptions {
  /// Registry name of the model family to retrain ("reptree", "m5p",
  /// "linear", ...), with hyperparameters under "<name>." Config keys.
  std::string model_name = "reptree";
  util::Config model_params;
  /// Lasso-selected input columns the models train and score on; empty =
  /// the full data::kInputCount layout. Must match what the serve tier
  /// was configured with.
  std::vector<std::size_t> selected_columns;

  /// Where winning models are published: written as `<archive_path>.tmp`
  /// then renamed, so the serve ModelStore watching this path only ever
  /// loads complete archives. Required.
  std::string archive_path;

  /// Window layout for shadow scoring and retraining; must match the
  /// serve tier's aggregation options.
  data::AggregationOptions aggregation;

  CorpusOptions corpus;
  DriftPolicy drift;

  /// Soft-MAE tolerance as a fraction of the largest observed fail time
  /// (the paper's 10% rule).
  double smae_fraction = 0.10;

  /// Bootstrap: with no live model yet, train and publish unconditionally
  /// once this many runs are in the corpus.
  std::size_t min_corpus_runs = 4;

  /// A candidate must shadow-score at least this many windows before it
  /// is compared against the live model.
  std::size_t candidate_min_windows = 16;
  /// Publish when candidate S-MAE < live S-MAE * (1 - publish_margin).
  double publish_margin = 0.05;

  /// Training-time budget per retrain; 0 = unbudgeted. When the estimate
  /// exceeds it, the corpus is downscaled to the newest runs that fit (or
  /// the retrain is skipped entirely — see plan_retrain).
  double train_budget_seconds = 0.0;
  /// Downscaling floor: never train on fewer raw samples than this.
  std::size_t min_train_samples = 64;
  /// EWMA weight of the newest (seconds / samples) measurement when
  /// updating the per-sample cost estimate.
  double est_smoothing = 0.5;

  /// Pool the ingest/retrain tasks run on; nullptr = the process-global
  /// pool (nested parallel fits are safe — the pool is helping-based).
  parallel::ThreadPool* pool = nullptr;
};

/// Point-in-time view of the trainer (stats(); all monotonic unless
/// noted).
struct TrainerStats {
  std::uint64_t runs_ingested = 0;
  std::uint64_t runs_rejected = 0;  ///< Malformed exports.
  CorpusSpan corpus;                ///< Current contents (not monotonic).

  std::uint64_t windows_scored_live = 0;
  std::uint64_t windows_scored_candidate = 0;
  double live_smae = 0.0;       ///< Current rolling value (not monotonic).
  double candidate_smae = 0.0;  ///< Meaningful while a candidate exists.
  std::size_t live_window_count = 0;       ///< Windows in the live ring.
  std::size_t candidate_window_count = 0;  ///< Windows in the cand. ring.
  double baseline_smae = 0.0;
  bool drift_active = false;  ///< Verdict latched, recovery pending.
  std::uint64_t drift_verdicts = 0;

  std::uint64_t retrains_started = 0;
  std::uint64_t retrains_completed = 0;
  std::uint64_t retrains_failed = 0;
  std::uint64_t retrains_skipped_budget = 0;
  std::uint64_t retrains_downscaled = 0;
  double last_retrain_seconds = 0.0;
  double est_seconds_per_sample = 0.0;  ///< 0 until the first measurement.

  std::uint64_t publishes = 0;
  std::uint64_t publish_failures = 0;
  CorpusSpan last_published_span;
  std::string last_publish_trigger;   ///< "bootstrap" / "drift".
  std::uint32_t observed_model_version = 0;  ///< Last store version seen.
  std::uint64_t swaps_observed = 0;
  bool publish_pending = false;  ///< Archive written, swap not yet seen.

  double soft_threshold = 0.0;  ///< Current S-MAE tolerance (seconds).
};

/// The trainer daemon. One instance per served model path.
class ContinuousTrainer {
 public:
  /// `store` is the serve tier's ModelStore (the trainer reads the live
  /// model from it for shadow scoring and watches its version to detect
  /// that a published archive has landed). Throws std::invalid_argument
  /// on an empty archive_path or a drift/corpus policy that cannot be
  /// constructed.
  ContinuousTrainer(serve::ModelStore& store, TrainerOptions options);
  ContinuousTrainer(const ContinuousTrainer&) = delete;
  ContinuousTrainer& operator=(const ContinuousTrainer&) = delete;
  ~ContinuousTrainer();

  /// The hook to hand to ServiceOptions::run_sink. Safe to call from any
  /// thread; cheap (queue + wake). Runs ingested after stop() are dropped.
  [[nodiscard]] serve::RunSink sink();

  /// Queues one completed run for ingestion (what sink() forwards to).
  void ingest(serve::CompletedRun completed);

  /// Blocks until every queued run has been processed and no retrain or
  /// publish task is outstanding. A swap published here may still be
  /// waiting for the serve tier's watch poll — see stats().publish_pending.
  void drain();

  /// Stops accepting work and blocks until outstanding tasks finish.
  /// Idempotent; also called by the destructor.
  void stop();

  [[nodiscard]] TrainerStats stats() const;

 private:
  struct Metrics {
    Metrics();
    obs::Counter& runs_ingested;
    obs::Counter& runs_rejected;
    obs::Counter& drift_verdicts;
    obs::Counter& retrains_completed;
    obs::Counter& retrains_failed;
    obs::Counter& retrains_skipped;
    obs::Counter& publishes;
    obs::Counter& publish_failures;
    obs::Gauge& corpus_runs;
    obs::Gauge& corpus_samples;
    obs::Gauge& corpus_span_first;
    obs::Gauge& corpus_span_last;
    obs::Gauge& live_smae;
    obs::Gauge& candidate_smae;
    obs::Gauge& baseline_smae;
    obs::Gauge& drift_active;
    obs::Gauge& published_version;
    obs::Histogram& retrain_seconds;
  };

  struct Candidate {
    std::shared_ptr<const ml::Regressor> regressor;
    CorpusSpan trained_span;
  };

  /// Wraps `fn` in outstanding-task accounting and submits it; drops the
  /// task when stopping.
  void submit_task(std::function<void()> fn);
  void process();  ///< Single-flight queue drainer (pool task).
  void handle_run_locked(serve::CompletedRun completed);
  void check_store_version_locked();
  void maybe_publish_candidate_locked();
  void maybe_schedule_retrain_locked();
  void run_retrain(data::DataHistory history, CorpusSpan used,
                   bool publish_direct, bool downscaled);
  /// Writes the archive (tmp + rename). Returns false (and counts) on
  /// failure.
  bool publish_locked(const std::shared_ptr<const ml::Regressor>& model,
                      const CorpusSpan& span, const std::string& trigger);
  [[nodiscard]] double soft_threshold_locked() const;
  [[nodiscard]] double estimate_full_fit_seconds_locked() const;

  serve::ModelStore& store_;
  const TrainerOptions options_;
  parallel::ThreadPool& pool_;
  Metrics metrics_;

  // Ingest queue (pending_mutex_): touched by shard loop threads.
  std::mutex pending_mutex_;
  std::vector<serve::CompletedRun> pending_;
  bool process_scheduled_ = false;
  bool stopping_ = false;

  // Outstanding-task accounting for stop()/drain().
  mutable std::mutex task_mutex_;
  std::condition_variable task_cv_;
  std::size_t outstanding_ = 0;

  // Learning state (mutex_): corpus, rolling scores, drift, candidate.
  mutable std::mutex mutex_;
  SlidingCorpus corpus_;
  RollingSmae live_rolling_;
  RollingSmae candidate_rolling_;
  DriftDetector detector_;
  std::shared_ptr<const serve::ScoringModel> live_model_;
  std::optional<Candidate> candidate_;
  bool retrain_in_flight_ = false;
  bool publish_pending_ = false;
  std::uint64_t runs_since_retrain_ = 0;
  double est_seconds_per_sample_ = 0.0;
  std::uint32_t last_seen_version_ = 0;
  TrainerStats stats_;
};

}  // namespace f2pm::learn
