#include "data/dataset.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace f2pm::data {

std::size_t Dataset::feature_index(const std::string& name) const {
  for (std::size_t i = 0; i < feature_names.size(); ++i) {
    if (feature_names[i] == name) return i;
  }
  throw std::out_of_range("Dataset: feature not found: " + name);
}

Dataset Dataset::select_features(
    const std::vector<std::size_t>& columns) const {
  Dataset out;
  out.x = x.select_columns(columns);
  out.y = y;
  out.run_index = run_index;
  out.window_end = window_end;
  out.feature_names.reserve(columns.size());
  for (std::size_t c : columns) {
    if (c >= feature_names.size()) {
      throw std::out_of_range("Dataset::select_features: column out of range");
    }
    out.feature_names.push_back(feature_names[c]);
  }
  return out;
}

Dataset Dataset::select_rows(const std::vector<std::size_t>& rows) const {
  Dataset out;
  out.feature_names = feature_names;
  out.x = x.select_rows(rows);
  out.y.reserve(rows.size());
  out.run_index.reserve(rows.size());
  out.window_end.reserve(rows.size());
  for (std::size_t r : rows) {
    if (r >= y.size()) {
      throw std::out_of_range("Dataset::select_rows: row out of range");
    }
    out.y.push_back(y[r]);
    out.run_index.push_back(run_index[r]);
    out.window_end.push_back(window_end[r]);
  }
  return out;
}

Dataset build_dataset(const std::vector<AggregatedDatapoint>& points,
                      bool include_censored) {
  // A censored window's rttf is "time until monitoring stopped", not a
  // time-to-failure; training on it would bias labels low.
  std::vector<std::size_t> kept;
  kept.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (include_censored || !points[i].censored) kept.push_back(i);
  }
  Dataset dataset;
  dataset.feature_names = input_feature_names();
  dataset.x = linalg::Matrix(kept.size(), kInputCount);
  dataset.y.reserve(kept.size());
  dataset.run_index.reserve(kept.size());
  dataset.window_end.reserve(kept.size());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    const AggregatedDatapoint& point = points[kept[i]];
    const auto row = to_input_vector(point);
    auto dst = dataset.x.row(i);
    std::copy(row.begin(), row.end(), dst.begin());
    dataset.y.push_back(point.rttf);
    dataset.run_index.push_back(point.run_index);
    dataset.window_end.push_back(point.window_end);
  }
  return dataset;
}

TrainValidationSplit split_dataset(const Dataset& dataset,
                                   double train_fraction, util::Rng& rng) {
  if (!(train_fraction > 0.0) || !(train_fraction < 1.0)) {
    throw std::invalid_argument("split_dataset: fraction must be in (0, 1)");
  }
  const std::size_t n = dataset.num_rows();
  const auto perm = rng.permutation(n);
  const auto train_count = static_cast<std::size_t>(
      static_cast<double>(n) * train_fraction);
  std::vector<std::size_t> train_rows(perm.begin(),
                                      perm.begin() + train_count);
  std::vector<std::size_t> validation_rows(perm.begin() + train_count,
                                           perm.end());
  // Keep rows in original (time) order within each side.
  std::sort(train_rows.begin(), train_rows.end());
  std::sort(validation_rows.begin(), validation_rows.end());
  return {dataset.select_rows(train_rows),
          dataset.select_rows(validation_rows)};
}

TrainValidationSplit split_dataset_by_run(const Dataset& dataset,
                                          double train_fraction,
                                          util::Rng& rng) {
  if (!(train_fraction > 0.0) || !(train_fraction < 1.0)) {
    throw std::invalid_argument(
        "split_dataset_by_run: fraction must be in (0, 1)");
  }
  std::set<std::size_t> run_set(dataset.run_index.begin(),
                                dataset.run_index.end());
  std::vector<std::size_t> runs(run_set.begin(), run_set.end());
  const auto perm = rng.permutation(runs.size());
  const auto train_runs_count = static_cast<std::size_t>(
      static_cast<double>(runs.size()) * train_fraction);
  std::set<std::size_t> train_runs;
  for (std::size_t i = 0; i < train_runs_count; ++i) {
    train_runs.insert(runs[perm[i]]);
  }
  std::vector<std::size_t> train_rows;
  std::vector<std::size_t> validation_rows;
  for (std::size_t i = 0; i < dataset.num_rows(); ++i) {
    if (train_runs.count(dataset.run_index[i]) != 0) {
      train_rows.push_back(i);
    } else {
      validation_rows.push_back(i);
    }
  }
  return {dataset.select_rows(train_rows),
          dataset.select_rows(validation_rows)};
}

}  // namespace f2pm::data
