// Column-wise standardization (zero mean, unit variance). The tree methods
// are scale-invariant, but SVR/LS-SVM kernels and gradient-style solvers
// need comparable feature scales; Lasso regularization is deliberately run
// on raw scales (see DESIGN.md) so the paper's λ grid is meaningful.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace f2pm::data {

/// Fitted column statistics that can transform matrices consistently.
class Standardizer {
 public:
  Standardizer() = default;

  /// Learns per-column mean and stddev. Constant columns get scale 1 so the
  /// transform maps them to 0 instead of dividing by zero.
  static Standardizer fit(const linalg::Matrix& x);

  /// Rebuilds a standardizer from serialized moments, exactly. Model
  /// deserialization must use this rather than refitting on synthetic
  /// mean ± scale rows: the refit loses clamped scales of constant columns
  /// and cancels tiny scales against large means. Throws
  /// std::invalid_argument on size mismatch or non-positive scales.
  static Standardizer from_moments(std::vector<double> means,
                                   std::vector<double> scales);

  /// (x - mean) / stddev, column-wise. Throws on column-count mismatch.
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& x) const;

  /// Inverse transform (x * stddev + mean).
  [[nodiscard]] linalg::Matrix inverse_transform(
      const linalg::Matrix& x) const;

  [[nodiscard]] const std::vector<double>& means() const { return means_; }
  [[nodiscard]] const std::vector<double>& scales() const { return scales_; }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

/// Target standardization for y (used symmetrically by SVR).
struct TargetScaler {
  double mean = 0.0;
  double scale = 1.0;

  static TargetScaler fit(const std::vector<double>& y);
  [[nodiscard]] std::vector<double> transform(
      const std::vector<double>& y) const;
  [[nodiscard]] double inverse(double value) const {
    return value * scale + mean;
  }
};

}  // namespace f2pm::data
