// ARFF (Attribute-Relation File Format) interop. The paper built its
// models in WEKA; exporting the aggregated training set as .arff lets a
// user load the exact same data into WEKA (or any ARFF consumer) and
// cross-check this library's results against the original toolchain. A
// numeric-only reader is provided for the return trip.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace f2pm::data {

/// Writes `dataset` as an ARFF document: one numeric @attribute per
/// feature column plus a final numeric "rttf" class attribute (WEKA's
/// regression convention: last attribute is the target).
void write_arff(std::ostream& out, const Dataset& dataset,
                const std::string& relation_name = "f2pm");

/// Writes an .arff file; throws std::runtime_error if unwritable.
void write_arff_file(const std::string& path, const Dataset& dataset,
                     const std::string& relation_name = "f2pm");

/// Parses a numeric-only ARFF document: @relation, numeric @attribute
/// declarations, then @data rows. The last attribute becomes y, the rest
/// become x. Comments ('%') and blank lines are ignored; nominal or
/// string attributes, sparse rows and missing values ('?') are rejected
/// with std::invalid_argument.
Dataset read_arff(std::istream& in);

/// Reads an .arff file; throws std::runtime_error if unreadable.
Dataset read_arff_file(const std::string& path);

}  // namespace f2pm::data
