// Matrix-form training data: the bridge between aggregated datapoints and
// the ML methods. A Dataset owns the design matrix X (one row per
// aggregated datapoint, columns named), the target vector y (RTTF), and
// enough provenance (run index, window end) to reproduce the paper's
// predicted-vs-real plots.
#pragma once

#include <string>
#include <vector>

#include "data/aggregation.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace f2pm::data {

/// A labeled design matrix with named columns.
struct Dataset {
  std::vector<std::string> feature_names;  ///< One per column of x.
  linalg::Matrix x;                        ///< n rows, feature_names.size() cols.
  std::vector<double> y;                   ///< RTTF labels, length n.
  std::vector<std::size_t> run_index;      ///< Provenance, length n.
  std::vector<double> window_end;          ///< Provenance, length n.

  [[nodiscard]] std::size_t num_rows() const { return x.rows(); }
  [[nodiscard]] std::size_t num_features() const { return x.cols(); }

  /// Index of a named column; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t feature_index(const std::string& name) const;

  /// Returns the dataset restricted to the given columns (order preserved).
  [[nodiscard]] Dataset select_features(
      const std::vector<std::size_t>& columns) const;

  /// Returns the dataset restricted to the given rows.
  [[nodiscard]] Dataset select_rows(
      const std::vector<std::size_t>& rows) const;
};

/// Builds the full dataset from aggregated datapoints. Right-censored
/// windows (from runs that never failed — their rttf is only a lower
/// bound) are excluded by default so they never enter training labels;
/// pass include_censored = true only for label-free uses such as feature
/// statistics or standardization corpora.
Dataset build_dataset(const std::vector<AggregatedDatapoint>& points,
                      bool include_censored = false);

/// A shuffled train/validation partition.
struct TrainValidationSplit {
  Dataset train;
  Dataset validation;
};

/// Splits rows uniformly at random; `train_fraction` in (0, 1).
TrainValidationSplit split_dataset(const Dataset& dataset,
                                   double train_fraction, util::Rng& rng);

/// Splits by run: whole runs go to either side. This is the methodologically
/// stricter split (no leakage of a run's trajectory across the boundary).
TrainValidationSplit split_dataset_by_run(const Dataset& dataset,
                                          double train_fraction,
                                          util::Rng& rng);

}  // namespace f2pm::data
