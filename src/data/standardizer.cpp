#include "data/standardizer.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/stats.hpp"

namespace f2pm::data {

Standardizer Standardizer::fit(const linalg::Matrix& x) {
  Standardizer s;
  s.means_.resize(x.cols());
  s.scales_.resize(x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const auto column = x.column(c);
    s.means_[c] = linalg::mean(column);
    const double sd = linalg::stddev(column);
    s.scales_[c] = sd > 0.0 ? sd : 1.0;
  }
  return s;
}

Standardizer Standardizer::from_moments(std::vector<double> means,
                                        std::vector<double> scales) {
  if (means.size() != scales.size()) {
    throw std::invalid_argument(
        "Standardizer::from_moments: means/scales size mismatch");
  }
  for (double scale : scales) {
    if (!(scale > 0.0)) {
      throw std::invalid_argument(
          "Standardizer::from_moments: scales must be > 0");
    }
  }
  Standardizer s;
  s.means_ = std::move(means);
  s.scales_ = std::move(scales);
  return s;
}

linalg::Matrix Standardizer::transform(const linalg::Matrix& x) const {
  if (x.cols() != means_.size()) {
    throw std::invalid_argument("Standardizer::transform: column mismatch");
  }
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - means_[c]) / scales_[c];
    }
  }
  return out;
}

linalg::Matrix Standardizer::inverse_transform(const linalg::Matrix& x) const {
  if (x.cols() != means_.size()) {
    throw std::invalid_argument(
        "Standardizer::inverse_transform: column mismatch");
  }
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = x(r, c) * scales_[c] + means_[c];
    }
  }
  return out;
}

TargetScaler TargetScaler::fit(const std::vector<double>& y) {
  TargetScaler scaler;
  scaler.mean = linalg::mean(y);
  const double sd = linalg::stddev(y);
  scaler.scale = sd > 0.0 ? sd : 1.0;
  return scaler;
}

std::vector<double> TargetScaler::transform(
    const std::vector<double>& y) const {
  std::vector<double> out;
  out.reserve(y.size());
  for (double v : y) out.push_back((v - mean) / scale);
  return out;
}

}  // namespace f2pm::data
