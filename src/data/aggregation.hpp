// Datapoint aggregation and added metrics (paper §III-B).
//
// Raw datapoints are bucketed into fixed-width time windows per run; each
// window becomes one aggregated datapoint whose feature values are window
// means. Two kinds of derived metrics are added:
//   * per-feature slopes, Eq. (1): (x_end - x_start) / n over the window,
//     a cheap derivative approximation that captures accelerating resource
//     exhaustion near the crash point;
//   * the inter-generation time between consecutive datapoints (and its
//     slope), which grows as the monitored system becomes overloaded and
//     correlates with the client-visible response time (Fig. 3).
// Finally each aggregated datapoint is labeled with its RTTF using the
// run's fail event.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "data/data_history.hpp"
#include "data/datapoint.hpp"

namespace f2pm::data {

/// One aggregated, labeled datapoint (a model-training row).
struct AggregatedDatapoint {
  std::size_t run_index = 0;   ///< Which run the window belongs to.
  double window_start = 0.0;   ///< Window [start, end) in run-elapsed time.
  double window_end = 0.0;
  std::size_t count = 0;       ///< Raw datapoints aggregated in the window.

  std::array<double, kFeatureCount> means{};   ///< Window means per feature.
  std::array<double, kFeatureCount> slopes{};  ///< Eq. (1) per feature.
  double intergen_mean = 0.0;   ///< Mean inter-generation time (seconds).
  double intergen_slope = 0.0;  ///< Eq. (1) applied to inter-generation time.

  double rttf = 0.0;  ///< Remaining time to failure at window end (seconds).

  /// True when the window comes from a run that never failed: `rttf` is
  /// then a right-censored lower bound ("time until monitoring stopped"),
  /// not an exact time-to-failure. Censored windows keep their feature
  /// statistics (means, slopes, intergen) for display and standardization,
  /// but build_dataset() excludes them from training labels by default.
  bool censored = false;
};

/// Aggregation parameters.
struct AggregationOptions {
  /// Window width in seconds. Must be > 0.
  double window_seconds = 30.0;
  /// Windows with fewer raw datapoints than this are dropped (a window with
  /// a single sample has no meaningful slope).
  std::size_t min_samples_per_window = 2;
  /// When false, runs that never met the failure condition are skipped.
  /// When true their windows are emitted with `censored = true`: the rttf
  /// of such a window is only a lower bound (the run was still alive when
  /// monitoring stopped), so it is excluded from training labels unless a
  /// caller explicitly opts in (see build_dataset).
  bool include_unfailed_runs = false;
};

/// Aggregates a full history. Throws std::invalid_argument on bad options.
std::vector<AggregatedDatapoint> aggregate(const DataHistory& history,
                                           const AggregationOptions& options);

/// Number of model-input columns derived from an aggregated datapoint:
/// kFeatureCount means + kFeatureCount slopes + intergen mean + slope.
inline constexpr std::size_t kInputCount = 2 * kFeatureCount + 2;

/// Names of the model-input columns, index-aligned with to_input_vector().
/// Slope columns are named "<feature>_slope", matching the paper's Table I.
std::vector<std::string> input_feature_names();

/// Flattens an aggregated datapoint into the model-input layout.
std::array<double, kInputCount> to_input_vector(
    const AggregatedDatapoint& point);

/// The shared per-window math of the offline (aggregate) and streaming
/// (core::OnlinePredictor) paths: fills `point`'s means, Eq. (1) slopes
/// and inter-generation metrics (plus `count`) from `count >= 1`
/// contiguous samples. Means and slopes go through the pinned-order
/// vectorized kernel in linalg/window_stats.hpp; because both paths call
/// this one function, their per-window model inputs are bit-identical
/// (tests/test_parity.cpp). `boundary_tgen`, when non-null, is the time
/// of the last sample before this window — its gap into the window
/// counts as the first inter-generation gap, exactly as a single
/// contiguous trace would produce. window_start/window_end/rttf/censored
/// are the caller's business.
void compute_window_features(const RawDatapoint* samples, std::size_t count,
                             const double* boundary_tgen,
                             AggregatedDatapoint& point);

}  // namespace f2pm::data
