// The system-feature schema of F2PM (paper §III-A).
//
// A raw datapoint is one sample of the 14 system-level features listed in
// the paper, timestamped with Tgen (elapsed time since the monitored system
// started). The schema is fixed here because the whole pipeline — the
// simulator's monitor, the TCP wire protocol, aggregation and the model
// input layout — agrees on it; adding a feature means extending kFeatureCount
// and the name table, everything else adapts.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace f2pm::data {

/// Index of each monitored system feature (paper §III-A, minus Tgen which
/// is carried separately as the timestamp).
enum class FeatureId : std::size_t {
  kNumThreads = 0,  ///< nth: active threads in the system
  kMemUsed,         ///< Mused: memory used by applications (KiB)
  kMemFree,         ///< Mfree: memory freely available (KiB)
  kMemShared,       ///< Mshared: shared buffers (KiB)
  kMemBuffers,      ///< Mbuff: OS data buffers (KiB)
  kMemCached,       ///< Mcached: disk cache (KiB)
  kSwapUsed,        ///< SWused: swap space in use (KiB)
  kSwapFree,        ///< SWfree: free swap space (KiB)
  kCpuUser,         ///< CPUus: %CPU in userspace
  kCpuNice,         ///< CPUni: %CPU in niced processes
  kCpuSystem,       ///< CPUsys: %CPU in kernel mode
  kCpuIoWait,       ///< CPUiow: %CPU waiting on I/O
  kCpuSteal,        ///< CPUst: %CPU stolen by the hypervisor
  kCpuIdle,         ///< CPUid: %CPU idle
};

/// Number of monitored system features.
inline constexpr std::size_t kFeatureCount = 14;

/// Canonical short name of a feature ("mem_used", "cpu_iowait", ...).
/// These names match the paper's Table I vocabulary.
std::string_view feature_name(FeatureId id) noexcept;

/// Reverse lookup; throws std::invalid_argument for unknown names.
FeatureId feature_from_name(std::string_view name);

/// All feature names in index order.
std::vector<std::string> all_feature_names();

/// One raw monitoring sample.
struct RawDatapoint {
  /// Elapsed seconds since the monitored system (re)started.
  double tgen = 0.0;
  /// Feature values indexed by FeatureId.
  std::array<double, kFeatureCount> values{};

  double& operator[](FeatureId id) noexcept {
    return values[static_cast<std::size_t>(id)];
  }
  double operator[](FeatureId id) const noexcept {
    return values[static_cast<std::size_t>(id)];
  }

  friend bool operator==(const RawDatapoint&, const RawDatapoint&) = default;
};

}  // namespace f2pm::data
