// The data history produced by the initial system-monitoring phase
// (paper §III-A): a sequence of runs, each a stream of raw datapoints
// terminated by a fail event, after which the system is restarted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "data/datapoint.hpp"

namespace f2pm::data {

/// One run of the monitored system: samples from (re)start to failure.
struct Run {
  std::vector<RawDatapoint> samples;
  /// Elapsed time (seconds since this run's start) at which the failure
  /// condition was met. Runs that never failed (e.g. the campaign was
  /// stopped) have failed == false and fail_time == last sample time; for
  /// them fail_time is a right-censored observation bound, so windows
  /// aggregated from such runs carry censored rttf labels (see
  /// data::AggregatedDatapoint::censored) and are excluded from training
  /// by default.
  double fail_time = 0.0;
  bool failed = false;
};

/// The full multi-run monitoring history.
class DataHistory {
 public:
  DataHistory() = default;

  /// Appends a completed run. Throws std::invalid_argument if samples are
  /// not in nondecreasing tgen order or the fail time precedes the last
  /// sample.
  void add_run(Run run);

  [[nodiscard]] const std::vector<Run>& runs() const { return runs_; }
  [[nodiscard]] std::size_t num_runs() const { return runs_.size(); }

  /// Total number of raw datapoints across runs.
  [[nodiscard]] std::size_t num_samples() const;

  /// Number of runs that ended in an actual failure.
  [[nodiscard]] std::size_t num_failures() const;

  /// Mean time-to-failure across failed runs; 0 when none failed.
  [[nodiscard]] double mean_time_to_failure() const;

  /// Serializes to a CSV stream: columns run, tgen, <features...>, plus one
  /// trailing "fail" row marker column (1 on the final row of failed runs).
  void save_csv(std::ostream& out) const;

  /// Parses a history written by save_csv. Throws on malformed input.
  static DataHistory load_csv(std::istream& in);

  /// Binary round trip (faster than CSV for large campaigns).
  void save_binary(std::ostream& out) const;
  static DataHistory load_binary(std::istream& in);

 private:
  std::vector<Run> runs_;
};

}  // namespace f2pm::data
