#include "data/aggregation.hpp"

#include <cmath>
#include <stdexcept>

namespace f2pm::data {

namespace {

/// Aggregates the samples of one run, appending to `out`.
void aggregate_run(const Run& run, std::size_t run_index,
                   const AggregationOptions& options,
                   std::vector<AggregatedDatapoint>& out) {
  const double width = options.window_seconds;
  std::size_t begin = 0;
  while (begin < run.samples.size()) {
    // Same window-id idiom as OnlinePredictor::observe, so the offline and
    // streaming paths bucket identically (see tests/test_parity.cpp).
    const double window_start =
        std::floor(run.samples[begin].tgen / width) * width;
    const double window_end = window_start + width;
    std::size_t end = begin;
    while (end < run.samples.size() && run.samples[end].tgen < window_end) {
      ++end;
    }
    const std::size_t count = end - begin;
    // Keep only windows the run outlived (fail_time at or past window_end):
    // this drops the trailing partial window, whose statistics would mix the
    // near-crash regime with missing data (paper Fig. 2 keeps only
    // datapoints of complete windows), and is the single gate — a window
    // before the last always satisfies it because samples past window_end
    // exist and fail_time is at or after the last sample.
    if (count >= options.min_samples_per_window &&
        run.fail_time >= window_end) {
      AggregatedDatapoint point;
      point.run_index = run_index;
      point.window_start = window_start;
      point.window_end = window_end;
      point.count = count;
      const RawDatapoint& first = run.samples[begin];
      const RawDatapoint& last = run.samples[end - 1];
      for (std::size_t f = 0; f < kFeatureCount; ++f) {
        double sum = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          sum += run.samples[i].values[f];
        }
        point.means[f] = sum / static_cast<double>(count);
        // Eq. (1): slope_j = (x_end_j - x_start_j) / n.
        point.slopes[f] =
            (last.values[f] - first.values[f]) / static_cast<double>(count);
      }
      // Inter-generation times between consecutive samples in the window;
      // the gap to the previous window's last sample is included so a
      // single-gap window still gets a value.
      double gap_sum = 0.0;
      std::size_t gap_count = 0;
      double first_gap = 0.0;
      double last_gap = 0.0;
      const std::size_t gap_begin = begin == 0 ? begin + 1 : begin;
      for (std::size_t i = gap_begin; i < end; ++i) {
        const double gap = run.samples[i].tgen - run.samples[i - 1].tgen;
        if (gap_count == 0) first_gap = gap;
        last_gap = gap;
        gap_sum += gap;
        ++gap_count;
      }
      if (gap_count > 0) {
        point.intergen_mean = gap_sum / static_cast<double>(gap_count);
        point.intergen_slope =
            (last_gap - first_gap) / static_cast<double>(gap_count);
      }
      // For unfailed runs fail_time is the last sample time, so this rttf
      // is right-censored: the run survived at least this long. The flag
      // keeps such windows out of training labels (see build_dataset).
      point.rttf = run.fail_time - point.window_end;
      point.censored = !run.failed;
      out.push_back(point);
    }
    begin = end;
  }
}

}  // namespace

std::vector<AggregatedDatapoint> aggregate(const DataHistory& history,
                                           const AggregationOptions& options) {
  if (!(options.window_seconds > 0.0)) {
    throw std::invalid_argument("aggregate: window_seconds must be > 0");
  }
  std::vector<AggregatedDatapoint> out;
  const auto& runs = history.runs();
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].failed && !options.include_unfailed_runs) continue;
    aggregate_run(runs[r], r, options, out);
  }
  return out;
}

std::vector<std::string> input_feature_names() {
  std::vector<std::string> names = all_feature_names();
  for (const auto& base : all_feature_names()) {
    names.push_back(base + "_slope");
  }
  names.emplace_back("intergen_time");
  names.emplace_back("intergen_time_slope");
  return names;
}

std::array<double, kInputCount> to_input_vector(
    const AggregatedDatapoint& point) {
  std::array<double, kInputCount> row{};
  for (std::size_t f = 0; f < kFeatureCount; ++f) {
    row[f] = point.means[f];
    row[kFeatureCount + f] = point.slopes[f];
  }
  row[2 * kFeatureCount] = point.intergen_mean;
  row[2 * kFeatureCount + 1] = point.intergen_slope;
  return row;
}

}  // namespace f2pm::data
