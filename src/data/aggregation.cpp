#include "data/aggregation.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "linalg/window_stats.hpp"

namespace f2pm::data {

// The window-statistics kernel reads the samples of a window as one
// strided row-major matrix straight out of the RawDatapoint array: row r,
// column c is samples[r].values[c]. That only works while a RawDatapoint
// is exactly [tgen][values[0..kFeatureCount)] with no padding.
static_assert(sizeof(RawDatapoint) == (1 + kFeatureCount) * sizeof(double),
              "RawDatapoint must stay a padding-free array of doubles for "
              "the strided window-statistics kernel");
static_assert(offsetof(RawDatapoint, values) == sizeof(double),
              "RawDatapoint::values must directly follow tgen");

void compute_window_features(const RawDatapoint* samples, std::size_t count,
                             const double* boundary_tgen,
                             AggregatedDatapoint& point) {
  point.count = count;
  // One row-major sweep for all means and Eq. (1) slopes. The divisor is
  // the same double(count) the scalar loops used, so every quotient is
  // bit-identical to the legacy per-feature form.
  linalg::window_mean_slope(samples[0].values.data(), count,
                            sizeof(RawDatapoint) / sizeof(double),
                            kFeatureCount, static_cast<double>(count),
                            point.means.data(), point.slopes.data());
  // Inter-generation times between consecutive samples; the boundary gap
  // into the window (when known) counts first, so a single-gap window
  // still gets a value. Accumulation order: boundary gap, then internal
  // gaps in sample order — the order both legacy paths used.
  double gap_sum = 0.0;
  std::size_t gap_count = 0;
  double first_gap = 0.0;
  double last_gap = 0.0;
  if (boundary_tgen != nullptr) {
    first_gap = samples[0].tgen - *boundary_tgen;
    last_gap = first_gap;
    gap_sum += first_gap;  // `0.0 + gap`, exactly as the running sum did.
    gap_count = 1;
  }
  for (std::size_t i = 1; i < count; ++i) {
    const double gap = samples[i].tgen - samples[i - 1].tgen;
    if (gap_count == 0) first_gap = gap;
    last_gap = gap;
    gap_sum += gap;
    ++gap_count;
  }
  if (gap_count > 0) {
    point.intergen_mean = gap_sum / static_cast<double>(gap_count);
    point.intergen_slope =
        (last_gap - first_gap) / static_cast<double>(gap_count);
  } else {
    point.intergen_mean = 0.0;
    point.intergen_slope = 0.0;
  }
}

namespace {

/// Aggregates the samples of one run, appending to `out`.
void aggregate_run(const Run& run, std::size_t run_index,
                   const AggregationOptions& options,
                   std::vector<AggregatedDatapoint>& out) {
  const double width = options.window_seconds;
  std::size_t begin = 0;
  while (begin < run.samples.size()) {
    // Same window-id idiom as OnlinePredictor::observe, so the offline and
    // streaming paths bucket identically (see tests/test_parity.cpp).
    const double window_start =
        std::floor(run.samples[begin].tgen / width) * width;
    const double window_end = window_start + width;
    std::size_t end = begin;
    while (end < run.samples.size() && run.samples[end].tgen < window_end) {
      ++end;
    }
    const std::size_t count = end - begin;
    // Keep only windows the run outlived (fail_time at or past window_end):
    // this drops the trailing partial window, whose statistics would mix the
    // near-crash regime with missing data (paper Fig. 2 keeps only
    // datapoints of complete windows), and is the single gate — a window
    // before the last always satisfies it because samples past window_end
    // exist and fail_time is at or after the last sample.
    if (count >= options.min_samples_per_window &&
        run.fail_time >= window_end) {
      AggregatedDatapoint point;
      point.run_index = run_index;
      point.window_start = window_start;
      point.window_end = window_end;
      // Means, Eq. (1) slopes and inter-generation metrics all come from
      // the shared vectorized helper; the gap to the previous window's
      // last sample is the boundary gap.
      const double* boundary =
          begin > 0 ? &run.samples[begin - 1].tgen : nullptr;
      compute_window_features(run.samples.data() + begin, count, boundary,
                              point);
      // For unfailed runs fail_time is the last sample time, so this rttf
      // is right-censored: the run survived at least this long. The flag
      // keeps such windows out of training labels (see build_dataset).
      point.rttf = run.fail_time - point.window_end;
      point.censored = !run.failed;
      out.push_back(point);
    }
    begin = end;
  }
}

}  // namespace

std::vector<AggregatedDatapoint> aggregate(const DataHistory& history,
                                           const AggregationOptions& options) {
  if (!(options.window_seconds > 0.0)) {
    throw std::invalid_argument("aggregate: window_seconds must be > 0");
  }
  std::vector<AggregatedDatapoint> out;
  const auto& runs = history.runs();
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].failed && !options.include_unfailed_runs) continue;
    aggregate_run(runs[r], r, options, out);
  }
  return out;
}

std::vector<std::string> input_feature_names() {
  std::vector<std::string> names = all_feature_names();
  for (const auto& base : all_feature_names()) {
    names.push_back(base + "_slope");
  }
  names.emplace_back("intergen_time");
  names.emplace_back("intergen_time_slope");
  return names;
}

std::array<double, kInputCount> to_input_vector(
    const AggregatedDatapoint& point) {
  std::array<double, kInputCount> row{};
  for (std::size_t f = 0; f < kFeatureCount; ++f) {
    row[f] = point.means[f];
    row[kFeatureCount + f] = point.slopes[f];
  }
  row[2 * kFeatureCount] = point.intergen_mean;
  row[2 * kFeatureCount + 1] = point.intergen_slope;
  return row;
}

}  // namespace f2pm::data
