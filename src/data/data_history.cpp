#include "data/data_history.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/serialization.hpp"

namespace f2pm::data {

void DataHistory::add_run(Run run) {
  for (std::size_t i = 1; i < run.samples.size(); ++i) {
    if (run.samples[i].tgen < run.samples[i - 1].tgen) {
      throw std::invalid_argument("DataHistory: samples out of time order");
    }
  }
  if (!run.samples.empty() && run.fail_time < run.samples.back().tgen) {
    throw std::invalid_argument(
        "DataHistory: fail time precedes the last sample");
  }
  runs_.push_back(std::move(run));
}

std::size_t DataHistory::num_samples() const {
  std::size_t count = 0;
  for (const auto& run : runs_) count += run.samples.size();
  return count;
}

std::size_t DataHistory::num_failures() const {
  std::size_t count = 0;
  for (const auto& run : runs_) count += run.failed ? 1 : 0;
  return count;
}

double DataHistory::mean_time_to_failure() const {
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& run : runs_) {
    if (run.failed) {
      total += run.fail_time;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

void DataHistory::save_csv(std::ostream& out) const {
  util::CsvTable table;
  table.header = {"run", "tgen"};
  for (const auto& name : all_feature_names()) table.header.push_back(name);
  table.header.emplace_back("fail_time");
  table.header.emplace_back("failed");
  for (std::size_t r = 0; r < runs_.size(); ++r) {
    const Run& run = runs_[r];
    for (const auto& sample : run.samples) {
      std::vector<double> row;
      row.reserve(table.header.size());
      row.push_back(static_cast<double>(r));
      row.push_back(sample.tgen);
      for (double v : sample.values) row.push_back(v);
      row.push_back(run.fail_time);
      row.push_back(run.failed ? 1.0 : 0.0);
      table.rows.push_back(std::move(row));
    }
  }
  util::write_csv(out, table);
}

DataHistory DataHistory::load_csv(std::istream& in) {
  const util::CsvTable table = util::read_csv(in);
  const std::size_t expected_cols = 2 + kFeatureCount + 2;
  if (table.num_cols() != expected_cols) {
    throw std::invalid_argument("DataHistory CSV: unexpected column count");
  }
  DataHistory history;
  Run current;
  double current_run_id = 0.0;
  bool have_run = false;
  auto flush = [&]() {
    if (have_run) history.add_run(std::move(current));
    current = Run{};
  };
  for (const auto& row : table.rows) {
    const double run_id = row[0];
    if (!have_run || run_id != current_run_id) {
      flush();
      current_run_id = run_id;
      have_run = true;
    }
    RawDatapoint sample;
    sample.tgen = row[1];
    for (std::size_t f = 0; f < kFeatureCount; ++f) {
      sample.values[f] = row[2 + f];
    }
    current.fail_time = row[2 + kFeatureCount];
    current.failed = row[3 + kFeatureCount] != 0.0;
    current.samples.push_back(sample);
  }
  flush();
  return history;
}

void DataHistory::save_binary(std::ostream& out) const {
  util::BinaryWriter writer(out);
  writer.write_u64(runs_.size());
  for (const auto& run : runs_) {
    writer.write_double(run.fail_time);
    writer.write_bool(run.failed);
    writer.write_u64(run.samples.size());
    for (const auto& sample : run.samples) {
      writer.write_double(sample.tgen);
      for (double v : sample.values) writer.write_double(v);
    }
  }
}

DataHistory DataHistory::load_binary(std::istream& in) {
  util::BinaryReader reader(in);
  DataHistory history;
  const std::uint64_t num_runs = reader.read_u64();
  for (std::uint64_t r = 0; r < num_runs; ++r) {
    Run run;
    run.fail_time = reader.read_double();
    run.failed = reader.read_bool();
    const std::uint64_t num_samples = reader.read_u64();
    run.samples.reserve(num_samples);
    for (std::uint64_t s = 0; s < num_samples; ++s) {
      RawDatapoint sample;
      sample.tgen = reader.read_double();
      for (double& v : sample.values) v = reader.read_double();
      run.samples.push_back(sample);
    }
    history.add_run(std::move(run));
  }
  return history;
}

}  // namespace f2pm::data
