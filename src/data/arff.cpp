#include "data/arff.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace f2pm::data {

void write_arff(std::ostream& out, const Dataset& dataset,
                const std::string& relation_name) {
  out << "% exported by F2PM\n";
  out << "@relation " << relation_name << "\n\n";
  for (const auto& name : dataset.feature_names) {
    out << "@attribute " << name << " numeric\n";
  }
  out << "@attribute rttf numeric\n\n@data\n";
  for (std::size_t r = 0; r < dataset.num_rows(); ++r) {
    const auto row = dataset.x.row(r);
    for (double v : row) out << util::format_double(v, 9) << ',';
    out << util::format_double(dataset.y[r], 9) << '\n';
  }
}

void write_arff_file(const std::string& path, const Dataset& dataset,
                     const std::string& relation_name) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write arff file: " + path);
  write_arff(out, dataset, relation_name);
}

Dataset read_arff(std::istream& in) {
  std::vector<std::string> attributes;
  std::vector<std::vector<double>> rows;
  bool in_data = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '%') continue;
    if (!in_data) {
      const std::string lower = util::to_lower(trimmed);
      if (util::starts_with(lower, "@relation")) continue;
      if (util::starts_with(lower, "@attribute")) {
        // "@attribute <name> <type>"; only numeric/real are accepted.
        std::istringstream fields{std::string(trimmed)};
        std::string keyword;
        std::string name;
        std::string type;
        fields >> keyword >> name >> type;
        const std::string type_lower = util::to_lower(type);
        if (type_lower != "numeric" && type_lower != "real") {
          throw std::invalid_argument(
              "arff: non-numeric attribute '" + name + "' at line " +
              std::to_string(line_no));
        }
        attributes.push_back(name);
        continue;
      }
      if (util::starts_with(lower, "@data")) {
        if (attributes.size() < 2) {
          throw std::invalid_argument(
              "arff: need at least one feature and one target attribute");
        }
        in_data = true;
        continue;
      }
      throw std::invalid_argument("arff: unexpected header line " +
                                  std::to_string(line_no));
    }
    if (trimmed.front() == '{') {
      throw std::invalid_argument("arff: sparse rows are not supported");
    }
    const auto fields = util::split(trimmed, ',');
    if (fields.size() != attributes.size()) {
      throw std::invalid_argument(
          "arff: row " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " values, expected " +
          std::to_string(attributes.size()));
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const auto& field : fields) {
      if (util::trim(field) == "?") {
        throw std::invalid_argument(
            "arff: missing values ('?') are not supported");
      }
      row.push_back(util::parse_double(field));
    }
    rows.push_back(std::move(row));
  }
  if (!in_data) throw std::invalid_argument("arff: no @data section");

  Dataset dataset;
  const std::size_t feature_count = attributes.size() - 1;
  dataset.feature_names.assign(attributes.begin(),
                               attributes.begin() + feature_count);
  dataset.x = linalg::Matrix(rows.size(), feature_count);
  dataset.y.reserve(rows.size());
  dataset.run_index.assign(rows.size(), 0);
  dataset.window_end.assign(rows.size(), 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < feature_count; ++c) {
      dataset.x(r, c) = rows[r][c];
    }
    dataset.y.push_back(rows[r][feature_count]);
  }
  return dataset;
}

Dataset read_arff_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open arff file: " + path);
  return read_arff(in);
}

}  // namespace f2pm::data
