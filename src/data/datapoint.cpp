#include "data/datapoint.hpp"

#include <stdexcept>

namespace f2pm::data {

namespace {

constexpr std::array<std::string_view, kFeatureCount> kNames = {
    "n_threads",  "mem_used",  "mem_free",   "mem_shared", "mem_buffers",
    "mem_cached", "swap_used", "swap_free",  "cpu_user",   "cpu_nice",
    "cpu_system", "cpu_iowait", "cpu_steal", "cpu_idle",
};

}  // namespace

std::string_view feature_name(FeatureId id) noexcept {
  return kNames[static_cast<std::size_t>(id)];
}

FeatureId feature_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    if (kNames[i] == name) return static_cast<FeatureId>(i);
  }
  throw std::invalid_argument("unknown feature name: " + std::string(name));
}

std::vector<std::string> all_feature_names() {
  std::vector<std::string> names;
  names.reserve(kFeatureCount);
  for (const auto& name : kNames) names.emplace_back(name);
  return names;
}

}  // namespace f2pm::data
