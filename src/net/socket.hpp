// Thin RAII wrappers over POSIX TCP sockets, used by the Feature Monitor
// Client/Server pair (paper §III-E: "connected ... using standard TCP/IP
// sockets", deployable on the same machine or across machines).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace f2pm::net {

/// Owning socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  ~Socket();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Closes the descriptor (idempotent).
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Connected TCP byte stream.
class TcpStream {
 public:
  explicit TcpStream(Socket socket) : socket_(std::move(socket)) {}

  /// Connects to host:port (IPv4 dotted or "localhost"); throws
  /// std::runtime_error on failure.
  static TcpStream connect(const std::string& host, std::uint16_t port);

  /// Writes the whole buffer; throws std::runtime_error on error.
  void send_all(const void* data, std::size_t size);

  /// Reads exactly `size` bytes. Returns false on clean EOF before any
  /// byte; throws std::runtime_error on mid-message EOF or error.
  bool recv_exact(void* data, std::size_t size);

  [[nodiscard]] bool valid() const noexcept { return socket_.valid(); }
  void close() noexcept { socket_.close(); }

 private:
  Socket socket_;
};

/// Listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens on loopback:port (port 0 picks an ephemeral port);
  /// throws std::runtime_error on failure.
  explicit TcpListener(std::uint16_t port);

  /// The actually bound port (useful with port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Blocks until a client connects; returns nullopt if the listener was
  /// shut down concurrently.
  std::optional<TcpStream> accept();

  /// Unblocks a pending accept() and closes the listening socket.
  void shutdown() noexcept;

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

}  // namespace f2pm::net
