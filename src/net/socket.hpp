// Thin RAII wrappers over POSIX TCP sockets, used by the Feature Monitor
// Client/Server pair (paper §III-E: "connected ... using standard TCP/IP
// sockets", deployable on the same machine or across machines).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace f2pm::net {

/// Owning socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  ~Socket();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Closes the descriptor (idempotent).
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Result of one non-blocking read/write attempt.
enum class IoResult {
  kOk,          ///< At least one byte was transferred.
  kWouldBlock,  ///< The socket is not ready (EAGAIN/EWOULDBLOCK).
  kEof,         ///< The peer closed the connection (reads only).
};

/// Connected TCP byte stream.
class TcpStream {
 public:
  explicit TcpStream(Socket socket) : socket_(std::move(socket)) {}

  /// Connects to host:port (IPv4 dotted or "localhost"); throws
  /// std::runtime_error on failure.
  static TcpStream connect(const std::string& host, std::uint16_t port);

  /// Writes the whole buffer; throws std::runtime_error on error.
  void send_all(const void* data, std::size_t size);

  /// Reads exactly `size` bytes. Returns false on clean EOF before any
  /// byte; throws std::runtime_error on mid-message EOF or error.
  bool recv_exact(void* data, std::size_t size);

  /// One read attempt: up to `size` bytes into `data`; `transferred` gets
  /// the byte count on kOk. Never blocks on a non-blocking socket (and on a
  /// blocking one, kWouldBlock cannot occur). Throws on hard errors.
  IoResult recv_some(void* data, std::size_t size, std::size_t& transferred);

  /// One write attempt: up to `size` bytes from `data`. Partial writes are
  /// normal; `transferred` gets the byte count on kOk. Throws on hard
  /// errors (a reset peer surfaces here as an exception).
  IoResult send_some(const void* data, std::size_t size,
                     std::size_t& transferred);

  /// Switches O_NONBLOCK on or off; throws std::runtime_error on failure.
  void set_nonblocking(bool enabled);

  /// Half-close: shuts down the write side (the peer sees EOF) while
  /// reads stay open, so replies in flight can still be drained.
  void shutdown_write() noexcept;

  /// Hard-closes the connection so the peer sees a reset (RST, via
  /// SO_LINGER 0) rather than a clean FIN. Used by the fault-injection
  /// layer to simulate a crashed peer; idempotent.
  void abort_connection() noexcept;

  [[nodiscard]] bool valid() const noexcept { return socket_.valid(); }
  [[nodiscard]] int fd() const noexcept { return socket_.fd(); }
  void close() noexcept { socket_.close(); }

 private:
  Socket socket_;
};

/// Listening TCP socket bound to 127.0.0.1. SO_REUSEADDR is always set so
/// start/stop cycles in tests never hit "address already in use".
class TcpListener {
 public:
  struct Options {
    int backlog = 128;
    /// Sets SO_REUSEPORT before bind so several listeners (one per reactor
    /// shard) can share one port and let the kernel spread accepts across
    /// them. Every listener on the port must set it, including the first.
    bool reuse_port = false;
  };

  /// Binds and listens on loopback:port (port 0 picks an ephemeral port)
  /// with the given accept backlog; throws std::runtime_error on failure.
  explicit TcpListener(std::uint16_t port, int backlog = 128);

  /// Same, with the full option set (reuse-port sharding).
  TcpListener(std::uint16_t port, const Options& options);

  /// The actually bound port (useful with port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// The listening descriptor, for poll/epoll readiness loops.
  [[nodiscard]] int fd() const noexcept { return socket_.fd(); }

  /// Blocks until a client connects; returns nullopt if the listener was
  /// shut down concurrently.
  std::optional<TcpStream> accept();

  /// Non-blocking accept: nullopt when no connection is pending (requires
  /// set_nonblocking(true)) or after shutdown().
  std::optional<TcpStream> try_accept();

  /// Switches O_NONBLOCK on the listening socket.
  void set_nonblocking(bool enabled);

  /// Unblocks a pending accept() and closes the listening socket.
  void shutdown() noexcept;

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

}  // namespace f2pm::net
