#include "net/fmc.hpp"

namespace f2pm::net {

FeatureMonitorClient::FeatureMonitorClient(const std::string& host,
                                           std::uint16_t port)
    : stream_(TcpStream::connect(host, port)) {}

void FeatureMonitorClient::send(const data::RawDatapoint& datapoint) {
  send_datapoint(stream_, datapoint);
  ++sent_;
}

void FeatureMonitorClient::report_failure(double fail_time) {
  send_fail_event(stream_, fail_time);
}

void FeatureMonitorClient::finish() {
  if (finished_) return;
  send_bye(stream_);
  stream_.close();
  finished_ = true;
}

}  // namespace f2pm::net
