#include "net/fmc.hpp"

#include <poll.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace f2pm::net {

namespace {

/// Distinct from transport errors so the recovery paths never mistake an
/// exhausted time budget for a reconnectable fault.
struct DeadlineExceeded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// splitmix64 finalizer, used to derive deterministic backoff jitter.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Blocks until the descriptor is readable (or errored/hung up) or the
/// timeout elapses; false on timeout or interruption.
bool wait_readable_fd(int fd, int timeout_ms) {
  pollfd entry{};
  entry.fd = fd;
  entry.events = POLLIN;
  return ::poll(&entry, 1, timeout_ms) > 0;
}

}  // namespace

/// A per-operation time budget. Unlimited (the default options) costs one
/// branch per loop iteration and never consults the clock.
struct FeatureMonitorClient::Deadline {
  std::chrono::steady_clock::time_point end{};
  bool limited = false;

  [[nodiscard]] int remaining_ms() const {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        end - std::chrono::steady_clock::now());
    return std::max<int>(0, static_cast<int>(left.count()));
  }

  [[nodiscard]] bool expired() const {
    return limited && std::chrono::steady_clock::now() >= end;
  }

  void check(const char* what) const {
    if (expired()) {
      throw DeadlineExceeded(std::string("FeatureMonitorClient: ") + what +
                             ": operation deadline exceeded");
    }
  }
};

FeatureMonitorClient::Deadline FeatureMonitorClient::start_op() const {
  Deadline deadline;
  if (options_.op_deadline_seconds > 0.0) {
    deadline.limited = true;
    deadline.end = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(
                           options_.op_deadline_seconds));
  }
  return deadline;
}

FeatureMonitorClient::FeatureMonitorClient(const std::string& host,
                                           std::uint16_t port)
    : FeatureMonitorClient(host, port, ClientOptions{}) {}

FeatureMonitorClient::FeatureMonitorClient(const std::string& host,
                                           std::uint16_t port,
                                           ClientOptions options)
    : host_(host),
      port_(port),
      options_(options),
      stream_(connect_with_backoff()) {}

void FeatureMonitorClient::backoff_sleep(std::size_t attempt,
                                         const Deadline& deadline) {
  double delay = options_.backoff_initial_seconds;
  for (std::size_t k = 0; k < attempt && delay < options_.backoff_max_seconds;
       ++k) {
    delay *= options_.backoff_multiplier;
  }
  delay = std::min(delay, options_.backoff_max_seconds);
  // Deterministic jitter in [0.5, 1): the same jitter_seed reproduces the
  // same retry schedule, which the chaos suite relies on.
  const std::uint64_t draw =
      mix64(options_.jitter_seed ^ mix64(backoff_draws_++));
  delay *= 0.5 + 0.5 * (static_cast<double>(draw >> 11) * 0x1.0p-53);
  if (deadline.limited) {
    delay = std::min(delay, deadline.remaining_ms() / 1000.0);
  }
  if (delay > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
  }
}

TcpStream FeatureMonitorClient::connect_with_backoff() {
  const std::size_t attempts =
      std::max<std::size_t>(1, options_.max_connect_attempts);
  const Deadline deadline = start_op();
  for (std::size_t attempt = 0;; ++attempt) {
    deadline.check("connect");
    try {
      return TcpStream::connect(host_, port_);
    } catch (const std::exception&) {
      if (attempt + 1 >= attempts) throw;
      backoff_sleep(attempt, deadline);
    }
  }
}

void FeatureMonitorClient::reconnect_and_replay(const Deadline& deadline) {
  const std::size_t attempts =
      std::max<std::size_t>(1, options_.max_connect_attempts);
  for (std::size_t attempt = 0;; ++attempt) {
    deadline.check("reconnect");
    stream_.close();
    decoder_.reset();
    try {
      stream_ = TcpStream::connect(host_, port_);
      if (hello_sent_) {
        send_hello(stream_, Hello{kProtocolVersion, client_id_});
      }
      // Rebuild the server's open aggregation window: windows align to
      // absolute multiples of the width, so replaying the unacknowledged
      // tail reproduces the exact window state the bounce destroyed.
      for (const data::RawDatapoint& datapoint : replay_) {
        send_datapoint(stream_, datapoint);
        ++replayed_;
      }
      ++reconnects_;
      return;
    } catch (const std::exception&) {
      if (attempt + 1 >= attempts) throw;
      backoff_sleep(attempt, deadline);
    }
  }
}

bool FeatureMonitorClient::admit_prediction(const Prediction& prediction) {
  if (!options_.reconnect) return true;
  // A pre-bounce flush and a replayed window can both produce the same
  // prediction; the watermark keeps exactly one visible and also shields
  // callers from out-of-order arrivals across reconnects.
  if (have_watermark_ && prediction.window_end <= last_window_end_) {
    return false;
  }
  have_watermark_ = true;
  last_window_end_ = prediction.window_end;
  // Datapoints in now-closed windows can never be needed again.
  while (!replay_.empty() && replay_.front().tgen < prediction.window_end) {
    replay_.pop_front();
  }
  return true;
}

void FeatureMonitorClient::hello(const std::string& client_id) {
  client_id_ = client_id;
  hello_sent_ = true;
  try {
    send_hello(stream_, Hello{kProtocolVersion, client_id});
  } catch (const std::exception&) {
    if (!options_.reconnect || finished_) throw;
    reconnect_and_replay(start_op());  // re-sends the hello itself
  }
}

void FeatureMonitorClient::send(const data::RawDatapoint& datapoint) {
  if (options_.reconnect) {
    replay_.push_back(datapoint);
    if (replay_.size() > options_.max_replay_datapoints) replay_.pop_front();
  }
  try {
    send_datapoint(stream_, datapoint);
  } catch (const std::exception&) {
    if (!options_.reconnect || finished_) throw;
    reconnect_and_replay(start_op());  // the replay covers this datapoint
  }
  ++sent_;
}

void FeatureMonitorClient::report_failure(double fail_time) {
  // The aggregation timeline restarts after a failure: pre-fail datapoints
  // must not be replayed into the new run, and post-fail window ends start
  // over below the watermark.
  replay_.clear();
  have_watermark_ = false;
  last_window_end_ = 0.0;
  const Deadline deadline = start_op();
  const std::size_t rounds =
      std::max<std::size_t>(1, options_.max_connect_attempts);
  for (std::size_t round = 0;; ++round) {
    try {
      send_fail_event(stream_, fail_time);
      return;
    } catch (const DeadlineExceeded&) {
      throw;
    } catch (const std::exception&) {
      if (!options_.reconnect || finished_ || round + 1 >= rounds) throw;
      reconnect_and_replay(deadline);
    }
  }
}

void FeatureMonitorClient::finish() {
  if (finished_) return;
  try {
    send_bye(stream_);
    // Half-close so a prediction service can still flush replies earned by
    // the datapoints we sent; wait_prediction() drains them until EOF.
    stream_.shutdown_write();
  } catch (const std::exception&) {
    if (!options_.reconnect) throw;
    // The connection already died; there is nothing left to flush.
    stream_.close();
  }
  finished_ = true;
}

std::optional<std::string> FeatureMonitorClient::fetch_stats() {
  const Deadline deadline = start_op();
  const auto take = [this](Frame& frame) -> std::optional<std::string> {
    if (auto* reply = std::get_if<StatsReply>(&frame)) {
      return std::move(reply->text);
    }
    // Predictions racing the reply belong to the caller's normal flow.
    if (const auto* prediction = std::get_if<Prediction>(&frame)) {
      if (admit_prediction(*prediction)) {
        pending_predictions_.push_back(*prediction);
      }
    }
    return std::nullopt;
  };
  for (;;) {
    bool need_reconnect = false;
    try {
      send_stats_request(stream_);
      while (auto frame = decoder_.next()) {
        if (auto text = take(*frame)) return text;
      }
      std::array<char, 4096> chunk;
      while (!need_reconnect) {
        deadline.check("fetch_stats");
        if (deadline.limited &&
            !wait_readable_fd(stream_.fd(), deadline.remaining_ms())) {
          continue;  // the check above throws once the budget is gone
        }
        std::size_t got = 0;
        const IoResult io = stream_.recv_some(chunk.data(), chunk.size(), got);
        if (io == IoResult::kEof) {
          if (!options_.reconnect || finished_) return std::nullopt;
          need_reconnect = true;
          break;
        }
        if (io != IoResult::kOk) continue;  // injected EAGAIN: retry
        decoder_.feed(chunk.data(), got);
        while (auto frame = decoder_.next()) {
          if (auto text = take(*frame)) return text;
        }
      }
    } catch (const DeadlineExceeded&) {
      throw;
    } catch (const ProtocolError&) {
      throw;
    } catch (const std::exception&) {
      if (!options_.reconnect || finished_) throw;
      need_reconnect = true;
    }
    if (need_reconnect) reconnect_and_replay(deadline);
  }
}

std::optional<Prediction> FeatureMonitorClient::next_buffered_prediction() {
  if (!pending_predictions_.empty()) {
    const Prediction prediction = pending_predictions_.front();
    pending_predictions_.pop_front();
    ++predictions_received_;
    return prediction;
  }
  while (auto frame = decoder_.next()) {
    if (const auto* prediction = std::get_if<Prediction>(&*frame)) {
      if (!admit_prediction(*prediction)) continue;
      ++predictions_received_;
      return *prediction;
    }
  }
  return std::nullopt;
}

std::optional<Prediction> FeatureMonitorClient::poll_prediction() {
  if (auto buffered = next_buffered_prediction()) return buffered;
  if (!stream_.valid()) return std::nullopt;
  std::array<char, 4096> chunk;
  stream_.set_nonblocking(true);
  try {
    while (true) {
      std::size_t got = 0;
      const IoResult io = stream_.recv_some(chunk.data(), chunk.size(), got);
      if (io == IoResult::kEof) {
        if (options_.reconnect && !finished_) {
          reconnect_and_replay(start_op());
        } else {
          stream_.set_nonblocking(false);
        }
        return std::nullopt;
      }
      if (io != IoResult::kOk) break;  // kWouldBlock: nothing more now
      decoder_.feed(chunk.data(), got);
      if (auto prediction = next_buffered_prediction()) {
        stream_.set_nonblocking(false);
        return prediction;
      }
    }
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception&) {
    if (!options_.reconnect || finished_) throw;
    reconnect_and_replay(start_op());
    return std::nullopt;
  }
  stream_.set_nonblocking(false);
  return std::nullopt;
}

std::optional<Prediction> FeatureMonitorClient::wait_prediction() {
  if (auto buffered = next_buffered_prediction()) return buffered;
  if (!stream_.valid()) return std::nullopt;
  const Deadline deadline = start_op();
  std::array<char, 4096> chunk;
  while (true) {
    deadline.check("wait_prediction");
    if (deadline.limited &&
        !wait_readable_fd(stream_.fd(), deadline.remaining_ms())) {
      continue;  // the check above throws once the budget is gone
    }
    std::size_t got = 0;
    IoResult io;
    try {
      io = stream_.recv_some(chunk.data(), chunk.size(), got);
    } catch (const std::exception&) {
      if (!options_.reconnect || finished_) throw;
      reconnect_and_replay(deadline);
      continue;
    }
    if (io == IoResult::kEof) {
      if (options_.reconnect && !finished_) {
        reconnect_and_replay(deadline);
        continue;
      }
      return std::nullopt;
    }
    if (io != IoResult::kOk) continue;  // injected EAGAIN: retry
    decoder_.feed(chunk.data(), got);
    if (auto prediction = next_buffered_prediction()) return prediction;
  }
}

}  // namespace f2pm::net
