#include "net/fmc.hpp"

#include <array>

namespace f2pm::net {

FeatureMonitorClient::FeatureMonitorClient(const std::string& host,
                                           std::uint16_t port)
    : stream_(TcpStream::connect(host, port)) {}

void FeatureMonitorClient::hello(const std::string& client_id) {
  send_hello(stream_, Hello{kProtocolVersion, client_id});
}

void FeatureMonitorClient::send(const data::RawDatapoint& datapoint) {
  send_datapoint(stream_, datapoint);
  ++sent_;
}

void FeatureMonitorClient::report_failure(double fail_time) {
  send_fail_event(stream_, fail_time);
}

void FeatureMonitorClient::finish() {
  if (finished_) return;
  send_bye(stream_);
  // Half-close so a prediction service can still flush replies earned by
  // the datapoints we sent; wait_prediction() drains them until EOF.
  stream_.shutdown_write();
  finished_ = true;
}

std::optional<std::string> FeatureMonitorClient::fetch_stats() {
  send_stats_request(stream_);
  const auto take = [this](Frame& frame) -> std::optional<std::string> {
    if (auto* reply = std::get_if<StatsReply>(&frame)) {
      return std::move(reply->text);
    }
    // Predictions racing the reply belong to the caller's normal flow.
    if (const auto* prediction = std::get_if<Prediction>(&frame)) {
      pending_predictions_.push_back(*prediction);
    }
    return std::nullopt;
  };
  while (auto frame = decoder_.next()) {
    if (auto text = take(*frame)) return text;
  }
  std::array<char, 4096> chunk;
  while (true) {
    std::size_t got = 0;
    const IoResult io = stream_.recv_some(chunk.data(), chunk.size(), got);
    if (io == IoResult::kEof) return std::nullopt;
    if (io != IoResult::kOk) continue;
    decoder_.feed(chunk.data(), got);
    while (auto frame = decoder_.next()) {
      if (auto text = take(*frame)) return text;
    }
  }
}

std::optional<Prediction> FeatureMonitorClient::next_buffered_prediction() {
  if (!pending_predictions_.empty()) {
    const Prediction prediction = pending_predictions_.front();
    pending_predictions_.pop_front();
    ++predictions_received_;
    return prediction;
  }
  while (auto frame = decoder_.next()) {
    if (const auto* prediction = std::get_if<Prediction>(&*frame)) {
      ++predictions_received_;
      return *prediction;
    }
  }
  return std::nullopt;
}

std::optional<Prediction> FeatureMonitorClient::poll_prediction() {
  if (auto buffered = next_buffered_prediction()) return buffered;
  std::array<char, 4096> chunk;
  stream_.set_nonblocking(true);
  while (true) {
    std::size_t got = 0;
    const IoResult io = stream_.recv_some(chunk.data(), chunk.size(), got);
    if (io != IoResult::kOk) break;  // kWouldBlock or kEof: nothing more now
    decoder_.feed(chunk.data(), got);
    if (auto prediction = next_buffered_prediction()) {
      stream_.set_nonblocking(false);
      return prediction;
    }
  }
  stream_.set_nonblocking(false);
  return std::nullopt;
}

std::optional<Prediction> FeatureMonitorClient::wait_prediction() {
  if (auto buffered = next_buffered_prediction()) return buffered;
  std::array<char, 4096> chunk;
  while (true) {
    std::size_t got = 0;
    const IoResult io = stream_.recv_some(chunk.data(), chunk.size(), got);
    if (io == IoResult::kEof) return std::nullopt;
    if (io == IoResult::kOk) {
      decoder_.feed(chunk.data(), got);
      if (auto prediction = next_buffered_prediction()) return prediction;
    }
  }
}

}  // namespace f2pm::net
