#include "net/fault.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace f2pm::net {

namespace {

/// splitmix64: the standard 64-bit finalizer-style mixer — cheap, and
/// statistically good enough to turn (seed, lane, op, ordinal) into an
/// independent uniform draw.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t script_key(std::uint64_t lane, FaultOp op,
                         std::uint64_t index) noexcept {
  return mix64(mix64(lane) ^ (index * kFaultOpCount +
                              static_cast<std::uint64_t>(op)));
}

/// Uniform draw in [0, 1) for one (seed, lane, op, ordinal) coordinate.
double uniform_at(std::uint64_t seed, std::uint64_t lane, FaultOp op,
                  std::uint64_t index) noexcept {
  const std::uint64_t h =
      mix64(seed ^ script_key(lane, op, index) ^ 0xa5a5a5a5a5a5a5a5ull);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Per-thread lane state: which lane this thread speaks for, its per-op
/// ordinals, and the remaining length of an in-progress EAGAIN storm.
struct LaneState {
  std::uint64_t lane = 0;
  bool named = false;
  std::array<std::uint64_t, kFaultOpCount> ordinals{};
  std::uint32_t eagain_left = 0;
};

LaneState& lane_state() noexcept {
  thread_local LaneState state;
  return state;
}

/// Anonymous lanes: stable per thread, drawn from a dedicated id space so
/// they can never collide with test-named lanes (small integers).
std::uint64_t anonymous_lane() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return (1ull << 62) | next.fetch_add(1, std::memory_order_relaxed);
}

const char* action_label(FaultAction action) noexcept {
  switch (action) {
    case FaultAction::kRefuse:
      return "refuse";
    case FaultAction::kReset:
      return "reset";
    case FaultAction::kShortIo:
      return "short_io";
    case FaultAction::kEagain:
      return "eagain";
    case FaultAction::kDelay:
      return "delay";
    case FaultAction::kNone:
      break;
  }
  return "none";
}

/// One obs counter per injected-fault kind, resolved once.
obs::Counter& fault_counter(FaultAction action) {
  auto& registry = obs::Registry::global();
  static std::array<obs::Counter*, kFaultActionCount> counters = [&] {
    std::array<obs::Counter*, kFaultActionCount> table{};
    for (std::size_t a = 1; a < kFaultActionCount; ++a) {
      table[a] = &registry.counter(
          "f2pm_net_faults_injected_total",
          "Transport faults injected by the active FaultPlan.",
          std::string("kind=\"") +
              action_label(static_cast<FaultAction>(a)) + "\"");
    }
    return table;
  }();
  return *counters[static_cast<std::size_t>(action)];
}

}  // namespace

std::atomic<FaultInjector*> FaultInjector::active_{nullptr};

bool FaultPlan::empty() const noexcept {
  return refuse_connect_rate == 0.0 && delay_connect_rate == 0.0 &&
         accept_drop_rate == 0.0 && read_reset_rate == 0.0 &&
         write_reset_rate == 0.0 && short_read_rate == 0.0 &&
         short_write_rate == 0.0 && read_eagain_rate == 0.0 &&
         write_eagain_rate == 0.0 && stall_rate == 0.0 && script.empty();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const ScriptedFault& event : plan_.script) {
    script_[script_key(event.lane, event.op, event.index)] =
        FaultDecision{event.action, event.param};
  }
}

std::uint64_t FaultInjector::total_injected() const noexcept {
  std::uint64_t total = 0;
  for (const auto& count : counts_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

void FaultInjector::count(FaultAction action) noexcept {
  counts_[static_cast<std::size_t>(action)].fetch_add(
      1, std::memory_order_relaxed);
  fault_counter(action).add(1);
}

FaultDecision FaultInjector::decide(std::uint64_t lane, FaultOp op,
                                    std::uint64_t index) const noexcept {
  if (!script_.empty()) {
    const auto it = script_.find(script_key(lane, op, index));
    if (it != script_.end()) return it->second;
  }
  const double u = uniform_at(plan_.seed, lane, op, index);
  // One uniform draw walks a cumulative threshold ladder per op, so the
  // configured rates are marginal probabilities of each action.
  double edge = 0.0;
  const auto hits = [&](double rate) {
    if (rate <= 0.0) return false;
    edge += rate;
    return u < edge;
  };
  switch (op) {
    case FaultOp::kConnect:
      if (hits(plan_.refuse_connect_rate)) {
        return {FaultAction::kRefuse, 0};
      }
      if (hits(plan_.delay_connect_rate)) {
        return {FaultAction::kDelay, plan_.connect_delay_ms};
      }
      break;
    case FaultOp::kAccept:
      if (hits(plan_.accept_drop_rate)) return {FaultAction::kRefuse, 0};
      break;
    case FaultOp::kRead:
      if (hits(plan_.read_reset_rate)) return {FaultAction::kReset, 0};
      if (hits(plan_.short_read_rate)) {
        return {FaultAction::kShortIo, plan_.short_io_bytes};
      }
      if (hits(plan_.read_eagain_rate)) {
        return {FaultAction::kEagain, plan_.eagain_burst};
      }
      if (hits(plan_.stall_rate)) return {FaultAction::kDelay, plan_.stall_ms};
      break;
    case FaultOp::kWrite:
      if (hits(plan_.write_reset_rate)) return {FaultAction::kReset, 0};
      if (hits(plan_.short_write_rate)) {
        return {FaultAction::kShortIo, plan_.short_io_bytes};
      }
      if (hits(plan_.write_eagain_rate)) {
        return {FaultAction::kEagain, plan_.eagain_burst};
      }
      if (hits(plan_.stall_rate)) return {FaultAction::kDelay, plan_.stall_ms};
      break;
  }
  return {};
}

FaultDecision FaultInjector::next(FaultOp op) noexcept {
  LaneState& state = lane_state();
  if (!state.named) {
    state.lane = anonymous_lane();
    state.named = true;
  }
  // A storm in progress swallows the op without advancing the ordinal, so
  // the schedule downstream of the storm is unchanged by its length.
  if (state.eagain_left > 0 &&
      (op == FaultOp::kRead || op == FaultOp::kWrite)) {
    --state.eagain_left;
    count(FaultAction::kEagain);
    return {FaultAction::kEagain, 0};
  }
  const std::uint64_t index =
      state.ordinals[static_cast<std::size_t>(op)]++;
  FaultDecision decision = decide(state.lane, op, index);
  if (decision.action == FaultAction::kEagain) {
    // The decision itself is the first not-ready report; param - 1 more
    // follow on the next calls.
    state.eagain_left =
        decision.param > 0 ? decision.param - 1 : 0;
    decision.param = 0;
  }
  if (decision.action != FaultAction::kNone) count(decision.action);
  return decision;
}

ScopedFaultInjection::ScopedFaultInjection(FaultPlan plan)
    : injector_(std::move(plan)) {
  FaultInjector* expected = nullptr;
  if (!FaultInjector::active_.compare_exchange_strong(
          expected, &injector_, std::memory_order_release,
          std::memory_order_relaxed)) {
    throw std::logic_error(
        "ScopedFaultInjection: another fault plan is already installed");
  }
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::active_.store(nullptr, std::memory_order_release);
}

FaultLaneScope::FaultLaneScope(std::uint64_t lane) {
  LaneState& state = lane_state();
  previous_lane_ = state.lane;
  previous_named_ = state.named;
  previous_ordinals_ = state.ordinals;
  previous_eagain_left_ = state.eagain_left;
  state.lane = lane;
  state.named = true;
  state.ordinals.fill(0);
  state.eagain_left = 0;
}

FaultLaneScope::~FaultLaneScope() {
  LaneState& state = lane_state();
  state.lane = previous_lane_;
  state.named = previous_named_;
  state.ordinals = previous_ordinals_;
  state.eagain_left = previous_eagain_left_;
}

}  // namespace f2pm::net
