#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "net/fault.hpp"

namespace f2pm::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void fault_sleep_ms(std::uint32_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Applies the active fault plan's verdict to one read/write attempt.
/// May clamp `size` (short I/O), sleep (stall), throw (reset — mirrors a
/// real ECONNRESET: the error surfaces but the fd stays open for the
/// owner to clean up), or return true meaning "report not ready" (EAGAIN
/// storm). Returns false when the real I/O should proceed.
bool fault_gate_io(FaultOp op, std::size_t& size, const char* what) {
  FaultInjector* injector = FaultInjector::active();
  if (injector == nullptr) return false;
  const FaultDecision decision = injector->next(op);
  switch (decision.action) {
    case FaultAction::kNone:
    case FaultAction::kRefuse:  // not meaningful for reads/writes
      return false;
    case FaultAction::kReset:
      throw std::runtime_error(std::string(what) +
                               ": injected connection reset (fault plan)");
    case FaultAction::kShortIo:
      if (decision.param > 0) {
        size = std::min<std::size_t>(size, decision.param);
      }
      return false;
    case FaultAction::kEagain:
      return true;
    case FaultAction::kDelay:
      fault_sleep_ms(decision.param);
      return false;
  }
  return false;
}

/// Connect-time verdict: may sleep (delayed connect) or throw (refused).
void fault_gate_connect() {
  FaultInjector* injector = FaultInjector::active();
  if (injector == nullptr) return;
  const FaultDecision decision = injector->next(FaultOp::kConnect);
  if (decision.action == FaultAction::kDelay) {
    fault_sleep_ms(decision.param);
  } else if (decision.action == FaultAction::kRefuse) {
    throw std::runtime_error(
        "connect: injected connection refused (fault plan)");
  }
}

/// Accept-time verdict on a freshly accepted fd. Returns false when the
/// connection should be dropped on the floor (the fd is closed here).
bool fault_gate_accept(int fd) {
  FaultInjector* injector = FaultInjector::active();
  if (injector == nullptr) return true;
  const FaultDecision decision = injector->next(FaultOp::kAccept);
  if (decision.action == FaultAction::kDelay) {
    fault_sleep_ms(decision.param);
    return true;
  }
  if (decision.action == FaultAction::kRefuse ||
      decision.action == FaultAction::kReset) {
    // Abort rather than close so the client sees a reset, not a clean FIN.
    struct linger hard {};
    hard.l_onoff = 1;
    hard.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    ::close(fd);
    return false;
  }
  return true;
}

void set_fd_nonblocking(int fd, bool enabled, const char* who) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno(std::string(who) + ": fcntl(F_GETFL)");
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) < 0) {
    throw_errno(std::string(who) + ": fcntl(F_SETFL)");
  }
}

}  // namespace

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket::~Socket() { close(); }

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  fault_gate_connect();
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("TcpStream::connect: bad address " + host);
  }
  if (::connect(socket.fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect");
  }
  const int one = 1;
  ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(std::move(socket));
}

void TcpStream::send_all(const void* data, std::size_t size) {
  const char* bytes = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    std::size_t attempt = size - sent;
    // On a blocking socket an injected EAGAIN is just a retry; short
    // writes clamp `attempt` and the loop completes the rest.
    if (fault_gate_io(FaultOp::kWrite, attempt, "send")) continue;
    const ssize_t n = ::send(socket_.fd(), bytes + sent, attempt,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool TcpStream::recv_exact(void* data, std::size_t size) {
  char* bytes = static_cast<char*>(data);
  std::size_t received = 0;
  while (received < size) {
    std::size_t attempt = size - received;
    if (fault_gate_io(FaultOp::kRead, attempt, "recv")) continue;
    const ssize_t n = ::recv(socket_.fd(), bytes + received, attempt, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (received == 0) return false;  // clean EOF at a message boundary
      throw std::runtime_error("recv: connection closed mid-message");
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

IoResult TcpStream::recv_some(void* data, std::size_t size,
                              std::size_t& transferred) {
  transferred = 0;
  if (fault_gate_io(FaultOp::kRead, size, "recv")) {
    return IoResult::kWouldBlock;
  }
  while (true) {
    const ssize_t n = ::recv(socket_.fd(), data, size, 0);
    if (n > 0) {
      transferred = static_cast<std::size_t>(n);
      return IoResult::kOk;
    }
    if (n == 0) return IoResult::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
    throw_errno("recv");
  }
}

IoResult TcpStream::send_some(const void* data, std::size_t size,
                              std::size_t& transferred) {
  transferred = 0;
  if (fault_gate_io(FaultOp::kWrite, size, "send")) {
    return IoResult::kWouldBlock;
  }
  while (true) {
    const ssize_t n = ::send(socket_.fd(), data, size, MSG_NOSIGNAL);
    if (n >= 0) {
      transferred = static_cast<std::size_t>(n);
      return IoResult::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
    throw_errno("send");
  }
}

void TcpStream::set_nonblocking(bool enabled) {
  set_fd_nonblocking(socket_.fd(), enabled, "TcpStream");
}

void TcpStream::shutdown_write() noexcept {
  if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_WR);
}

void TcpStream::abort_connection() noexcept {
  if (!socket_.valid()) return;
  struct linger hard {};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(socket_.fd(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  socket_.close();
}

TcpListener::TcpListener(std::uint16_t port, int backlog)
    : TcpListener(port, Options{backlog, /*reuse_port=*/false}) {}

TcpListener::TcpListener(std::uint16_t port, const Options& options) {
  socket_ = Socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket_.valid()) throw_errno("socket");
  const int one = 1;
  ::setsockopt(socket_.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (options.reuse_port) {
#if defined(SO_REUSEPORT)
    if (::setsockopt(socket_.fd(), SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) != 0) {
      throw_errno("setsockopt(SO_REUSEPORT)");
    }
#else
    throw std::runtime_error(
        "TcpListener: SO_REUSEPORT unsupported on this platform");
#endif
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(socket_.fd(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind");
  }
  if (::listen(socket_.fd(), options.backlog) != 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(socket_.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

std::optional<TcpStream> TcpListener::accept() {
  while (true) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd < 0) {
      // EBADF / EINVAL after shutdown(), or interrupted: report "no client".
      return std::nullopt;
    }
    if (!fault_gate_accept(fd)) continue;  // injected drop: wait for the next
    return TcpStream(Socket(fd));
  }
}

std::optional<TcpStream> TcpListener::try_accept() {
  while (true) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      if (!fault_gate_accept(fd)) continue;  // injected drop
      return TcpStream(Socket(fd));
    }
    if (errno == EINTR) continue;
    // EAGAIN (nothing pending), or EBADF/EINVAL after shutdown().
    return std::nullopt;
  }
}

void TcpListener::set_nonblocking(bool enabled) {
  set_fd_nonblocking(socket_.fd(), enabled, "TcpListener");
}

void TcpListener::shutdown() noexcept {
  if (socket_.valid()) {
    ::shutdown(socket_.fd(), SHUT_RDWR);
    socket_.close();
  }
}

}  // namespace f2pm::net
