#include "net/protocol.hpp"

#include <cstring>

#include "obs/metrics.hpp"

namespace f2pm::net {

namespace {

constexpr std::size_t kHeaderBytes = 2 * sizeof(std::uint32_t);
constexpr std::size_t kDatapointPayload =
    (1 + data::kFeatureCount) * sizeof(double);
constexpr std::size_t kFailEventPayload = sizeof(double);
constexpr std::size_t kHelloFixedPayload = 2 * sizeof(std::uint32_t);
constexpr std::size_t kPredictionPayload =
    2 * sizeof(double) + 2 * sizeof(std::uint32_t);
constexpr std::size_t kStatsReplyFixedPayload = sizeof(std::uint32_t);

struct NetMetrics {
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& frames_in;
  obs::Counter& frames_out;
  obs::Counter& protocol_errors;

  static NetMetrics& get() {
    auto& registry = obs::Registry::global();
    static NetMetrics metrics{
        registry.counter("f2pm_net_bytes_in_total",
                         "Raw bytes fed into frame decoders."),
        registry.counter("f2pm_net_bytes_out_total",
                         "Frame bytes produced by encoders."),
        registry.counter("f2pm_net_frames_in_total",
                         "Complete frames decoded."),
        registry.counter("f2pm_net_frames_out_total", "Frames encoded."),
        registry.counter("f2pm_net_protocol_errors_total",
                         "Frame-level protocol violations (bad magic, "
                         "unknown type, oversized payload).")};
    return metrics;
  }
};

/// Counts one encoded frame and its bytes once the encode completes.
class EncodeScope {
 public:
  explicit EncodeScope(const std::vector<std::uint8_t>& out)
      : out_(out), before_(out.size()) {}
  ~EncodeScope() {
    NetMetrics& metrics = NetMetrics::get();
    metrics.frames_out.add(1);
    metrics.bytes_out.add(out_.size() - before_);
  }

 private:
  const std::vector<std::uint8_t>& out_;
  std::size_t before_;
};

void append_raw(std::vector<std::uint8_t>& out, const void* data,
                std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  append_raw(out, &value, sizeof(value));
}

void append_f64(std::vector<std::uint8_t>& out, double value) {
  append_raw(out, &value, sizeof(value));
}

void append_header(std::vector<std::uint8_t>& out, FrameType type) {
  append_u32(out, kProtocolMagic);
  append_u32(out, static_cast<std::uint32_t>(type));
}

template <typename T>
T read_at(const std::vector<std::uint8_t>& buffer, std::size_t offset) {
  T value;
  std::memcpy(&value, buffer.data() + offset, sizeof(T));
  return value;
}

}  // namespace

void FrameEncoder::encode_datapoint(std::vector<std::uint8_t>& out,
                                    const data::RawDatapoint& datapoint) {
  EncodeScope scope(out);
  append_header(out, FrameType::kDatapoint);
  append_f64(out, datapoint.tgen);
  append_raw(out, datapoint.values.data(),
             data::kFeatureCount * sizeof(double));
}

void FrameEncoder::encode_fail_event(std::vector<std::uint8_t>& out,
                                     double fail_time) {
  EncodeScope scope(out);
  append_header(out, FrameType::kFailEvent);
  append_f64(out, fail_time);
}

void FrameEncoder::encode_bye(std::vector<std::uint8_t>& out) {
  EncodeScope scope(out);
  append_header(out, FrameType::kBye);
}

void FrameEncoder::encode_hello(std::vector<std::uint8_t>& out,
                                const Hello& hello) {
  if (hello.client_id.size() > kMaxClientIdBytes) {
    throw std::invalid_argument("protocol: client_id exceeds " +
                                std::to_string(kMaxClientIdBytes) + " bytes");
  }
  EncodeScope scope(out);
  append_header(out, FrameType::kHello);
  append_u32(out, hello.version);
  append_u32(out, static_cast<std::uint32_t>(hello.client_id.size()));
  append_raw(out, hello.client_id.data(), hello.client_id.size());
}

void FrameEncoder::encode_prediction(std::vector<std::uint8_t>& out,
                                     const Prediction& prediction) {
  EncodeScope scope(out);
  append_header(out, FrameType::kPrediction);
  append_f64(out, prediction.window_end);
  append_f64(out, prediction.rttf);
  append_u32(out, prediction.alarm ? 1u : 0u);
  append_u32(out, prediction.model_version);
}

void FrameEncoder::encode_stats_request(std::vector<std::uint8_t>& out) {
  EncodeScope scope(out);
  append_header(out, FrameType::kStatsRequest);
}

void FrameEncoder::encode_stats_reply(std::vector<std::uint8_t>& out,
                                      const StatsReply& reply) {
  if (reply.text.size() > kMaxStatsBytes) {
    throw std::invalid_argument("protocol: stats reply exceeds " +
                                std::to_string(kMaxStatsBytes) + " bytes");
  }
  EncodeScope scope(out);
  append_header(out, FrameType::kStatsReply);
  append_u32(out, static_cast<std::uint32_t>(reply.text.size()));
  append_raw(out, reply.text.data(), reply.text.size());
}

void FrameDecoder::feed(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
  NetMetrics::get().bytes_in.add(size);
}

void FrameDecoder::reset() {
  buffer_.clear();
  pos_ = 0;
}

std::size_t FrameDecoder::bytes_needed() const {
  const std::size_t have = buffered_bytes();
  if (have < kHeaderBytes) return kHeaderBytes - have;
  const auto type =
      static_cast<FrameType>(read_at<std::uint32_t>(buffer_, pos_ + 4));
  std::size_t payload = 0;
  switch (type) {
    case FrameType::kDatapoint:
      payload = kDatapointPayload;
      break;
    case FrameType::kFailEvent:
      payload = kFailEventPayload;
      break;
    case FrameType::kBye:
      payload = 0;
      break;
    case FrameType::kPrediction:
      payload = kPredictionPayload;
      break;
    case FrameType::kStatsRequest:
      payload = 0;
      break;
    case FrameType::kStatsReply: {
      if (have < kHeaderBytes + kStatsReplyFixedPayload) {
        return kHeaderBytes + kStatsReplyFixedPayload - have;
      }
      payload = kStatsReplyFixedPayload +
                read_at<std::uint32_t>(buffer_, pos_ + kHeaderBytes);
      break;
    }
    case FrameType::kHello: {
      if (have < kHeaderBytes + kHelloFixedPayload) {
        return kHeaderBytes + kHelloFixedPayload - have;
      }
      payload = kHelloFixedPayload +
                read_at<std::uint32_t>(buffer_, pos_ + kHeaderBytes + 4);
      break;
    }
    default:
      // next() throws on a complete invalid header; asking for one more
      // byte here keeps blocking callers making progress until it does.
      return 1;
  }
  const std::size_t total = kHeaderBytes + payload;
  return have >= total ? 1 : total - have;
}

std::optional<Frame> FrameDecoder::next() {
  if (buffered_bytes() < kHeaderBytes) return std::nullopt;
  const auto magic = read_at<std::uint32_t>(buffer_, pos_);
  if (magic != kProtocolMagic) {
    NetMetrics::get().protocol_errors.add(1);
    throw ProtocolError(ProtocolError::Kind::kBadMagic,
                        "protocol: bad frame magic");
  }
  const auto raw_type = read_at<std::uint32_t>(buffer_, pos_ + 4);
  const auto type = static_cast<FrameType>(raw_type);

  std::size_t payload = 0;
  switch (type) {
    case FrameType::kDatapoint:
      payload = kDatapointPayload;
      break;
    case FrameType::kFailEvent:
      payload = kFailEventPayload;
      break;
    case FrameType::kBye:
      payload = 0;
      break;
    case FrameType::kPrediction:
      payload = kPredictionPayload;
      break;
    case FrameType::kStatsRequest:
      payload = 0;
      break;
    case FrameType::kStatsReply: {
      if (buffered_bytes() < kHeaderBytes + kStatsReplyFixedPayload) {
        return std::nullopt;
      }
      const auto text_len = read_at<std::uint32_t>(buffer_, pos_ + kHeaderBytes);
      if (text_len > kMaxStatsBytes) {
        NetMetrics::get().protocol_errors.add(1);
        throw ProtocolError(ProtocolError::Kind::kOversized,
                            "protocol: stats reply of " +
                                std::to_string(text_len) + " bytes exceeds " +
                                std::to_string(kMaxStatsBytes));
      }
      payload = kStatsReplyFixedPayload + text_len;
      break;
    }
    case FrameType::kHello: {
      if (buffered_bytes() < kHeaderBytes + kHelloFixedPayload) {
        return std::nullopt;
      }
      const auto id_len =
          read_at<std::uint32_t>(buffer_, pos_ + kHeaderBytes + 4);
      if (id_len > kMaxClientIdBytes) {
        NetMetrics::get().protocol_errors.add(1);
        throw ProtocolError(ProtocolError::Kind::kOversized,
                            "protocol: hello client_id of " +
                                std::to_string(id_len) + " bytes exceeds " +
                                std::to_string(kMaxClientIdBytes));
      }
      payload = kHelloFixedPayload + id_len;
      break;
    }
    default:
      NetMetrics::get().protocol_errors.add(1);
      throw ProtocolError(
          ProtocolError::Kind::kUnknownType,
          "protocol: unknown frame type " + std::to_string(raw_type));
  }

  const std::size_t total = kHeaderBytes + payload;
  if (buffered_bytes() < total) return std::nullopt;
  const std::size_t body = pos_ + kHeaderBytes;

  Frame frame = Bye{};
  switch (type) {
    case FrameType::kDatapoint: {
      data::RawDatapoint datapoint;
      datapoint.tgen = read_at<double>(buffer_, body);
      std::memcpy(datapoint.values.data(), buffer_.data() + body + 8,
                  data::kFeatureCount * sizeof(double));
      frame = datapoint;
      break;
    }
    case FrameType::kFailEvent:
      frame = FailEvent{read_at<double>(buffer_, body)};
      break;
    case FrameType::kBye:
      frame = Bye{};
      break;
    case FrameType::kHello: {
      Hello hello;
      hello.version = read_at<std::uint32_t>(buffer_, body);
      const auto id_len = read_at<std::uint32_t>(buffer_, body + 4);
      hello.client_id.assign(
          reinterpret_cast<const char*>(buffer_.data() + body + 8), id_len);
      frame = std::move(hello);
      break;
    }
    case FrameType::kPrediction: {
      Prediction prediction;
      prediction.window_end = read_at<double>(buffer_, body);
      prediction.rttf = read_at<double>(buffer_, body + 8);
      prediction.alarm = read_at<std::uint32_t>(buffer_, body + 16) != 0;
      prediction.model_version = read_at<std::uint32_t>(buffer_, body + 20);
      frame = prediction;
      break;
    }
    case FrameType::kStatsRequest:
      frame = StatsRequest{};
      break;
    case FrameType::kStatsReply: {
      StatsReply reply;
      const auto text_len = read_at<std::uint32_t>(buffer_, body);
      reply.text.assign(
          reinterpret_cast<const char*>(buffer_.data() + body + 4), text_len);
      frame = std::move(reply);
      break;
    }
  }

  NetMetrics::get().frames_in.add(1);
  pos_ += total;
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ >= 4096) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return frame;
}

void send_datapoint(TcpStream& stream, const data::RawDatapoint& datapoint) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_datapoint(bytes, datapoint);
  stream.send_all(bytes.data(), bytes.size());
}

void send_fail_event(TcpStream& stream, double fail_time) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_fail_event(bytes, fail_time);
  stream.send_all(bytes.data(), bytes.size());
}

void send_bye(TcpStream& stream) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_bye(bytes);
  stream.send_all(bytes.data(), bytes.size());
}

void send_hello(TcpStream& stream, const Hello& hello) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_hello(bytes, hello);
  stream.send_all(bytes.data(), bytes.size());
}

void send_prediction(TcpStream& stream, const Prediction& prediction) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_prediction(bytes, prediction);
  stream.send_all(bytes.data(), bytes.size());
}

void send_stats_request(TcpStream& stream) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_stats_request(bytes);
  stream.send_all(bytes.data(), bytes.size());
}

void send_stats_reply(TcpStream& stream, const StatsReply& reply) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_stats_reply(bytes, reply);
  stream.send_all(bytes.data(), bytes.size());
}

std::optional<Frame> receive_frame(TcpStream& stream, FrameDecoder& decoder) {
  while (true) {
    if (auto frame = decoder.next()) return frame;
    const std::size_t need = decoder.bytes_needed();
    std::vector<std::uint8_t> chunk(need);
    if (!stream.recv_exact(chunk.data(), need)) {
      // EOF before any byte of this read: clean close only if no partial
      // frame is already buffered. (EOF inside the read throws from
      // recv_exact — that is always a mid-frame truncation.)
      if (decoder.mid_frame()) {
        throw std::runtime_error("protocol: connection closed mid-frame");
      }
      return std::nullopt;
    }
    decoder.feed(chunk.data(), need);
  }
}

std::optional<Frame> receive_frame(TcpStream& stream) {
  // A call-local decoder is sound here: the loop above reads exactly
  // bytes_needed(), so no bytes beyond the returned frame are buffered.
  FrameDecoder decoder;
  return receive_frame(stream, decoder);
}

}  // namespace f2pm::net
