#include "net/protocol.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

namespace f2pm::net {

namespace {

struct Header {
  std::uint32_t magic;
  std::uint32_t type;
};

void send_header(TcpStream& stream, FrameType type) {
  const Header header{kProtocolMagic, static_cast<std::uint32_t>(type)};
  stream.send_all(&header, sizeof(header));
}

}  // namespace

void send_datapoint(TcpStream& stream, const data::RawDatapoint& datapoint) {
  send_header(stream, FrameType::kDatapoint);
  std::array<double, 1 + data::kFeatureCount> payload{};
  payload[0] = datapoint.tgen;
  std::memcpy(payload.data() + 1, datapoint.values.data(),
              data::kFeatureCount * sizeof(double));
  stream.send_all(payload.data(), payload.size() * sizeof(double));
}

void send_fail_event(TcpStream& stream, double fail_time) {
  send_header(stream, FrameType::kFailEvent);
  stream.send_all(&fail_time, sizeof(fail_time));
}

void send_bye(TcpStream& stream) { send_header(stream, FrameType::kBye); }

std::optional<Frame> receive_frame(TcpStream& stream) {
  Header header{};
  if (!stream.recv_exact(&header, sizeof(header))) return std::nullopt;
  if (header.magic != kProtocolMagic) {
    throw std::runtime_error("protocol: bad frame magic");
  }
  switch (static_cast<FrameType>(header.type)) {
    case FrameType::kDatapoint: {
      std::array<double, 1 + data::kFeatureCount> payload{};
      if (!stream.recv_exact(payload.data(),
                             payload.size() * sizeof(double))) {
        throw std::runtime_error("protocol: truncated datapoint frame");
      }
      data::RawDatapoint datapoint;
      datapoint.tgen = payload[0];
      std::memcpy(datapoint.values.data(), payload.data() + 1,
                  data::kFeatureCount * sizeof(double));
      return Frame{datapoint};
    }
    case FrameType::kFailEvent: {
      FailEvent event;
      if (!stream.recv_exact(&event.fail_time, sizeof(event.fail_time))) {
        throw std::runtime_error("protocol: truncated fail-event frame");
      }
      return Frame{event};
    }
    case FrameType::kBye:
      return Frame{Bye{}};
  }
  throw std::runtime_error("protocol: unknown frame type " +
                           std::to_string(header.type));
}

}  // namespace f2pm::net
