#include "net/protocol.hpp"

#include <cstring>

#include "obs/metrics.hpp"

namespace f2pm::net {

namespace {

/// Compact the decoder buffer once the consumed prefix passes this; small
/// enough to bound waste, large enough that steady datapoint traffic
/// compacts once per several frames, not per frame.
constexpr std::size_t kCompactBytes = 4096;

struct NetMetrics {
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& frames_in;
  obs::Counter& frames_out;
  obs::Counter& protocol_errors;

  static NetMetrics& get() {
    auto& registry = obs::Registry::global();
    static NetMetrics metrics{
        registry.counter("f2pm_net_bytes_in_total",
                         "Raw bytes fed into frame decoders."),
        registry.counter("f2pm_net_bytes_out_total",
                         "Frame bytes produced by encoders."),
        registry.counter("f2pm_net_frames_in_total",
                         "Complete frames decoded."),
        registry.counter("f2pm_net_frames_out_total", "Frames encoded."),
        registry.counter("f2pm_net_protocol_errors_total",
                         "Frame-level protocol violations (bad magic, "
                         "unknown type, oversized payload).")};
    return metrics;
  }
};

template <typename T>
T read_at(const std::uint8_t* data, std::size_t offset) {
  T value;
  std::memcpy(&value, data + offset, sizeof(T));
  return value;
}

/// How to size one frame's payload — the single source of truth shared by
/// bytes_needed() and next_view() (they used to carry duplicate switches
/// that could drift apart).
struct PayloadSpec {
  enum class Status {
    kKnown,       ///< `payload` is the full payload size.
    kNeedPrefix,  ///< Need `total_needed` buffered bytes (header included)
                  ///< before the variable length prefix can be read.
    kUnknownType,
    kOversized,  ///< Length prefix exceeds `cap` (declared = the prefix).
  };
  Status status = Status::kUnknownType;
  std::size_t payload = 0;
  std::size_t total_needed = 0;
  std::uint32_t declared = 0;
  std::size_t cap = 0;
};

/// Sizes the payload of a frame of `type` whose payload starts at `body`
/// with `available` bytes already buffered past the header.
PayloadSpec payload_size(FrameType type, const std::uint8_t* body,
                         std::size_t available) {
  PayloadSpec spec;
  const auto known = [&spec](std::size_t payload) {
    spec.status = PayloadSpec::Status::kKnown;
    spec.payload = payload;
  };
  switch (type) {
    case FrameType::kDatapoint:
      known(kDatapointPayloadBytes);
      break;
    case FrameType::kFailEvent:
      known(kFailEventPayloadBytes);
      break;
    case FrameType::kBye:
    case FrameType::kStatsRequest:
      known(0);
      break;
    case FrameType::kPrediction:
      known(kPredictionPayloadBytes);
      break;
    case FrameType::kStatsReply: {
      if (available < kStatsReplyFixedPayloadBytes) {
        spec.status = PayloadSpec::Status::kNeedPrefix;
        spec.total_needed = kFrameHeaderBytes + kStatsReplyFixedPayloadBytes;
        break;
      }
      const auto text_len = read_at<std::uint32_t>(body, 0);
      if (text_len > kMaxStatsBytes) {
        spec.status = PayloadSpec::Status::kOversized;
        spec.declared = text_len;
        spec.cap = kMaxStatsBytes;
        break;
      }
      known(kStatsReplyFixedPayloadBytes + text_len);
      break;
    }
    case FrameType::kHello: {
      if (available < kHelloFixedPayloadBytes) {
        spec.status = PayloadSpec::Status::kNeedPrefix;
        spec.total_needed = kFrameHeaderBytes + kHelloFixedPayloadBytes;
        break;
      }
      const auto id_len = read_at<std::uint32_t>(body, sizeof(std::uint32_t));
      if (id_len > kMaxClientIdBytes) {
        spec.status = PayloadSpec::Status::kOversized;
        spec.declared = id_len;
        spec.cap = kMaxClientIdBytes;
        break;
      }
      known(kHelloFixedPayloadBytes + id_len);
      break;
    }
    default:
      spec.status = PayloadSpec::Status::kUnknownType;
      break;
  }
  return spec;
}

}  // namespace

namespace detail {

void note_frame_encoded(std::size_t bytes) {
  NetMetrics& metrics = NetMetrics::get();
  metrics.frames_out.add(1);
  metrics.bytes_out.add(bytes);
}

}  // namespace detail

void FrameDecoder::feed(const void* data, std::size_t size) {
  // Compaction lives here — never in next_view() — so views stay valid
  // until the caller is done with the current batch of buffered frames.
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ >= kCompactBytes) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
  NetMetrics::get().bytes_in.add(size);
}

void FrameDecoder::reset() {
  buffer_.clear();
  pos_ = 0;
}

std::size_t FrameDecoder::bytes_needed() const {
  const std::size_t have = buffered_bytes();
  if (have < kFrameHeaderBytes) return kFrameHeaderBytes - have;
  const auto type = static_cast<FrameType>(
      read_at<std::uint32_t>(buffer_.data(), pos_ + sizeof(std::uint32_t)));
  const PayloadSpec spec = payload_size(
      type, buffer_.data() + pos_ + kFrameHeaderBytes,
      have - kFrameHeaderBytes);
  switch (spec.status) {
    case PayloadSpec::Status::kKnown: {
      const std::size_t total = kFrameHeaderBytes + spec.payload;
      return have >= total ? 1 : total - have;
    }
    case PayloadSpec::Status::kNeedPrefix:
      return spec.total_needed - have;
    case PayloadSpec::Status::kUnknownType:
    case PayloadSpec::Status::kOversized:
      // next() throws on these; asking for one more byte keeps blocking
      // callers making progress until it does.
      return 1;
  }
  return 1;
}

std::optional<FrameView> FrameDecoder::next_view() {
  if (buffered_bytes() < kFrameHeaderBytes) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + pos_;
  const auto magic = read_at<std::uint32_t>(head, 0);
  if (magic != kProtocolMagic) {
    NetMetrics::get().protocol_errors.add(1);
    throw ProtocolError(ProtocolError::Kind::kBadMagic,
                        "protocol: bad frame magic");
  }
  const auto raw_type = read_at<std::uint32_t>(head, sizeof(std::uint32_t));
  const auto type = static_cast<FrameType>(raw_type);
  const PayloadSpec spec = payload_size(type, head + kFrameHeaderBytes,
                                        buffered_bytes() - kFrameHeaderBytes);
  switch (spec.status) {
    case PayloadSpec::Status::kKnown:
      break;
    case PayloadSpec::Status::kNeedPrefix:
      return std::nullopt;
    case PayloadSpec::Status::kUnknownType:
      NetMetrics::get().protocol_errors.add(1);
      throw ProtocolError(
          ProtocolError::Kind::kUnknownType,
          "protocol: unknown frame type " + std::to_string(raw_type));
    case PayloadSpec::Status::kOversized:
      NetMetrics::get().protocol_errors.add(1);
      throw ProtocolError(
          ProtocolError::Kind::kOversized,
          "protocol: " +
              std::string(type == FrameType::kHello ? "hello client_id"
                                                    : "stats reply") +
              " of " + std::to_string(spec.declared) + " bytes exceeds " +
              std::to_string(spec.cap));
  }

  const std::size_t total = kFrameHeaderBytes + spec.payload;
  if (buffered_bytes() < total) return std::nullopt;

  NetMetrics::get().frames_in.add(1);
  FrameView view(type, head + kFrameHeaderBytes, spec.payload);
  pos_ += total;  // Bytes stay in place until the next feed() compacts.
  return view;
}

std::optional<Frame> FrameDecoder::next() {
  const std::optional<FrameView> view = next_view();
  if (!view) return std::nullopt;
  // Materialize (detach) the view into an owned Frame. The copy the
  // zero-copy path avoids happens exactly here, so callers that keep
  // frames around pay it and the serve hot path does not.
  switch (view->type()) {
    case FrameType::kDatapoint: {
      data::RawDatapoint datapoint;
      view->datapoint(datapoint);
      return Frame(datapoint);
    }
    case FrameType::kFailEvent:
      return Frame(FailEvent{view->fail_time()});
    case FrameType::kBye:
      return Frame(Bye{});
    case FrameType::kHello: {
      Hello hello;
      hello.version = view->hello_version();
      hello.client_id.assign(view->hello_client_id());
      return Frame(std::move(hello));
    }
    case FrameType::kPrediction:
      return Frame(view->prediction());
    case FrameType::kStatsRequest:
      return Frame(StatsRequest{});
    case FrameType::kStatsReply: {
      StatsReply reply;
      reply.text.assign(view->stats_text());
      return Frame(std::move(reply));
    }
  }
  return std::nullopt;  // Unreachable: next_view() rejects unknown types.
}

void send_datapoint(TcpStream& stream, const data::RawDatapoint& datapoint) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_datapoint(bytes, datapoint);
  stream.send_all(bytes.data(), bytes.size());
}

void send_fail_event(TcpStream& stream, double fail_time) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_fail_event(bytes, fail_time);
  stream.send_all(bytes.data(), bytes.size());
}

void send_bye(TcpStream& stream) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_bye(bytes);
  stream.send_all(bytes.data(), bytes.size());
}

void send_hello(TcpStream& stream, const Hello& hello) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_hello(bytes, hello);
  stream.send_all(bytes.data(), bytes.size());
}

void send_prediction(TcpStream& stream, const Prediction& prediction) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_prediction(bytes, prediction);
  stream.send_all(bytes.data(), bytes.size());
}

void send_stats_request(TcpStream& stream) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_stats_request(bytes);
  stream.send_all(bytes.data(), bytes.size());
}

void send_stats_reply(TcpStream& stream, const StatsReply& reply) {
  std::vector<std::uint8_t> bytes;
  FrameEncoder::encode_stats_reply(bytes, reply);
  stream.send_all(bytes.data(), bytes.size());
}

std::optional<Frame> receive_frame(TcpStream& stream, FrameDecoder& decoder) {
  while (true) {
    if (auto frame = decoder.next()) return frame;
    const std::size_t need = decoder.bytes_needed();
    std::vector<std::uint8_t> chunk(need);
    if (!stream.recv_exact(chunk.data(), need)) {
      // EOF before any byte of this read: clean close only if no partial
      // frame is already buffered. (EOF inside the read throws from
      // recv_exact — that is always a mid-frame truncation.)
      if (decoder.mid_frame()) {
        throw std::runtime_error("protocol: connection closed mid-frame");
      }
      return std::nullopt;
    }
    decoder.feed(chunk.data(), need);
  }
}

std::optional<Frame> receive_frame(TcpStream& stream) {
  // A call-local decoder is sound here: the loop above reads exactly
  // bytes_needed(), so no bytes beyond the returned frame are buffered.
  FrameDecoder decoder;
  return receive_frame(stream, decoder);
}

}  // namespace f2pm::net
