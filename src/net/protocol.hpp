// Wire protocol between the Feature Monitor Client and the server side
// (legacy one-client FMS or the f2pm_serve prediction service): fixed
// little-endian framed messages.
//
//   [u32 magic][u32 type][payload]
//   type kDatapoint:    payload = f64 tgen + 14 x f64 feature values
//   type kFailEvent:    payload = f64 fail_time (the run crashed; restart)
//   type kBye:          payload empty (client is done)
//   type kHello:        payload = u32 proto_version + u32 len + len id bytes
//   type kPrediction:   payload = f64 window_end + f64 rttf + u32 alarm +
//                                 u32 model_version   (server -> client)
//   type kStatsRequest: payload empty (client asks for a metrics dump)
//   type kStatsReply:   payload = u32 len + len bytes of Prometheus text
//                                 exposition   (server -> client)
//
// Hello is optional and versioned: legacy clients that never send it keep
// working (they are treated as ingest-only and receive no predictions).
//
// Two code paths share one framing implementation: the byte-incremental
// FrameDecoder drives the non-blocking event loops, and the blocking
// receive_frame() is a thin loop over the same decoder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "data/datapoint.hpp"
#include "net/socket.hpp"

namespace f2pm::net {

inline constexpr std::uint32_t kProtocolMagic = 0x46'32'50'4D;  // "F2PM"

/// Highest Hello version this build understands.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Hard cap on the Hello client-id length; longer ids are a protocol
/// violation (they would let a hostile client demand unbounded buffers).
inline constexpr std::size_t kMaxClientIdBytes = 256;

/// Hard cap on a StatsReply exposition body, same rationale.
inline constexpr std::size_t kMaxStatsBytes = 1u << 20;

enum class FrameType : std::uint32_t {
  kDatapoint = 1,
  kFailEvent = 2,
  kBye = 3,
  kHello = 4,
  kPrediction = 5,
  kStatsRequest = 6,
  kStatsReply = 7,
};

/// A fail-event frame body.
struct FailEvent {
  double fail_time = 0.0;
};

/// A bye frame body.
struct Bye {};

/// Session-opening handshake (client -> server).
struct Hello {
  std::uint32_t version = kProtocolVersion;
  std::string client_id;
};

/// An RTTF prediction reply (server -> client), emitted when an
/// aggregation window closes on the server side.
struct Prediction {
  double window_end = 0.0;  ///< Elapsed time the prediction refers to.
  double rttf = 0.0;        ///< Predicted remaining time to failure (s).
  bool alarm = false;       ///< Rejuvenation advisor says "act now".
  std::uint32_t model_version = 0;  ///< ModelStore version that scored it.
};

/// Client -> server: dump the service's metrics registry.
struct StatsRequest {};

/// Server -> client: the metrics registry in Prometheus text form — the
/// same bytes the HTTP scrape endpoint serves.
struct StatsReply {
  std::string text;
};

/// Any received frame.
using Frame = std::variant<data::RawDatapoint, FailEvent, Bye, Hello,
                           Prediction, StatsRequest, StatsReply>;

/// Protocol violation: bad magic, unknown frame type or an oversized
/// variable-length payload. Distinct from truncation (see FrameDecoder).
class ProtocolError : public std::runtime_error {
 public:
  enum class Kind { kBadMagic, kUnknownType, kOversized };

  ProtocolError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Appends the serialized form of a frame to `out`. Used by the
/// non-blocking send path (per-connection outbound queues) and, through
/// the send_* helpers below, by the blocking clients.
class FrameEncoder {
 public:
  static void encode_datapoint(std::vector<std::uint8_t>& out,
                               const data::RawDatapoint& datapoint);
  static void encode_fail_event(std::vector<std::uint8_t>& out,
                                double fail_time);
  static void encode_bye(std::vector<std::uint8_t>& out);
  /// Throws std::invalid_argument when client_id exceeds kMaxClientIdBytes.
  static void encode_hello(std::vector<std::uint8_t>& out, const Hello& hello);
  static void encode_prediction(std::vector<std::uint8_t>& out,
                                const Prediction& prediction);
  static void encode_stats_request(std::vector<std::uint8_t>& out);
  /// Throws std::invalid_argument when the text exceeds kMaxStatsBytes.
  static void encode_stats_reply(std::vector<std::uint8_t>& out,
                                 const StatsReply& reply);
};

/// Byte-incremental frame parser: feed() arbitrary chunks (single bytes,
/// split frames, coalesced frames), pop complete frames with next().
/// Throws ProtocolError on violations; after a throw the decoder is
/// poisoned and the connection should be dropped.
class FrameDecoder {
 public:
  /// Appends raw bytes from the wire.
  void feed(const void* data, std::size_t size);

  /// Returns the next complete frame, or nullopt when more bytes are
  /// needed. Throws ProtocolError on bad magic / unknown type / oversized
  /// payloads.
  std::optional<Frame> next();

  /// True when buffered bytes form an incomplete frame — at EOF this is
  /// the difference between a clean close (between frames) and a
  /// mid-frame truncation.
  [[nodiscard]] bool mid_frame() const noexcept { return pos_ < buffer_.size(); }

  /// How many more bytes are certainly required before next() can make
  /// progress (>= 1 whenever next() returned nullopt). Blocking callers
  /// use this to read exactly one frame without over-reading.
  [[nodiscard]] std::size_t bytes_needed() const;

  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - pos_;
  }

  /// Drops all buffered bytes (e.g. after a per-run reconnect).
  void reset();

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  ///< Consumed prefix; compacted between frames.
};

/// Serializes and sends one datapoint frame.
void send_datapoint(TcpStream& stream, const data::RawDatapoint& datapoint);

/// Serializes and sends a fail-event frame.
void send_fail_event(TcpStream& stream, double fail_time);

/// Serializes and sends a bye frame.
void send_bye(TcpStream& stream);

/// Serializes and sends a hello frame.
void send_hello(TcpStream& stream, const Hello& hello);

/// Serializes and sends a prediction frame.
void send_prediction(TcpStream& stream, const Prediction& prediction);

/// Serializes and sends a stats-request frame.
void send_stats_request(TcpStream& stream);

/// Serializes and sends a stats-reply frame.
void send_stats_reply(TcpStream& stream, const StatsReply& reply);

/// Receives the next frame, blocking. Returns nullopt on clean EOF at a
/// frame boundary; throws ProtocolError on protocol violations and
/// std::runtime_error on mid-frame truncation. `decoder` carries partial
/// state across calls, so mixing this with non-blocking reads is safe.
std::optional<Frame> receive_frame(TcpStream& stream, FrameDecoder& decoder);

/// Convenience overload with a call-local decoder (reads exactly one
/// frame, never buffering past it).
std::optional<Frame> receive_frame(TcpStream& stream);

}  // namespace f2pm::net
